// Gossip swarm: position exchange in a drone swarm.
//
// Every drone holds one rumor (its own position fix) and all of them need
// everybody's fix — the gossiping problem of Section 3. Connectivity is
// modelled as directed G(n,p) (asymmetric links from antenna orientation
// and interference, exactly the paper's model). Algorithm 2 runs with the
// message-join rule; we print a convergence timeline and the distribution
// of per-drone transmissions, which Theorem 3.2 bounds by O(log n).
//
//   $ ./gossip_swarm [n] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace radnet;

  const graph::NodeId n =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 512;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 3;

  const double p = 8.0 * std::log(static_cast<double>(n)) / n;
  const double d = n * p;
  Rng grng(seed);
  const graph::Digraph swarm = graph::gnp_directed(n, p, grng);
  std::cout << "swarm: n=" << n << " drones, expected in-range peers d=" << d
            << "\n\n";

  core::GossipRandomProtocol gossip(core::GossipRandomParams{.p = p});
  sim::Engine engine;
  sim::RunOptions options;
  core::GossipRandomProtocol probe(core::GossipRandomParams{.p = p});
  probe.reset(n, Rng(0));
  options.max_rounds = probe.round_budget();

  // Convergence timeline: sample the global knowledge fraction every few
  // rounds.
  Table timeline({"round", "round/(d*log2n)", "knowledge %", "min rumors",
                  "max rumors"});
  timeline.set_caption("Convergence timeline:");
  const auto sample_every = static_cast<sim::Round>(
      std::max(1.0, d * std::log2(static_cast<double>(n)) / 8.0));
  options.round_observer = [&](sim::Round r) {
    if (r % sample_every != 0) return;
    std::size_t lo = n, hi = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      const auto k = gossip.rumors_known(v);
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
    timeline.row()
        .add(static_cast<std::uint64_t>(r))
        .add(r / (d * std::log2(static_cast<double>(n))), 2)
        .add(100.0 * static_cast<double>(gossip.pairs_known()) /
                 (static_cast<double>(n) * n),
             1)
        .add(static_cast<std::uint64_t>(lo))
        .add(static_cast<std::uint64_t>(hi));
  };

  const auto result = engine.run(swarm, gossip, Rng(seed + 1), options);
  timeline.print(std::cout);

  std::cout << "\ngossip " << (result.completed ? "COMPLETED" : "FAILED")
            << " in " << result.completion_round << " rounds ("
            << result.completion_round / (d * std::log2(static_cast<double>(n)))
            << " x d*log2 n)\n\n";

  // Per-drone energy: Theorem 3.2 says O(log n) transmissions per drone.
  Histogram txs(0.0, static_cast<double>(result.ledger.max_tx_per_node() + 1),
                10);
  for (const auto c : result.ledger.tx_per_node)
    txs.add(static_cast<double>(c));
  std::cout << "per-drone transmissions (log2 n = "
            << std::log2(static_cast<double>(n))
            << ", max = " << result.ledger.max_tx_per_node() << "):\n"
            << txs.render(40) << "\n";

  return result.completed ? 0 : 1;
}
