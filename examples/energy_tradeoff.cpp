// Energy trade-off planner: pick lambda for a deployment deadline.
//
// Theorem 4.2 gives a dial: with distribution alpha(lambda), broadcast
// takes O(D*lambda + log^2 n) rounds and costs O(log^2 n / lambda)
// transmissions per node. Given a topology and a round deadline, this
// example sweeps the dial, measures both sides of the trade on the real
// simulator, and recommends the most energy-frugal lambda that still meets
// the deadline with the required confidence.
//
//   $ ./energy_tradeoff [deadline_rounds] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/broadcast_general.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "harness/monte_carlo.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace radnet;

  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 5;

  // The deployment: a chain of 12 dense clusters of 16 radios — rooms along
  // a corridor, say. Both regimes of Theorem 4.1's analysis are present:
  // dense collision domains and long hop distances.
  const graph::Digraph net = graph::cluster_chain(16, 12);
  const graph::NodeId n = net.num_nodes();
  const auto D = *graph::diameter_exact(net);
  const double log2n = std::log2(static_cast<double>(n));

  const sim::Round deadline =
      argc > 1 ? static_cast<sim::Round>(std::atoi(argv[1]))
               : static_cast<sim::Round>(8 * D + 4 * log2n * log2n);

  std::cout << "topology: " << n << " radios in 12 clusters, hop diameter "
            << D << "\ndeadline: " << deadline << " rounds\n\n";

  Table t({"lambda", "meets deadline", "rounds p50", "rounds p95",
           "tx/node mean", "verdict"});
  t.set_caption("Trade-off sweep (24 trials per lambda):");

  double best_energy = 1e300;
  std::uint32_t best_lambda = 0;
  const auto max_lambda = static_cast<std::uint32_t>(log2n);
  for (std::uint32_t l = 1; l <= max_lambda; ++l) {
    const auto dist = core::SequenceDistribution::alpha_with_lambda(n, l);
    harness::McSpec spec;
    spec.trials = 24;
    spec.seed = seed;
    spec.make_graph = harness::shared_graph(graph::Digraph(net));
    spec.make_protocol = [&](const graph::Digraph&, std::uint32_t) {
      return std::make_unique<core::GeneralBroadcastProtocol>(
          core::GeneralBroadcastParams{
              .distribution = dist,
              .window = core::general_window(n, 6.0),
              .source = 0,
              .label = ""});
    };
    spec.run_options.max_rounds = deadline;
    spec.run_options.stop_on_empty_candidates = true;
    // Nodes can't detect completion: count the energy they spend until
    // their activity windows expire, not until an omniscient stop.
    spec.run_options.run_to_quiescence = true;
    const auto result = harness::run_monte_carlo(spec);

    const bool meets = result.success_rate() >= 0.95;
    const auto rounds = result.rounds_sample();
    const double energy = result.mean_tx_sample().mean();
    if (meets && energy < best_energy) {
      best_energy = energy;
      best_lambda = l;
    }
    t.row()
        .add(static_cast<std::uint64_t>(l))
        .add(meets ? "yes" : "no")
        .add(rounds.empty() ? 0.0 : rounds.median(), 0)
        .add(rounds.empty() ? 0.0 : rounds.quantile(0.95), 0)
        .add(energy, 2)
        .add(meets ? (energy <= best_energy ? "candidate" : "ok")
                   : "misses deadline");
  }

  t.print(std::cout);
  if (best_lambda != 0) {
    std::cout << "\nrecommendation: lambda = " << best_lambda << " — about "
              << best_energy
              << " transmissions per node, the cheapest setting that meets\n"
                 "the deadline in >= 95% of trials. Larger lambda saves no\n"
                 "further energy once the 1/(2 log n) floor dominates\n"
                 "(the paper's Omega(log n) per-node lower bound).\n";
  } else {
    std::cout << "\nno lambda meets this deadline — relax it or accept\n"
                 "Czumaj-Rytter-level energy.\n";
  }
  return 0;
}
