// Quickstart: broadcast a message through an unknown ad-hoc network with
// Algorithm 1 and read the energy report.
//
//   $ ./quickstart [n] [seed]
//
// Walks through the whole public API in ~60 lines: generate a network,
// pick a protocol, run the engine, inspect the result.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/broadcast_random.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace radnet;

  const graph::NodeId n =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 4096;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 42;

  // 1. A random ad-hoc network: directed G(n,p) with p = 8 ln(n)/n, the
  //    paper's connectivity regime. Nodes do NOT know this topology — only
  //    the engine does.
  const double p = 8.0 * std::log(static_cast<double>(n)) / n;
  Rng graph_rng(seed);
  const graph::Digraph g = graph::gnp_directed(n, p, graph_rng);
  const auto deg = graph::degree_stats(g);
  std::cout << "network: n=" << n << "  p=" << p
            << "  mean degree=" << deg.mean_out << "\n";

  // 2. The protocol: Algorithm 1 (energy-efficient broadcast for random
  //    networks). Each node will transmit at most once, ever.
  core::BroadcastRandomProtocol protocol(core::BroadcastRandomParams{.p = p});

  // 3. Run. The engine implements the radio model: a node receives a
  //    message only when exactly one of its in-neighbours transmits.
  sim::Engine engine;
  sim::RunOptions options;
  core::BroadcastRandomProtocol probe(core::BroadcastRandomParams{.p = p});
  probe.reset(n, Rng(0));
  options.max_rounds = probe.round_budget();
  const sim::RunResult result = engine.run(g, protocol, Rng(seed + 1), options);

  // 4. Inspect.
  std::cout << "broadcast " << (result.completed ? "COMPLETED" : "FAILED")
            << " in " << result.completion_round << " rounds"
            << "  (log2 n = " << std::log2(static_cast<double>(n)) << ")\n";
  std::cout << "energy: total transmissions = "
            << result.ledger.total_transmissions << "  ("
            << result.ledger.total_transmissions * p /
                   std::log2(static_cast<double>(n))
            << " x log2(n)/p)\n";
  std::cout << "        max per node = " << result.ledger.max_tx_per_node()
            << "  (Theorem 2.1 guarantees <= 1)\n";
  std::cout << "        collisions observed = "
            << result.ledger.total_collisions << "\n";

  // 5. The extended energy model (beyond the paper): weigh receptions and
  //    idle listening too.
  const sim::EnergyModel radio{.tx_cost = 1.0, .rx_cost = 0.05, .idle_cost = 0.001};
  std::cout << "        weighted energy (tx=1, rx=0.05, idle=0.001): "
            << result.ledger.energy(radio) << " units\n";

  return result.completed ? 0 : 1;
}
