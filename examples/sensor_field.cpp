// Sensor field: pushing a firmware update through a geometric deployment.
//
// The scenario from the paper's introduction — battery-powered devices with
// fixed transmit power, unknown neighbourhood — on the random geometric
// layout the conclusion recommends (§5). A gateway in the field broadcasts
// an update with Algorithm 3 (it knows the field's hop diameter from a site
// survey); we compare against the classic Decay protocol under a realistic
// weighted energy model and report per-node battery impact.
//
//   $ ./sensor_field [n] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "baselines/decay.hpp"
#include "core/broadcast_general.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sim/engine.hpp"
#include "support/math.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace radnet;

  const graph::NodeId n =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 1024;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 7;

  // Deploy n sensors uniformly in a unit square; radio range a bit above
  // the connectivity threshold (a realistic, barely-connected field).
  const double radius = graph::rgg_threshold_radius(n, 3.0);
  Rng rng(seed);
  std::vector<graph::Point> layout;
  const graph::Digraph field = graph::random_geometric(n, radius, rng, &layout);

  if (!graph::strongly_connected(field)) {
    std::cerr << "field disconnected at this seed; re-run with another seed\n";
    return 1;
  }
  const auto diameter = graph::diameter_sampled(field, 4, seed + 1);
  const auto deg = graph::degree_stats(field);
  std::cout << "sensor field: n=" << n << "  radio range=" << radius
            << "  mean neighbours=" << deg.mean_out
            << "  hop diameter=" << *diameter << "\n\n";

  // Site-survey knowledge: the gateway knows n and the hop diameter D.
  const std::uint64_t D = *diameter;
  const sim::EnergyModel battery{.tx_cost = 1.0, .rx_cost = 0.08,
                                 .idle_cost = 0.002};

  Table t({"protocol", "completed", "rounds", "total tx", "max tx/node",
           "battery units", "battery/node"});
  t.set_caption("Firmware broadcast from sensor 0:");

  const auto report = [&](const std::string& name, const sim::RunResult& r) {
    t.row()
        .add(name)
        .add(r.completed ? "yes" : "NO")
        .add(static_cast<std::uint64_t>(r.completed ? r.completion_round
                                                    : r.rounds_executed))
        .add(r.ledger.total_transmissions)
        .add(static_cast<std::uint64_t>(r.ledger.max_tx_per_node()))
        .add(r.ledger.energy(battery), 0)
        .add(r.ledger.energy(battery) / n, 2);
  };

  {
    core::GeneralBroadcastProtocol alg3(core::GeneralBroadcastParams{
        .distribution = core::SequenceDistribution::alpha(n, D),
        .window = core::general_window(n, 4.0),
        .source = 0,
        .label = "alg3"});
    sim::Engine engine;
    sim::RunOptions options;
    options.max_rounds =
        core::general_round_budget(n, D, lambda_of(n, D), 96.0);
    options.stop_on_empty_candidates = true;
    report("alg3 (this paper)", engine.run(field, alg3, Rng(seed + 2), options));
  }
  {
    baselines::DecayProtocol decay(baselines::DecayParams{.source = 0});
    sim::Engine engine;
    sim::RunOptions options;
    options.max_rounds =
        core::general_round_budget(n, D, lambda_of(n, D), 96.0);
    report("decay (BGI'92)", engine.run(field, decay, Rng(seed + 2), options));
  }

  t.print(std::cout);
  std::cout << "\nWith fixed transmit power, every transmission costs the\n"
               "same battery charge — the paper's energy metric. alg3 keeps\n"
               "each sensor's radio almost always silent (expected\n"
               "O(log^2 n / log(n/D)) transmissions), which is what extends\n"
               "field lifetime; decay keeps every informed sensor shouting\n"
               "in every phase until the broadcast ends.\n";
  return 0;
}
