// Mobile field: continuous situational awareness under mobility — on the
// graph-free implicit mobility-RGG backend.
//
// The paper's motivating picture (§1): devices move, the topology changes,
// so protocols must be oblivious and local. This example puts the §3
// dynamic-gossip remark to work — n vehicles drive a random walk across a
// field while continuously gossiping their positions. Each position report
// carries its generation timestamp; copies older than a TTL are dropped
// (stale positions are worse than none). We watch the steady state: how old
// is the picture each vehicle has of each other vehicle?
//
// Walkthrough of the topology choice: earlier versions of this example
// ran on graph::MobilityRgg, which re-buckets all n positions and rebuilds
// an O(m) edge list every round. Here the same physical model — uniform
// placement, reflected uniform steps, symmetric links within the radio
// range — runs on sim::ImplicitRgg instead: the engine keeps only the
// 16 B/node positions and resolves each listener's outcome from the ≤ 9
// neighbouring grid cells, so the graph never exists. For mobility this
// backend is *exact for every protocol* (delivery is deterministic
// geometry; only the motion draws randomness), so nothing about the
// simulated law changes — just the memory and the per-round cost. The
// fleet size below is limited by this protocol's O(n²) staleness matrix,
// not by the topology: swap in an O(n) protocol and the same spec runs at
// n = 10⁷ (bench_e14_dynamic part (c) does exactly that under a 4 GiB
// budget).
//
//   $ ./mobile_field [n] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/dynamic_gossip.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace radnet;

  const graph::NodeId n =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 256;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 11;

  // Vehicles in a unit-square field; radio range 4x the connectivity
  // threshold so the network stays connected while everything moves.
  const double radius = graph::rgg_threshold_radius(n, 4.0);
  const double step = radius / 8.0;  // per-round movement

  // The whole topology is these three numbers plus a seed — no graph is
  // ever built. The spec's rng is copied by the engine, so the same spec
  // replays identically (and bit-identically at any --threads).
  const sim::ImplicitRgg field{n, radius, step, Rng(seed)};

  // Tune the gossip rate from the expected degree of the geometric graph
  // (pi r^2 n neighbours on average).
  const double mean_degree = 3.141592653589793 * radius * radius * n;
  const double p = mean_degree / n;
  const double gossip_unit = mean_degree * std::log2(static_cast<double>(n));
  const auto ttl = static_cast<sim::Round>(8.0 * gossip_unit);

  std::cout << "mobile field: n=" << n << " vehicles, radio range=" << radius
            << ", step/round=" << step << ", mean neighbours=" << mean_degree
            << "\nposition TTL=" << ttl
            << " rounds (topology: implicit RGG, graph-free)\n\n";

  core::DynamicGossipProtocol gossip(core::DynamicGossipParams{
      .p = p, .regen_interval = 1, .ttl = ttl});

  Table t({"round", "coverage %", "mean age", "p99-ish max age",
           "age/(d*log2n)"});
  t.set_caption("Situational-awareness timeline:");
  sim::Engine engine;
  sim::RunOptions options;
  const auto horizon = static_cast<sim::Round>(16.0 * gossip_unit);
  options.max_rounds = horizon;
  const auto sample_every = std::max<sim::Round>(1, horizon / 12);
  options.round_observer = [&](sim::Round r) {
    if (r % sample_every != 0) return;
    const auto s = gossip.staleness();
    t.row()
        .add(static_cast<std::uint64_t>(r))
        .add(100.0 * gossip.coverage(), 1)
        .add(s.mean, 1)
        .add(static_cast<std::uint64_t>(s.max))
        .add(static_cast<double>(s.max) / gossip_unit, 2);
  };

  // Same Engine::run call shape as every other backend: the overload on
  // the spec type picks the topology. Protocols are oblivious, so this
  // gossip never knows (or cares) that the graph is implicit.
  const auto result = engine.run(field, gossip, Rng(seed + 1), options);
  t.print(std::cout);

  const auto s = gossip.staleness();
  std::cout << "\nafter " << result.rounds_executed << " rounds: every vehicle"
            << " knows " << 100.0 * gossip.coverage()
            << "% of the fleet's positions,\nwith worst-case age " << s.max
            << " rounds (" << static_cast<double>(s.max) / gossip_unit
            << " x the static gossip time d*log2 n)."
            << "\nper-vehicle radio duty: "
            << result.ledger.mean_tx_per_node() /
                   static_cast<double>(result.rounds_executed)
            << " transmissions/round (the 1/d schedule of Algorithm 2).\n";
  return 0;
}
