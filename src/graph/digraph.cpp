#include "graph/digraph.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace radnet::graph {

Digraph::Digraph(NodeId n, std::vector<Edge> edges) : n_(n) {
  for (const auto& e : edges) {
    RADNET_REQUIRE(e.from < n && e.to < n, "edge endpoint out of range");
    RADNET_REQUIRE(e.from != e.to, "self-loops are not allowed");
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  out_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  in_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : edges) {
    ++out_off_[e.from + 1];
    ++in_off_[e.to + 1];
  }
  for (NodeId v = 0; v < n; ++v) {
    out_off_[v + 1] += out_off_[v];
    in_off_[v + 1] += in_off_[v];
  }
  out_adj_.resize(edges.size());
  in_adj_.resize(edges.size());
  std::vector<std::uint64_t> out_cursor(out_off_.begin(), out_off_.end() - 1);
  std::vector<std::uint64_t> in_cursor(in_off_.begin(), in_off_.end() - 1);
  for (const auto& e : edges) {
    out_adj_[out_cursor[e.from]++] = e.to;
    in_adj_[in_cursor[e.to]++] = e.from;
  }
  // in_adj_ groups by target in source-sorted order; sort each bucket for
  // deterministic iteration and binary-searchability.
  for (NodeId v = 0; v < n; ++v)
    std::sort(in_adj_.begin() + static_cast<std::ptrdiff_t>(in_off_[v]),
              in_adj_.begin() + static_cast<std::ptrdiff_t>(in_off_[v + 1]));
}

std::span<const NodeId> Digraph::out_neighbors(NodeId v) const {
  RADNET_REQUIRE(v < n_, "node out of range");
  return {out_adj_.data() + out_off_[v], out_adj_.data() + out_off_[v + 1]};
}

std::span<const NodeId> Digraph::in_neighbors(NodeId v) const {
  RADNET_REQUIRE(v < n_, "node out of range");
  return {in_adj_.data() + in_off_[v], in_adj_.data() + in_off_[v + 1]};
}

std::uint32_t Digraph::out_degree(NodeId v) const {
  RADNET_REQUIRE(v < n_, "node out of range");
  return static_cast<std::uint32_t>(out_off_[v + 1] - out_off_[v]);
}

std::uint32_t Digraph::in_degree(NodeId v) const {
  RADNET_REQUIRE(v < n_, "node out of range");
  return static_cast<std::uint32_t>(in_off_[v + 1] - in_off_[v]);
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  const auto nb = out_neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

Digraph Digraph::reversed() const {
  std::vector<Edge> edges;
  edges.reserve(out_adj_.size());
  for (NodeId v = 0; v < n_; ++v)
    for (const NodeId w : out_neighbors(v)) edges.push_back({w, v});
  return Digraph(n_, std::move(edges));
}

std::vector<Edge> Digraph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(out_adj_.size());
  for (NodeId v = 0; v < n_; ++v)
    for (const NodeId w : out_neighbors(v)) edges.push_back({v, w});
  return edges;
}

std::vector<Edge> symmetrise(const std::vector<Edge>& edges) {
  std::vector<Edge> out;
  out.reserve(edges.size() * 2);
  for (const auto& e : edges) {
    out.push_back(e);
    out.push_back({e.to, e.from});
  }
  return out;
}

}  // namespace radnet::graph
