// Dynamic topologies — the paper's motivating setting.
//
// Section 1: "due to the mobility of the nodes, the network topology changes
// over time. This last characteristic makes it desirable that communication
// algorithms use local information only." The paper's algorithms are
// oblivious precisely so they survive topology change; this module provides
// the changing topologies to test that claim (used by the dynamic gossip of
// Section 3's remark and the E14 extension experiments).
//
// A TopologySequence yields the communication graph for each round. All
// implementations are deterministic functions of their seed Rng, and all
// keep the node count fixed (devices persist; links change).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace radnet::graph {

class TopologySequence {
 public:
  virtual ~TopologySequence() = default;

  [[nodiscard]] virtual NodeId num_nodes() const = 0;

  /// The graph in force during round r. Must be called with non-decreasing
  /// r (the engine's access pattern); the reference stays valid until the
  /// next call.
  [[nodiscard]] virtual const Digraph& at(std::uint32_t round) = 0;
};

/// A constant topology wrapped as a sequence.
class StaticTopology final : public TopologySequence {
 public:
  explicit StaticTopology(Digraph g) : g_(std::move(g)) {}
  [[nodiscard]] NodeId num_nodes() const override { return g_.num_nodes(); }
  [[nodiscard]] const Digraph& at(std::uint32_t) override { return g_; }

 private:
  Digraph g_;
};

/// Directed G(n,p) with per-round edge churn. Every round, each ordered
/// pair is *re-sampled* (set to present with probability p) independently
/// with probability `churn`; pairs not selected keep their state. Started
/// from G(n,p) the process is stationary: the graph is G(n,p) at every
/// round, but an expected churn * n * (n-1) pair-states refresh per round —
/// the memoryless link-level mobility model.
class ChurnGnp final : public TopologySequence {
 public:
  /// churn in [0, 1]: fraction of pair-states re-sampled per round.
  ChurnGnp(NodeId n, double p, double churn, Rng rng);

  [[nodiscard]] NodeId num_nodes() const override { return n_; }
  [[nodiscard]] const Digraph& at(std::uint32_t round) override;

  /// Current edge count (for stationarity tests).
  [[nodiscard]] std::uint64_t edge_count() const { return edges_.size(); }

 private:
  void resample_step();
  void rebuild();

  NodeId n_;
  double p_;
  double churn_;
  Rng rng_;
  // Dense membership per ordered pair index (u * (n-1) + slot), mirrored by
  // the edge list used to rebuild the CSR graph.
  std::vector<char> present_;
  std::vector<Edge> edges_;
  Digraph current_;
  std::uint32_t built_round_ = 0;
  bool built_ = false;
};

/// Random-walk mobility over a random geometric graph: n devices in the
/// unit square, each taking an independent uniform step of length at most
/// `step` per round (reflected at the borders); symmetric links within
/// `radius`. The standard smooth-mobility model for ad-hoc networks.
class MobilityRgg final : public TopologySequence {
 public:
  MobilityRgg(NodeId n, double radius, double step, Rng rng);

  [[nodiscard]] NodeId num_nodes() const override { return n_; }
  [[nodiscard]] const Digraph& at(std::uint32_t round) override;

  [[nodiscard]] const std::vector<Point>& positions() const { return pts_; }

 private:
  void move_step();
  void rebuild();

  NodeId n_;
  double radius_;
  double step_;
  Rng rng_;
  std::vector<Point> pts_;
  // Rebuild scratch, hoisted: the edge list is reserved once (sigma-aware,
  // see generators.hpp) and the cell buckets keep their capacity, so
  // building the list never re-grows through vector doubling. (Digraph
  // construction still copies the list once per round — its constructor
  // consumes the edge vector — exactly as in ChurnGnp::rebuild.)
  std::vector<Edge> edges_;
  std::vector<std::vector<NodeId>> buckets_;
  std::uint32_t cells_ = 1;
  double cell_size_ = 1.0;
  Digraph current_;
  std::uint32_t built_round_ = 0;
  bool built_ = false;
};

}  // namespace radnet::graph
