// Graph serialisation: a plain edge-list text format plus Graphviz DOT
// export, so experiment topologies can be archived and inspected.
//
// Edge-list format:
//   line 1:  "radnet-digraph <n> <m>"
//   m lines: "<from> <to>"          (transmission direction)
// Comment lines start with '#'.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.hpp"

namespace radnet::graph {

/// Writes the edge-list format to `os`.
void write_edge_list(std::ostream& os, const Digraph& g);

/// Parses the edge-list format. Throws std::runtime_error on malformed
/// input.
[[nodiscard]] Digraph read_edge_list(std::istream& is);

/// Round-trips through a file. Throws std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const Digraph& g);
[[nodiscard]] Digraph load_edge_list(const std::string& path);

/// Graphviz DOT (directed) representation for small graphs.
[[nodiscard]] std::string to_dot(const Digraph& g, const std::string& name = "radnet");

}  // namespace radnet::graph
