#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::graph {

namespace {

/// Iterates the indices of a Bernoulli(p) subset of [0, total) by geometric
/// skipping and calls f(index) for each selected element.
template <typename F>
void skip_sample(std::uint64_t total, double p, Rng& rng, F&& f) {
  if (p <= 0.0 || total == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total; ++i) f(i);
    return;
  }
  std::uint64_t i = rng.geometric(p) - 1;  // first selected index
  while (i < total) {
    f(i);
    i += rng.geometric(p);
  }
}

}  // namespace

// See generators.hpp: expected count + max(10%, 4 sigma) headroom, capped
// at the exact maximum so huge-n / near-1 p inputs can neither overflow the
// size_t cast nor over-allocate. The old mean-only (+10%) formula
// under-reserved small-expectation dynamic rebuilds — a churned trial's
// per-round count fluctuates by sigma, tripping vector doubling and a ~2x
// peak footprint (the regression the counting-allocator test pins).
std::size_t edge_reserve_hint(std::uint64_t pairs, double p,
                              std::uint64_t edges_per_pair) {
  if (p <= 0.0 || pairs == 0) return 0;
  const double expected = static_cast<double>(pairs) * p;
  const double sigma = std::sqrt(expected * (1.0 - std::min(p, 1.0)));
  const double slack = std::max(0.1 * expected, 4.0 * sigma);
  const auto capped = static_cast<std::uint64_t>(
      std::min(expected + slack + 16.0, static_cast<double>(pairs)));
  return static_cast<std::size_t>(capped * edges_per_pair);
}

Digraph gnp_directed(NodeId n, double p, Rng& rng) {
  RADNET_REQUIRE(n >= 1, "gnp_directed needs n >= 1");
  RADNET_REQUIRE(p >= 0.0 && p <= 1.0, "p must be in [0,1]");
  std::vector<Edge> edges;
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1);
  edges.reserve(edge_reserve_hint(pairs, p, 1));
  skip_sample(pairs, p, rng, [&](std::uint64_t idx) {
    // Ordered pairs without the diagonal: row u has n-1 slots.
    const NodeId u = static_cast<NodeId>(idx / (n - 1));
    NodeId v = static_cast<NodeId>(idx % (n - 1));
    if (v >= u) ++v;  // skip the diagonal
    edges.push_back({u, v});
  });
  return Digraph(n, std::move(edges));
}

Digraph gnp_undirected(NodeId n, double p, Rng& rng) {
  RADNET_REQUIRE(n >= 1, "gnp_undirected needs n >= 1");
  RADNET_REQUIRE(p >= 0.0 && p <= 1.0, "p must be in [0,1]");
  std::vector<Edge> edges;
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1) / 2;
  edges.reserve(edge_reserve_hint(pairs, p, 2));
  skip_sample(pairs, p, rng, [&](std::uint64_t idx) {
    // Unrank idx into the strictly-lower-triangular pair (u, v), u > v.
    // Row u contains u entries; find u with u(u-1)/2 <= idx < u(u+1)/2.
    const double x = std::floor((1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) / 2.0);
    NodeId u = static_cast<NodeId>(x);
    while (static_cast<std::uint64_t>(u) * (u + 1) / 2 <= idx) ++u;
    while (static_cast<std::uint64_t>(u) * (u - 1) / 2 > idx) --u;
    const NodeId v = static_cast<NodeId>(idx - static_cast<std::uint64_t>(u) * (u - 1) / 2);
    edges.push_back({u, v});
    edges.push_back({v, u});
  });
  return Digraph(n, std::move(edges));
}

Digraph random_geometric(NodeId n, double radius, Rng& rng,
                         std::vector<Point>* positions_out) {
  RADNET_REQUIRE(n >= 1, "random_geometric needs n >= 1");
  RADNET_REQUIRE(radius > 0.0 && radius <= 1.5, "radius must be in (0, 1.5]");
  std::vector<Point> pts(n);
  for (auto& pt : pts) pt = Point{rng.next_double(), rng.next_double()};

  // Bucket grid with cell size = radius; only same/adjacent cells can link.
  const std::uint32_t cells =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(1.0 / radius));
  const double cell_size = 1.0 / static_cast<double>(cells);
  std::vector<std::vector<NodeId>> grid_buckets(
      static_cast<std::size_t>(cells) * cells);
  const auto cell_of = [&](const Point& pt) {
    auto cx = static_cast<std::uint32_t>(pt.x / cell_size);
    auto cy = static_cast<std::uint32_t>(pt.y / cell_size);
    cx = std::min(cx, cells - 1);
    cy = std::min(cy, cells - 1);
    return std::pair<std::uint32_t, std::uint32_t>{cx, cy};
  };
  for (NodeId v = 0; v < n; ++v) {
    const auto [cx, cy] = cell_of(pts[v]);
    grid_buckets[static_cast<std::size_t>(cy) * cells + cx].push_back(v);
  }

  const double r2 = radius * radius;
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) {
    const auto [cx, cy] = cell_of(pts[v]);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = static_cast<int>(cx) + dx;
        const int ny = static_cast<int>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<int>(cells) ||
            ny >= static_cast<int>(cells))
          continue;
        for (const NodeId w :
             grid_buckets[static_cast<std::size_t>(ny) * cells +
                          static_cast<std::size_t>(nx)]) {
          if (w <= v) continue;  // handle each unordered pair once
          const double ddx = pts[v].x - pts[w].x;
          const double ddy = pts[v].y - pts[w].y;
          if (ddx * ddx + ddy * ddy <= r2) {
            edges.push_back({v, w});
            edges.push_back({w, v});
          }
        }
      }
    }
  }
  if (positions_out != nullptr) *positions_out = std::move(pts);
  return Digraph(n, std::move(edges));
}

double rgg_threshold_radius(NodeId n, double c) {
  RADNET_REQUIRE(n >= 2, "rgg_threshold_radius needs n >= 2");
  RADNET_REQUIRE(c > 0.0, "c must be positive");
  return std::sqrt(c * std::log(static_cast<double>(n)) /
                   (3.141592653589793 * static_cast<double>(n)));
}

Digraph path(NodeId n) {
  RADNET_REQUIRE(n >= 1, "path needs n >= 1");
  std::vector<Edge> edges;
  edges.reserve(2 * (n - 1));
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back({v, static_cast<NodeId>(v + 1)});
    edges.push_back({static_cast<NodeId>(v + 1), v});
  }
  return Digraph(n, std::move(edges));
}

Digraph cycle(NodeId n) {
  RADNET_REQUIRE(n >= 3, "cycle needs n >= 3");
  std::vector<Edge> edges;
  edges.reserve(2 * n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId w = static_cast<NodeId>((v + 1) % n);
    edges.push_back({v, w});
    edges.push_back({w, v});
  }
  return Digraph(n, std::move(edges));
}

Digraph grid(NodeId w, NodeId h) {
  RADNET_REQUIRE(w >= 1 && h >= 1, "grid needs positive dimensions");
  std::vector<Edge> edges;
  const auto id = [w](NodeId r, NodeId c) { return static_cast<NodeId>(r * w + c); };
  for (NodeId r = 0; r < h; ++r) {
    for (NodeId c = 0; c < w; ++c) {
      if (c + 1 < w) {
        edges.push_back({id(r, c), id(r, c + 1)});
        edges.push_back({id(r, c + 1), id(r, c)});
      }
      if (r + 1 < h) {
        edges.push_back({id(r, c), id(r + 1, c)});
        edges.push_back({id(r + 1, c), id(r, c)});
      }
    }
  }
  return Digraph(static_cast<NodeId>(w * h), std::move(edges));
}

Digraph star(NodeId n) {
  RADNET_REQUIRE(n >= 2, "star needs n >= 2");
  std::vector<Edge> edges;
  edges.reserve(2 * (n - 1));
  for (NodeId v = 1; v < n; ++v) {
    edges.push_back({0, v});
    edges.push_back({v, 0});
  }
  return Digraph(n, std::move(edges));
}

Digraph complete(NodeId n) {
  RADNET_REQUIRE(n >= 1, "complete needs n >= 1");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      if (u != v) edges.push_back({u, v});
  return Digraph(n, std::move(edges));
}

Digraph cluster_chain(NodeId cluster_size, NodeId chain_len) {
  RADNET_REQUIRE(cluster_size >= 1, "cluster_chain needs cluster_size >= 1");
  RADNET_REQUIRE(chain_len >= 1, "cluster_chain needs chain_len >= 1");
  const NodeId n = static_cast<NodeId>(cluster_size * chain_len);
  std::vector<Edge> edges;
  for (NodeId c = 0; c < chain_len; ++c) {
    const NodeId base = static_cast<NodeId>(c * cluster_size);
    for (NodeId i = 0; i < cluster_size; ++i)
      for (NodeId j = 0; j < cluster_size; ++j)
        if (i != j)
          edges.push_back({static_cast<NodeId>(base + i),
                           static_cast<NodeId>(base + j)});
    if (c + 1 < chain_len) {
      // One symmetric bridge from the last node of this cluster to the first
      // node of the next.
      const NodeId a = static_cast<NodeId>(base + cluster_size - 1);
      const NodeId b = static_cast<NodeId>(base + cluster_size);
      edges.push_back({a, b});
      edges.push_back({b, a});
    }
  }
  return Digraph(n, std::move(edges));
}

}  // namespace radnet::graph
