#include "graph/dynamics.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace radnet::graph {

namespace {

/// Ordered-pair index -> (u, v) with the diagonal removed: row u holds the
/// n-1 targets {0..n-1} \ {u}, in order.
Edge pair_of(NodeId n, std::uint64_t idx) {
  const NodeId u = static_cast<NodeId>(idx / (n - 1));
  NodeId v = static_cast<NodeId>(idx % (n - 1));
  if (v >= u) ++v;
  return {u, v};
}

}  // namespace

ChurnGnp::ChurnGnp(NodeId n, double p, double churn, Rng rng)
    : n_(n), p_(p), churn_(churn), rng_(rng) {
  RADNET_REQUIRE(n >= 2, "ChurnGnp needs n >= 2");
  RADNET_REQUIRE(p >= 0.0 && p <= 1.0, "p must be in [0,1]");
  RADNET_REQUIRE(churn >= 0.0 && churn <= 1.0, "churn must be in [0,1]");
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1);
  RADNET_REQUIRE(pairs < (1ull << 32),
                 "ChurnGnp maintains dense pair state; n too large");
  present_.assign(pairs, 0);
  // The rebuild buffer is refilled every round and the churned edge count
  // fluctuates around pairs * p with stddev sqrt(pairs * p (1-p)); the
  // sigma-aware hint reserves once instead of letting vector doubling peak
  // near 2x the steady footprint (see generators.hpp).
  edges_.reserve(edge_reserve_hint(pairs, p_, 1));
  // Initial state: exact G(n,p) via skip sampling.
  if (p_ > 0.0) {
    std::uint64_t i = rng_.geometric(std::min(1.0, p_)) - 1;
    while (i < pairs) {
      present_[i] = 1;
      if (p_ >= 1.0) {
        ++i;
      } else {
        i += rng_.geometric(p_);
      }
    }
  }
  rebuild();
}

void ChurnGnp::resample_step() {
  if (churn_ <= 0.0) return;
  const std::uint64_t pairs = present_.size();
  // Visit an expected churn * pairs positions by geometric skipping and
  // re-Bernoulli(p) each; this keeps G(n,p) stationary.
  if (churn_ >= 1.0) {
    for (std::uint64_t i = 0; i < pairs; ++i)
      present_[i] = rng_.bernoulli(p_) ? 1 : 0;
    return;
  }
  std::uint64_t i = rng_.geometric(churn_) - 1;
  while (i < pairs) {
    present_[i] = rng_.bernoulli(p_) ? 1 : 0;
    i += rng_.geometric(churn_);
  }
}

void ChurnGnp::rebuild() {
  edges_.clear();
  for (std::uint64_t i = 0; i < present_.size(); ++i)
    if (present_[i]) edges_.push_back(pair_of(n_, i));
  current_ = Digraph(n_, edges_);
}

const Digraph& ChurnGnp::at(std::uint32_t round) {
  RADNET_REQUIRE(!built_ || round >= built_round_,
                 "TopologySequence must be accessed with non-decreasing rounds");
  if (!built_) {
    built_ = true;
    built_round_ = 0;
  }
  while (built_round_ < round) {
    resample_step();
    ++built_round_;
    if (built_round_ == round) rebuild();
  }
  return current_;
}

MobilityRgg::MobilityRgg(NodeId n, double radius, double step, Rng rng)
    : n_(n), radius_(radius), step_(step), rng_(rng) {
  RADNET_REQUIRE(n >= 1, "MobilityRgg needs n >= 1");
  RADNET_REQUIRE(radius > 0.0 && radius <= 1.5, "radius must be in (0, 1.5]");
  RADNET_REQUIRE(step >= 0.0 && step <= 1.0, "step must be in [0,1]");
  pts_.resize(n);
  for (auto& pt : pts_) pt = Point{rng_.next_double(), rng_.next_double()};
  // Hoisted rebuild scratch: each unordered pair links with probability
  // ~ pi r^2 (boundary effects only lower it) and contributes both edge
  // directions; the sigma-aware hint reserves once so the per-round
  // rebuild stops churning allocations (see edge_reserve_hint).
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1) / 2;
  const double p_link =
      std::min(1.0, 3.141592653589793 * radius_ * radius_);
  edges_.reserve(edge_reserve_hint(pairs, p_link, 2));
  cells_ =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(1.0 / radius_));
  cell_size_ = 1.0 / static_cast<double>(cells_);
  buckets_.resize(static_cast<std::size_t>(cells_) * cells_);
  rebuild();
}

void MobilityRgg::move_step() {
  if (step_ <= 0.0) return;  // parked devices: topology is static
  for (auto& pt : pts_) {
    // Uniform step in a square of side 2*step, reflected at the borders.
    pt.x += rng_.uniform_real(-step_, step_);
    pt.y += rng_.uniform_real(-step_, step_);
    if (pt.x < 0.0) pt.x = -pt.x;
    if (pt.x > 1.0) pt.x = 2.0 - pt.x;
    if (pt.y < 0.0) pt.y = -pt.y;
    if (pt.y > 1.0) pt.y = 2.0 - pt.y;
    pt.x = std::clamp(pt.x, 0.0, 1.0);
    pt.y = std::clamp(pt.y, 0.0, 1.0);
  }
}

void MobilityRgg::rebuild() {
  // Reuse the static generator's bucketed neighbour search by regenerating
  // from the current positions: O(n + m) per round, into scratch reserved
  // once by the constructor.
  const double r2 = radius_ * radius_;
  edges_.clear();
  for (auto& bucket : buckets_) bucket.clear();
  const auto cell_of = [&](const Point& pt) {
    auto cx = static_cast<std::uint32_t>(pt.x / cell_size_);
    auto cy = static_cast<std::uint32_t>(pt.y / cell_size_);
    cx = std::min(cx, cells_ - 1);
    cy = std::min(cy, cells_ - 1);
    return std::pair<std::uint32_t, std::uint32_t>{cx, cy};
  };
  for (NodeId v = 0; v < n_; ++v) {
    const auto [cx, cy] = cell_of(pts_[v]);
    buckets_[static_cast<std::size_t>(cy) * cells_ + cx].push_back(v);
  }
  for (NodeId v = 0; v < n_; ++v) {
    const auto [cx, cy] = cell_of(pts_[v]);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = static_cast<int>(cx) + dx;
        const int ny = static_cast<int>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<int>(cells_) ||
            ny >= static_cast<int>(cells_))
          continue;
        for (const NodeId w : buckets_[static_cast<std::size_t>(ny) * cells_ +
                                       static_cast<std::size_t>(nx)]) {
          if (w <= v) continue;
          const double ddx = pts_[v].x - pts_[w].x;
          const double ddy = pts_[v].y - pts_[w].y;
          if (ddx * ddx + ddy * ddy <= r2) {
            edges_.push_back({v, w});
            edges_.push_back({w, v});
          }
        }
      }
    }
  }
  current_ = Digraph(n_, edges_);
}

const Digraph& MobilityRgg::at(std::uint32_t round) {
  RADNET_REQUIRE(!built_ || round >= built_round_,
                 "TopologySequence must be accessed with non-decreasing rounds");
  if (!built_) {
    built_ = true;
    built_round_ = 0;
  }
  while (built_round_ < round) {
    move_step();
    ++built_round_;
    if (built_round_ == round) rebuild();
  }
  return current_;
}

}  // namespace radnet::graph
