#include "graph/metrics.hpp"

#include <algorithm>

#include "support/require.hpp"
#include "support/rng.hpp"

namespace radnet::graph {

std::vector<std::uint32_t> bfs_distances(const Digraph& g, NodeId source) {
  RADNET_REQUIRE(source < g.num_nodes(), "bfs source out of range");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  dist[source] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const NodeId v : frontier) {
      for (const NodeId w : g.out_neighbors(v)) {
        if (dist[w] == kUnreachable) {
          dist[w] = depth;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::optional<std::uint32_t> eccentricity(const Digraph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (const auto d : dist) {
    if (d == kUnreachable) return std::nullopt;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::optional<std::uint32_t> diameter_exact(const Digraph& g) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto ecc = eccentricity(g, v);
    if (!ecc) return std::nullopt;
    best = std::max(best, *ecc);
  }
  return best;
}

std::optional<std::uint32_t> diameter_sampled(const Digraph& g,
                                              std::uint32_t samples,
                                              std::uint64_t seed) {
  RADNET_REQUIRE(g.num_nodes() >= 1, "empty graph");
  Rng rng(seed);
  std::uint32_t best = 0;
  NodeId far_node = 0;
  for (std::uint32_t s = 0; s < samples; ++s) {
    const NodeId src = static_cast<NodeId>(rng.uniform_below(g.num_nodes()));
    const auto dist = bfs_distances(g, src);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] == kUnreachable) return std::nullopt;
      if (dist[v] > best) {
        best = dist[v];
        far_node = v;
      }
    }
  }
  // Double sweep: BFS again from the farthest node found.
  const auto dist = bfs_distances(g, far_node);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == kUnreachable) return std::nullopt;
    best = std::max(best, dist[v]);
  }
  return best;
}

bool all_reachable_from(const Digraph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

bool strongly_connected(const Digraph& g) {
  if (g.num_nodes() == 0) return true;
  if (!all_reachable_from(g, 0)) return false;
  return all_reachable_from(g.reversed(), 0);
}

DegreeStats degree_stats(const Digraph& g) {
  DegreeStats s;
  if (g.num_nodes() == 0) return s;
  s.min_out = s.min_in = std::numeric_limits<std::uint32_t>::max();
  double sum_out = 0.0, sum_in = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto od = g.out_degree(v);
    const auto id = g.in_degree(v);
    sum_out += od;
    sum_in += id;
    s.min_out = std::min(s.min_out, od);
    s.max_out = std::max(s.max_out, od);
    s.min_in = std::min(s.min_in, id);
    s.max_in = std::max(s.max_in, id);
  }
  s.mean_out = sum_out / g.num_nodes();
  s.mean_in = sum_in / g.num_nodes();
  return s;
}

}  // namespace radnet::graph
