// The lower-bound network constructions of Section 4.2.
//
// Observation 4.3 network ("double-cover star"): source s reaches 2n
// intermediate nodes u_1..u_2n; destination d_i (1 <= i <= n) hears exactly
// u_{2i-1} and u_{2i}. Once all intermediates are informed, d_i is informed
// in a round iff exactly one of its two intermediates transmits — forcing
// every oblivious schedule to spend Theta(log n) expected transmissions per
// intermediate to reach success probability 1 - 1/n, i.e. n log n / 2 total.
//
// Theorem 4.4 network (Fig. 2): subgraph G1 is a chain of stars S_1..S_L
// (L = log2 n), star S_i having a centre c_i and 2^i leaves; c_i informs its
// leaves directly, and c_{i+1} hears all 2^i leaves of S_i, so crossing star
// i requires a round where *exactly one* of 2^i leaves transmits. Subgraph
// G2 is a path of length D - 2 log n appended behind S_L. The star chain
// forces any time-invariant distribution to keep nodes awake ~ln^2 n rounds;
// the path forces a per-round transmission probability >= ~1/(2c log(n/D)).
//
// Both builders return the graph plus a role map so experiments can measure
// per-layer behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace radnet::graph {

/// Roles in the Observation 4.3 network.
enum class Obs43Role : std::uint8_t { kSource, kIntermediate, kDestination };

struct Obs43Network {
  Digraph graph;
  NodeId source = 0;
  /// n in the paper's notation: number of destination nodes.
  NodeId n_destinations = 0;
  std::vector<Obs43Role> roles;              // indexed by node id
  std::vector<NodeId> intermediates;         // u_1..u_2n in order
  std::vector<NodeId> destinations;          // d_1..d_n in order
  /// Paper's bound: total transmissions >= n log2(n) / 2 for success 1-1/n.
  [[nodiscard]] double transmission_lower_bound() const;
};

/// Builds the Observation 4.3 network with `n_destinations` destinations
/// (3n + 1 nodes in total).
[[nodiscard]] Obs43Network obs43_network(NodeId n_destinations);

/// Roles in the Theorem 4.4 (Fig. 2) network.
enum class Thm44Role : std::uint8_t { kStarCenter, kStarLeaf, kPathNode };

struct Thm44Network {
  Digraph graph;
  NodeId source = 0;          // c_1
  NodeId sink = 0;            // last node of the path
  std::uint32_t num_stars = 0;        // L = log2 n
  std::uint64_t path_length = 0;      // D - 2 log n
  std::uint64_t diameter = 0;         // the D the network was built for
  NodeId n_parameter = 0;             // the n the construction was built for
  std::vector<Thm44Role> roles;       // indexed by node id
  std::vector<NodeId> centers;        // c_1..c_{L} (and c_{L+1} = path[0])
  std::vector<std::vector<NodeId>> leaves;  // leaves[i] = leaves of S_{i+1}
  std::vector<NodeId> path_nodes;     // v_0..v_L2
};

/// Builds the Fig. 2 network for parameters (n, D). Requires n a power of
/// two and D >= 2 log2 n + 1 (the paper assumes D > 4 log n for the full
/// bound; smaller D simply shortens the path).
[[nodiscard]] Thm44Network thm44_network(NodeId n, std::uint64_t diameter);

}  // namespace radnet::graph
