#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "support/require.hpp"

namespace radnet::graph {

void write_edge_list(std::ostream& os, const Digraph& g) {
  os << "radnet-digraph " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (const NodeId w : g.out_neighbors(v)) os << v << ' ' << w << '\n';
}

Digraph read_edge_list(std::istream& is) {
  std::string line;
  std::string magic;
  std::uint64_t n = 0, m = 0;
  // Skip comments before the header.
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream hdr(line);
    if (!(hdr >> magic >> n >> m) || magic != "radnet-digraph")
      throw std::runtime_error("bad edge-list header: " + line);
    break;
  }
  if (magic.empty()) throw std::runtime_error("empty edge-list input");
  std::vector<Edge> edges;
  edges.reserve(m);
  std::uint64_t seen = 0;
  while (seen < m && std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::uint64_t a = 0, b = 0;
    if (!(row >> a >> b)) throw std::runtime_error("bad edge line: " + line);
    if (a >= n || b >= n) throw std::runtime_error("edge endpoint out of range: " + line);
    edges.push_back({static_cast<NodeId>(a), static_cast<NodeId>(b)});
    ++seen;
  }
  if (seen != m) throw std::runtime_error("edge-list truncated");
  return Digraph(static_cast<NodeId>(n), std::move(edges));
}

void save_edge_list(const std::string& path, const Digraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_edge_list(out, g);
  if (!out) throw std::runtime_error("error writing " + path);
}

Digraph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_edge_list(in);
}

std::string to_dot(const Digraph& g, const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (const NodeId w : g.out_neighbors(v))
      os << "  " << v << " -> " << w << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace radnet::graph
