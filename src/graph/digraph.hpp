// Immutable directed graph in compressed sparse row form.
//
// Orientation convention. The paper (Section 1.2) writes "(u,v) ∈ E means
// that u is in the communication range of v", i.e. v's transmissions reach u.
// The simulator stores the *transmission* direction instead: an edge u → v in
// a radnet::graph::Digraph means "when u transmits, v can hear u". The two
// conventions are mutually reversed; all generators and algorithms in this
// repository consistently use the transmission direction, which makes the
// collision rule read naturally: node v receives in a round iff exactly one
// of v's *in*-neighbours transmits.
//
// Graphs are immutable after construction and therefore safely shared across
// Monte-Carlo worker threads without synchronisation.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace radnet::graph {

using NodeId = std::uint32_t;

/// An edge in transmission direction: when `from` transmits, `to` hears.
struct Edge {
  NodeId from;
  NodeId to;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Digraph {
 public:
  /// Builds a graph with `n` nodes from an edge list. Self-loops are
  /// rejected (a radio cannot usefully transmit to itself); parallel edges
  /// are collapsed. The edge list is taken by value and consumed.
  Digraph(NodeId n, std::vector<Edge> edges);

  /// An empty graph.
  Digraph() = default;

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return static_cast<std::uint64_t>(out_adj_.size());
  }

  /// Nodes that hear `v` when v transmits.
  [[nodiscard]] std::span<const NodeId> out_neighbors(NodeId v) const;

  /// Nodes whose transmissions reach `v`.
  [[nodiscard]] std::span<const NodeId> in_neighbors(NodeId v) const;

  [[nodiscard]] std::uint32_t out_degree(NodeId v) const;
  [[nodiscard]] std::uint32_t in_degree(NodeId v) const;

  /// True iff the transmission edge u -> v exists (binary search).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// The graph with every edge reversed.
  [[nodiscard]] Digraph reversed() const;

  /// All edges in transmission direction, grouped by source, targets sorted.
  [[nodiscard]] std::vector<Edge> edge_list() const;

 private:
  NodeId n_ = 0;
  // CSR over out-edges and (separately) in-edges.
  std::vector<std::uint64_t> out_off_;
  std::vector<NodeId> out_adj_;
  std::vector<std::uint64_t> in_off_;
  std::vector<NodeId> in_adj_;
};

/// Convenience: adds both directions of each listed pair (symmetric links,
/// as in undirected radio models and geometric graphs).
[[nodiscard]] std::vector<Edge> symmetrise(const std::vector<Edge>& edges);

}  // namespace radnet::graph
