// Network generators.
//
// Covers every topology the paper uses or motivates:
//  * directed Erdős–Rényi G(n,p) — the random-network model of Sections 2/3
//    ("node v has an edge to node w with probability p", so each *ordered*
//    pair is sampled independently);
//  * undirected (symmetric) G(n,p) — used by comparisons with [12,13];
//  * random geometric graphs — the "more realistic" model named in the
//    paper's future-work list (Section 5);
//  * deterministic topologies (path, cycle, grid, star, complete, layered
//    caterpillar) used by the general-network experiments of Section 4.
//
// All generators are pure functions of their Rng argument; splitting the
// caller's generator per trial yields independent, reproducible networks.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace radnet::graph {

/// Reserve hint for a Bernoulli(p) subset of `pairs` ordered pairs, each
/// selected pair contributing `edges_per_pair` edge-list entries: expected
/// count plus max(10%, 4 sigma) headroom (sigma = sqrt(pairs * p * (1-p))),
/// capped at the exact maximum. The sigma term matters for *dynamic*
/// topologies (graph/dynamics.hpp): a churned G(n,p) re-samples its pair
/// states every round, so the per-round edge count fluctuates around the
/// mean with standard deviation sigma — a mean-only reserve forces the
/// rebuild buffer through a doubling growth that peaks near 2x the steady
/// footprint. A 4-sigma reserve covers every round's count with
/// probability ~1 - 3e-5 per round while staying within ~1.1x of the mean
/// for the large sparse graphs. Pinned by the counting-allocator
/// regression in tests/graph/generators_test.cpp.
[[nodiscard]] std::size_t edge_reserve_hint(std::uint64_t pairs, double p,
                                            std::uint64_t edges_per_pair);

/// Directed G(n,p): every ordered pair (u,v), u != v, becomes a transmission
/// edge independently with probability p. Uses geometric skipping, so the
/// cost is O(n + m), not O(n^2).
[[nodiscard]] Digraph gnp_directed(NodeId n, double p, Rng& rng);

/// Undirected G(n,p): every unordered pair is linked with probability p and
/// contributes both transmission directions.
[[nodiscard]] Digraph gnp_undirected(NodeId n, double p, Rng& rng);

/// A point in the unit square, exposed so examples can render node layouts.
struct Point {
  double x;
  double y;
};

/// Random geometric graph: n points uniform in the unit square, symmetric
/// links between points at Euclidean distance <= radius. Grid-bucketed, so
/// cost is O(n + m) for radii near the connectivity threshold
/// sqrt(ln n / (pi n)). If `positions_out` is non-null the sampled layout is
/// returned for visualisation.
[[nodiscard]] Digraph random_geometric(NodeId n, double radius, Rng& rng,
                                       std::vector<Point>* positions_out = nullptr);

/// The connectivity-threshold radius sqrt(c * ln n / (pi * n)) for RGGs.
[[nodiscard]] double rgg_threshold_radius(NodeId n, double c = 1.0);

/// Bidirectional path 0 - 1 - ... - (n-1). Diameter n-1.
[[nodiscard]] Digraph path(NodeId n);

/// Bidirectional cycle. Diameter floor(n/2).
[[nodiscard]] Digraph cycle(NodeId n);

/// Bidirectional w x h grid, node (r, c) has id r*w + c. Diameter w+h-2.
[[nodiscard]] Digraph grid(NodeId w, NodeId h);

/// Star with one hub (id 0) and n-1 leaves; symmetric links.
[[nodiscard]] Digraph star(NodeId n);

/// Complete symmetric graph.
[[nodiscard]] Digraph complete(NodeId n);

/// "Cluster chain": `chain_len` dense clusters of `cluster_size` nodes
/// (cliques), consecutive clusters joined by a single symmetric bridge edge.
/// Diameter ~ 2 * chain_len; a standard stress topology for broadcast with
/// both dense collision domains and long stretches — exercises both regimes
/// of the Theorem 4.1/4.2 analysis (small vs large layers).
[[nodiscard]] Digraph cluster_chain(NodeId cluster_size, NodeId chain_len);

/// Result metadata for generators whose constructions have named parts.
struct GnpParams {
  NodeId n;
  double p;
  /// Expected in/out degree d = n * p.
  [[nodiscard]] double degree() const { return static_cast<double>(n) * p; }
};

}  // namespace radnet::graph
