// Graph measurements used by experiments and validity checks.
//
// Distances follow the *transmission* direction (see digraph.hpp): the
// distance from s to v is the minimum number of hops a message from s needs
// to reach v, which is exactly the quantity D in the paper's bounds.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace radnet::graph {

/// Sentinel distance for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS hop distances from `source` along transmission edges.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Digraph& g,
                                                       NodeId source);

/// Maximum finite distance from `source`; nullopt if some node is
/// unreachable.
[[nodiscard]] std::optional<std::uint32_t> eccentricity(const Digraph& g,
                                                        NodeId source);

/// Exact directed diameter (max over all sources); nullopt if the graph is
/// not strongly connected. O(n * (n + m)) — intended for n up to ~2^14.
[[nodiscard]] std::optional<std::uint32_t> diameter_exact(const Digraph& g);

/// Diameter estimated from `samples` random sources plus the two endpoints
/// of a double-sweep; a lower bound on the true diameter, accurate for
/// random graphs. Returns nullopt on reachability failure.
[[nodiscard]] std::optional<std::uint32_t> diameter_sampled(const Digraph& g,
                                                            std::uint32_t samples,
                                                            std::uint64_t seed);

/// True iff every node is reachable from `source`.
[[nodiscard]] bool all_reachable_from(const Digraph& g, NodeId source);

/// True iff the graph is strongly connected (forward + reverse BFS from 0).
[[nodiscard]] bool strongly_connected(const Digraph& g);

/// Degree summary used by experiment logs.
struct DegreeStats {
  double mean_out = 0.0;
  double mean_in = 0.0;
  std::uint32_t min_out = 0;
  std::uint32_t max_out = 0;
  std::uint32_t min_in = 0;
  std::uint32_t max_in = 0;
};
[[nodiscard]] DegreeStats degree_stats(const Digraph& g);

}  // namespace radnet::graph
