#include "graph/lower_bound_nets.hpp"

#include <cmath>

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::graph {

double Obs43Network::transmission_lower_bound() const {
  const double n = static_cast<double>(n_destinations);
  return n * std::log2(n) / 2.0;
}

Obs43Network obs43_network(NodeId n_destinations) {
  RADNET_REQUIRE(n_destinations >= 2, "obs43_network needs n >= 2");
  Obs43Network net;
  net.n_destinations = n_destinations;
  const NodeId n = n_destinations;
  const NodeId total = static_cast<NodeId>(3 * n + 1);
  net.roles.assign(total, Obs43Role::kDestination);

  // Node ids: 0 = source, [1, 2n] = intermediates, [2n+1, 3n] = destinations.
  net.source = 0;
  net.roles[0] = Obs43Role::kSource;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(4) * n);
  for (NodeId i = 1; i <= 2 * n; ++i) {
    net.roles[i] = Obs43Role::kIntermediate;
    net.intermediates.push_back(i);
    edges.push_back({net.source, i});  // s transmits, u_i hears
  }
  for (NodeId j = 0; j < n; ++j) {
    const NodeId d = static_cast<NodeId>(2 * n + 1 + j);
    net.roles[d] = Obs43Role::kDestination;
    net.destinations.push_back(d);
    const NodeId u_odd = static_cast<NodeId>(2 * j + 1);   // u_{2j+1}
    const NodeId u_even = static_cast<NodeId>(2 * j + 2);  // u_{2j+2}
    edges.push_back({u_odd, d});
    edges.push_back({u_even, d});
  }
  net.graph = Digraph(total, std::move(edges));
  return net;
}

Thm44Network thm44_network(NodeId n, std::uint64_t diameter) {
  RADNET_REQUIRE(n >= 4, "thm44_network needs n >= 4");
  const std::uint32_t L = ilog2_floor(n);
  RADNET_REQUIRE((NodeId{1} << L) == n, "thm44_network needs n a power of two");
  RADNET_REQUIRE(diameter >= 2ull * L + 1,
                 "thm44_network needs diameter >= 2*log2(n) + 1");

  Thm44Network net;
  net.num_stars = L;
  net.n_parameter = n;
  net.diameter = diameter;
  net.path_length = diameter - 2ull * L;

  // Count nodes: sum_{i=1..L} (1 + 2^i) star nodes plus path_length path
  // nodes (path node 0 doubles as c_{L+1}).
  std::uint64_t count = 0;
  for (std::uint32_t i = 1; i <= L; ++i) count += 1 + (std::uint64_t{1} << i);
  count += net.path_length + 1;
  RADNET_REQUIRE(count < (std::uint64_t{1} << 31), "thm44_network too large");
  const NodeId total = static_cast<NodeId>(count);
  net.roles.assign(total, Thm44Role::kPathNode);

  std::vector<Edge> edges;
  NodeId next = 0;
  std::vector<NodeId> prev_leaves;
  for (std::uint32_t i = 1; i <= L; ++i) {
    const NodeId center = next++;
    net.roles[center] = Thm44Role::kStarCenter;
    net.centers.push_back(center);
    if (i == 1) net.source = center;
    // Leaves of S_{i-1} feed this centre: crossing star i-1 requires exactly
    // one of its 2^{i-1} leaves to transmit alone.
    for (const NodeId leaf : prev_leaves) edges.push_back({leaf, center});

    std::vector<NodeId> cur_leaves;
    const std::uint64_t leaf_count = std::uint64_t{1} << i;
    cur_leaves.reserve(leaf_count);
    for (std::uint64_t j = 0; j < leaf_count; ++j) {
      const NodeId leaf = next++;
      net.roles[leaf] = Thm44Role::kStarLeaf;
      // The centre informs all its leaves in one clean round.
      edges.push_back({center, leaf});
      cur_leaves.push_back(leaf);
    }
    net.leaves.push_back(cur_leaves);
    prev_leaves = std::move(cur_leaves);
  }

  // Path v_0 .. v_{path_length}; v_0 is c_{L+1}, hearing all leaves of S_L.
  NodeId prev_path = 0;
  for (std::uint64_t j = 0; j <= net.path_length; ++j) {
    const NodeId v = next++;
    net.roles[v] = Thm44Role::kPathNode;
    net.path_nodes.push_back(v);
    if (j == 0) {
      for (const NodeId leaf : prev_leaves) edges.push_back({leaf, v});
    } else {
      edges.push_back({prev_path, v});  // forward-only path, as in Fig. 2
    }
    prev_path = v;
  }
  net.sink = prev_path;
  RADNET_CHECK(next == total, "node count mismatch in thm44_network");

  net.graph = Digraph(total, std::move(edges));
  return net;
}

}  // namespace radnet::graph
