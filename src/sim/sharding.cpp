#include "sim/sharding.hpp"

#include <algorithm>
#include <bit>

#include "support/thread_pool.hpp"

namespace radnet::sim::detail {

void run_chunked(ThreadPool* pool, std::uint64_t chunks,
                 const std::function<void(std::uint64_t)>& body) {
  if (pool != nullptr && chunks > 1)
    pool->parallel_for_index(chunks, body);
  else
    for (std::uint64_t c = 0; c < chunks; ++c) body(c);
}

unsigned csr_block_shift(NodeId n, unsigned parallelism) {
  // Aim for ~4 blocks per thread so the pool's dynamic chunking can balance
  // skewed rounds; clamp to [2^8, 2^16]. The lower bound keeps the serial
  // merge's per-block bookkeeping negligible, the upper bound matches the
  // sampling backends' fixed block (beyond it the buffers stop fitting
  // nicely in cache anyway). Output never depends on this choice — CSR
  // delivery draws no randomness and the merge restores ascending listener
  // order across any block decomposition.
  const std::uint64_t want_blocks =
      std::max<std::uint64_t>(1, std::uint64_t{parallelism} * 4);
  const std::uint64_t target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n) / want_blocks);
  const unsigned shift = target <= 1 ? 0 : std::bit_width(target - 1);
  return std::clamp(shift, 8u, 16u);
}

void AttentiveFlags::set_round(NodeId n, std::span<const NodeId> attentive) {
  if (flags_.size() < n) flags_.resize(n, 0);
  for (const NodeId v : attentive) flags_[v] = 1;
}

void AttentiveFlags::clear_round(std::span<const NodeId> attentive) {
  for (const NodeId v : attentive) flags_[v] = 0;
}

}  // namespace radnet::sim::detail
