#include "sim/trace.hpp"

#include <sstream>

namespace radnet::sim {

std::string Trace::summary(std::size_t max_rounds) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& r : rounds) {
    if (shown++ >= max_rounds) {
      os << "... (" << rounds.size() - max_rounds << " more rounds)\n";
      break;
    }
    os << "round " << r.round << ": tx={";
    for (std::size_t i = 0; i < r.transmitters.size(); ++i) {
      if (i > 0) os << ',';
      if (i >= 16) {
        os << "...(" << r.transmitters.size() << ")";
        break;
      }
      os << r.transmitters[i];
    }
    os << "} delivered=" << r.deliveries.size()
       << " collisions=" << r.collisions.size() << '\n';
  }
  return os.str();
}

}  // namespace radnet::sim
