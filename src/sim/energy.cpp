#include "sim/energy.hpp"

#include <algorithm>

namespace radnet::sim {

void EnergyLedger::reset(graph::NodeId n) {
  tx_per_node.assign(n, 0);
  total_transmissions = 0;
  total_deliveries = 0;
  total_collisions = 0;
  node_rounds = 0;
}

void EnergyLedger::record_transmission(graph::NodeId v) {
  ++tx_per_node[v];
  ++total_transmissions;
}

std::uint32_t EnergyLedger::max_tx_per_node() const {
  if (tx_per_node.empty()) return 0;
  return *std::max_element(tx_per_node.begin(), tx_per_node.end());
}

double EnergyLedger::mean_tx_per_node() const {
  if (tx_per_node.empty()) return 0.0;
  return static_cast<double>(total_transmissions) /
         static_cast<double>(tx_per_node.size());
}

double EnergyLedger::energy(const EnergyModel& model) const {
  const double idle_events =
      static_cast<double>(node_rounds) - static_cast<double>(total_transmissions);
  return model.tx_cost * static_cast<double>(total_transmissions) +
         model.rx_cost * static_cast<double>(total_deliveries) +
         model.idle_cost * std::max(0.0, idle_events);
}

}  // namespace radnet::sim
