// Energy accounting.
//
// The paper measures energy as the number of transmissions (fixed transmit
// power, Section 1: "we believe that under these circumstances the number of
// transmissions is a very good measure for the overall energy consumption").
// The ledger therefore counts transmissions per node as its primary metric.
// As an extension the EnergyModel also lets users weight receptions and idle
// listening (real radios pay for both), which the examples use to show that
// the paper's ordering of protocols is robust to moderate rx/idle costs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace radnet::sim {

/// Cost weights in arbitrary energy units per event.
struct EnergyModel {
  double tx_cost = 1.0;    ///< per transmission (the paper's metric)
  double rx_cost = 0.0;    ///< per successful reception
  double idle_cost = 0.0;  ///< per node per round spent not transmitting
};

/// Raw event counts accumulated by the engine during one run.
struct EnergyLedger {
  std::vector<std::uint32_t> tx_per_node;
  std::uint64_t total_transmissions = 0;
  std::uint64_t total_deliveries = 0;
  std::uint64_t total_collisions = 0;  ///< collision *events* (receiver-rounds)
  std::uint64_t node_rounds = 0;       ///< num_nodes * rounds_executed

  void reset(graph::NodeId n);
  void record_transmission(graph::NodeId v);

  [[nodiscard]] std::uint32_t max_tx_per_node() const;
  [[nodiscard]] double mean_tx_per_node() const;

  /// Total energy under `model`.
  [[nodiscard]] double energy(const EnergyModel& model) const;

  friend bool operator==(const EnergyLedger&, const EnergyLedger&) = default;
};

}  // namespace radnet::sim
