// Topology backends for the simulation engine — umbrella header.
//
// The engine's round loop is templated over a *topology backend*: the
// object that knows which receivers hear which transmitters. The backend
// families live in per-family headers under sim/backends/, all built on
// the shared sharded-sweep layer of sim/sharding.hpp:
//
//   * sim/backends/csr.hpp — the explicit CSR family (CsrTopology /
//     DynamicCsrTopology): walks a materialised graph::Digraph. The
//     any-topology oracle; three delivery strategies (DeliveryPath), all
//     listener-block-parallel with no RNG involved, so bit-identity at any
//     thread count holds by construction.
//
//   * sim/backends/implicit.hpp — the implicit G(n,p) backend
//     (ImplicitGnpTopology): never materialises the graph; samples each
//     listener's outcome per round directly from the transmitter count.
//     O(n) per round (O(expected hits) when sparse), zero graph memory.
//
//   * sim/backends/implicit_dynamic.hpp — the implicit *dynamic* backend
//     (ImplicitDynamicGnpTopology): extends the sampling family to link
//     churn, permanent node failures and density schedules p(t), with lazy
//     pair-state tracking in a bounded sketch. See that header (and the
//     README table) for which regimes are exact vs modelled.
//
//   * sim/backends/implicit_rgg.hpp — the implicit mobility-RGG backend
//     (ImplicitRggTopology): random-walk mobility over a random geometric
//     graph with the graph never materialised — O(n) position state, a
//     per-round cell grid, delivery resolved exactly from the <= 9
//     neighbouring cells. Exact in distribution for every protocol
//     (delivery is deterministic geometry; only the motion draws
//     randomness); the graph-free counterpart of graph::MobilityRgg.
//
// Every backend exposes the same contract, consumed by sim/engine.cpp:
//
//   NodeId num_nodes() const;
//   void   begin_round(std::uint32_t r);          // refresh per-round state
//   void   set_parallelism(ThreadPool* pool);     // nullptr = serial blocks
//   template <class Sink>
//   void   deliver(std::span<const NodeId> transmitters,
//                  const std::vector<char>& is_tx, bool half_duplex,
//                  DeliveryPath path,
//                  const std::optional<std::span<const NodeId>>& attentive,
//                  bool collisions_inert, Sink& sink);
//
// where the sink receives deliver(receiver, sender) / collide(receiver)
// callbacks in ascending receiver order, exactly once per receiver that
// heard at least one transmitter (transmitters themselves excluded under
// half-duplex). `attentive` is the optional protocol hint from
// Protocol::attentive_listeners: sampling backends may restrict per-event
// callbacks to those listeners and fold everyone else's outcome counts
// into the sink's deliver_bulk/collide_bulk aggregates (ledger totals stay
// exactly distributed; event order follows the hint's order), and every
// backend folds deliveries landing outside the hint into per-block bulk
// counts during swept rounds. `collisions_inert` (Protocol::collisions_inert
// && no trace) likewise lets backends report collisions through
// collide_bulk counts instead of per-receiver callbacks.
//
// Within-trial parallelism: rounds decompose into contiguous listener
// blocks (sim/sharding.hpp) executed on the engine's thread pool and
// merged serially in listener order, which keeps the protocol
// single-threaded. Sampling backends key every RNG draw by (round, block)
// (StreamKey counter keying, support/rng.hpp) so their sweeps are
// bit-identical at any thread count; the CSR family involves no RNG at
// all, so its parallel delivery is bit-identical by order-independence of
// hit counts. tests/sim/thread_invariance_test.cpp pins both guarantees.
#pragma once

#include "sim/backends/csr.hpp"
#include "sim/backends/implicit.hpp"
#include "sim/backends/implicit_dynamic.hpp"
#include "sim/backends/implicit_rgg.hpp"
#include "sim/sharding.hpp"
