// Topology backends for the simulation engine.
//
// The engine's round loop is templated over a *topology backend*: the object
// that knows which receivers hear which transmitters. Two families exist:
//
//   * Explicit CSR backends (CsrTopology / DynamicCsrTopology) walk a
//     materialised graph::Digraph. Cost per round is O(sum of transmitter
//     out-degrees) via per-edge hit counters, or — for very dense rounds —
//     O(receivers scanned) via per-receiver in-neighbour scans against a
//     transmitter bitset with early exit at the second hit.
//
//   * The implicit backend (ImplicitGnpTopology) never materialises the
//     graph at all. For directed G(n,p) the number of transmissions a
//     listener hears, given k transmitters, is Binomial(k, p) independently
//     per listener (with k-1 for a listener that is itself a transmitter:
//     self-loops do not exist), and conditioned on hearing exactly one, the
//     sender is uniform over the eligible transmitters. A round therefore
//     costs O(n) — or O(expected hits) in sparse rounds via geometric
//     skip-sampling over the transmitter x listener pair grid — with zero
//     graph memory.
//
// Exactness of the implicit backend: it resamples the pair states it touches
// each round, so it is *exactly* G(n,p) whenever no ordered pair is examined
// twice — in particular for any protocol in which each node transmits at
// most once (Algorithm 1: Theorem 2.1's at-most-one-transmission property).
// For protocols with repeated transmitters (gossip) it instead simulates the
// memoryless per-round-resampled G(n,p) — the stationary link-churn mobility
// model of graph/dynamics.hpp with churn = 1 — which is the paper's
// motivating dynamic setting rather than a fixed graph.
//
// Backends expose:
//   NodeId num_nodes() const;
//   void   begin_round(std::uint32_t r);          // refresh per-round state
//   template <class Sink>
//   void   deliver(std::span<const NodeId> transmitters,
//                  const std::vector<char>& is_tx, bool half_duplex,
//                  DeliveryPath path,
//                  const std::optional<std::span<const NodeId>>& attentive,
//                  Sink& sink);
// where the sink receives deliver(receiver, sender) / collide(receiver)
// callbacks in ascending receiver order, exactly once per receiver that
// heard at least one transmitter (transmitters themselves excluded under
// half-duplex). `attentive` is the optional protocol hint from
// Protocol::attentive_listeners: sampling backends may then restrict
// per-event callbacks to those listeners and fold everyone else's outcome
// counts into the sink's deliver_bulk/collide_bulk aggregates (ledger
// totals stay exactly distributed; event order follows the hint's order).
// Explicit-graph backends ignore the hint.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/dynamics.hpp"
#include "support/bitset.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"

namespace radnet::sim {

using graph::NodeId;

/// How an explicit-CSR backend turns the round's transmitter set into
/// receiver events. kAuto picks per round; the forced values exist for the
/// path-parity tests and for benchmarking the individual strategies.
enum class DeliveryPath : std::uint8_t {
  kAuto,            ///< heuristic choice per round (default)
  kSortedTouch,     ///< per-edge hit counters, sort the touched list
  kLinearScan,      ///< per-edge hit counters, linear sweep of the hit array
  kInNeighborScan,  ///< per-receiver in-neighbour scan vs a transmitter bitset
};

/// Parameters of an implicit (never materialised) directed G(n,p) topology.
/// `rng` is the private edge-randomness stream; a run consumes a copy, so
/// the same spec replays identically.
struct ImplicitGnp {
  NodeId n = 0;
  double p = 0.0;
  Rng rng{};
};

namespace detail {

/// Shared delivery machinery for explicit CSR graphs: scratch arrays plus
/// the three delivery strategies. Owned by the backend objects below.
class CsrDelivery {
 public:
  void attach(NodeId n) {
    hits_.assign(n, 0);
    heard_from_.assign(n, 0);
    touched_.clear();
    tx_bits_ = Bitset(n);
  }

  template <class Sink>
  void deliver(const graph::Digraph& g, std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path, Sink& sink) {
    const NodeId n = g.num_nodes();
    if (path == DeliveryPath::kInNeighborScan) {
      in_neighbor_scan(g, transmitters, is_tx, half_duplex, sink);
      return;
    }
    if (path == DeliveryPath::kAuto) {
      // The in-neighbour scan wins when most receivers hear >= 2
      // transmitters quickly: a receiver stops after ~2/f scanned
      // neighbours (f = transmitting fraction), vs ~f*degree counter
      // writes on the counter path — cheaper when f^2 * degree > C, i.e.
      // k * load > C * n^2 with load = sum of transmitter out-degrees.
      std::uint64_t load = 0;
      for (const NodeId u : transmitters) load += g.out_degree(u);
      if (transmitters.size() * load >
          4u * static_cast<std::uint64_t>(n) * n) {
        in_neighbor_scan(g, transmitters, is_tx, half_duplex, sink);
        return;
      }
    }
    counter_paths(g, transmitters, is_tx, half_duplex, path, sink);
  }

 private:
  template <class Sink>
  void counter_paths(const graph::Digraph& g,
                     std::span<const NodeId> transmitters,
                     const std::vector<char>& is_tx, bool half_duplex,
                     DeliveryPath path, Sink& sink) {
    const NodeId n = g.num_nodes();
    for (const NodeId u : transmitters) {
      for (const NodeId w : g.out_neighbors(u)) {
        if (hits_[w] == 0) {
          heard_from_[w] = u;
          touched_.push_back(w);
        }
        ++hits_[w];
      }
    }
    // `touched_` fills in transmitter-adjacency order; events must fire in
    // ascending receiver order. Sparse rounds sort the touched list; dense
    // rounds (> n/8 receivers) linear-scan the hit array, which yields the
    // same order cheaper than the O(k log k) sort.
    const bool scan = path == DeliveryPath::kLinearScan ||
                      (path == DeliveryPath::kAuto && touched_.size() > n / 8);
    if (scan) {
      touched_.clear();
      for (NodeId w = 0; w < n; ++w)
        if (hits_[w] != 0) touched_.push_back(w);
    } else {
      std::sort(touched_.begin(), touched_.end());
    }
    for (const NodeId w : touched_) {
      if (half_duplex && is_tx[w]) {
        hits_[w] = 0;
        continue;  // a transmitting radio hears nothing
      }
      if (hits_[w] == 1)
        sink.deliver(w, heard_from_[w]);
      else
        sink.collide(w);
      hits_[w] = 0;
    }
    touched_.clear();
  }

  template <class Sink>
  void in_neighbor_scan(const graph::Digraph& g,
                        std::span<const NodeId> transmitters,
                        const std::vector<char>& is_tx, bool half_duplex,
                        Sink& sink) {
    const NodeId n = g.num_nodes();
    for (const NodeId u : transmitters) tx_bits_.set(u);
    for (NodeId w = 0; w < n; ++w) {
      if (half_duplex && is_tx[w]) continue;
      std::uint32_t c = 0;
      NodeId sender = 0;
      for (const NodeId v : g.in_neighbors(w)) {
        if (tx_bits_.test(v)) {
          sender = v;
          if (++c == 2) break;
        }
      }
      if (c == 1)
        sink.deliver(w, sender);
      else if (c >= 2)
        sink.collide(w);
    }
    for (const NodeId u : transmitters) tx_bits_.reset(u);
  }

  std::vector<std::uint32_t> hits_;
  std::vector<NodeId> heard_from_;
  std::vector<NodeId> touched_;
  Bitset tx_bits_;
};

}  // namespace detail

/// Backend over one fixed, materialised graph.
class CsrTopology {
 public:
  explicit CsrTopology(const graph::Digraph& g) : g_(&g) {
    delivery_.attach(g.num_nodes());
  }

  [[nodiscard]] NodeId num_nodes() const { return g_->num_nodes(); }
  void begin_round(std::uint32_t /*round*/) {}

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path,
               const std::optional<std::span<const NodeId>>& /*attentive*/,
               Sink& sink) {
    delivery_.deliver(*g_, transmitters, is_tx, half_duplex, path, sink);
  }

 private:
  const graph::Digraph* g_;
  detail::CsrDelivery delivery_;
};

/// Backend over a changing topology: round r uses sequence.at(r).
class DynamicCsrTopology {
 public:
  explicit DynamicCsrTopology(graph::TopologySequence& sequence)
      : sequence_(&sequence), n_(sequence.num_nodes()) {
    delivery_.attach(n_);
  }

  [[nodiscard]] NodeId num_nodes() const { return n_; }

  void begin_round(std::uint32_t round) {
    g_ = &sequence_->at(round);
    RADNET_CHECK(g_->num_nodes() == n_, "topology changed its node count");
  }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path,
               const std::optional<std::span<const NodeId>>& /*attentive*/,
               Sink& sink) {
    delivery_.deliver(*g_, transmitters, is_tx, half_duplex, path, sink);
  }

 private:
  graph::TopologySequence* sequence_;
  NodeId n_;
  const graph::Digraph* g_ = nullptr;
  detail::CsrDelivery delivery_;
};

/// The implicit G(n,p) backend: per-round delivery outcomes are sampled
/// directly from the transmitter count, the graph never exists. See the
/// file comment for the model and exactness conditions.
class ImplicitGnpTopology {
 public:
  explicit ImplicitGnpTopology(const ImplicitGnp& spec)
      : n_(spec.n), p_(spec.p), rng_(spec.rng) {
    RADNET_REQUIRE(n_ >= 1, "implicit G(n,p) needs n >= 1");
    RADNET_REQUIRE(p_ >= 0.0 && p_ <= 1.0, "p must be in [0,1]");
    if (p_ > 0.0 && p_ < 1.0) inv_log1m_p_ = 1.0 / std::log1p(-p_);
  }

  [[nodiscard]] NodeId num_nodes() const { return n_; }
  void begin_round(std::uint32_t /*round*/) {}

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath /*path*/,
               const std::optional<std::span<const NodeId>>& attentive,
               Sink& sink) {
    const std::uint64_t k = transmitters.size();
    if (k == 0 || p_ <= 0.0) return;
    const double expected_events =
        static_cast<double>(n_) *
        std::min(1.0, static_cast<double>(k) * p_);  // ~ listeners with hits
    // When the protocol has declared most listeners inert and enumerating
    // just those is cheaper than enumerating every hit listener, classify
    // the attentive listeners individually and fold the rest into exact
    // aggregate counts: O(|attentive| + k) per round.
    if (attentive.has_value() &&
        static_cast<double>(attentive->size()) < expected_events) {
      attentive_round(transmitters, is_tx, half_duplex, *attentive, sink);
      return;
    }
    // Expected hits per listener is k*p. Sparse rounds (well under one hit
    // per listener) enumerate the Bernoulli(p) pair grid by geometric
    // skipping — O(expected hits). Dense rounds classify each listener as
    // silent / single / collided straight from the round's Binomial outcome
    // probabilities — O(event listeners) via a skip-walk, O(n) at worst.
    if (static_cast<double>(k) * p_ < 0.25)
      pair_grid_round(transmitters, is_tx, half_duplex, sink);
    else
      binomial_round(transmitters, is_tx, half_duplex, sink);
  }

 private:
  /// Per-round listener outcome probabilities for a common eligible
  /// transmitter count c: P[hear nothing] = (1-p)^c, P[hear exactly one] =
  /// c p (1-p)^{c-1}, everything else collides. The engine's semantics only
  /// distinguish these three classes, so the exact hit count never needs to
  /// be drawn in dense rounds.
  struct OutcomeProbs {
    double silent = 1.0;  ///< P[X = 0]
    double single = 0.0;  ///< P[X = 1]

    [[nodiscard]] double hit() const { return 1.0 - silent; }
    /// P[exactly one | at least one].
    [[nodiscard]] double single_given_hit() const {
      const double q = hit();
      return q > 0.0 ? single / q : 0.0;
    }
  };

  [[nodiscard]] OutcomeProbs outcome_probs(std::uint64_t count) const {
    OutcomeProbs probs;
    if (count == 0) return probs;
    if (p_ >= 1.0) {  // degenerate complete graph
      probs.silent = 0.0;
      probs.single = count == 1 ? 1.0 : 0.0;
      return probs;
    }
    const double cd = static_cast<double>(count);
    probs.silent = std::exp(cd * std::log1p(-p_));
    probs.single = cd * p_ * std::exp((cd - 1.0) * std::log1p(-p_));
    return probs;
  }

  /// Skip-samples the k x n grid of (transmitter, listener) ordered pairs,
  /// each present with probability p; pairs pointing at the transmitter
  /// itself (self-loops) or, under half-duplex, at any transmitter (their
  /// radio cannot hear) are discarded. Expected cost O(k * n * p).
  [[nodiscard]] std::uint64_t skip(double inv_log1m) {
    return rng_.geometric_inv(inv_log1m);
  }

  [[nodiscard]] std::uint64_t next_skip() { return skip(inv_log1m_p_); }

  /// Skip-samples the listener-major grid of (listener, transmitter)
  /// ordered pairs, each present with probability p; pairs whose
  /// transmitter is the listener itself (self-loops) or, under half-duplex,
  /// whose listener transmits (its radio cannot hear) are discarded.
  /// Listener-major layout groups a listener's pair samples consecutively,
  /// so events stream out in ascending listener order with no counter
  /// arrays and no sort. Expected cost O(k * n * p).
  template <class Sink>
  void pair_grid_round(std::span<const NodeId> transmitters,
                       const std::vector<char>& is_tx, bool half_duplex,
                       Sink& sink) {
    const std::uint64_t k = transmitters.size();
    const std::uint64_t total = k * static_cast<std::uint64_t>(n_);
    if (p_ >= 1.0) {  // degenerate: every pair present
      binomial_round(transmitters, is_tx, half_duplex, sink);
      return;
    }
    NodeId cur = n_;  // listener whose hits are being accumulated
    std::uint32_t cur_hits = 0;
    NodeId cur_sender = 0;
    const auto flush = [&] {
      if (cur_hits == 0) return;
      if (cur_hits == 1)
        sink.deliver(cur, cur_sender);
      else
        sink.collide(cur);
      cur_hits = 0;
    };
    for (std::uint64_t idx = next_skip() - 1; idx < total;
         idx += next_skip()) {
      const NodeId v = static_cast<NodeId>(idx / k);
      const NodeId t = transmitters[static_cast<std::size_t>(idx % k)];
      if (v == t || (half_duplex && is_tx[v])) continue;
      if (v != cur) {
        flush();
        cur = v;
      }
      ++cur_hits;
      cur_sender = t;
    }
    flush();
  }

  /// Aggregate outcome accounting for `count` exchangeable listeners the
  /// protocol declared inert: the number of single-hit listeners is
  /// Binomial(count, P1) and, conditioned on it, the number of collided
  /// listeners is Binomial(count - singles, P2 / (1 - P1)) — exactly the
  /// marginal the per-listener enumeration would produce, in two draws.
  template <class Sink>
  void aggregate_group(std::uint64_t count, const OutcomeProbs& probs,
                       Sink& sink) {
    if (count == 0 || probs.hit() <= 0.0) return;
    const std::uint64_t singles = rng_.binomial(count, probs.single);
    const double collide_given_not_single =
        probs.single >= 1.0
            ? 0.0
            : std::min(1.0, (1.0 - probs.silent - probs.single) /
                                (1.0 - probs.single));
    const std::uint64_t collisions =
        rng_.binomial(count - singles, collide_given_not_single);
    sink.deliver_bulk(singles);
    sink.collide_bulk(collisions);
  }

  /// O(|attentive| + k) round: classify each attentive listener
  /// individually (in the hint's order) and fold every other listener's
  /// outcome into the two-draw aggregate above.
  template <class Sink>
  void attentive_round(std::span<const NodeId> transmitters,
                       const std::vector<char>& is_tx, bool half_duplex,
                       std::span<const NodeId> attentive, Sink& sink) {
    const std::uint64_t k = transmitters.size();
    const OutcomeProbs probs = outcome_probs(k);
    const OutcomeProbs probs_tx =
        half_duplex ? OutcomeProbs{} : outcome_probs(k - 1);

    std::uint64_t att_nontx = 0, att_tx = 0;
    for (const NodeId v : attentive) {
      const bool tx = is_tx[v] != 0;
      if (tx && half_duplex) continue;
      ++(tx ? att_tx : att_nontx);
      classify(v, tx, probs, probs_tx, transmitters, sink);
    }
    // The silent majority: all non-attentive listeners, by eligible
    // transmitter count.
    aggregate_group(static_cast<std::uint64_t>(n_) - k - att_nontx, probs,
                    sink);
    if (!half_duplex) aggregate_group(k - att_tx, probs_tx, sink);
  }


  /// Draws one listener's outcome from its three-way distribution and
  /// emits the matching event (nothing / delivery / collision). The single
  /// classification step shared by the attentive path and the dense sweep.
  template <class Sink>
  void classify(NodeId v, bool tx, const OutcomeProbs& probs,
                const OutcomeProbs& probs_tx,
                std::span<const NodeId> transmitters, Sink& sink) {
    const OutcomeProbs& pr = tx ? probs_tx : probs;
    const double u = rng_.next_double();
    if (u < pr.silent) return;
    if (u < pr.silent + pr.single)
      deliver_uniform(v, tx, transmitters, sink);
    else
      sink.collide(v);
  }

  /// Delivers to listener v from a uniformly chosen eligible transmitter
  /// (by symmetry, conditioned on exactly one hit the sender is uniform).
  /// A full-duplex transmitter listener excludes itself by swapping the
  /// last slot in for a draw that lands on v.
  template <class Sink>
  void deliver_uniform(NodeId v, bool tx, std::span<const NodeId> transmitters,
                       Sink& sink) {
    const std::uint64_t k = transmitters.size();
    const std::uint64_t eligible = k - (tx ? 1u : 0u);
    const std::uint64_t j = rng_.uniform_below(eligible);
    NodeId sender = transmitters[static_cast<std::size_t>(j)];
    if (tx && sender == v) sender = transmitters[static_cast<std::size_t>(k - 1)];
    sink.deliver(v, sender);
  }

  /// Classifies each listener as silent / single-hit / collided directly
  /// from Binomial(k', p) outcome probabilities, where k' excludes the
  /// listener itself when it is transmitting (no self-loops). When most
  /// listeners hear nothing, the listeners with >= 1 hit are themselves
  /// geometric-skip-sampled at rate q = 1 - P[X=0], making the round
  /// O(event listeners) instead of O(n); per event the only randomness is
  /// one classification uniform (plus the sender draw on delivery).
  template <class Sink>
  void binomial_round(std::span<const NodeId> transmitters,
                      const std::vector<char>& is_tx, bool half_duplex,
                      Sink& sink) {
    const std::uint64_t k = transmitters.size();
    if (p_ >= 1.0) {
      // Degenerate complete graph: every listener hears every eligible
      // transmitter deterministically.
      for (NodeId v = 0; v < n_; ++v) {
        const bool tx = is_tx[v] != 0;
        if (half_duplex && tx) continue;
        const std::uint64_t eligible = k - (tx ? 1u : 0u);
        if (eligible == 0) continue;
        if (eligible >= 2) {
          sink.collide(v);
          continue;
        }
        NodeId sender = transmitters[0];
        if (tx && sender == v) sender = transmitters[k - 1];
        sink.deliver(v, sender);
      }
      return;
    }
    const OutcomeProbs probs = outcome_probs(k);
    // Full-duplex transmitter listeners hear one fewer candidate sender.
    const OutcomeProbs probs_tx =
        half_duplex ? OutcomeProbs{} : outcome_probs(k - 1);
    const double q = probs.hit();

    if (q > 0.5) {
      // Most listeners hear something: a plain sweep is cheaper than
      // skip-sampling (and the round is O(events) either way).
      for (NodeId v = 0; v < n_; ++v) {
        const bool tx = is_tx[v] != 0;
        if (half_duplex && tx) continue;
        classify(v, tx, probs, probs_tx, transmitters, sink);
      }
      return;
    }

    // Skip-walk the listeners that hear >= 1 transmitter. A transmitter
    // listener's true hit probability q' (from Binomial(k-1, p)) is below
    // the walk's rate q, so those landings are thinned by q'/q — exact
    // rejection, preserving per-listener independence.
    const double q_tx = probs_tx.hit();
    const double single_given_hit = probs.single_given_hit();
    const double single_given_hit_tx = probs_tx.single_given_hit();
    const double inv_log1m_q = 1.0 / std::log1p(-q);
    for (std::uint64_t v = skip(inv_log1m_q) - 1; v < n_;
         v += skip(inv_log1m_q)) {
      const bool tx = is_tx[v] != 0;
      double single_prob = single_given_hit;
      if (tx) {
        if (half_duplex) continue;
        if (rng_.next_double() * q >= q_tx) continue;
        single_prob = single_given_hit_tx;
      }
      if (rng_.next_double() < single_prob)
        deliver_uniform(static_cast<NodeId>(v), tx, transmitters, sink);
      else
        sink.collide(static_cast<NodeId>(v));
    }
  }

  NodeId n_;
  double p_;
  double inv_log1m_p_ = 0.0;
  Rng rng_;
};

}  // namespace radnet::sim
