// Topology backends for the simulation engine.
//
// The engine's round loop is templated over a *topology backend*: the object
// that knows which receivers hear which transmitters. Three families exist:
//
//   * Explicit CSR backends (CsrTopology / DynamicCsrTopology) walk a
//     materialised graph::Digraph. Cost per round is O(sum of transmitter
//     out-degrees) via per-edge hit counters, or — for very dense rounds —
//     O(receivers scanned) via per-receiver in-neighbour scans against a
//     transmitter bitset with early exit at the second hit.
//
//   * The implicit backend (ImplicitGnpTopology) never materialises the
//     graph at all. For directed G(n,p) the number of transmissions a
//     listener hears, given k transmitters, is Binomial(k, p) independently
//     per listener (with k-1 for a listener that is itself a transmitter:
//     self-loops do not exist), and conditioned on hearing exactly one, the
//     sender is uniform over the eligible transmitters. A round therefore
//     costs O(n) — or O(expected hits) in sparse rounds via geometric
//     skip-sampling over the transmitter x listener pair grid — with zero
//     graph memory.
//
//   * The implicit *dynamic* backend (ImplicitDynamicGnpTopology) extends
//     the sampling family to the full dynamic model set of
//     graph/dynamics.hpp: per-round link churn on a stationary G(n,p)
//     (churn in (0,1]), permanent node failures, and density schedules
//     p(t) (mobility read as density change). Pair states are tracked
//     *lazily*: only pairs whose state was individually resolved — a clean
//     delivery identifies its (sender, listener) pair; the sparse path
//     enumerates every present pair it touches — enter a bounded
//     per-sender sketch; everything else stays at its exact Bernoulli(p)
//     marginal. On re-examination after g rounds a sketched pair keeps its
//     recorded state with probability (1 - churn)^g (the probability no
//     re-sample hit it) and is re-drawn fresh otherwise — exactly the
//     ChurnGnp process for tracked pairs.
//
// Exactness of the implicit family (see README for the full table):
//   - fixed G(n,p), protocols transmitting at most once per node
//     (Algorithm 1): exact, at *any* churn — no ordered pair is ever
//     examined twice, and under churn the first examination of a pair is
//     still Bernoulli(p) by stationarity.
//   - churn = 1 (memoryless per-round re-sampled G(n,p)) and p(t)
//     schedules at churn = 1: exact for every protocol; this is what the
//     static ImplicitGnpTopology simulates for repeated transmitters.
//   - node failures: exact (independent per-node Bernoulli per round).
//   - churn < 1 with repeated transmitters (gossip, Algorithm 3):
//     *modelled* — positive pair persistence is tracked through the
//     sketch, but negatively-resolved pairs and the unidentified members
//     of collisions fall back to the fresh Bernoulli(p) marginal, so the
//     process sits between the true churn-rho graph and the churn = 1
//     limit. tests/sim/dynamic_topology_equivalence_test.cpp pins the
//     exact regimes against the explicit ChurnGnp oracle statistically
//     and bands the modelled regime.
//
// Backends expose:
//   NodeId num_nodes() const;
//   void   begin_round(std::uint32_t r);          // refresh per-round state
//   template <class Sink>
//   void   deliver(std::span<const NodeId> transmitters,
//                  const std::vector<char>& is_tx, bool half_duplex,
//                  DeliveryPath path,
//                  const std::optional<std::span<const NodeId>>& attentive,
//                  bool collisions_inert, Sink& sink);
// where the sink receives deliver(receiver, sender) / collide(receiver)
// callbacks in ascending receiver order, exactly once per receiver that
// heard at least one transmitter (transmitters themselves excluded under
// half-duplex). `attentive` is the optional protocol hint from
// Protocol::attentive_listeners: sampling backends may then restrict
// per-event callbacks to those listeners and fold everyone else's outcome
// counts into the sink's deliver_bulk/collide_bulk aggregates (ledger
// totals stay exactly distributed; event order follows the hint's order).
// `collisions_inert` (Protocol::collisions_inert && no trace) additionally
// lets sampling backends report collisions through collide_bulk counts
// instead of per-receiver callbacks. Explicit-graph backends ignore both
// hints. Backends additionally expose set_parallelism(ThreadPool*) (no-op
// for the explicit family).
//
// Within-trial parallelism (the implicit family): listener outcomes are
// independent across listeners (and the pair grid independent across
// pairs), so a round sweep decomposes exactly into contiguous listener
// blocks of kShardBlockSize. Each (round, block) derives a private Rng by
// counter keying (StreamKey in support/rng.hpp) — never from a shared
// sequential stream — so blocks can execute on the thread pool in any
// order and still produce bit-identical results for any thread count.
// Blocks buffer their events (and resolved-pair records) locally; the
// buffers are then merged serially in ascending listener order into the
// engine sink, which also keeps the protocol single-threaded. The dynamic
// backend's failure injection shards the same way; its sketch phases
// (gather/classify pinned pairs) stay serial on per-round keyed streams.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/dynamics.hpp"
#include "support/bitset.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace radnet::sim {

using graph::NodeId;

/// How an explicit-CSR backend turns the round's transmitter set into
/// receiver events. kAuto picks per round; the forced values exist for the
/// path-parity tests and for benchmarking the individual strategies.
enum class DeliveryPath : std::uint8_t {
  kAuto,            ///< heuristic choice per round (default)
  kSortedTouch,     ///< per-edge hit counters, sort the touched list
  kLinearScan,      ///< per-edge hit counters, linear sweep of the hit array
  kInNeighborScan,  ///< per-receiver in-neighbour scan vs a transmitter bitset
};

/// Parameters of an implicit (never materialised) directed G(n,p) topology.
/// `rng` is the private edge-randomness stream; a run consumes a copy, so
/// the same spec replays identically.
struct ImplicitGnp {
  NodeId n = 0;
  double p = 0.0;
  Rng rng{};
};

/// Parameters of the implicit *dynamic* G(n,p) family: per-round link churn
/// with persistence, permanent node failures, and density schedules p(t).
/// The graph is never materialised; memory is O(sketch_capacity) at worst.
/// See the file comment for which regimes are exact vs modelled.
struct ImplicitDynamicGnp {
  NodeId n = 0;
  /// Stationary edge probability (fresh pair draws use the round's p).
  double p = 0.0;
  /// Fraction of ordered-pair states re-sampled per round, in (0, 1].
  /// churn = 1 is the memoryless per-round-resampled G(n,p) of
  /// graph/dynamics.hpp; churn < 1 persists pair states between rounds,
  /// tracked lazily through the pair sketch.
  double churn = 1.0;
  /// Per-node, per-round probability of permanent radio failure. A failed
  /// node neither delivers nor hears from its failure round on; its
  /// transmit attempts still spend ledger energy (the node cannot know its
  /// radio died). Must be in [0, 1). Note the honest consequence: goals of
  /// the form "every node informed" become unreachable once any uninformed
  /// node fails, so run failure scenarios with a fixed horizon (or read
  /// the incompletion as the result, as the failure-injection tests do).
  double fail_prob = 0.0;
  /// Optional density schedule: the edge probability in force during round
  /// r is clamp(p_of_round(r), 0, 1). Empty means constant p. Models
  /// mobility as density change (devices drifting apart / together);
  /// exact at churn = 1, modelled otherwise.
  std::function<double(std::uint32_t)> p_of_round;
  /// Bound on the pair-state sketch, in entries (~12 B each). When full,
  /// new positive resolutions are forgotten instead of tracked (modelled
  /// fallback); stale entries are recycled continuously.
  std::uint32_t sketch_capacity = 1u << 22;
  /// Root of the backend's private randomness, split into the sub-streams
  /// below; a run consumes a copy, so the same spec replays identically.
  Rng rng{};

  /// Sub-stream derivation constants. The backend draws edge/classification
  /// randomness from rng.split(kEdgeStream), sketch persistence draws from
  /// rng.split(kChurnStream) and failure draws from rng.split(kFailStream),
  /// so the three consumers can never interleave-collide with each other or
  /// with the harness's (seed, trial, phase) streams — audited by
  /// tests/support/rng_test.cpp.
  static constexpr std::uint64_t kEdgeStream = 0xed6eull;
  static constexpr std::uint64_t kChurnStream = 0xc4a7ull;
  static constexpr std::uint64_t kFailStream = 0xfa11ull;
};

namespace detail {

/// Shared delivery machinery for explicit CSR graphs: scratch arrays plus
/// the three delivery strategies. Owned by the backend objects below.
class CsrDelivery {
 public:
  void attach(NodeId n) {
    hits_.assign(n, 0);
    heard_from_.assign(n, 0);
    touched_.clear();
    tx_bits_ = Bitset(n);
  }

  template <class Sink>
  void deliver(const graph::Digraph& g, std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path, Sink& sink) {
    const NodeId n = g.num_nodes();
    if (path == DeliveryPath::kInNeighborScan) {
      in_neighbor_scan(g, transmitters, is_tx, half_duplex, sink);
      return;
    }
    if (path == DeliveryPath::kAuto) {
      // The in-neighbour scan wins when most receivers hear >= 2
      // transmitters quickly: a receiver stops after ~2/f scanned
      // neighbours (f = transmitting fraction), vs ~f*degree counter
      // writes on the counter path — cheaper when f^2 * degree > C, i.e.
      // k * load > C * n^2 with load = sum of transmitter out-degrees.
      std::uint64_t load = 0;
      for (const NodeId u : transmitters) load += g.out_degree(u);
      if (transmitters.size() * load >
          4u * static_cast<std::uint64_t>(n) * n) {
        in_neighbor_scan(g, transmitters, is_tx, half_duplex, sink);
        return;
      }
    }
    counter_paths(g, transmitters, is_tx, half_duplex, path, sink);
  }

 private:
  template <class Sink>
  void counter_paths(const graph::Digraph& g,
                     std::span<const NodeId> transmitters,
                     const std::vector<char>& is_tx, bool half_duplex,
                     DeliveryPath path, Sink& sink) {
    const NodeId n = g.num_nodes();
    for (const NodeId u : transmitters) {
      for (const NodeId w : g.out_neighbors(u)) {
        if (hits_[w] == 0) {
          heard_from_[w] = u;
          touched_.push_back(w);
        }
        ++hits_[w];
      }
    }
    // `touched_` fills in transmitter-adjacency order; events must fire in
    // ascending receiver order. Sparse rounds sort the touched list; dense
    // rounds (> n/8 receivers) linear-scan the hit array, which yields the
    // same order cheaper than the O(k log k) sort.
    const bool scan = path == DeliveryPath::kLinearScan ||
                      (path == DeliveryPath::kAuto && touched_.size() > n / 8);
    if (scan) {
      touched_.clear();
      for (NodeId w = 0; w < n; ++w)
        if (hits_[w] != 0) touched_.push_back(w);
    } else {
      std::sort(touched_.begin(), touched_.end());
    }
    for (const NodeId w : touched_) {
      if (half_duplex && is_tx[w]) {
        hits_[w] = 0;
        continue;  // a transmitting radio hears nothing
      }
      if (hits_[w] == 1)
        sink.deliver(w, heard_from_[w]);
      else
        sink.collide(w);
      hits_[w] = 0;
    }
    touched_.clear();
  }

  template <class Sink>
  void in_neighbor_scan(const graph::Digraph& g,
                        std::span<const NodeId> transmitters,
                        const std::vector<char>& is_tx, bool half_duplex,
                        Sink& sink) {
    const NodeId n = g.num_nodes();
    for (const NodeId u : transmitters) tx_bits_.set(u);
    for (NodeId w = 0; w < n; ++w) {
      if (half_duplex && is_tx[w]) continue;
      std::uint32_t c = 0;
      NodeId sender = 0;
      for (const NodeId v : g.in_neighbors(w)) {
        if (tx_bits_.test(v)) {
          sender = v;
          if (++c == 2) break;
        }
      }
      if (c == 1)
        sink.deliver(w, sender);
      else if (c >= 2)
        sink.collide(w);
    }
    for (const NodeId u : transmitters) tx_bits_.reset(u);
  }

  std::vector<std::uint32_t> hits_;
  std::vector<NodeId> heard_from_;
  std::vector<NodeId> touched_;
  Bitset tx_bits_;
};

/// No listener is excluded from a sampled round (the static backends).
struct SkipNone {
  bool operator()(NodeId) const noexcept { return false; }
};

/// No pair resolution is remembered (the static backends).
struct RecordNone {
  void operator()(NodeId, NodeId) const noexcept {}
};

/// A collision event's sender marker in the shard buffers (valid node ids
/// are < n <= 2^32 - 1).
inline constexpr NodeId kNoSender = 0xffffffffu;

/// One listener block's privately accumulated round output: delivery /
/// collision events (ascending listener within the block), the ordered
/// pairs individually resolved present (for the dynamic backend's sketch)
/// and — when the protocol declared collisions inert — a bare collision
/// count instead of per-listener collision events. Buffers are merged
/// serially in block order after the parallel sweep, so the engine sink
/// and the sketch observe exactly the event and record order a serial
/// sweep would have produced (bulk counts are order-free by definition).
struct ShardBuffer {
  std::vector<std::pair<NodeId, NodeId>> events;   ///< (listener, sender|kNoSender)
  std::vector<std::pair<NodeId, NodeId>> records;  ///< (sender, listener)
  std::uint64_t collide_count = 0;  ///< bulk-merged collisions (inert mode)

  void clear() {
    events.clear();
    records.clear();
    collide_count = 0;
  }
};

/// Emitter writing into a block's private buffer — the only output channel
/// of block code running on pool workers. `want_records` is off for the
/// static backend (its Record hook is RecordNone, so buffering pairs would
/// be pure overhead); `inert_collisions` folds collisions into the block
/// count (see Protocol::collisions_inert).
struct BufferEmitter {
  ShardBuffer& buf;
  bool want_records;
  bool inert_collisions;

  void on_record(NodeId sender, NodeId listener) {
    if (want_records) buf.records.emplace_back(sender, listener);
  }
  void on_deliver(NodeId listener, NodeId sender) {
    buf.events.emplace_back(listener, sender);
  }
  void on_collide(NodeId listener) {
    if (inert_collisions)
      ++buf.collide_count;
    else
      buf.events.emplace_back(listener, kNoSender);
  }
};

/// Emitter for the serial schedule (pool == nullptr): blocks already run
/// in ascending order on one thread, so events flow straight to the sink
/// and records straight to the hook — zero buffering, exactly the event /
/// record sequence the buffered merge would replay (inert collisions
/// accumulate per block and flush as one bulk count, mirroring the
/// buffered path's per-block bulk call).
template <class Sink, class Record>
struct DirectEmitter {
  Sink& sink;
  Record& record;
  bool inert_collisions;
  std::uint64_t collide_count = 0;

  void on_record(NodeId sender, NodeId listener) { record(sender, listener); }
  void on_deliver(NodeId listener, NodeId sender) {
    sink.deliver(listener, sender);
  }
  void on_collide(NodeId listener) {
    if (inert_collisions)
      ++collide_count;
    else
      sink.collide(listener);
  }
  /// Call at each block boundary (matches the buffered merge's one bulk
  /// call per block).
  void flush_block() {
    if (collide_count > 0) {
      sink.collide_bulk(collide_count);
      collide_count = 0;
    }
  }
};

/// The shared sampling core of the implicit G(n,p) family: per-listener
/// outcome laws and the sparse / dense / attentive round strategies. Both
/// implicit backends delegate here; the dynamic backend adds two hooks —
///   Skip:   bool skip(listener)  — listeners handled elsewhere this round
///           (sketch-pinned) or unable to hear (failed); sampled paths
///           reject them, aggregate universes exclude them by count. Must
///           be safe to call concurrently (it only reads per-round state).
///   Record: record(sender, listener) — called for every ordered pair
///           individually resolved *present* (a clean delivery's sender,
///           every hit the sparse pair grid enumerates); the dynamic
///           backend persists these in its sketch. Only invoked serially,
///           during buffer merge.
///
/// Randomness is counter-keyed, never sequential: begin_round(r) forks a
/// per-round key, every sweep block b draws from fork(r).fork(b), and the
/// serial attentive/aggregate path from a reserved lane of the same round
/// key. A draw is a pure function of (backend seed, round, block), so the
/// sweep is bit-identical for any thread count and any block execution
/// order.
class GnpSampler {
 public:
  /// Listeners per shard block. Fixed — part of the randomness contract:
  /// results depend on the block decomposition, never on thread count.
  static constexpr NodeId kShardBlockSize = 1u << 16;

  /// Reserved fork counters: kAuxLane feeds the serial aggregate draws,
  /// kAttentiveLane roots the attentive path's per-chunk streams. Sweep
  /// block indices stay below 2^32, so lanes >= 2^32 can never collide.
  static constexpr std::uint64_t kAuxLane = 0x1'0000'0001ull;
  static constexpr std::uint64_t kAttentiveLane = 0x1'0000'0002ull;

  void init(NodeId n, double p, Rng rng) {
    RADNET_REQUIRE(n >= 1, "implicit G(n,p) needs n >= 1");
    RADNET_REQUIRE(p >= 0.0 && p <= 1.0, "p must be in [0,1]");
    n_ = n;
    key_ = StreamKey::from_rng(rng);
    begin_round(0);
    set_p(p);
  }

  /// Serial blocks when null (the default); sharded sweeps on `pool`
  /// otherwise. Either way the output is bit-identical.
  void set_parallelism(ThreadPool* pool) { pool_ = pool; }

  /// The dynamic backend turns this off when it is not tracking pair
  /// states (churn == 1): its Record hook is then a runtime no-op, and
  /// buffering resolutions for it would be pure overhead. Purely a
  /// buffering knob — the serial path calls the hook either way.
  void set_records_enabled(bool enabled) { records_enabled_ = enabled; }

  /// Forks the round's key; must be called once per round before deliver.
  void begin_round(std::uint32_t round) {
    round_key_ = key_.fork(round);
    lane_rng_ = round_key_.fork(kAuxLane).make_rng();
  }

  void set_p(double p) {
    p_ = p;
    inv_log1m_p_ = (p_ > 0.0 && p_ < 1.0) ? 1.0 / std::log1p(-p_) : 0.0;
  }

  [[nodiscard]] NodeId n() const noexcept { return n_; }
  [[nodiscard]] double p() const noexcept { return p_; }

  /// Per-round listener outcome probabilities for a common eligible
  /// transmitter count c: P[hear nothing] = (1-p)^c, P[hear exactly one] =
  /// c p (1-p)^{c-1}, everything else collides. The engine's semantics only
  /// distinguish these three classes, so the exact hit count never needs to
  /// be drawn in dense rounds.
  struct OutcomeProbs {
    double silent = 1.0;  ///< P[X = 0]
    double single = 0.0;  ///< P[X = 1]

    [[nodiscard]] double hit() const { return 1.0 - silent; }
    /// P[exactly one | at least one].
    [[nodiscard]] double single_given_hit() const {
      const double q = hit();
      return q > 0.0 ? single / q : 0.0;
    }
  };

  [[nodiscard]] OutcomeProbs outcome_probs(std::uint64_t count) const {
    OutcomeProbs probs;
    if (count == 0 || p_ <= 0.0) return probs;
    if (p_ >= 1.0) {  // degenerate complete graph
      probs.silent = 0.0;
      probs.single = count == 1 ? 1.0 : 0.0;
      return probs;
    }
    const double cd = static_cast<double>(count);
    probs.silent = std::exp(cd * std::log1p(-p_));
    probs.single = cd * p_ * std::exp((cd - 1.0) * std::log1p(-p_));
    return probs;
  }

  /// The full static-backend round: attentive fast path when the protocol
  /// declared few listeners attentive, sparse pair grid or dense binomial
  /// classification otherwise. `universe_nontx` / `universe_tx` size the
  /// aggregate groups of the attentive path (the static backend passes
  /// n - k and k; the dynamic backend subtracts failed and pinned nodes).
  template <class Sink, class Skip, class Record>
  void round(std::span<const NodeId> transmitters,
             const std::vector<char>& is_tx, bool half_duplex,
             const std::optional<std::span<const NodeId>>& attentive,
             bool collisions_inert, Sink& sink, Skip&& skip, Record&& record,
             std::uint64_t universe_nontx, std::uint64_t universe_tx) {
    const std::uint64_t k = transmitters.size();
    if (k == 0 || p_ <= 0.0) return;
    const double expected_events =
        static_cast<double>(n_) *
        std::min(1.0, static_cast<double>(k) * p_);  // ~ listeners with hits
    // When the protocol has declared most listeners inert and enumerating
    // just those is cheaper than enumerating every hit listener, classify
    // the attentive listeners individually and fold the rest into exact
    // aggregate counts: O(|attentive| + k) per round.
    if (attentive.has_value() &&
        static_cast<double>(attentive->size()) < expected_events) {
      attentive_round(transmitters, is_tx, half_duplex, *attentive,
                      collisions_inert, sink, skip, record, universe_nontx,
                      universe_tx);
      return;
    }
    sweep(transmitters, is_tx, half_duplex, collisions_inert, sink, skip,
          record);
  }

  /// Per-listener enumeration in ascending listener order, block-sharded:
  /// the listener range splits into kShardBlockSize blocks, each drawing
  /// from its own (round, block) counter-keyed Rng into a private buffer;
  /// blocks run on the pool (or serially — same bits either way) and the
  /// buffers merge into the sink in block order. Per block, the sparse
  /// pair grid runs when well under one expected hit per listener, the
  /// binomial classification otherwise (the strategy choice depends only
  /// on round-global quantities, so all blocks agree).
  template <class Sink, class Skip, class Record>
  void sweep(std::span<const NodeId> transmitters,
             const std::vector<char>& is_tx, bool half_duplex,
             bool collisions_inert, Sink& sink, Skip&& skip,
             Record&& record) {
    const std::uint64_t k = transmitters.size();
    if (k == 0 || p_ <= 0.0) return;
    // Expected hits per listener is k*p. Sparse rounds (well under one hit
    // per listener) enumerate the Bernoulli(p) pair grid by geometric
    // skipping — O(expected hits). Dense rounds classify each listener as
    // silent / single / collided straight from the round's Binomial outcome
    // probabilities — O(event listeners) via a skip-walk, O(n) at worst.
    // Both laws are independent across listeners (and pairs), so the block
    // decomposition is exact, not approximate.
    const bool sparse = p_ < 1.0 && static_cast<double>(k) * p_ < 0.25;
    const std::uint64_t blocks =
        (static_cast<std::uint64_t>(n_) + kShardBlockSize - 1) /
        kShardBlockSize;
    const auto run_block = [&](std::uint64_t b, auto& em, Rng& rng) {
      const NodeId lo = static_cast<NodeId>(b * kShardBlockSize);
      const NodeId hi = static_cast<NodeId>(std::min<std::uint64_t>(
          n_, (b + 1) * static_cast<std::uint64_t>(kShardBlockSize)));
      if (sparse)
        pair_grid_block(lo, hi, rng, transmitters, is_tx, half_duplex, em,
                        skip);
      else
        binomial_block(lo, hi, rng, transmitters, is_tx, half_duplex, em,
                       skip);
    };
    if (pool_ != nullptr && blocks > 1) {
      const bool want_records = wants_records<Record>();
      if (buffers_.size() < blocks) buffers_.resize(blocks);
      pool_->parallel_for_index(blocks, [&](std::uint64_t b) {
        ShardBuffer& buf = buffers_[b];
        buf.clear();
        BufferEmitter em{buf, want_records, collisions_inert};
        Rng rng = round_key_.fork(b).make_rng();
        run_block(b, em, rng);
      });
      merge_buffers(blocks, sink, record);
    } else {
      // Serial schedule: same blocks, same per-block keyed streams, but
      // events flow straight to the sink — no buffering, no replay.
      DirectEmitter<Sink, std::remove_reference_t<Record>> em{
          sink, record, collisions_inert};
      for (std::uint64_t b = 0; b < blocks; ++b) {
        Rng rng = round_key_.fork(b).make_rng();
        run_block(b, em, rng);
        em.flush_block();
      }
    }
  }

  /// O(|attentive| + k) round, block-sharded over the hint's span:
  /// contiguous chunks of kShardBlockSize attentive listeners classify on
  /// their own (round, attentive-lane, chunk) counter-keyed streams, the
  /// buffers merge in chunk order (preserving the hint-order event
  /// contract), and every other listener's outcome folds into the two-draw
  /// aggregate below. For Algorithm-1-style protocols the heavy
  /// mid-broadcast rounds live here, so this path shards exactly like the
  /// full sweep.
  template <class Sink, class Skip, class Record>
  void attentive_round(std::span<const NodeId> transmitters,
                       const std::vector<char>& is_tx, bool half_duplex,
                       std::span<const NodeId> attentive,
                       bool collisions_inert, Sink& sink, Skip&& skip,
                       Record&& record, std::uint64_t universe_nontx,
                       std::uint64_t universe_tx) {
    const std::uint64_t k = transmitters.size();
    const OutcomeProbs probs = outcome_probs(k);
    const OutcomeProbs probs_tx =
        half_duplex ? OutcomeProbs{} : outcome_probs(k - 1);

    const std::uint64_t m = attentive.size();
    const std::uint64_t blocks = (m + kShardBlockSize - 1) / kShardBlockSize;
    std::uint64_t att_nontx = 0, att_tx = 0;
    if (m > 0) {
      const StreamKey att_key = round_key_.fork(kAttentiveLane);
      const auto run_chunk = [&](std::uint64_t b, auto& em, Rng& rng) {
        const std::uint64_t lo = b * kShardBlockSize;
        const std::uint64_t hi =
            std::min<std::uint64_t>(m, lo + kShardBlockSize);
        std::uint64_t nontx = 0, txc = 0;
        for (std::uint64_t i = lo; i < hi; ++i) {
          const NodeId v = attentive[static_cast<std::size_t>(i)];
          if (skip(v)) continue;
          const bool tx = is_tx[v] != 0;
          if (tx && half_duplex) continue;
          ++(tx ? txc : nontx);
          classify(v, tx, probs, probs_tx, transmitters, em, rng);
        }
        return std::pair<std::uint64_t, std::uint64_t>{nontx, txc};
      };
      if (pool_ != nullptr && blocks > 1) {
        const bool want_records = wants_records<Record>();
        if (buffers_.size() < blocks) buffers_.resize(blocks);
        if (att_counts_.size() < blocks) att_counts_.resize(blocks);
        pool_->parallel_for_index(blocks, [&](std::uint64_t b) {
          ShardBuffer& buf = buffers_[b];
          buf.clear();
          BufferEmitter em{buf, want_records, collisions_inert};
          Rng rng = att_key.fork(b).make_rng();
          att_counts_[b] = run_chunk(b, em, rng);
        });
        merge_buffers(blocks, sink, record);
        for (std::uint64_t b = 0; b < blocks; ++b) {
          att_nontx += att_counts_[b].first;
          att_tx += att_counts_[b].second;
        }
      } else {
        DirectEmitter<Sink, std::remove_reference_t<Record>> em{
            sink, record, collisions_inert};
        for (std::uint64_t b = 0; b < blocks; ++b) {
          Rng rng = att_key.fork(b).make_rng();
          const auto counts = run_chunk(b, em, rng);
          em.flush_block();
          att_nontx += counts.first;
          att_tx += counts.second;
        }
      }
    }
    // The silent majority: all remaining listeners, by eligible
    // transmitter count.
    RADNET_CHECK(att_nontx <= universe_nontx,
                 "attentive span exceeds the listener universe");
    aggregate_group(universe_nontx - att_nontx, probs, sink);
    if (!half_duplex) {
      RADNET_CHECK(att_tx <= universe_tx,
                   "attentive span exceeds the transmitter universe");
      aggregate_group(universe_tx - att_tx, probs_tx, sink);
    }
  }

  /// Aggregate outcome accounting for `count` exchangeable listeners the
  /// protocol declared inert: the number of single-hit listeners is
  /// Binomial(count, P1) and, conditioned on it, the number of collided
  /// listeners is Binomial(count - singles, P2 / (1 - P1)) — exactly the
  /// marginal the per-listener enumeration would produce, in two draws
  /// from the round's reserved lane.
  template <class Sink>
  void aggregate_group(std::uint64_t count, const OutcomeProbs& probs,
                       Sink& sink) {
    if (count == 0 || probs.hit() <= 0.0) return;
    const std::uint64_t singles = lane_rng_.binomial(count, probs.single);
    const double collide_given_not_single =
        probs.single >= 1.0
            ? 0.0
            : std::min(1.0, (1.0 - probs.silent - probs.single) /
                                (1.0 - probs.single));
    const std::uint64_t collisions =
        lane_rng_.binomial(count - singles, collide_given_not_single);
    sink.deliver_bulk(singles);
    sink.collide_bulk(collisions);
  }

 private:
  /// Whether `Record` actually stores resolutions: RecordNone never does
  /// (the static backend), and the dynamic backend declares its hook a
  /// no-op via set_records_enabled(false) at churn == 1. Blocks then skip
  /// buffering pairs entirely.
  template <class Record>
  [[nodiscard]] bool wants_records() const {
    return records_enabled_ &&
           !std::is_same_v<std::remove_cvref_t<Record>, RecordNone>;
  }

  /// Serial merge of the first `blocks` buffers in block order: records
  /// into the Record hook (sketch insertion order = enumeration order),
  /// events into the sink in ascending listener order, inert-collision
  /// counts as one bulk call per block. The protocol, trace and sketch
  /// stay single-threaded.
  template <class Sink, class Record>
  void merge_buffers(std::uint64_t blocks, Sink& sink, Record&& record) {
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const ShardBuffer& buf = buffers_[b];
      for (const auto& [sender, listener] : buf.records)
        record(sender, listener);
      for (const auto& [listener, sender] : buf.events) {
        if (sender == kNoSender)
          sink.collide(listener);
        else
          sink.deliver(listener, sender);
      }
      if (buf.collide_count > 0) sink.collide_bulk(buf.collide_count);
    }
  }

  /// Draws one listener's outcome from its three-way distribution and
  /// emits the matching event (nothing / delivery / collision). The single
  /// classification step shared by the attentive path and the dense sweep;
  /// the caller supplies the stream (a block rng or the serial lane).
  template <class Emitter>
  void classify(NodeId v, bool tx, const OutcomeProbs& probs,
                const OutcomeProbs& probs_tx,
                std::span<const NodeId> transmitters, Emitter& em, Rng& rng) {
    const OutcomeProbs& pr = tx ? probs_tx : probs;
    const double u = rng.next_double();
    if (u < pr.silent) return;
    if (u < pr.silent + pr.single)
      deliver_uniform(v, tx, transmitters, em, rng);
    else
      em.on_collide(v);
  }

  /// Delivers to listener v from a uniformly chosen eligible transmitter
  /// (by symmetry, conditioned on exactly one hit the sender is uniform).
  /// A full-duplex transmitter listener excludes itself by swapping the
  /// last slot in for a draw that lands on v.
  template <class Emitter>
  void deliver_uniform(NodeId v, bool tx, std::span<const NodeId> transmitters,
                       Emitter& em, Rng& rng) {
    const std::uint64_t k = transmitters.size();
    const std::uint64_t eligible = k - (tx ? 1u : 0u);
    const std::uint64_t j = rng.uniform_below(eligible);
    NodeId sender = transmitters[static_cast<std::size_t>(j)];
    if (tx && sender == v) sender = transmitters[static_cast<std::size_t>(k - 1)];
    em.on_record(sender, v);
    em.on_deliver(v, sender);
  }

  /// Skip-samples one block's slice of the listener-major grid of
  /// (listener, transmitter) ordered pairs — pair indices
  /// [lo * k, hi * k) — each present with probability p; pairs whose
  /// transmitter is the listener itself (self-loops) or, under
  /// half-duplex, whose listener transmits (its radio cannot hear) are
  /// discarded. Listener-major layout groups a listener's pair samples
  /// consecutively, so events stream out in ascending listener order with
  /// no counter arrays and no sort, and a listener never spans two blocks.
  /// Expected cost O(k * (hi - lo) * p). Every retained hit is an
  /// individually resolved present pair and is passed to on_record.
  template <class Emitter, class Skip>
  void pair_grid_block(NodeId lo, NodeId hi, Rng& rng,
                       std::span<const NodeId> transmitters,
                       const std::vector<char>& is_tx, bool half_duplex,
                       Emitter& em, Skip&& skip) {
    const std::uint64_t k = transmitters.size();
    const std::uint64_t limit = static_cast<std::uint64_t>(hi) * k;
    NodeId cur = hi;  // listener whose hits are being accumulated
    std::uint32_t cur_hits = 0;
    NodeId cur_sender = 0;
    const auto flush = [&] {
      if (cur_hits == 0) return;
      if (cur_hits == 1)
        em.on_deliver(cur, cur_sender);
      else
        em.on_collide(cur);
      cur_hits = 0;
    };
    for (std::uint64_t idx = static_cast<std::uint64_t>(lo) * k +
                             rng.geometric_inv(inv_log1m_p_) - 1;
         idx < limit; idx += rng.geometric_inv(inv_log1m_p_)) {
      const NodeId v = static_cast<NodeId>(idx / k);
      const NodeId t = transmitters[static_cast<std::size_t>(idx % k)];
      if (v == t || (half_duplex && is_tx[v]) || skip(v)) continue;
      if (v != cur) {
        flush();
        cur = v;
      }
      em.on_record(t, v);
      ++cur_hits;
      cur_sender = t;
    }
    flush();
  }

  /// Classifies one block's listeners as silent / single-hit / collided
  /// directly from Binomial(k', p) outcome probabilities, where k'
  /// excludes the listener itself when it is transmitting (no self-loops).
  /// When most listeners hear nothing, the listeners with >= 1 hit are
  /// themselves geometric-skip-sampled at rate q = 1 - P[X=0], making the
  /// block O(event listeners) instead of O(hi - lo); per event the only
  /// randomness is one classification uniform (plus the sender draw on
  /// delivery).
  template <class Emitter, class Skip>
  void binomial_block(NodeId lo, NodeId hi, Rng& rng,
                      std::span<const NodeId> transmitters,
                      const std::vector<char>& is_tx, bool half_duplex,
                      Emitter& em, Skip&& skip) {
    const std::uint64_t k = transmitters.size();
    if (p_ >= 1.0) {
      // Degenerate complete graph: every listener hears every eligible
      // transmitter deterministically.
      for (NodeId v = lo; v < hi; ++v) {
        const bool tx = is_tx[v] != 0;
        if ((half_duplex && tx) || skip(v)) continue;
        const std::uint64_t eligible = k - (tx ? 1u : 0u);
        if (eligible == 0) continue;
        if (eligible >= 2) {
          em.on_collide(v);
          continue;
        }
        NodeId sender = transmitters[0];
        if (tx && sender == v) sender = transmitters[k - 1];
        em.on_deliver(v, sender);
      }
      return;
    }
    const OutcomeProbs probs = outcome_probs(k);
    // Full-duplex transmitter listeners hear one fewer candidate sender.
    const OutcomeProbs probs_tx =
        half_duplex ? OutcomeProbs{} : outcome_probs(k - 1);
    const double q = probs.hit();

    if (q > 0.5) {
      // Most listeners hear something: a plain sweep is cheaper than
      // skip-sampling (and the block is O(events) either way).
      for (NodeId v = lo; v < hi; ++v) {
        const bool tx = is_tx[v] != 0;
        if ((half_duplex && tx) || skip(v)) continue;
        classify(v, tx, probs, probs_tx, transmitters, em, rng);
      }
      return;
    }

    // Skip-walk the block's listeners that hear >= 1 transmitter. A
    // transmitter listener's true hit probability q' (from
    // Binomial(k-1, p)) is below the walk's rate q, so those landings are
    // thinned by q'/q — exact rejection, preserving per-listener
    // independence.
    const double q_tx = probs_tx.hit();
    const double single_given_hit = probs.single_given_hit();
    const double single_given_hit_tx = probs_tx.single_given_hit();
    const double inv_log1m_q = 1.0 / std::log1p(-q);
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo;
    for (std::uint64_t o = rng.geometric_inv(inv_log1m_q) - 1; o < span;
         o += rng.geometric_inv(inv_log1m_q)) {
      const NodeId v = lo + static_cast<NodeId>(o);
      if (skip(v)) continue;
      const bool tx = is_tx[v] != 0;
      double single_prob = single_given_hit;
      if (tx) {
        if (half_duplex) continue;
        if (rng.next_double() * q >= q_tx) continue;
        single_prob = single_given_hit_tx;
      }
      if (rng.next_double() < single_prob)
        deliver_uniform(v, tx, transmitters, em, rng);
      else
        em.on_collide(v);
    }
  }

  NodeId n_ = 0;
  double p_ = 0.0;
  double inv_log1m_p_ = 0.0;
  StreamKey key_;        ///< backend randomness root (from the spec's rng)
  StreamKey round_key_;  ///< key_.fork(round), re-forked every begin_round
  Rng lane_rng_;         ///< serial attentive/aggregate stream for the round
  ThreadPool* pool_ = nullptr;
  bool records_enabled_ = true;
  std::vector<ShardBuffer> buffers_;  ///< per-block scratch, reused per round
  /// Per-chunk (non-tx, tx) attentive-listener counts, merged serially.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> att_counts_;
};

/// Bounded store of individually resolved *present* ordered pairs, indexed
/// by sender so a round touches exactly the entries whose sender transmits.
/// Entries live in a pooled free-list (12 B each); when the pool is full,
/// new resolutions are dropped (the modelled fallback) until stale entries
/// are recycled.
class PairSketch {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  void reset(std::size_t capacity) {
    pool_.clear();
    heads_.clear();
    free_head_ = kNil;
    size_ = 0;
    capacity_ = capacity;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void insert(NodeId sender, NodeId listener, std::uint32_t round) {
    if (size_ >= capacity_) return;  // full: forget (modelled fallback)
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = pool_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back({});
    }
    auto [it, fresh] = heads_.try_emplace(sender, idx);
    Entry& e = pool_[idx];
    e.listener = listener;
    e.round = round;
    if (fresh) {
      e.next = kNil;
    } else {
      e.next = it->second;
      it->second = idx;
    }
    ++size_;
  }

  /// Walks sender's entries in insertion order (most recent first), calling
  /// f(listener, round&); f returns whether to keep the entry (it may
  /// update the round in place). Erased entries go back to the free list.
  template <class F>
  void visit(NodeId sender, F&& f) {
    const auto it = heads_.find(sender);
    if (it == heads_.end()) return;
    std::uint32_t* link = &it->second;
    while (*link != kNil) {
      Entry& e = pool_[*link];
      if (f(e.listener, e.round)) {
        link = &e.next;
      } else {
        const std::uint32_t idx = *link;
        *link = e.next;
        e.next = free_head_;
        free_head_ = idx;
        --size_;
      }
    }
    if (it->second == kNil) heads_.erase(it);
  }

  /// Drops every entry older than `horizon` rounds — reclaims the slots of
  /// senders that stopped transmitting. Only the *set* of dropped entries
  /// is observable (free-list order never is), so iterating the unordered
  /// map here cannot perturb reproducibility.
  void drop_stale(std::uint32_t round, std::uint64_t horizon) {
    for (auto it = heads_.begin(); it != heads_.end();) {
      std::uint32_t* link = &it->second;
      while (*link != kNil) {
        Entry& e = pool_[*link];
        if (round - e.round > horizon) {
          const std::uint32_t idx = *link;
          *link = e.next;
          e.next = free_head_;
          free_head_ = idx;
          --size_;
        } else {
          link = &e.next;
        }
      }
      it = it->second == kNil ? heads_.erase(it) : std::next(it);
    }
  }

 private:
  struct Entry {
    NodeId listener = 0;
    std::uint32_t round = 0;
    std::uint32_t next = kNil;
  };

  std::vector<Entry> pool_;
  std::unordered_map<NodeId, std::uint32_t> heads_;
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace detail

/// Backend over one fixed, materialised graph.
class CsrTopology {
 public:
  explicit CsrTopology(const graph::Digraph& g) : g_(&g) {
    delivery_.attach(g.num_nodes());
  }

  [[nodiscard]] NodeId num_nodes() const { return g_->num_nodes(); }
  void begin_round(std::uint32_t /*round*/) {}
  /// Explicit-graph delivery is not sharded (yet — see ROADMAP); accepted
  /// so the engine treats every backend uniformly.
  void set_parallelism(ThreadPool* /*pool*/) {}

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path,
               const std::optional<std::span<const NodeId>>& /*attentive*/,
               bool /*collisions_inert*/, Sink& sink) {
    delivery_.deliver(*g_, transmitters, is_tx, half_duplex, path, sink);
  }

 private:
  const graph::Digraph* g_;
  detail::CsrDelivery delivery_;
};

/// Backend over a changing topology: round r uses sequence.at(r).
class DynamicCsrTopology {
 public:
  explicit DynamicCsrTopology(graph::TopologySequence& sequence)
      : sequence_(&sequence), n_(sequence.num_nodes()) {
    delivery_.attach(n_);
  }

  [[nodiscard]] NodeId num_nodes() const { return n_; }
  void set_parallelism(ThreadPool* /*pool*/) {}

  void begin_round(std::uint32_t round) {
    g_ = &sequence_->at(round);
    RADNET_CHECK(g_->num_nodes() == n_, "topology changed its node count");
  }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path,
               const std::optional<std::span<const NodeId>>& /*attentive*/,
               bool /*collisions_inert*/, Sink& sink) {
    delivery_.deliver(*g_, transmitters, is_tx, half_duplex, path, sink);
  }

 private:
  graph::TopologySequence* sequence_;
  NodeId n_;
  const graph::Digraph* g_ = nullptr;
  detail::CsrDelivery delivery_;
};

/// The implicit G(n,p) backend: per-round delivery outcomes are sampled
/// directly from the transmitter count, the graph never exists. See the
/// file comment for the model and exactness conditions.
class ImplicitGnpTopology {
 public:
  explicit ImplicitGnpTopology(const ImplicitGnp& spec) {
    sampler_.init(spec.n, spec.p, spec.rng);
  }

  [[nodiscard]] NodeId num_nodes() const { return sampler_.n(); }
  void begin_round(std::uint32_t round) { sampler_.begin_round(round); }
  void set_parallelism(ThreadPool* pool) { sampler_.set_parallelism(pool); }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath /*path*/,
               const std::optional<std::span<const NodeId>>& attentive,
               bool collisions_inert, Sink& sink) {
    const std::uint64_t k = transmitters.size();
    sampler_.round(transmitters, is_tx, half_duplex, attentive,
                   collisions_inert, sink, detail::SkipNone{},
                   detail::RecordNone{},
                   static_cast<std::uint64_t>(sampler_.n()) - k, k);
  }

 private:
  detail::GnpSampler sampler_;
};

/// The implicit *dynamic* G(n,p) backend: link churn with lazy pair-state
/// tracking, permanent node failures and density schedules, all without
/// ever materialising a graph. See the file comment for the model and the
/// exact-vs-modelled regimes; statistically pinned against the explicit
/// ChurnGnp oracle by tests/sim/dynamic_topology_equivalence_test.cpp.
class ImplicitDynamicGnpTopology {
 public:
  explicit ImplicitDynamicGnpTopology(const ImplicitDynamicGnp& spec)
      : churn_(spec.churn),
        fail_prob_(spec.fail_prob),
        p_of_round_(spec.p_of_round) {
    RADNET_REQUIRE(spec.churn > 0.0 && spec.churn <= 1.0,
                   "churn must be in (0, 1]");
    RADNET_REQUIRE(spec.fail_prob >= 0.0 && spec.fail_prob < 1.0,
                   "fail_prob must be in [0, 1)");
    sampler_.init(spec.n, spec.p, spec.rng.split(ImplicitDynamicGnp::kEdgeStream));
    churn_key_ =
        StreamKey::from_rng(spec.rng.split(ImplicitDynamicGnp::kChurnStream));
    fail_key_ =
        StreamKey::from_rng(spec.rng.split(ImplicitDynamicGnp::kFailStream));
    churn_rng_ = churn_key_.fork(0).make_rng();
    // At churn = 1 nothing is tracked: the record hook is a no-op, so the
    // sharded sweeps need not buffer resolved pairs.
    sampler_.set_records_enabled(churn_ < 1.0);
    if (churn_ < 1.0) {
      log1m_churn_ = std::log1p(-churn_);
      // Beyond the horizon a pair survives un-resampled with probability
      // < 1e-12: its recorded state is numerically indistinguishable from
      // a fresh Bernoulli(p), so the entry can be recycled.
      horizon_ = static_cast<std::uint64_t>(
          std::ceil(std::log(1e-12) / log1m_churn_));
      sketch_.reset(spec.sketch_capacity);
      // Start reclaiming stale entries once the pool is three-quarters
      // full (never at zero capacity).
      sketch_watermark_ =
          std::max<std::size_t>(1, spec.sketch_capacity / 4u * 3u);
      marks_.assign(spec.n, 0);
    }
    if (fail_prob_ > 0.0) {
      inv_log1m_fail_ = 1.0 / std::log1p(-fail_prob_);
      failed_.assign(spec.n, 0);
    }
  }

  [[nodiscard]] NodeId num_nodes() const { return sampler_.n(); }

  /// Number of live pair-state sketch entries (for tests / diagnostics).
  [[nodiscard]] std::size_t sketch_size() const { return sketch_.size(); }

  /// Number of permanently failed nodes so far.
  [[nodiscard]] NodeId failed_count() const { return failed_count_; }

  /// Accepted for the sharded sweep and failure injection; the sketch
  /// phases stay serial regardless.
  void set_parallelism(ThreadPool* pool) {
    pool_ = pool;
    sampler_.set_parallelism(pool);
  }

  void begin_round(std::uint32_t round) {
    round_ = round;
    sampler_.begin_round(round);
    // The sketch and failure streams re-key per round too: every draw this
    // round is a pure function of (spec seed, round, position), never of
    // how many draws earlier rounds consumed.
    churn_rng_ = churn_key_.fork(round).make_rng();
    if (p_of_round_)
      sampler_.set_p(std::clamp(p_of_round_(round), 0.0, 1.0));
    if (fail_prob_ > 0.0) draw_failures();
    // Lazily reclaim entries of senders that stopped transmitting once the
    // pool fills up; at most one linear sweep per horizon window.
    if (churn_ < 1.0 && sketch_.size() >= sketch_watermark_ &&
        round_ - last_sweep_round_ > horizon_) {
      sketch_.drop_stale(round_, horizon_);
      last_sweep_round_ = round_;
    }
  }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath /*path*/,
               const std::optional<std::span<const NodeId>>& attentive,
               bool collisions_inert, Sink& sink) {
    // Dead radios transmit into the void: filter them out of the round.
    std::span<const NodeId> tx = transmitters;
    if (failed_count_ > 0) {
      live_tx_.clear();
      for (const NodeId u : transmitters)
        if (!failed_[u]) live_tx_.push_back(u);
      tx = {live_tx_.data(), live_tx_.size()};
    }
    const std::uint64_t k = tx.size();
    if (k == 0) return;
    const bool sampling = sampler_.p() > 0.0;
    const bool tracking = churn_ < 1.0;
    if (!sampling && (!tracking || sketch_.size() == 0)) return;

    // Phase 1: resolve every sketched pair whose sender transmits — these
    // listeners ("pinned") have conditioned, non-exchangeable hit laws and
    // are classified individually below.
    pinned_.clear();
    if (tracking && sketch_.size() > 0)
      gather_pinned(tx, is_tx, half_duplex);

    const auto record = [&](NodeId sender, NodeId listener) {
      if (tracking) sketch_.insert(sender, listener, round_);
    };
    const auto skip = [&](NodeId v) {
      return (tracking && marks_[v] != 0) ||
             (failed_count_ > 0 && failed_[v] != 0);
    };

    std::uint64_t pinned_nontx = 0, pinned_tx = 0;
    pinned_events_.clear();
    classify_pinned(tx, is_tx, half_duplex, &pinned_nontx, &pinned_tx,
                    record);

    if (sampling) {
      const std::uint64_t live = sampler_.n() - failed_count_;
      RADNET_CHECK(live >= k + pinned_nontx,
                   "pinned listeners exceed the live universe");
      const std::uint64_t universe_nontx = live - k - pinned_nontx;
      const std::uint64_t universe_tx = k - pinned_tx;
      const double expected_events =
          static_cast<double>(sampler_.n()) *
          std::min(1.0, static_cast<double>(k) * sampler_.p());
      if (attentive.has_value() &&
          static_cast<double>(attentive->size()) < expected_events) {
        // Attentive mode: pinned events first (ascending listener), then
        // the hint's listeners in hint order, then the aggregates.
        for (const PinnedEvent& e : pinned_events_) emit(e, sink);
        sampler_.attentive_round(tx, is_tx, half_duplex, *attentive,
                                 collisions_inert, sink, skip, record,
                                 universe_nontx, universe_tx);
      } else {
        // Sweep mode: merge the pre-drawn pinned events into the sweep's
        // ascending listener order.
        MergeSink<Sink> merged{sink, pinned_events_, 0, this};
        sampler_.sweep(tx, is_tx, half_duplex, collisions_inert, merged, skip,
                       record);
        merged.flush_all();
      }
    } else {
      // p(t) == 0 this round: only persisted pairs can deliver.
      for (const PinnedEvent& e : pinned_events_) emit(e, sink);
    }

    if (tracking)
      for (const PinnedTouch& t : pinned_) marks_[t.listener] = 0;
  }

 private:
  struct PinnedTouch {
    NodeId listener;
    NodeId sender;
    bool present;
  };
  struct PinnedEvent {
    NodeId listener;
    NodeId sender;  // meaningful only for deliveries
    bool is_delivery;
  };

  template <class Sink>
  void emit(const PinnedEvent& e, Sink& sink) const {
    if (e.is_delivery)
      sink.deliver(e.listener, e.sender);
    else
      sink.collide(e.listener);
  }

  /// Forwards sweep events to the engine sink, flushing buffered pinned
  /// events whose listener precedes the sweep's current listener so the
  /// combined stream stays in ascending receiver order. Pinned listeners
  /// are marked and therefore never also produced by the sweep.
  template <class Sink>
  struct MergeSink {
    Sink& inner;
    const std::vector<PinnedEvent>& pending;
    std::size_t next;
    const ImplicitDynamicGnpTopology* self;

    void flush_upto(NodeId v) {
      while (next < pending.size() && pending[next].listener < v)
        self->emit(pending[next++], inner);
    }
    void flush_all() {
      while (next < pending.size()) self->emit(pending[next++], inner);
    }
    void deliver(NodeId receiver, NodeId sender) {
      flush_upto(receiver);
      inner.deliver(receiver, sender);
    }
    void collide(NodeId receiver) {
      flush_upto(receiver);
      inner.collide(receiver);
    }
    void deliver_bulk(std::uint64_t count) { inner.deliver_bulk(count); }
    void collide_bulk(std::uint64_t count) { inner.collide_bulk(count); }
  };

  /// Walks the sketch lists of this round's transmitters and resolves each
  /// touched pair's persistence: the recorded present state survives with
  /// probability (1-churn)^age (no re-sample hit it — memoryless, so the
  /// entry's clock restarts at this round), otherwise the pair re-draws
  /// fresh Bernoulli(p). Negative outcomes drop the entry (absence is not
  /// stored — the modelled fallback). Pairs whose listener cannot hear
  /// this round (failed, or transmitting under half-duplex) are left
  /// untouched: their state is unobservable, so it just keeps ageing.
  void gather_pinned(std::span<const NodeId> tx,
                     const std::vector<char>& is_tx, bool half_duplex) {
    for (const NodeId t : tx) {
      sketch_.visit(t, [&](NodeId w, std::uint32_t& entry_round) {
        const std::uint64_t age = round_ - entry_round;
        if (age > horizon_) return false;  // numerically fresh again
        if (failed_count_ > 0 && failed_[w] != 0) return true;
        if (half_duplex && is_tx[w]) return true;
        bool present = true;
        if (age > 0) {
          const double survive =
              std::exp(static_cast<double>(age) * log1m_churn_);
          if (churn_rng_.next_double() >= survive)
            present = churn_rng_.bernoulli(sampler_.p());
        }
        if (present) entry_round = round_;
        pinned_.push_back({w, t, present});
        return present;
      });
    }
    std::stable_sort(pinned_.begin(), pinned_.end(),
                     [](const PinnedTouch& a, const PinnedTouch& b) {
                       return a.listener < b.listener;
                     });
    for (const PinnedTouch& t : pinned_) marks_[t.listener] = 1;
  }

  /// Classifies each pinned listener: total hits = resolved sketch hits +
  /// Binomial(k_unknown, p) over its untracked pairs, collapsed to the
  /// silent / single / collided classes the engine distinguishes. Events
  /// are buffered (already in ascending listener order) for the caller to
  /// emit or merge.
  template <class Record>
  void classify_pinned(std::span<const NodeId> tx,
                       const std::vector<char>& is_tx, bool half_duplex,
                       std::uint64_t* pinned_nontx, std::uint64_t* pinned_tx,
                       Record&& record) {
    const std::uint64_t k = tx.size();
    std::size_t i = 0;
    while (i < pinned_.size()) {
      std::size_t j = i;
      std::uint32_t hits_known = 0;
      NodeId stored_sender = 0;
      const NodeId w = pinned_[i].listener;
      for (; j < pinned_.size() && pinned_[j].listener == w; ++j) {
        if (pinned_[j].present) {
          ++hits_known;
          stored_sender = pinned_[j].sender;
        }
      }
      const std::uint64_t cnt_known = j - i;
      const bool wtx = is_tx[w] != 0;
      ++(wtx ? *pinned_tx : *pinned_nontx);
      const std::uint64_t eligible =
          k - cnt_known - (wtx && !half_duplex ? 1u : 0u);
      if (hits_known >= 2) {
        pinned_events_.push_back({w, 0, false});
      } else {
        const auto probs = sampler_.outcome_probs(eligible);
        const double u = churn_rng_.next_double();
        if (hits_known == 1) {
          // One tracked hit: collision iff any untracked pair also hits.
          if (u < probs.silent)
            pinned_events_.push_back({w, stored_sender, true});
          else
            pinned_events_.push_back({w, 0, false});
        } else if (u >= probs.silent) {
          if (u < probs.silent + probs.single) {
            const NodeId sender = pick_unknown_sender(tx, w, wtx, i, j);
            record(sender, w);
            pinned_events_.push_back({w, sender, true});
          } else {
            pinned_events_.push_back({w, 0, false});
          }
        }
      }
      i = j;
    }
  }

  /// Uniform draw over the transmitters whose pair to `w` is untracked
  /// (rejecting w itself and the listeners' resolved senders — a handful
  /// at most, so rejection terminates fast; probs.single > 0 guarantees
  /// the untracked set is non-empty).
  NodeId pick_unknown_sender(std::span<const NodeId> tx, NodeId w, bool wtx,
                             std::size_t begin, std::size_t end) {
    for (;;) {
      const NodeId cand = tx[static_cast<std::size_t>(
          churn_rng_.uniform_below(tx.size()))];
      if (wtx && cand == w) continue;
      bool tracked = false;
      for (std::size_t s = begin; s < end; ++s)
        if (pinned_[s].sender == cand) {
          tracked = true;
          break;
        }
      if (!tracked) return cand;
    }
  }

  /// Each live node fails independently with fail_prob per round; landing
  /// on an already-failed node is a no-op, so a skip-sampled sweep of
  /// [0, n) is exact — and because failures are independent per node, the
  /// sweep shards into the same counter-keyed listener blocks as the round
  /// sweep (disjoint failed_ ranges; per-block new-failure counts summed
  /// serially).
  void draw_failures() {
    const std::uint64_t n = sampler_.n();
    const StreamKey round_key = fail_key_.fork(round_);
    const std::uint64_t blocks =
        (n + detail::GnpSampler::kShardBlockSize - 1) /
        detail::GnpSampler::kShardBlockSize;
    fail_counts_.assign(blocks, 0);
    const auto run_block = [&](std::uint64_t b) {
      Rng rng = round_key.fork(b).make_rng();
      const std::uint64_t lo = b * detail::GnpSampler::kShardBlockSize;
      const std::uint64_t span =
          std::min<std::uint64_t>(n, lo + detail::GnpSampler::kShardBlockSize) -
          lo;
      NodeId fresh = 0;
      for (std::uint64_t o = rng.geometric_inv(inv_log1m_fail_) - 1; o < span;
           o += rng.geometric_inv(inv_log1m_fail_)) {
        if (!failed_[lo + o]) {
          failed_[lo + o] = 1;
          ++fresh;
        }
      }
      fail_counts_[b] = fresh;
    };
    if (pool_ != nullptr && blocks > 1)
      pool_->parallel_for_index(blocks, run_block);
    else
      for (std::uint64_t b = 0; b < blocks; ++b) run_block(b);
    for (const NodeId fresh : fail_counts_) failed_count_ += fresh;
  }

  detail::GnpSampler sampler_;
  double churn_;
  double fail_prob_;
  std::function<double(std::uint32_t)> p_of_round_;
  StreamKey churn_key_;  ///< per-round sketch stream root
  StreamKey fail_key_;   ///< per-(round, block) failure stream root
  Rng churn_rng_;        ///< re-keyed from churn_key_ every begin_round
  ThreadPool* pool_ = nullptr;
  std::vector<NodeId> fail_counts_;  ///< per-block new failures, merged serially
  double log1m_churn_ = 0.0;
  double inv_log1m_fail_ = 0.0;
  std::uint64_t horizon_ = 0;
  std::uint32_t round_ = 0;
  std::uint32_t last_sweep_round_ = 0;
  std::size_t sketch_watermark_ = 0;

  detail::PairSketch sketch_;
  std::vector<char> marks_;
  std::vector<char> failed_;
  NodeId failed_count_ = 0;
  std::vector<NodeId> live_tx_;
  std::vector<PinnedTouch> pinned_;
  std::vector<PinnedEvent> pinned_events_;
};

}  // namespace radnet::sim
