#include "sim/engine.hpp"

#include <algorithm>

#include "support/require.hpp"
#include "support/thread_pool.hpp"

namespace radnet::sim {

namespace {

/// Receives the backend's per-receiver events and fans them out to the
/// ledger, the optional trace and the protocol. With an adversary active
/// (adv != nullptr) the sink is also the receive-side enforcement point:
/// ledger totals stay *channel-level* event counts (consistent with the
/// bulk folds, which cannot see radio state), while the protocol callback
/// is suppressed for noise (jammer senders) and dead radios, and rerouted
/// through on_delivered_corrupted for Byzantine senders.
struct EngineSink {
  Protocol& protocol;
  RunResult& result;
  RoundTrace* rt;
  Round round;
  const AdversaryState* adv = nullptr;

  void deliver(graph::NodeId receiver, graph::NodeId sender) {
    ++result.ledger.total_deliveries;
    if (rt != nullptr) rt->deliveries.push_back({receiver, sender});
    if (adv != nullptr) {
      if (adv->is_jammer(sender)) {
        // The unique transmitter was a jammer: the receiver heard a clean
        // frame of noise, not the message.
        ++result.adversary.jammed_deliveries;
        return;
      }
      if (!adv->can_hear(receiver)) {
        ++result.adversary.suppressed_receptions;
        return;
      }
      if (adv->is_byzantine(sender)) {
        ++result.adversary.corrupted_deliveries;
        protocol.on_delivered_corrupted(receiver, sender, round);
        return;
      }
    }
    protocol.on_delivered(receiver, sender, round);
  }

  void collide(graph::NodeId receiver) {
    ++result.ledger.total_collisions;
    if (rt != nullptr) rt->collisions.push_back(receiver);
    if (adv != nullptr && !adv->can_hear(receiver)) return;
    protocol.on_collision(receiver, round);
  }

  // Aggregate accounting for listeners the protocol declared non-attentive
  // (see Protocol::attentive_listeners): ledger totals only, no callbacks.
  // Backends may only use these when no trace is being recorded.
  void deliver_bulk(std::uint64_t count) {
    result.ledger.total_deliveries += count;
  }

  void collide_bulk(std::uint64_t count) {
    result.ledger.total_collisions += count;
  }
};

/// The shared round loop, statically specialised per topology backend (no
/// per-round virtual or std::function indirection on the hot path). The
/// backend yields each round's delivery outcomes; everything else — the
/// transmit decisions, energy ledger, trace, completion logic — is
/// backend-independent.
template <typename Topology>
RunResult run_loop(Topology& topo, Protocol& protocol, Rng protocol_rng,
                   const RunOptions& options) {
  const graph::NodeId n = topo.num_nodes();
  RADNET_REQUIRE(n >= 1, "cannot simulate an empty network");

  RunResult result;
  result.ledger.reset(n);
  protocol.reset(n, std::move(protocol_rng));

  // Adversary layer (sim/adversary.hpp): engine-side, so it composes with
  // every backend. Inactive specs cost one null check per event.
  AdversaryState adversary;
  adversary.reset(n, options.adversary, result.adversary);
  const AdversaryState* adv = adversary.active() ? &adversary : nullptr;
  if (adv != nullptr && !adversary.jammers().empty()) {
    // Half-duplex jammers transmit every round and can never receive:
    // completion means "every honest node holds a valid copy".
    protocol.set_goal_exclusions(adversary.jammers());
  }
  // Sharding backends fan each round sweep out over this pool (nullptr =
  // serial); results are thread-count-invariant by construction, so this
  // only picks a schedule.
  topo.set_parallelism(resolve_pool(options.threads));

  std::vector<graph::NodeId> transmitters;
  std::vector<char> is_tx(n, 0);
  // Jammer injection appends to the transmitter list every round; reserve
  // once so the round loop stays allocation-free (dynamics.cpp pattern).
  if (adv != nullptr) adversary.reserve_for(transmitters);

  // Block-mergeable collision accounting: when the protocol declared
  // on_collision a no-op and no trace wants the per-listener events,
  // sampling backends may fold collisions into bulk ledger counts (one
  // merge per shard block instead of one callback per listener).
  const bool collisions_inert =
      !options.record_trace && protocol.collisions_inert();

  if (protocol.is_complete()) {
    result.completed = true;
    result.completion_round = 0;
    return result;
  }

  for (Round r = 0; r < options.max_rounds; ++r) {
    protocol.begin_round(r);
    if (adv != nullptr) adversary.begin_round(r, result.adversary);

    // Phase A: collect this round's transmitters. All decisions are made
    // before any delivery, matching the synchronous model.
    transmitters.clear();
    const auto candidates = protocol.candidates();
    if (candidates.empty() &&
        (options.stop_on_empty_candidates ||
         (options.run_to_quiescence && result.completed)))
      break;
    if (!protocol.sample_transmitters(r, transmitters)) {
      for (const graph::NodeId v : candidates) {
        RADNET_CHECK(v < n, "protocol candidate out of range");
        if (protocol.wants_transmit(v, r)) transmitters.push_back(v);
      }
    }
    if (adv != nullptr) {
      // Drops transmissions by crashed/exhausted radios (the protocol's
      // decisions — and its RNG consumption — are untouched; only the
      // physics changes), records + budget-charges the survivors, then
      // injects the jammers as forced transmitters.
      adversary.apply(transmitters, is_tx, result.ledger, result.adversary);
    } else {
      for (const graph::NodeId u : transmitters) {
        RADNET_CHECK(u < n, "protocol transmitter out of range");
        result.ledger.record_transmission(u);
        is_tx[u] = 1;
      }
    }

    // Phase B/C: this round's topology decides who hears what; events fire
    // in ascending receiver order (see topology.hpp).
    topo.begin_round(r);
    RoundTrace* rt = nullptr;
    if (options.record_trace) {
      result.trace.rounds.push_back({});
      rt = &result.trace.rounds.back();
      rt->round = r;
      rt->transmitters = transmitters;
      std::sort(rt->transmitters.begin(), rt->transmitters.end());
    }
    EngineSink sink{protocol, result, rt, r, adv};
    // The attentive hint enables aggregate accounting in sampling backends;
    // a recorded trace needs every event, so the hint is dropped then.
    const std::optional<std::span<const graph::NodeId>> attentive =
        options.record_trace ? std::nullopt : protocol.attentive_listeners();
    topo.deliver({transmitters.data(), transmitters.size()}, is_tx,
                 options.half_duplex, options.delivery_path, attentive,
                 collisions_inert, sink);
    for (const graph::NodeId u : transmitters) is_tx[u] = 0;

    protocol.end_round(r);
    result.rounds_executed = r + 1;
    result.ledger.node_rounds =
        static_cast<std::uint64_t>(n) * result.rounds_executed;
    if (options.round_observer) options.round_observer(r);

    if (!result.completed && protocol.is_complete()) {
      result.completed = true;
      result.completion_round = r + 1;
      if (!options.run_to_quiescence) break;
    }
  }

  return result;
}

}  // namespace

RunResult Engine::run(const graph::Digraph& g, Protocol& protocol,
                      Rng protocol_rng, const RunOptions& options) {
  CsrTopology topo(g);
  return run_loop(topo, protocol, std::move(protocol_rng), options);
}

RunResult Engine::run(graph::TopologySequence& topology, Protocol& protocol,
                      Rng protocol_rng, const RunOptions& options) {
  DynamicCsrTopology topo(topology);
  return run_loop(topo, protocol, std::move(protocol_rng), options);
}

RunResult Engine::run(const ImplicitGnp& gnp, Protocol& protocol,
                      Rng protocol_rng, const RunOptions& options) {
  ImplicitGnpTopology topo(gnp);
  return run_loop(topo, protocol, std::move(protocol_rng), options);
}

RunResult Engine::run(const ImplicitDynamicGnp& gnp, Protocol& protocol,
                      Rng protocol_rng, const RunOptions& options) {
  ImplicitDynamicGnpTopology topo(gnp);
  return run_loop(topo, protocol, std::move(protocol_rng), options);
}

RunResult Engine::run(const ImplicitRgg& rgg, Protocol& protocol,
                      Rng protocol_rng, const RunOptions& options) {
  ImplicitRggTopology topo(rgg);
  return run_loop(topo, protocol, std::move(protocol_rng), options);
}

}  // namespace radnet::sim
