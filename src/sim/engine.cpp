#include "sim/engine.hpp"

#include <algorithm>
#include <functional>

#include "support/require.hpp"

namespace radnet::sim {

namespace {

/// The shared round loop. `graph_for` yields the topology in force during a
/// given round (constant for static runs). Node count must not change.
RunResult run_loop(graph::NodeId n,
                   const std::function<const graph::Digraph&(Round)>& graph_for,
                   Protocol& protocol, Rng protocol_rng,
                   const RunOptions& options) {
  RADNET_REQUIRE(n >= 1, "cannot simulate an empty network");

  RunResult result;
  result.ledger.reset(n);
  protocol.reset(n, std::move(protocol_rng));

  // Per-node scratch: number of transmissions heard this round, and the
  // sender when that number is exactly one. `touched` lists nodes whose
  // hit-counter is non-zero so clearing is proportional to activity.
  std::vector<std::uint32_t> hits(n, 0);
  std::vector<graph::NodeId> heard_from(n, 0);
  std::vector<graph::NodeId> touched;
  std::vector<graph::NodeId> transmitters;
  std::vector<char> is_tx(n, 0);

  if (protocol.is_complete()) {
    result.completed = true;
    result.completion_round = 0;
    return result;
  }

  for (Round r = 0; r < options.max_rounds; ++r) {
    protocol.begin_round(r);

    // Phase A: collect this round's transmitters. All decisions are made
    // before any delivery, matching the synchronous model.
    transmitters.clear();
    const auto candidates = protocol.candidates();
    if (candidates.empty() &&
        (options.stop_on_empty_candidates ||
         (options.run_to_quiescence && result.completed)))
      break;
    for (const graph::NodeId v : candidates) {
      RADNET_CHECK(v < n, "protocol candidate out of range");
      if (protocol.wants_transmit(v, r)) transmitters.push_back(v);
    }

    // Phase B: propagate over this round's topology.
    const graph::Digraph& g = graph_for(r);
    RADNET_CHECK(g.num_nodes() == n, "topology changed its node count");
    for (const graph::NodeId u : transmitters) {
      result.ledger.record_transmission(u);
      is_tx[u] = 1;
      for (const graph::NodeId w : g.out_neighbors(u)) {
        if (hits[w] == 0) {
          heard_from[w] = u;
          touched.push_back(w);
        }
        ++hits[w];
      }
    }

    // Phase C: deliveries and collisions. `touched` is filled in transmitter
    // adjacency order; callbacks must run in ascending receiver id for
    // determinism. For sparse rounds sort the touched list; for dense rounds
    // (more than ~1/8 of all nodes heard something) a linear scan over the
    // hit array is cheaper than the O(k log k) sort and yields the same
    // order.
    if (touched.size() > n / 8) {
      touched.clear();
      for (graph::NodeId w = 0; w < n; ++w)
        if (hits[w] != 0) touched.push_back(w);
    } else {
      std::sort(touched.begin(), touched.end());
    }
    RoundTrace* rt = nullptr;
    if (options.record_trace) {
      result.trace.rounds.push_back({});
      rt = &result.trace.rounds.back();
      rt->round = r;
      rt->transmitters = transmitters;
      std::sort(rt->transmitters.begin(), rt->transmitters.end());
    }
    for (const graph::NodeId w : touched) {
      if (options.half_duplex && is_tx[w]) {
        hits[w] = 0;
        continue;  // a transmitting radio hears nothing
      }
      if (hits[w] == 1) {
        ++result.ledger.total_deliveries;
        if (rt != nullptr) rt->deliveries.push_back({w, heard_from[w]});
        protocol.on_delivered(w, heard_from[w], r);
      } else {
        ++result.ledger.total_collisions;
        if (rt != nullptr) rt->collisions.push_back(w);
        protocol.on_collision(w, r);
      }
      hits[w] = 0;
    }
    touched.clear();
    for (const graph::NodeId u : transmitters) is_tx[u] = 0;

    protocol.end_round(r);
    result.rounds_executed = r + 1;
    result.ledger.node_rounds =
        static_cast<std::uint64_t>(n) * result.rounds_executed;
    if (options.round_observer) options.round_observer(r);

    if (!result.completed && protocol.is_complete()) {
      result.completed = true;
      result.completion_round = r + 1;
      if (!options.run_to_quiescence) break;
    }
  }

  return result;
}

}  // namespace

RunResult Engine::run(const graph::Digraph& g, Protocol& protocol,
                      Rng protocol_rng, const RunOptions& options) {
  return run_loop(
      g.num_nodes(), [&g](Round) -> const graph::Digraph& { return g; },
      protocol, std::move(protocol_rng), options);
}

RunResult Engine::run(graph::TopologySequence& topology, Protocol& protocol,
                      Rng protocol_rng, const RunOptions& options) {
  return run_loop(
      topology.num_nodes(),
      [&topology](Round r) -> const graph::Digraph& { return topology.at(r); },
      protocol, std::move(protocol_rng), options);
}

}  // namespace radnet::sim
