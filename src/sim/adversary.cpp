#include "sim/adversary.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "support/parse.hpp"
#include "support/require.hpp"

namespace radnet::sim {

namespace {

/// Splits on `sep`; an empty input yields no parts, a trailing separator
/// yields a trailing empty part (which the strict numeric parses then
/// reject by name — "recover@" style truncations must not pass silently).
std::vector<std::string_view> split_view(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  if (s.empty()) return parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

void parse_energy_budget(std::string_view text, std::string_view what,
                         AdversarySpec& spec) {
  const auto parts = split_view(text, ':');
  RADNET_REQUIRE(parts.size() >= 1 && parts.size() <= 3,
                 std::string(what) + " wants MEAN[:SPREAD[:silent|listen]]");
  spec.budget_mean = parse_double_in(
      parts[0], std::string(what) + " MEAN", 0.0,
      std::numeric_limits<double>::max());
  if (parts.size() >= 2)
    spec.budget_spread =
        parse_double_in(parts[1], std::string(what) + " SPREAD", 0.0, 1.0);
  if (parts.size() == 3) {
    RADNET_REQUIRE(parts[2] == "silent" || parts[2] == "listen",
                   std::string(what) + " mode must be 'silent' or 'listen'");
    spec.exhaust_mode = parts[2] == "silent"
                            ? AdversarySpec::ExhaustMode::kSilent
                            : AdversarySpec::ExhaustMode::kListenOnly;
  }
}

std::vector<FaultEvent> parse_fault_schedule(std::string_view text,
                                             std::string_view what) {
  std::vector<FaultEvent> schedule;
  for (const std::string_view entry : split_view(text, ',')) {
    const auto at = entry.find('@');
    RADNET_REQUIRE(at != std::string_view::npos,
                   std::string(what) + " entries look like crash@R[:F], got '" +
                       std::string(entry) + "'");
    const std::string_view kind = entry.substr(0, at);
    RADNET_REQUIRE(kind == "crash" || kind == "recover",
                   std::string(what) + " kinds are 'crash' and 'recover', "
                                       "got '" + std::string(kind) + "'");
    const auto parts = split_view(entry.substr(at + 1), ':');
    RADNET_REQUIRE(parts.size() >= 1 && parts.size() <= 2,
                   std::string(what) + " entries look like crash@R[:F], got '" +
                       std::string(entry) + "'");
    FaultEvent event;
    const std::uint64_t round =
        parse_u64_strict(parts[0], std::string(what) + " round");
    RADNET_REQUIRE(round <= std::numeric_limits<Round>::max(),
                   std::string(what) + " round is out of range");
    event.round = static_cast<Round>(round);
    event.kind = kind == "crash" ? FaultEvent::Kind::kCrash
                                 : FaultEvent::Kind::kRecover;
    event.fraction =
        parts.size() == 2
            ? parse_double_in(parts[1], std::string(what) + " fraction", 0.0,
                              1.0)
            : 1.0;
    schedule.push_back(event);
  }
  return schedule;
}

void AdversarySpec::validate() const {
  RADNET_REQUIRE(jammer_fraction >= 0.0 && jammer_fraction < 1.0,
                 "AdversarySpec.jammer_fraction must be in [0, 1)");
  RADNET_REQUIRE(byzantine_fraction >= 0.0 && byzantine_fraction < 1.0,
                 "AdversarySpec.byzantine_fraction must be in [0, 1)");
  RADNET_REQUIRE(jammer_fraction + byzantine_fraction <= 1.0,
                 "AdversarySpec role fractions must sum to at most 1");
  RADNET_REQUIRE(budget_mean >= 0.0, "AdversarySpec.budget_mean must be >= 0");
  RADNET_REQUIRE(budget_spread >= 0.0 && budget_spread <= 1.0,
                 "AdversarySpec.budget_spread must be in [0, 1]");
  Round prev = 0;
  for (const FaultEvent& ev : fault_schedule) {
    RADNET_REQUIRE(ev.fraction >= 0.0 && ev.fraction <= 1.0,
                   "FaultEvent.fraction must be in [0, 1]");
    RADNET_REQUIRE(ev.round >= prev,
                   "AdversarySpec.fault_schedule must be sorted by round");
    prev = ev.round;
  }
}

void AdversaryState::reset(graph::NodeId n, const AdversarySpec& spec,
                           AdversaryStats& stats) {
  spec.validate();
  n_ = n;
  active_ = spec.active();
  stats = AdversaryStats{};
  if (!active_) return;

  budget_active_ = spec.budget_mean > 0.0;
  mode_ = spec.exhaust_mode;
  key_ = StreamKey::from_rng(Rng(spec.seed));
  schedule_ = spec.fault_schedule;
  next_fault_ = 0;

  protected_.assign(n, 0);
  for (const graph::NodeId v : spec.protected_nodes) {
    RADNET_REQUIRE(v < n, "AdversarySpec.protected_nodes entry out of range");
    protected_[v] = 1;
  }

  // Role selection: one serial ascending pass keyed on the select lane, so
  // the role of node v is a pure function of (seed, v-prefix) — identical
  // across backends and thread counts. Roles are mutually exclusive.
  roles_.assign(n, Role::kHonest);
  jammers_.clear();
  const bool pick_roles =
      spec.jammer_fraction > 0.0 || spec.byzantine_fraction > 0.0;
  if (pick_roles) {
    Rng select = key_.fork(kSelectLane).make_rng();
    for (graph::NodeId v = 0; v < n; ++v) {
      const double u = select.next_double();
      if (protected_[v] != 0) continue;  // draw anyway: keeps v's role
                                         // independent of the protected set
      if (u < spec.jammer_fraction) {
        roles_[v] = Role::kJammer;
        jammers_.push_back(v);
        ++stats.jammer_count;
      } else if (u < spec.jammer_fraction + spec.byzantine_fraction) {
        roles_[v] = Role::kByzantine;
        ++stats.byzantine_count;
      }
    }
  }

  // Heterogeneous budgets: uniform around the mean, floored at one
  // transmission. Jammers hold budgets too — an exhausted jammer falls
  // silent, so budget scenarios bound the jamming a battery can buy.
  budget_.clear();
  if (budget_active_) {
    Rng draw = key_.fork(kBudgetLane).make_rng();
    budget_.resize(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      const double u = 2.0 * draw.next_double() - 1.0;  // [-1, 1)
      const double b = spec.budget_mean * (1.0 + spec.budget_spread * u);
      budget_[v] =
          static_cast<std::uint32_t>(std::max<long long>(1, std::llround(b)));
    }
  }

  down_.assign(n, 0);
}

void AdversaryState::begin_round(Round r, AdversaryStats& stats) {
  while (next_fault_ < schedule_.size() && schedule_[next_fault_].round == r) {
    const FaultEvent& ev = schedule_[next_fault_];
    // Keyed by event *index*: two events at the same round draw from
    // distinct streams, and the draw is independent of thread count (the
    // loop is serial engine-side anyway).
    Rng rng = key_.fork(kFaultLane).fork(next_fault_).make_rng();
    ++next_fault_;
    if (ev.kind == FaultEvent::Kind::kCrash) {
      for (graph::NodeId v = 0; v < n_; ++v) {
        const bool hit = rng.bernoulli(ev.fraction);
        if (!hit || protected_[v] != 0 || down_[v] != 0) continue;
        down_[v] = 1;
        ++stats.crashed_count;
      }
    } else {
      for (graph::NodeId v = 0; v < n_; ++v) {
        const bool hit = rng.bernoulli(ev.fraction);
        if (!hit || down_[v] == 0) continue;
        down_[v] = 0;
        --stats.crashed_count;
      }
    }
  }
}

void AdversaryState::charge(graph::NodeId u, AdversaryStats& stats) {
  if (!budget_active_) return;
  std::uint32_t& remaining = budget_[u];
  if (remaining == 0) return;
  if (--remaining == 0) ++stats.exhausted_count;
}

void AdversaryState::apply(std::vector<graph::NodeId>& transmitters,
                           std::vector<char>& is_tx, EnergyLedger& ledger,
                           AdversaryStats& stats) {
  // In-place two-pointer compaction: no scratch buffer, no allocation
  // (capacity covers the jammer append — see reserve_for).
  std::size_t kept = 0;
  for (const graph::NodeId u : transmitters) {
    RADNET_CHECK(u < n_, "protocol transmitter out of range");
    // A jammer is already saturating the channel; its protocol-level
    // transmission is subsumed by the jam appended below.
    if (roles_[u] == Role::kJammer) continue;
    if (down_[u] != 0 || (budget_active_ && budget_[u] == 0)) {
      // Crashed: power is off, nothing radiated, no energy drawn (contrast
      // fail_prob's dead-radio, which still spends). Exhausted: the battery
      // is empty, the attempt costs nothing and sends nothing.
      ++stats.blocked_tx;
      continue;
    }
    ledger.record_transmission(u);
    charge(u, stats);
    transmitters[kept++] = u;
    is_tx[u] = 1;
  }
  transmitters.resize(kept);
  // Jammer injection, ascending node order (deterministic; backends accept
  // any transmitter order). Jam energy is adversary energy: tracked in
  // stats, never in the protocol ledger the robustness curves compare.
  for (const graph::NodeId j : jammers_) {
    if (down_[j] != 0 || (budget_active_ && budget_[j] == 0)) continue;
    ++stats.jammer_tx;
    charge(j, stats);
    transmitters.push_back(j);
    is_tx[j] = 1;
  }
}

}  // namespace radnet::sim
