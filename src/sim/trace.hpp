// Per-round execution traces.
//
// When enabled, the engine records who transmitted, who received from whom,
// and where collisions happened in every round. Traces power (a) the
// Phase-1 growth experiment (Lemma 2.3/2.4 track |U_t| round by round),
// (b) causality checking in the property tests (every delivery must have a
// unique transmitting in-neighbour that round), and (c) debugging output in
// the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace radnet::sim {

struct Delivery {
  graph::NodeId receiver;
  graph::NodeId sender;

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

struct RoundTrace {
  std::uint32_t round = 0;
  std::vector<graph::NodeId> transmitters;   // ascending node id
  std::vector<Delivery> deliveries;          // ascending receiver id
  std::vector<graph::NodeId> collisions;     // receivers that heard noise

  friend bool operator==(const RoundTrace&, const RoundTrace&) = default;
};

struct Trace {
  std::vector<RoundTrace> rounds;

  void clear() { rounds.clear(); }
  [[nodiscard]] bool empty() const { return rounds.empty(); }

  /// Compact multi-line rendering for small runs (examples / debugging).
  [[nodiscard]] std::string summary(std::size_t max_rounds = 32) const;

  friend bool operator==(const Trace&, const Trace&) = default;
};

}  // namespace radnet::sim
