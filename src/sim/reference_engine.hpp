// A deliberately naive engine used as an oracle in the property tests.
//
// It recomputes each round's deliveries from first principles: for every
// node v it scans v's in-neighbour list and counts members of the transmitter
// set, then applies the exactly-one rule. This is O(n + sum of in-degrees)
// per round — much slower than Engine — but its correctness is obvious from
// the model statement, so agreement between the two engines on the same
// (graph, protocol, seed) triple is strong evidence the optimised engine
// implements the paper's semantics. It consumes randomness in exactly the
// same order as Engine (candidates() order), so runs are comparable
// bit-for-bit.
#pragma once

#include "sim/engine.hpp"

namespace radnet::sim {

class ReferenceEngine {
 public:
  [[nodiscard]] RunResult run(const graph::Digraph& g, Protocol& protocol,
                              Rng protocol_rng, const RunOptions& options = {});
};

}  // namespace radnet::sim
