// The synchronous radio-network simulation engine.
//
// Implements the paper's round semantics exactly (Section 1.2):
//   1. Every candidate node decides independently whether to transmit.
//   2. A node receives iff *exactly one* of its in-neighbours transmitted;
//      with two or more the messages collide and nothing is received.
//   3. Edges are directed: u -> v means v hears u, not necessarily
//      vice versa (asymmetric communication ranges).
//
// The round loop is statically specialised per topology backend (see
// sim/topology.hpp): explicit CSR graphs cost O(sum of out-degrees of this
// round's transmitters) — or O(receivers) via in-neighbour bitset scans in
// very dense rounds — while the implicit G(n,p) backend costs O(n) per
// round (O(expected hits) when sparse) with no materialised graph at all.
// The engine is a pure function of (topology, protocol state, options);
// reproducibility is tested against the naive reference engine in
// reference_engine.hpp and across delivery paths by the parity tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "graph/digraph.hpp"
#include "graph/dynamics.hpp"
#include "sim/adversary.hpp"
#include "sim/energy.hpp"
#include "sim/protocol.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"

namespace radnet::sim {

struct RunOptions {
  /// Hard stop after this many rounds even if the protocol is incomplete.
  Round max_rounds = 1u << 20;
  /// Half-duplex radios: a node that transmits in a round cannot receive in
  /// that round (the standard radio-network reading; the paper's broadcast
  /// algorithms are insensitive to this because transmitters are already
  /// informed, but gossip message joining is not).
  bool half_duplex = true;
  /// Stop early once candidates() is empty and the protocol is incomplete —
  /// the execution has provably stalled (used by bounded-activity broadcast
  /// protocols whose nodes all went passive).
  bool stop_on_empty_candidates = false;
  /// Keep simulating after the protocol's goal is reached, until every node
  /// has gone passive (candidates() empty) or max_rounds. Nodes do not know
  /// the broadcast finished — they keep spending energy until their own
  /// activity windows expire — so this is the honest energy accounting the
  /// paper's per-node transmission bounds refer to. completion_round still
  /// records the first round at which the goal held.
  bool run_to_quiescence = false;
  /// Record a full per-round trace (costly; for tests/examples/E2).
  bool record_trace = false;
  /// Delivery strategy for explicit-CSR topologies. kAuto picks per round;
  /// the forced values exist for path-parity tests and microbenchmarks.
  /// Ignored by the implicit backend.
  DeliveryPath delivery_path = DeliveryPath::kAuto;
  /// Within-trial parallelism for the backends' sharded round phases —
  /// the listener-block sweeps, the dynamic backend's sender-/group-
  /// chunked sketch phases and the RGG transmitter-chunked bucketing:
  /// 1 (default) = serial, 0 = every core (the shared global_pool(), sized
  /// by RADNET_THREADS when set), k > 1 = exactly k pool threads. Purely a
  /// scheduling knob — sampling backends counter-key every RNG draw by
  /// (round, block/chunk), and explicit-CSR delivery and RGG bucketing
  /// involve no RNG at all, so the RunResult is bit-identical for every
  /// value (asserted through tests/sim/shard_invariance.hpp by
  /// tests/sim/thread_invariance_test.cpp). The Monte-Carlo harness
  /// overrides the default with 0 when there are fewer trials than pool
  /// threads (trial- vs round-parallelism).
  unsigned threads = 1;
  /// Invoked after every round with the round just executed; used by the
  /// Phase-1 growth experiment to snapshot protocol counters.
  std::function<void(Round)> round_observer;
  /// Adversary / fault scenario (sim/adversary.hpp): jammers, Byzantine
  /// relays, energy budgets and crash schedules, composed engine-side with
  /// every backend. Default-constructed = no adversary, zero hot-path cost.
  /// All adversarial randomness is keyed on AdversarySpec::seed, so
  /// adversarial runs keep the thread-count bit-identity contract.
  AdversarySpec adversary;
};

struct RunResult {
  /// Protocol reported is_complete() before max_rounds ran out.
  bool completed = false;
  /// Number of rounds actually executed.
  Round rounds_executed = 0;
  /// Round (1-based count) at whose end the protocol became complete;
  /// meaningful only when completed.
  Round completion_round = 0;
  EnergyLedger ledger;
  /// Adversary counters (zeroed when RunOptions::adversary is inactive).
  AdversaryStats adversary;
  Trace trace;  ///< empty unless RunOptions::record_trace

  /// Whole-result bit-identity — the thread-count-invariance contract in
  /// one comparison (used by the invariance tests and the scaling
  /// benches; stays exhaustive as fields are added).
  friend bool operator==(const RunResult&, const RunResult&) = default;
};

class Engine {
 public:
  /// Runs `protocol` on the static topology `g`. The engine calls
  /// protocol.reset(g.num_nodes(), rng) itself so a single protocol object
  /// can be reused across Monte-Carlo trials.
  [[nodiscard]] RunResult run(const graph::Digraph& g, Protocol& protocol,
                              Rng protocol_rng, const RunOptions& options = {});

  /// Runs `protocol` over a *changing* topology (mobility / link churn —
  /// the paper's motivating setting): round r uses topology.at(r). The node
  /// count is fixed; links change between rounds. Protocols need no changes:
  /// obliviousness means they never saw the topology anyway.
  [[nodiscard]] RunResult run(graph::TopologySequence& topology,
                              Protocol& protocol, Rng protocol_rng,
                              const RunOptions& options = {});

  /// Runs `protocol` on an implicit directed G(n,p): delivery outcomes are
  /// sampled per round from the transmitter count and the graph is never
  /// materialised. Exactly equivalent to a fixed G(n,p) whenever each node
  /// transmits at most once (see topology.hpp for the general conditions).
  /// The spec's rng is copied, so the same spec replays identically.
  [[nodiscard]] RunResult run(const ImplicitGnp& gnp, Protocol& protocol,
                              Rng protocol_rng, const RunOptions& options = {});

  /// Runs `protocol` on the implicit *dynamic* G(n,p) family — link churn,
  /// node failures and density schedules without a materialised graph
  /// (graph-free counterpart of ChurnGnp; see topology.hpp for which
  /// regimes are exact vs modelled). The spec's rng is copied, so the same
  /// spec replays identically.
  [[nodiscard]] RunResult run(const ImplicitDynamicGnp& gnp,
                              Protocol& protocol, Rng protocol_rng,
                              const RunOptions& options = {});

  /// Runs `protocol` on the implicit mobility RGG — random-walk mobility
  /// over a random geometric graph without a materialised graph (graph-free
  /// counterpart of graph::MobilityRgg; exact in distribution for every
  /// protocol — see backends/implicit_rgg.hpp). The spec's rng is copied,
  /// so the same spec replays identically.
  [[nodiscard]] RunResult run(const ImplicitRgg& rgg, Protocol& protocol,
                              Rng protocol_rng, const RunOptions& options = {});
};

}  // namespace radnet::sim
