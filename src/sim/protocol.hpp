// The protocol interface every communication algorithm implements.
//
// The paper's model (Section 1.2) is a synchronous radio network: in each
// round every node independently decides whether to transmit; a node
// *receives* a message iff exactly one of its in-neighbours transmitted
// (two or more collide and nothing is heard; the node cannot distinguish
// collision from silence). Algorithms are *oblivious*: every node runs the
// same code, knowing only n (and, for Section 4, the diameter D) — never the
// topology.
//
// The engine/protocol split enforces that obliviousness mechanically: the
// protocol never sees the graph's edges, only per-node callbacks
// (`wants_transmit`, `on_delivered`). `reset` receives the node count and a
// private Rng; the engine owns the topology and computes who hears whom.
//
// Exactness contract of the optional hints: every hook below that lets a
// backend skip work (`sample_transmitters`, `attentive_listeners`,
// `collisions_inert`) must leave the executed *law* unchanged — the
// transmit-set distribution, the ledger totals' distribution and every
// callback that can still change protocol state are identical with or
// without the hint; only randomness consumption, callback granularity and
// per-event order (see each hook's comment) may differ. Backends fold
// hinted-away events into exact per-block bulk ledger counts through the
// sharded-sweep layer (sim/sharding.hpp), whose block-merge ordering
// invariant keeps all protocol callbacks single-threaded and in ascending
// listener order; trace-recording runs drop the hints entirely so a trace
// is always complete. Sampling backends key their draws by
// StreamKey(round, block) (support/rng.hpp), so none of this depends on
// thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace radnet::sim {

using graph::NodeId;
using Round = std::uint32_t;

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Prepares per-node state for a fresh execution on `num_nodes` nodes.
  /// `rng` is the protocol's private randomness for the whole run.
  virtual void reset(NodeId num_nodes, Rng rng) = 0;

  /// Start-of-round hook, called once per round before any transmit query.
  /// Protocols that share a global coin across nodes (Algorithm 3 draws the
  /// round's sequence value I_r here) override this.
  virtual void begin_round(Round r) { (void)r; }

  /// The set of nodes that could possibly transmit this round. The engine
  /// queries wants_transmit exactly for these, in the order given, which
  /// fixes the randomness consumption order and hence makes runs
  /// reproducible. The span must stay valid until end_round returns.
  [[nodiscard]] virtual std::span<const NodeId> candidates() const = 0;

  /// Whether node v transmits in round r. Called once per candidate per
  /// round, in candidates() order.
  [[nodiscard]] virtual bool wants_transmit(NodeId v, Round r) = 0;

  /// Optional bulk transmitter selection for rounds whose rule is "each
  /// candidate transmits independently with a common probability tau":
  /// querying wants_transmit per candidate costs O(|candidates|) coin flips,
  /// while geometric skip-sampling the transmitter subset costs
  /// O(|transmitters|) — the engine hot-loop win that makes sparse Phase-3
  /// tails cheap. Overrides fill `out` (passed in empty) with the
  /// transmitting nodes in candidates() order, apply exactly the state
  /// updates wants_transmit would have applied to those nodes, and return
  /// true; the default returns false and the engine falls back to
  /// per-candidate wants_transmit. The sampled transmit-set law must equal
  /// the per-candidate one (randomness *consumption* may differ). Both
  /// Engine and ReferenceEngine honour the hook, so cross-engine runs stay
  /// comparable.
  [[nodiscard]] virtual bool sample_transmitters(Round r,
                                                 std::vector<NodeId>& out) {
    (void)r;
    (void)out;
    return false;
  }

  /// Optional: the listeners whose delivery/collision callbacks can still
  /// change protocol state. A protocol where events at some nodes are
  /// provably no-ops (broadcast: already-informed nodes ignore further
  /// deliveries, and collisions are ignored everywhere) can expose the
  /// complement here; sampling backends (the implicit G(n,p) topology) then
  /// enumerate per-listener events only for these nodes and account for the
  /// rest in aggregate — ledger totals stay exactly distributed, but the
  /// skipped listeners receive no callbacks and per-event order follows the
  /// span's order rather than ascending node id. Every backend family
  /// (explicit CSR included) additionally folds deliveries landing outside
  /// the hint into exact per-block bulk ledger counts during swept rounds,
  /// skipping those no-op callbacks. std::nullopt (the default) means every
  /// listener matters. The span must stay valid and unchanged until
  /// end_round returns; trace-recording runs ignore the hint entirely.
  [[nodiscard]] virtual std::optional<std::span<const NodeId>>
  attentive_listeners() const {
    return std::nullopt;
  }

  /// Node `receiver` heard exactly one transmitter, `sender`, in round r.
  virtual void on_delivered(NodeId receiver, NodeId sender, Round r) = 0;

  /// Adversarial delivery (sim/adversary.hpp): like on_delivered, but the
  /// adversary layer flagged `sender` as a Byzantine relay, so the copy
  /// that arrived is corrupted. Nodes cannot authenticate messages, so the
  /// receiver's *behaviour* must match a genuine delivery exactly — only
  /// the omniscient provenance bookkeeping may differ. Provenance-tracking
  /// protocols (BroadcastState-based: Algorithm 1, the gossip marginal)
  /// override this to mark the receiver's copy invalid; the copy's
  /// invalidity then propagates along every further relay, and is_complete
  /// counts only valid copies. The default forwards to on_delivered: a
  /// protocol without provenance treats the corrupted copy as genuine, so
  /// Byzantine runs of such a protocol measure spread, not validity
  /// (documented per protocol in README's adversary matrix).
  virtual void on_delivered_corrupted(NodeId receiver, NodeId sender,
                                      Round r) {
    on_delivered(receiver, sender, r);
  }

  /// Two or more in-neighbours of `receiver` transmitted in round r. In the
  /// paper's model nodes cannot detect collisions, so the default ignores
  /// it; the engine still counts collisions for diagnostics.
  virtual void on_collision(NodeId receiver, Round r) {
    (void)receiver;
    (void)r;
  }

  /// Declares that on_collision is a no-op for this protocol, so backends
  /// may fold collision events into exact bulk ledger counts instead of
  /// per-receiver callbacks — the block-mergeable sink aggregation the
  /// sharded sweeps use to keep their serial merge O(deliveries) rather
  /// than O(all events). The paper's nodes cannot detect collisions, so
  /// this is true for every model-faithful protocol; the conservative
  /// default is false for the sake of diagnostic probes that do override
  /// on_collision (e.g. the test protocols). Trace-recording runs always
  /// get per-event collisions regardless.
  [[nodiscard]] virtual bool collisions_inert() const { return false; }

  /// End-of-round hook, called after all deliveries of round r.
  virtual void end_round(Round r) { (void)r; }

  /// Whether the protocol's goal is reached (all nodes informed for
  /// broadcast; all rumors everywhere for gossip). The engine checks this
  /// after every round and stops early. This is an omniscient-observer
  /// predicate used for measurement only — the nodes themselves never see it.
  [[nodiscard]] virtual bool is_complete() const = 0;

  /// Measurement-side concession for adversarial runs: the engine declares
  /// nodes whose copies can never count toward the goal (jammers — always
  /// transmitting, hence never receiving under half-duplex). Called at most
  /// once per run, after reset and before the first round. Like
  /// is_complete, this is omniscient measurement only — the nodes never
  /// see it, so obliviousness is untouched. The default ignores it: the
  /// goal then keeps requiring all n nodes and a jammed run simply never
  /// completes (use fixed horizons and stranded counts instead).
  virtual void set_goal_exclusions(std::span<const NodeId> nodes) {
    (void)nodes;
  }

  /// Omniscient robustness metric: how many in-goal nodes do not yet hold a
  /// valid copy of the goal content. nullopt (the default) means the
  /// protocol does not track a single-content goal (e.g. full n-rumor
  /// gossip). Used by the robustness benches' stranded-fraction curves.
  [[nodiscard]] virtual std::optional<NodeId> stranded_count() const {
    return std::nullopt;
  }

  /// Display name used in result tables.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace radnet::sim
