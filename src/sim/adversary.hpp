// Adversary & fault-injection layer.
//
// The paper's model assumes honest, identical, always-listening radios; the
// robustness experiments (ROADMAP: "adversarial and heterogeneous radio
// scenarios") drop that assumption. This layer composes four adversarial
// channels with *every* backend family without touching any backend's
// delivery code — the engine applies it around the shared round loop, at
// the only two places an adversary can act in the synchronous radio model:
// who transmits, and who hears.
//
//   Jammers        A fixed pseudo-random node subset transmits every round,
//                  forcing collisions in its whole neighbourhood. The engine
//                  injects jammers into the round's transmitter set, so the
//                  backends need no changes: on the mobility RGG the jammed
//                  region is pure geometry (exact for every protocol); on
//                  explicit CSR the jam travels the materialised edges
//                  (exact); on the implicit samplers a jammer transmits in
//                  many rounds, so its pairs are re-examined and resampled —
//                  the memoryless (churn = 1) reading of its links, exactly
//                  matched by an explicit ChurnGnp(churn = 1) oracle
//                  (asserted by tests/sim/adversary_topology_equivalence).
//                  A jammer's transmissions carry no rumor: a listener whose
//                  unique transmitter was a jammer heard noise, not the
//                  message (the engine suppresses the protocol callback).
//                  Under half-duplex a transmitting jammer never receives,
//                  so jammers can never be informed — the engine therefore
//                  reports them to Protocol::set_goal_exclusions so
//                  completion means "every honest node holds a valid copy".
//
//   Byzantine      Protocol-following relays that corrupt what they forward:
//   relays         a delivery whose sender is Byzantine reaches the receiver
//                  as a plausible-looking but invalid copy (routed through
//                  Protocol::on_delivered_corrupted). Provenance-tracking
//                  protocols (BroadcastState-based) record one validity bit
//                  per copy and propagate it on every relay, so completion
//                  counts only valid copies; a node first informed by a
//                  corrupted copy believes it is informed, stops listening,
//                  and relays the corruption onward — the honest model of a
//                  node that cannot authenticate messages.
//
//   Energy         Per-node transmission budgets from a heterogeneity
//   budgets        distribution (uniform around budget_mean). Each recorded
//                  transmission (and each jam) spends one unit, charged in
//                  lockstep with the EnergyLedger; an exhausted node
//                  degrades to `exhaust_mode`: listen-only (receives but
//                  never transmits again) or silent (radio fully dead) —
//                  a failure channel alongside ImplicitDynamicGnp::fail_prob.
//
//   Fault          Deterministic crash/recover events at scheduled rounds:
//   schedule       each event flips every eligible node independently with
//                  the event's probability. A crashed node neither transmits
//                  nor hears (its protocol state keeps evolving — the node
//                  "runs on" with an unpowered radio, mirroring fail_prob's
//                  dead-radio semantics) until a recover event revives it.
//                  Unlike fail_prob, a crashed node spends no ledger energy:
//                  crash models power loss, not RF failure.
//
// Determinism: every adversarial draw is keyed on a StreamKey derived from
// AdversarySpec::seed — role selection, budgets and fault events are pure
// functions of (seed, lane, event) and are applied serially by the engine,
// so adversarial runs stay bit-identical at any thread count (asserted by
// tests/sim/thread_invariance_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "sim/energy.hpp"
#include "support/rng.hpp"

namespace radnet::sim {

using Round = std::uint32_t;  // matches sim/protocol.hpp

/// One entry of the deterministic fault-injection schedule, applied at the
/// *start* of `round` (before transmit decisions).
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,   ///< each eligible (up, unprotected) node crashes w.p. fraction
    kRecover  ///< each crashed node recovers w.p. fraction
  };
  Round round = 0;
  Kind kind = Kind::kCrash;
  double fraction = 1.0;  ///< per-node flip probability in [0, 1]

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Declarative adversary scenario, plumbed through RunOptions (and thus
/// Engine::run, McSpec and radnet_cli). Default-constructed = no adversary;
/// the engine's hot path is untouched unless active().
struct AdversarySpec {
  /// Fraction of nodes that are jammers (transmit every round). Roles are
  /// mutually exclusive: each unprotected node is a jammer w.p.
  /// jammer_fraction, else Byzantine w.p. byzantine_fraction.
  double jammer_fraction = 0.0;
  /// Fraction of nodes that are Byzantine relays (forward corrupted copies).
  double byzantine_fraction = 0.0;
  /// Mean per-node transmission budget; 0 disables budgets. Node budgets are
  /// drawn uniformly from [mean*(1-spread), mean*(1+spread)], rounded,
  /// floored at 1 transmission.
  double budget_mean = 0.0;
  /// Heterogeneity half-width as a fraction of the mean, in [0, 1].
  double budget_spread = 0.0;
  /// What a budget-exhausted node degrades to.
  enum class ExhaustMode : std::uint8_t {
    kListenOnly,  ///< never transmits again, still hears
    kSilent       ///< radio fully dead: neither transmits nor hears
  };
  ExhaustMode exhaust_mode = ExhaustMode::kListenOnly;
  /// Crash/recover schedule; rounds must be non-decreasing.
  std::vector<FaultEvent> fault_schedule;
  /// Nodes that are never jammers, Byzantine or crashed — typically the
  /// broadcast source, so the attacked quantity is the *spread*, not the
  /// existence, of the rumor.
  std::vector<graph::NodeId> protected_nodes;
  /// Root of all adversarial randomness (role selection, budgets, faults).
  /// The Monte-Carlo harness re-keys this per trial from (seed, trial, 2).
  std::uint64_t seed = 0xadd5ce7a11ull;

  /// True iff any adversarial channel is configured.
  [[nodiscard]] bool active() const noexcept {
    return jammer_fraction > 0.0 || byzantine_fraction > 0.0 ||
           budget_mean > 0.0 || !fault_schedule.empty();
  }

  /// Rejects contradictory or out-of-range specs (jammer fraction >= 1,
  /// role fractions summing past 1, unsorted schedules...) with a clear
  /// std::invalid_argument. Called by the engine and by McSpec validation.
  void validate() const;
};

/// Parses the textual "MEAN[:SPREAD[:silent|listen]]" energy-budget form
/// shared by radnet_cli's --energy-budget flag and radnet_batch's
/// energy-budget spec field into `spec`'s budget fields. Strict: every
/// numeric component must parse completely (no trailing garbage, no
/// negatives) or the whole parse throws std::invalid_argument naming
/// `what` (the flag or spec field the text came from).
void parse_energy_budget(std::string_view text, std::string_view what,
                         AdversarySpec& spec);

/// Parses the "crash@R[:F],recover@R[:F],..." fault-schedule form (same
/// two call sites). Strict like parse_energy_budget; the returned schedule
/// still goes through AdversarySpec::validate() for the non-decreasing-
/// rounds and fraction-range checks.
[[nodiscard]] std::vector<FaultEvent> parse_fault_schedule(
    std::string_view text, std::string_view what);

/// Per-run adversary counters, merged into RunResult (and therefore into
/// the bit-identity contract: RunResult::operator== stays exhaustive).
struct AdversaryStats {
  graph::NodeId jammer_count = 0;     ///< nodes selected as jammers
  graph::NodeId byzantine_count = 0;  ///< nodes selected as Byzantine relays
  graph::NodeId exhausted_count = 0;  ///< nodes whose budget hit zero
  graph::NodeId crashed_count = 0;    ///< nodes down when the run ended
  std::uint64_t jammer_tx = 0;        ///< jam transmissions (not in the ledger)
  std::uint64_t blocked_tx = 0;       ///< protocol tx attempts by down/exhausted nodes
  std::uint64_t jammed_deliveries = 0;    ///< unique-transmitter receptions that were noise
  std::uint64_t corrupted_deliveries = 0; ///< deliveries routed as corrupted
  std::uint64_t suppressed_receptions = 0;  ///< deliveries to radios that were down

  friend bool operator==(const AdversaryStats&, const AdversaryStats&) = default;
};

/// Engine-side runtime of an AdversarySpec: node roles, budgets and crash
/// state, plus the per-round transmitter rewrite. All methods are called
/// from the engine's serial round loop; none allocate after reset()
/// (asserted by tests/sim/adversary_test.cpp), mirroring the reserve-once
/// pattern of graph/dynamics.cpp.
class AdversaryState {
 public:
  /// Draws roles, budgets and the protected set for n nodes; resets all
  /// counters in `stats`. Validates the spec.
  void reset(graph::NodeId n, const AdversarySpec& spec, AdversaryStats& stats);

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Jammer node ids in ascending order — what the engine reports to
  /// Protocol::set_goal_exclusions.
  [[nodiscard]] std::span<const graph::NodeId> jammers() const noexcept {
    return {jammers_.data(), jammers_.size()};
  }

  [[nodiscard]] bool is_jammer(graph::NodeId v) const {
    return roles_[v] == Role::kJammer;
  }
  [[nodiscard]] bool is_byzantine(graph::NodeId v) const {
    return roles_[v] == Role::kByzantine;
  }
  /// Whether v's radio can receive this round (not crashed, not
  /// silent-exhausted). Jammers need no special case here: while jamming
  /// they are transmitters, and half-duplex already blocks their reception.
  [[nodiscard]] bool can_hear(graph::NodeId v) const {
    if (down_[v] != 0) return false;
    return !budget_active_ || budget_[v] > 0 ||
           mode_ == AdversarySpec::ExhaustMode::kListenOnly;
  }

  /// Applies fault-schedule events that fire at round r.
  void begin_round(Round r, AdversaryStats& stats);

  /// Rewrites the round's transmitter set in place: drops transmissions by
  /// crashed/exhausted nodes (unrecorded — no energy was spent), records and
  /// budget-charges the surviving protocol transmissions, then appends the
  /// live jammers (charged against their own budgets, counted in stats
  /// rather than the protocol ledger). Sets is_tx for every surviving
  /// transmitter; allocation-free given capacity >= n (see reserve_for).
  void apply(std::vector<graph::NodeId>& transmitters, std::vector<char>& is_tx,
             EnergyLedger& ledger, AdversaryStats& stats);

  /// Reserves `transmitters` so apply() never reallocates (<= n entries).
  void reserve_for(std::vector<graph::NodeId>& transmitters) const {
    transmitters.reserve(n_);
  }

 private:
  enum class Role : std::uint8_t { kHonest, kJammer, kByzantine };

  // Reserved StreamKey lanes (>= 2^32, the repo-wide convention keeping
  // reserved lanes clear of per-round counters).
  static constexpr std::uint64_t kSelectLane = 0x1'0000'0011ull;
  static constexpr std::uint64_t kBudgetLane = 0x1'0000'0012ull;
  static constexpr std::uint64_t kFaultLane = 0x1'0000'0013ull;

  /// Spends one budget unit for a transmission by u (no-op without budgets).
  void charge(graph::NodeId u, AdversaryStats& stats);

  graph::NodeId n_ = 0;
  bool active_ = false;
  bool budget_active_ = false;
  AdversarySpec::ExhaustMode mode_ = AdversarySpec::ExhaustMode::kListenOnly;
  StreamKey key_;
  std::vector<Role> roles_;
  std::vector<std::uint8_t> protected_;
  std::vector<std::uint32_t> budget_;  ///< remaining transmissions
  std::vector<std::uint8_t> down_;             ///< crashed flags
  std::vector<graph::NodeId> jammers_;
  std::vector<FaultEvent> schedule_;
  std::size_t next_fault_ = 0;
};

}  // namespace radnet::sim
