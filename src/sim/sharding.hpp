// The shared sharded-sweep layer: everything a topology backend needs to
// decompose one round's delivery work into contiguous listener blocks and
// replay the result into the engine sink exactly as a serial sweep would
// have produced it.
//
// Every backend family shards the same way:
//
//   1. The listener range [0, n) splits into contiguous blocks. Sampling
//      backends use the fixed kShardBlockSize — the block decomposition is
//      part of their randomness contract (every RNG draw is keyed by
//      (round, block), see support/rng.hpp) — while the explicit CSR
//      backends, which involve no RNG at all, size blocks adaptively from
//      the pool width (csr_block_shift) because their output is provably
//      independent of the block granularity.
//   2. Blocks execute on the thread pool (or serially — same bits either
//      way), each emitting its events into a private ShardBuffer through a
//      BufferEmitter; a serial schedule uses a DirectEmitter that streams
//      straight to the sink instead, with zero buffering.
//   3. The buffers merge serially in ascending block order
//      (merge_shard_buffers), so the engine sink — and therefore the
//      protocol, trace and any resolution-recording hook — observes events
//      in ascending listener order on a single thread.
//
// The three invariants every backend built on this layer upholds:
//
//   * Exactness contract — sharding never changes the sampled law. For
//     sampling backends the per-listener (and per-pair, per-step) laws are
//     independent across listeners, so per-block streams sample the same
//     joint distribution as one sequential stream; for RNG-free backends
//     (CSR delivery, the implicit-RGG geometry sweep) the block outputs
//     are pure functions of shared read-only state. Either way, the
//     merged output *is* the serial output, not an approximation of it.
//   * StreamKey keying scheme (support/rng.hpp) — a sampling backend
//     derives every draw from root.fork(round).fork(block) (plus reserved
//     lanes >= 2^32 for serial side-streams, which round counters can
//     never collide with). A draw is a pure function of (seed, round,
//     block) — never of thread schedule, execution order, or what other
//     blocks drew — which is what makes the sweeps bit-identical at any
//     thread count. The fixed kShardBlockSize is part of this contract.
//   * Block-merge ordering invariant — ShardBuffers merge serially in
//     ascending block order, and blocks emit in ascending listener order
//     internally, so the engine sink (protocol, trace, ledger, any Record
//     hook) observes events in ascending listener order on one thread,
//     exactly as a serial sweep would have delivered them. Bulk counts
//     are order-free by definition and flush once per block.
//
// Per-chunk merge contract (the generalisation the non-listener phases
// use): a phase whose natural work unit is not a listener block — the
// dynamic backend's sketch phases decompose per *sender* chunk (gather)
// and per pinned-listener-*group* chunk (classify), the RGG bucketing per
// *transmitter* chunk — shards into fixed-width chunks, gives each chunk
// either its own (round, chunk)-keyed stream (sketch phases) or no RNG at
// all (bucketing), accumulates all shared-state effects in per-chunk
// scratch, and commits them in one serial merge in ascending chunk order.
// Because chunks cover the input in order, the merged effect sequence —
// sketch frees and inserts, pinned events, per-cell bucket segments — is
// exactly what a serial walk of the same chunks produces, so output stays
// bit-identical at any thread count; where a phase draws no RNG (the
// bucketing counting sort) it is additionally chunk-*granularity*
// independent, which the bucketing oracle test exercises. run_chunked()
// below is the shared fan-out.
//
// Bulk ledger accounting: two classes of per-listener events can collapse
// into exact per-block *counts* instead of buffered events, shrinking the
// serial merge to O(attentive deliveries):
//   * collisions, when the protocol declared Protocol::collisions_inert —
//     ShardBuffer::collide_count, flushed as sink.collide_bulk;
//   * deliveries landing on listeners *outside* the round's
//     Protocol::attentive_listeners hint (their on_delivered is a declared
//     no-op) — ShardBuffer::deliver_count, flushed as sink.deliver_bulk.
// Both are engaged only when no trace is recorded (the engine drops the
// hints then), ledger totals are exact either way, and the AttentiveFlags
// membership mask below gives emitters the O(1) attentive test.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace radnet {
class ThreadPool;
}

namespace radnet::sim {

using graph::NodeId;

/// How an explicit-CSR backend turns the round's transmitter set into
/// receiver events. kAuto picks per round; the forced values exist for the
/// path-parity tests and for benchmarking the individual strategies.
/// Sampling backends accept and ignore it (part of the shared deliver()
/// contract every backend implements).
enum class DeliveryPath : std::uint8_t {
  kAuto,            ///< heuristic choice per round (default)
  kSortedTouch,     ///< per-edge hit counters, sort the touched list
  kLinearScan,      ///< per-edge hit counters, linear sweep of the hit array
  kInNeighborScan,  ///< per-receiver in-neighbour scan vs a transmitter bitset
};

namespace detail {

/// Listeners per shard block for the *sampling* backends. Fixed — part of
/// their randomness contract: results depend on the block decomposition,
/// never on thread count.
inline constexpr NodeId kShardBlockSize = 1u << 16;

/// Number of blocks covering [0, n) at `block_size` listeners per block.
[[nodiscard]] inline std::uint64_t block_count(std::uint64_t n,
                                               NodeId block_size) {
  return (n + block_size - 1) / block_size;
}

/// log2 of the listener-block size the explicit CSR backends use at the
/// given parallel width (pool workers + the calling thread). CSR delivery
/// draws no randomness, so its output is independent of the block
/// granularity; blocks shrink (down to 2^8) until the pool has ~4 blocks
/// per thread to balance, and never exceed the sampling backends' 2^16.
[[nodiscard]] unsigned csr_block_shift(NodeId n, unsigned parallelism);

/// The shared chunk fan-out of the per-chunk merge contract (file comment):
/// runs body(c) for every chunk in [0, chunks), on the pool when one is
/// given and there is more than one chunk, inline in ascending order
/// otherwise. The decomposition is the caller's — and for keyed phases part
/// of its randomness contract — so the two schedules execute the *same*
/// chunks; only the interleaving differs, and the caller's serial merge
/// restores order. Keep `body` small enough for std::function's inline
/// storage (a single captured pointer) so steady-state rounds stay
/// allocation-free — pinned by tests/sim/shard_scratch_test.cpp.
void run_chunked(ThreadPool* pool, std::uint64_t chunks,
                 const std::function<void(std::uint64_t)>& body);

/// No listener is excluded from a round (backends without a skip hook).
struct SkipNone {
  bool operator()(NodeId) const noexcept { return false; }
};

/// No pair resolution is remembered (backends without sketch state).
struct RecordNone {
  void operator()(NodeId, NodeId) const noexcept {}
};

/// A collision event's sender marker in the shard buffers (valid node ids
/// are < n <= 2^32 - 1).
inline constexpr NodeId kNoSender = 0xffffffffu;

/// O(1) membership mask over the round's attentive-listener hint, shared by
/// every backend that folds non-attentive deliveries into bulk counts. The
/// mask is set/cleared per round in O(|attentive|) and read concurrently by
/// sweep blocks (reads only, after the serial set_round).
class AttentiveFlags {
 public:
  /// Marks the round's attentive listeners; grows the mask to `n` lazily.
  void set_round(NodeId n, std::span<const NodeId> attentive);

  /// Unmarks them again (cheaper than re-zeroing the whole mask).
  void clear_round(std::span<const NodeId> attentive);

  [[nodiscard]] bool test(NodeId v) const noexcept { return flags_[v] != 0; }

 private:
  std::vector<char> flags_;
};

/// One listener block's privately accumulated round output: delivery /
/// collision events (ascending listener within the block), the ordered
/// pairs individually resolved present (for the dynamic backend's sketch)
/// and the two bulk counters described in the file comment. Buffers are
/// merged serially in block order after the parallel sweep, so the engine
/// sink and the sketch observe exactly the event and record order a serial
/// sweep would have produced (bulk counts are order-free by definition).
struct ShardBuffer {
  std::vector<std::pair<NodeId, NodeId>> events;   ///< (listener, sender|kNoSender)
  std::vector<std::pair<NodeId, NodeId>> records;  ///< (sender, listener)
  std::uint64_t deliver_count = 0;  ///< bulk-merged non-attentive deliveries
  std::uint64_t collide_count = 0;  ///< bulk-merged collisions (inert mode)

  void clear() {
    events.clear();
    records.clear();
    deliver_count = 0;
    collide_count = 0;
  }
};

/// Emitter writing into a block's private buffer — the only output channel
/// of block code running on pool workers. `want_records` is off for
/// backends whose Record hook is a no-op (buffering pairs would be pure
/// overhead); `inert_collisions` folds collisions into the block count
/// (see Protocol::collisions_inert); a non-null `inert_deliveries` mask
/// folds deliveries to listeners outside it into the block count likewise.
struct BufferEmitter {
  ShardBuffer& buf;
  bool want_records;
  bool inert_collisions;
  const AttentiveFlags* inert_deliveries = nullptr;

  void on_record(NodeId sender, NodeId listener) {
    if (want_records) buf.records.emplace_back(sender, listener);
  }
  void on_deliver(NodeId listener, NodeId sender) {
    if (inert_deliveries != nullptr && !inert_deliveries->test(listener)) {
      ++buf.deliver_count;
      return;
    }
    buf.events.emplace_back(listener, sender);
  }
  void on_collide(NodeId listener) {
    if (inert_collisions)
      ++buf.collide_count;
    else
      buf.events.emplace_back(listener, kNoSender);
  }
};

/// Emitter for the serial schedule (pool == nullptr): blocks already run
/// in ascending order on one thread, so events flow straight to the sink
/// and records straight to the hook — zero buffering, exactly the event /
/// record sequence the buffered merge would replay (bulk-merged deliveries
/// and collisions accumulate per block and flush as one bulk call each,
/// mirroring the buffered path's per-block bulk calls).
template <class Sink, class Record>
struct DirectEmitter {
  Sink& sink;
  Record& record;
  bool inert_collisions;
  const AttentiveFlags* inert_deliveries = nullptr;
  std::uint64_t deliver_count = 0;
  std::uint64_t collide_count = 0;

  void on_record(NodeId sender, NodeId listener) { record(sender, listener); }
  void on_deliver(NodeId listener, NodeId sender) {
    if (inert_deliveries != nullptr && !inert_deliveries->test(listener)) {
      ++deliver_count;
      return;
    }
    sink.deliver(listener, sender);
  }
  void on_collide(NodeId listener) {
    if (inert_collisions)
      ++collide_count;
    else
      sink.collide(listener);
  }
  /// Call at each block boundary (matches the buffered merge's bulk calls
  /// per block).
  void flush_block() {
    if (deliver_count > 0) {
      sink.deliver_bulk(deliver_count);
      deliver_count = 0;
    }
    if (collide_count > 0) {
      sink.collide_bulk(collide_count);
      collide_count = 0;
    }
  }
};

/// Serial merge of the blocks' buffers in block order: records into the
/// Record hook (sketch insertion order = enumeration order), events into
/// the sink in ascending listener order, bulk counts as one call each per
/// block. The protocol, trace and sketch stay single-threaded.
template <class Sink, class Record>
void merge_shard_buffers(std::span<const ShardBuffer> buffers, Sink& sink,
                         Record&& record) {
  for (const ShardBuffer& buf : buffers) {
    for (const auto& [sender, listener] : buf.records)
      record(sender, listener);
    for (const auto& [listener, sender] : buf.events) {
      if (sender == kNoSender)
        sink.collide(listener);
      else
        sink.deliver(listener, sender);
    }
    if (buf.deliver_count > 0) sink.deliver_bulk(buf.deliver_count);
    if (buf.collide_count > 0) sink.collide_bulk(buf.collide_count);
  }
}

}  // namespace detail
}  // namespace radnet::sim
