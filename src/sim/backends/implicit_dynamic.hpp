// The implicit *dynamic* G(n,p) backend: extends the sampling family of
// backends/implicit.hpp to the full dynamic model set of
// graph/dynamics.hpp — per-round link churn on a stationary G(n,p) (churn
// in (0,1]), permanent node failures, and density schedules p(t) (mobility
// read as density change) — without ever materialising a graph. Pair
// states are tracked *lazily*: only pairs whose state was individually
// resolved — a clean delivery identifies its (sender, listener) pair; the
// sparse path enumerates every present pair it touches — enter a bounded
// per-sender sketch; everything else stays at its exact Bernoulli(p)
// marginal. On re-examination after g rounds a sketched pair keeps its
// recorded state with probability (1 - churn)^g (the probability no
// re-sample hit it) and is re-drawn fresh otherwise — exactly the ChurnGnp
// process for tracked pairs.
//
// Exactness contract of the implicit G(n,p) family (see the README
// backend matrix and exactness table for the family-wide picture):
//   - fixed G(n,p), protocols transmitting at most once per node
//     (Algorithm 1): exact, at *any* churn — no ordered pair is ever
//     examined twice, and under churn the first examination of a pair is
//     still Bernoulli(p) by stationarity.
//   - churn = 1 (memoryless per-round re-sampled G(n,p)) and p(t)
//     schedules at churn = 1: exact for every protocol; this is what the
//     static ImplicitGnpTopology simulates for repeated transmitters.
//   - node failures: exact (independent per-node Bernoulli per round).
//   - churn < 1 with repeated transmitters (gossip, Algorithm 3):
//     *modelled* — positive pair persistence is tracked through the
//     sketch, but negatively-resolved pairs and the unidentified members
//     of collisions fall back to the fresh Bernoulli(p) marginal, so the
//     process sits between the true churn-rho graph and the churn = 1
//     limit. tests/sim/dynamic_topology_equivalence_test.cpp pins the
//     exact regimes against the explicit ChurnGnp oracle statistically
//     and bands the modelled regime.
//
// Parallelism: the round sweeps and the failure injection shard into the
// counter-keyed listener blocks of the shared sampler, and the sketch
// phases shard too, under the per-chunk merge contract of sim/sharding.hpp:
// gather decomposes per fixed-width *sender* chunk (distinct senders own
// disjoint sketch chains, so chunk walks are race-free; frees and head
// erasures are deferred to a serial commit in chunk order), classify per
// pinned-listener-*group* chunk (groups are independent given the gathered
// pinned set; sketch insertions and pinned events are buffered per chunk
// and replayed serially in ascending chunk = listener order). Every draw
// comes from a (round, chunk)-keyed stream — gather chunk c from
// churn_key.fork(round).fork(c), classify chunk c from the reserved
// kClassifyLane below it — so results are bit-identical at any thread
// count (the serial schedule walks the same chunks inline).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/backends/implicit.hpp"
#include "sim/sharding.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace radnet::sim {

/// Parameters of the implicit *dynamic* G(n,p) family: per-round link churn
/// with persistence, permanent node failures, and density schedules p(t).
/// The graph is never materialised; memory is O(sketch_capacity) at worst.
/// See the file comment for which regimes are exact vs modelled.
struct ImplicitDynamicGnp {
  NodeId n = 0;
  /// Stationary edge probability (fresh pair draws use the round's p).
  double p = 0.0;
  /// Fraction of ordered-pair states re-sampled per round, in (0, 1].
  /// churn = 1 is the memoryless per-round-resampled G(n,p) of
  /// graph/dynamics.hpp; churn < 1 persists pair states between rounds,
  /// tracked lazily through the pair sketch.
  double churn = 1.0;
  /// Per-node, per-round probability of permanent radio failure. A failed
  /// node neither delivers nor hears from its failure round on; its
  /// transmit attempts still spend ledger energy (the node cannot know its
  /// radio died). Must be in [0, 1). Note the honest consequence: goals of
  /// the form "every node informed" become unreachable once any uninformed
  /// node fails, so run failure scenarios with a fixed horizon (or read
  /// the incompletion as the result, as the failure-injection tests do).
  double fail_prob = 0.0;
  /// Optional density schedule: the edge probability in force during round
  /// r is clamp(p_of_round(r), 0, 1). Empty means constant p. Models
  /// mobility as density change (devices drifting apart / together);
  /// exact at churn = 1, modelled otherwise.
  std::function<double(std::uint32_t)> p_of_round;
  /// Bound on the pair-state sketch, in entries (~12 B each). When full,
  /// new positive resolutions are forgotten instead of tracked (modelled
  /// fallback); stale entries are recycled continuously.
  std::uint32_t sketch_capacity = 1u << 22;
  /// Root of the backend's private randomness, split into the sub-streams
  /// below; a run consumes a copy, so the same spec replays identically.
  Rng rng{};

  /// Sub-stream derivation constants. The backend draws edge/classification
  /// randomness from rng.split(kEdgeStream), sketch persistence draws from
  /// rng.split(kChurnStream) and failure draws from rng.split(kFailStream),
  /// so the three consumers can never interleave-collide with each other or
  /// with the harness's (seed, trial, phase) streams — audited by
  /// tests/support/rng_test.cpp.
  static constexpr std::uint64_t kEdgeStream = 0xed6eull;
  static constexpr std::uint64_t kChurnStream = 0xc4a7ull;
  static constexpr std::uint64_t kFailStream = 0xfa11ull;
};

namespace detail {

/// Bounded store of individually resolved *present* ordered pairs, indexed
/// by sender so a round touches exactly the entries whose sender transmits.
/// Entries live in a pooled free-list (12 B each); when the pool is full,
/// new resolutions are dropped (the modelled fallback) until stale entries
/// are recycled.
class PairSketch {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  void reset(std::size_t capacity) {
    pool_.clear();
    heads_.clear();
    free_head_ = kNil;
    size_ = 0;
    capacity_ = capacity;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void insert(NodeId sender, NodeId listener, std::uint32_t round) {
    if (size_ >= capacity_) return;  // full: forget (modelled fallback)
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = pool_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back({});
    }
    auto [it, fresh] = heads_.try_emplace(sender, idx);
    Entry& e = pool_[idx];
    e.listener = listener;
    e.round = round;
    if (fresh) {
      e.next = kNil;
    } else {
      e.next = it->second;
      it->second = idx;
    }
    ++size_;
  }

  /// Walks sender's entries in insertion order (most recent first), calling
  /// f(listener, round&); f returns whether to keep the entry (it may
  /// update the round in place). Erased entries go back to the free list.
  template <class F>
  void visit(NodeId sender, F&& f) {
    const auto it = heads_.find(sender);
    if (it == heads_.end()) return;
    std::uint32_t* link = &it->second;
    while (*link != kNil) {
      Entry& e = pool_[*link];
      if (f(e.listener, e.round)) {
        link = &e.next;
      } else {
        const std::uint32_t idx = *link;
        *link = e.next;
        e.next = free_head_;
        free_head_ = idx;
        --size_;
      }
    }
    if (it->second == kNil) heads_.erase(it);
  }

  /// The parallel-phase variant of visit(): walks and mutates sender's
  /// chain exactly like visit(), but *defers* every shared-state effect —
  /// unlinked entry indices append to `freed` instead of the free list, and
  /// an emptied head is left in place (value kNil) with the sender noted in
  /// `emptied` for the caller to erase later. Distinct senders own disjoint
  /// chains and distinct map slots, and the map's bucket structure is never
  /// modified here, so concurrent calls for distinct senders are race-free.
  template <class F>
  void visit_deferred(NodeId sender, F&& f, std::vector<std::uint32_t>& freed,
                      std::vector<NodeId>& emptied) {
    const auto it = heads_.find(sender);
    if (it == heads_.end()) return;
    std::uint32_t* link = &it->second;
    while (*link != kNil) {
      Entry& e = pool_[*link];
      if (f(e.listener, e.round)) {
        link = &e.next;
      } else {
        const std::uint32_t idx = *link;
        *link = e.next;
        freed.push_back(idx);
      }
    }
    if (it->second == kNil) emptied.push_back(sender);
  }

  /// Serial completion of a batch of visit_deferred() calls: returns the
  /// unlinked entries to the free list in the order given and erases the
  /// emptied heads. Calling per chunk in ascending chunk order keeps the
  /// free-list (and therefore future slot reuse) deterministic — free-list
  /// order is never observable in output, but determinism keeps the pool
  /// layout reproducible for debugging.
  void commit_deferred(std::span<const std::uint32_t> freed,
                       std::span<const NodeId> emptied) {
    for (const std::uint32_t idx : freed) {
      pool_[idx].next = free_head_;
      free_head_ = idx;
      --size_;
    }
    for (const NodeId sender : emptied) heads_.erase(sender);
  }

  /// Drops every entry older than `horizon` rounds — reclaims the slots of
  /// senders that stopped transmitting. Only the *set* of dropped entries
  /// is observable (free-list order never is), so iterating the unordered
  /// map here cannot perturb reproducibility.
  void drop_stale(std::uint32_t round, std::uint64_t horizon) {
    for (auto it = heads_.begin(); it != heads_.end();) {
      std::uint32_t* link = &it->second;
      while (*link != kNil) {
        Entry& e = pool_[*link];
        if (round - e.round > horizon) {
          const std::uint32_t idx = *link;
          *link = e.next;
          e.next = free_head_;
          free_head_ = idx;
          --size_;
        } else {
          link = &e.next;
        }
      }
      it = it->second == kNil ? heads_.erase(it) : std::next(it);
    }
  }

 private:
  struct Entry {
    NodeId listener = 0;
    std::uint32_t round = 0;
    std::uint32_t next = kNil;
  };

  std::vector<Entry> pool_;
  std::unordered_map<NodeId, std::uint32_t> heads_;
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace detail

/// The implicit *dynamic* G(n,p) backend: link churn with lazy pair-state
/// tracking, permanent node failures and density schedules, all without
/// ever materialising a graph. See the file comment for the model and the
/// exact-vs-modelled regimes; statistically pinned against the explicit
/// ChurnGnp oracle by tests/sim/dynamic_topology_equivalence_test.cpp.
class ImplicitDynamicGnpTopology {
 public:
  explicit ImplicitDynamicGnpTopology(const ImplicitDynamicGnp& spec)
      : churn_(spec.churn),
        fail_prob_(spec.fail_prob),
        p_of_round_(spec.p_of_round) {
    RADNET_REQUIRE(spec.churn > 0.0 && spec.churn <= 1.0,
                   "churn must be in (0, 1]");
    RADNET_REQUIRE(spec.fail_prob >= 0.0 && spec.fail_prob < 1.0,
                   "fail_prob must be in [0, 1)");
    sampler_.init(spec.n, spec.p, spec.rng.split(ImplicitDynamicGnp::kEdgeStream));
    churn_key_ =
        StreamKey::from_rng(spec.rng.split(ImplicitDynamicGnp::kChurnStream));
    fail_key_ =
        StreamKey::from_rng(spec.rng.split(ImplicitDynamicGnp::kFailStream));
    // At churn = 1 nothing is tracked: the record hook is a no-op, so the
    // sharded sweeps need not buffer resolved pairs.
    sampler_.set_records_enabled(churn_ < 1.0);
    if (churn_ < 1.0) {
      log1m_churn_ = std::log1p(-churn_);
      // Beyond the horizon a pair survives un-resampled with probability
      // < 1e-12: its recorded state is numerically indistinguishable from
      // a fresh Bernoulli(p), so the entry can be recycled.
      horizon_ = static_cast<std::uint64_t>(
          std::ceil(std::log(1e-12) / log1m_churn_));
      sketch_.reset(spec.sketch_capacity);
      // Start reclaiming stale entries once the pool is three-quarters
      // full (never at zero capacity).
      sketch_watermark_ =
          std::max<std::size_t>(1, spec.sketch_capacity / 4u * 3u);
      marks_.assign(spec.n, 0);
    }
    if (fail_prob_ > 0.0) {
      inv_log1m_fail_ = 1.0 / std::log1p(-fail_prob_);
      failed_.assign(spec.n, 0);
    }
  }

  [[nodiscard]] NodeId num_nodes() const { return sampler_.n(); }

  /// Number of live pair-state sketch entries (for tests / diagnostics).
  [[nodiscard]] std::size_t sketch_size() const { return sketch_.size(); }

  /// Number of permanently failed nodes so far.
  [[nodiscard]] NodeId failed_count() const { return failed_count_; }

  /// Accepted for the sharded sweep, the failure injection and the sketch
  /// phases (gather per sender chunk, classify per pinned-group chunk);
  /// serial when null. Either way the output is bit-identical — every
  /// phase is chunk-decomposed and counter-keyed the same way regardless.
  void set_parallelism(ThreadPool* pool) {
    pool_ = pool;
    sampler_.set_parallelism(pool);
  }

  void begin_round(std::uint32_t round) {
    round_ = round;
    sampler_.begin_round(round);
    // The sketch and failure streams are keyed per (round, chunk/block) at
    // phase time: every draw this round is a pure function of (spec seed,
    // round, position), never of how many draws earlier rounds consumed.
    if (p_of_round_)
      sampler_.set_p(std::clamp(p_of_round_(round), 0.0, 1.0));
    if (fail_prob_ > 0.0) draw_failures();
    // Lazily reclaim entries of senders that stopped transmitting once the
    // pool fills up; at most one linear sweep per horizon window.
    if (churn_ < 1.0 && sketch_.size() >= sketch_watermark_ &&
        round_ - last_sweep_round_ > horizon_) {
      sketch_.drop_stale(round_, horizon_);
      last_sweep_round_ = round_;
    }
  }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath /*path*/,
               const std::optional<std::span<const NodeId>>& attentive,
               bool collisions_inert, Sink& sink) {
    // Dead radios transmit into the void: filter them out of the round.
    std::span<const NodeId> tx = transmitters;
    if (failed_count_ > 0) {
      live_tx_.clear();
      for (const NodeId u : transmitters)
        if (!failed_[u]) live_tx_.push_back(u);
      tx = {live_tx_.data(), live_tx_.size()};
    }
    const std::uint64_t k = tx.size();
    if (k == 0) return;
    const bool sampling = sampler_.p() > 0.0;
    const bool tracking = churn_ < 1.0;
    if (!sampling && (!tracking || sketch_.size() == 0)) return;

    // Phase 1: resolve every sketched pair whose sender transmits — these
    // listeners ("pinned") have conditioned, non-exchangeable hit laws and
    // are classified individually below.
    pinned_.clear();
    if (tracking && sketch_.size() > 0)
      gather_pinned(tx, is_tx, half_duplex);

    const auto record = [&](NodeId sender, NodeId listener) {
      if (tracking) sketch_.insert(sender, listener, round_);
    };
    const auto skip = [&](NodeId v) {
      return (tracking && marks_[v] != 0) ||
             (failed_count_ > 0 && failed_[v] != 0);
    };

    std::uint64_t pinned_nontx = 0, pinned_tx = 0;
    pinned_events_.clear();
    classify_pinned(tx, is_tx, half_duplex, &pinned_nontx, &pinned_tx,
                    record);

    if (sampling) {
      const std::uint64_t live = sampler_.n() - failed_count_;
      RADNET_CHECK(live >= k + pinned_nontx,
                   "pinned listeners exceed the live universe");
      const std::uint64_t universe_nontx = live - k - pinned_nontx;
      const std::uint64_t universe_tx = k - pinned_tx;
      const double expected_events =
          static_cast<double>(sampler_.n()) *
          std::min(1.0, static_cast<double>(k) * sampler_.p());
      if (attentive.has_value() &&
          static_cast<double>(attentive->size()) < expected_events) {
        // Attentive mode: pinned events first (ascending listener), then
        // the hint's listeners in hint order, then the aggregates.
        for (const PinnedEvent& e : pinned_events_) emit(e, sink);
        sampler_.attentive_round(tx, is_tx, half_duplex, *attentive,
                                 collisions_inert, sink, skip, record,
                                 universe_nontx, universe_tx);
      } else {
        // Sweep mode: merge the pre-drawn pinned events into the sweep's
        // ascending listener order.
        MergeSink<Sink> merged{sink, pinned_events_, 0, this};
        sampler_.sweep(tx, is_tx, half_duplex, attentive, collisions_inert,
                       merged, skip, record);
        merged.flush_all();
      }
    } else {
      // p(t) == 0 this round: only persisted pairs can deliver.
      for (const PinnedEvent& e : pinned_events_) emit(e, sink);
    }

    if (tracking)
      for (const PinnedTouch& t : pinned_) marks_[t.listener] = 0;
  }

 private:
  struct PinnedTouch {
    NodeId listener;
    NodeId sender;
    bool present;
  };
  struct PinnedEvent {
    NodeId listener;
    NodeId sender;  // meaningful only for deliveries
    bool is_delivery;
  };

  /// Fixed chunk width of both sharded sketch phases (senders for gather,
  /// pinned-listener groups for classify). Part of the randomness
  /// contract: chunk c of a phase owns its (round, chunk)-keyed stream, so
  /// the decomposition must never depend on thread count — the serial
  /// schedule walks the same chunks inline.
  static constexpr std::uint64_t kSketchChunkSize = 1024;

  /// Reserved fork counter separating the classify phase's chunk streams
  /// from the gather phase's within a round's churn key. Chunk counters
  /// stay below 2^32, so the two families can never collide.
  static constexpr std::uint64_t kClassifyLane = 0x1'0000'0001ull;

  /// One chunk's private scratch for the sharded sketch phases, reused
  /// across rounds (cleared, never shrunk) so steady-state rounds allocate
  /// nothing — pinned by tests/sim/shard_scratch_test.cpp.
  struct SketchShard {
    std::vector<PinnedTouch> pinned;   ///< gather: touches in walk order
    std::vector<std::uint32_t> freed;  ///< gather: deferred free-list pushes
    std::vector<NodeId> emptied;       ///< gather: deferred head erasures
    std::vector<PinnedEvent> events;   ///< classify: events in group order
    std::vector<std::pair<NodeId, NodeId>> records;  ///< classify: (sender, listener)
    std::uint64_t nontx = 0;  ///< classify: non-transmitting pinned groups
    std::uint64_t tx = 0;     ///< classify: transmitting pinned groups
  };

  /// The current phase's shared inputs, stashed so the pool fan-out lambda
  /// captures only `this` (see gather_chunk). Valid for the duration of
  /// one gather_pinned / classify_pinned call.
  struct SketchPhase {
    std::span<const NodeId> tx;
    const std::vector<char>* is_tx = nullptr;
    bool half_duplex = false;
    StreamKey gather_key;    ///< churn_key_.fork(round)
    StreamKey classify_key;  ///< churn_key_.fork(round).fork(kClassifyLane)
  };

  template <class Sink>
  void emit(const PinnedEvent& e, Sink& sink) const {
    if (e.is_delivery)
      sink.deliver(e.listener, e.sender);
    else
      sink.collide(e.listener);
  }

  /// Forwards sweep events to the engine sink, flushing buffered pinned
  /// events whose listener precedes the sweep's current listener so the
  /// combined stream stays in ascending receiver order. Pinned listeners
  /// are marked and therefore never also produced by the sweep.
  template <class Sink>
  struct MergeSink {
    Sink& inner;
    const std::vector<PinnedEvent>& pending;
    std::size_t next;
    const ImplicitDynamicGnpTopology* self;

    void flush_upto(NodeId v) {
      while (next < pending.size() && pending[next].listener < v)
        self->emit(pending[next++], inner);
    }
    void flush_all() {
      while (next < pending.size()) self->emit(pending[next++], inner);
    }
    void deliver(NodeId receiver, NodeId sender) {
      flush_upto(receiver);
      inner.deliver(receiver, sender);
    }
    void collide(NodeId receiver) {
      flush_upto(receiver);
      inner.collide(receiver);
    }
    void deliver_bulk(std::uint64_t count) { inner.deliver_bulk(count); }
    void collide_bulk(std::uint64_t count) { inner.collide_bulk(count); }
  };

  /// Walks the sketch lists of this round's transmitters — sharded per
  /// fixed-width sender chunk under the per-chunk merge contract
  /// (sim/sharding.hpp) — and resolves each touched pair's persistence:
  /// the recorded present state survives with probability (1-churn)^age
  /// (no re-sample hit it — memoryless, so the entry's clock restarts at
  /// this round), otherwise the pair re-draws fresh Bernoulli(p). Negative
  /// outcomes drop the entry (absence is not stored — the modelled
  /// fallback). Pairs whose listener cannot hear this round (failed, or
  /// transmitting under half-duplex) are left untouched: their state is
  /// unobservable, so it just keeps ageing. Chunk c draws from
  /// churn_key.fork(round).fork(c); chunk walks touch disjoint sketch
  /// chains, and the deferred frees / head erasures commit serially in
  /// ascending chunk order, so the sketch ends the phase in the exact
  /// state the serial chunk walk leaves it in.
  void gather_pinned(std::span<const NodeId> tx,
                     const std::vector<char>& is_tx, bool half_duplex) {
    const std::uint64_t chunks =
        detail::block_count(tx.size(), kSketchChunkSize);
    if (shards_.size() < chunks) shards_.resize(chunks);
    sketch_phase_.tx = tx;
    sketch_phase_.is_tx = &is_tx;
    sketch_phase_.half_duplex = half_duplex;
    sketch_phase_.gather_key = churn_key_.fork(round_);
    detail::run_chunked(pool_, chunks,
                        [this](std::uint64_t c) { gather_chunk(c); });
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const SketchShard& shard = shards_[c];
      pinned_.insert(pinned_.end(), shard.pinned.begin(), shard.pinned.end());
      sketch_.commit_deferred(shard.freed, shard.emptied);
    }
    // Stable sort by listener via an index tie-break and reused member
    // scratch — std::stable_sort would heap-allocate its merge buffer
    // every round (tests/sim/shard_scratch_test.cpp pins steady-state
    // rounds allocation-free).
    const auto count = static_cast<std::uint32_t>(pinned_.size());
    pinned_order_.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) pinned_order_[i] = i;
    std::sort(pinned_order_.begin(), pinned_order_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return pinned_[a].listener != pinned_[b].listener
                           ? pinned_[a].listener < pinned_[b].listener
                           : a < b;
              });
    pinned_scratch_.resize(count);
    for (std::uint32_t i = 0; i < count; ++i)
      pinned_scratch_[i] = pinned_[pinned_order_[i]];
    pinned_.swap(pinned_scratch_);
    for (const PinnedTouch& t : pinned_) marks_[t.listener] = 1;
  }

  /// One gather chunk: walks the sketch chains of senders
  /// tx[c·chunk, (c+1)·chunk) with the chunk's keyed stream, accumulating
  /// pinned touches, freed entry indices and emptied heads in the chunk's
  /// private scratch. Kept out-of-line so the pool fan-out lambda captures
  /// only `this` (std::function inline storage — no per-round allocation).
  void gather_chunk(std::uint64_t c) {
    SketchShard& shard = shards_[c];
    shard.pinned.clear();
    shard.freed.clear();
    shard.emptied.clear();
    Rng rng = sketch_phase_.gather_key.fork(c).make_rng();
    const std::span<const NodeId> tx = sketch_phase_.tx;
    const std::vector<char>& is_tx = *sketch_phase_.is_tx;
    const bool half_duplex = sketch_phase_.half_duplex;
    const std::uint64_t lo = c * kSketchChunkSize;
    const std::uint64_t hi =
        std::min<std::uint64_t>(tx.size(), lo + kSketchChunkSize);
    for (std::uint64_t s = lo; s < hi; ++s) {
      const NodeId t = tx[s];
      sketch_.visit_deferred(
          t,
          [&](NodeId w, std::uint32_t& entry_round) {
            const std::uint64_t age = round_ - entry_round;
            if (age > horizon_) return false;  // numerically fresh again
            if (failed_count_ > 0 && failed_[w] != 0) return true;
            if (half_duplex && is_tx[w]) return true;
            bool present = true;
            if (age > 0) {
              const double survive =
                  std::exp(static_cast<double>(age) * log1m_churn_);
              if (rng.next_double() >= survive)
                present = rng.bernoulli(sampler_.p());
            }
            if (present) entry_round = round_;
            shard.pinned.push_back({w, t, present});
            return present;
          },
          shard.freed, shard.emptied);
    }
  }

  /// Classifies each pinned listener: total hits = resolved sketch hits +
  /// Binomial(k_unknown, p) over its untracked pairs, collapsed to the
  /// silent / single / collided classes the engine distinguishes. Sharded
  /// per pinned-listener-group chunk: groups are independent given the
  /// gathered pinned set (classification reads pinned_ and tx only), chunk
  /// c draws from the reserved classify lane's fork(c), and the per-chunk
  /// event buffers and sketch records merge serially in ascending chunk —
  /// i.e. listener — order, so pinned_events_ ends the phase in ascending
  /// listener order and the sketch sees insertions in the order the serial
  /// chunk walk produces.
  template <class Record>
  void classify_pinned(std::span<const NodeId> tx,
                       const std::vector<char>& is_tx, bool half_duplex,
                       std::uint64_t* pinned_nontx, std::uint64_t* pinned_tx,
                       Record&& record) {
    group_starts_.clear();
    for (std::size_t i = 0; i < pinned_.size(); ++i)
      if (i == 0 || pinned_[i].listener != pinned_[i - 1].listener)
        group_starts_.push_back(i);
    const std::uint64_t groups = group_starts_.size();
    if (groups == 0) return;
    group_starts_.push_back(pinned_.size());  // end sentinel
    const std::uint64_t chunks = detail::block_count(groups, kSketchChunkSize);
    if (shards_.size() < chunks) shards_.resize(chunks);
    sketch_phase_.tx = tx;
    sketch_phase_.is_tx = &is_tx;
    sketch_phase_.half_duplex = half_duplex;
    sketch_phase_.classify_key = churn_key_.fork(round_).fork(kClassifyLane);
    detail::run_chunked(pool_, chunks,
                        [this](std::uint64_t c) { classify_chunk(c); });
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const SketchShard& shard = shards_[c];
      *pinned_nontx += shard.nontx;
      *pinned_tx += shard.tx;
      for (const auto& [sender, listener] : shard.records)
        record(sender, listener);
      pinned_events_.insert(pinned_events_.end(), shard.events.begin(),
                            shard.events.end());
    }
  }

  /// One classify chunk: groups [c·chunk, (c+1)·chunk) of the sorted
  /// pinned set, drawn from the chunk's keyed stream into private event /
  /// record scratch. Out-of-line for the same [this]-only capture reason
  /// as gather_chunk.
  void classify_chunk(std::uint64_t c) {
    SketchShard& shard = shards_[c];
    shard.events.clear();
    shard.records.clear();
    shard.nontx = 0;
    shard.tx = 0;
    Rng rng = sketch_phase_.classify_key.fork(c).make_rng();
    const std::span<const NodeId> tx = sketch_phase_.tx;
    const std::vector<char>& is_tx = *sketch_phase_.is_tx;
    const bool half_duplex = sketch_phase_.half_duplex;
    const std::uint64_t k = tx.size();
    const std::uint64_t groups = group_starts_.size() - 1;
    const std::uint64_t glo = c * kSketchChunkSize;
    const std::uint64_t ghi =
        std::min<std::uint64_t>(groups, glo + kSketchChunkSize);
    for (std::uint64_t g = glo; g < ghi; ++g) {
      const std::size_t i = group_starts_[g];
      const std::size_t j = group_starts_[g + 1];
      std::uint32_t hits_known = 0;
      NodeId stored_sender = 0;
      const NodeId w = pinned_[i].listener;
      for (std::size_t s = i; s < j; ++s) {
        if (pinned_[s].present) {
          ++hits_known;
          stored_sender = pinned_[s].sender;
        }
      }
      const std::uint64_t cnt_known = j - i;
      const bool wtx = is_tx[w] != 0;
      ++(wtx ? shard.tx : shard.nontx);
      const std::uint64_t eligible =
          k - cnt_known - (wtx && !half_duplex ? 1u : 0u);
      if (hits_known >= 2) {
        shard.events.push_back({w, 0, false});
      } else {
        const auto probs = sampler_.outcome_probs_for(eligible);
        const double u = rng.next_double();
        if (hits_known == 1) {
          // One tracked hit: collision iff any untracked pair also hits.
          if (u < probs.silent)
            shard.events.push_back({w, stored_sender, true});
          else
            shard.events.push_back({w, 0, false});
        } else if (u >= probs.silent) {
          if (u < probs.silent + probs.single) {
            const NodeId sender = pick_unknown_sender(rng, tx, w, wtx, i, j);
            shard.records.emplace_back(sender, w);
            shard.events.push_back({w, sender, true});
          } else {
            shard.events.push_back({w, 0, false});
          }
        }
      }
    }
  }

  /// Uniform draw over the transmitters whose pair to `w` is untracked
  /// (rejecting w itself and the listeners' resolved senders — a handful
  /// at most, so rejection terminates fast; probs.single > 0 guarantees
  /// the untracked set is non-empty). Draws from the calling chunk's
  /// stream.
  NodeId pick_unknown_sender(Rng& rng, std::span<const NodeId> tx, NodeId w,
                             bool wtx, std::size_t begin, std::size_t end) {
    for (;;) {
      const NodeId cand =
          tx[static_cast<std::size_t>(rng.uniform_below(tx.size()))];
      if (wtx && cand == w) continue;
      bool tracked = false;
      for (std::size_t s = begin; s < end; ++s)
        if (pinned_[s].sender == cand) {
          tracked = true;
          break;
        }
      if (!tracked) return cand;
    }
  }

  /// Each live node fails independently with fail_prob per round; landing
  /// on an already-failed node is a no-op, so a skip-sampled sweep of
  /// [0, n) is exact — and because failures are independent per node, the
  /// sweep shards into the same counter-keyed listener blocks as the round
  /// sweep (disjoint failed_ ranges; per-block new-failure counts summed
  /// serially).
  void draw_failures() {
    const std::uint64_t n = sampler_.n();
    const StreamKey round_key = fail_key_.fork(round_);
    const std::uint64_t blocks =
        detail::block_count(n, detail::kShardBlockSize);
    fail_counts_.assign(blocks, 0);
    const auto run_block = [&](std::uint64_t b) {
      Rng rng = round_key.fork(b).make_rng();
      const std::uint64_t lo = b * detail::kShardBlockSize;
      const std::uint64_t span =
          std::min<std::uint64_t>(n, lo + detail::kShardBlockSize) - lo;
      NodeId fresh = 0;
      for (std::uint64_t o = rng.geometric_inv(inv_log1m_fail_) - 1; o < span;
           o += rng.geometric_inv(inv_log1m_fail_)) {
        if (!failed_[lo + o]) {
          failed_[lo + o] = 1;
          ++fresh;
        }
      }
      fail_counts_[b] = fresh;
    };
    if (pool_ != nullptr && blocks > 1)
      pool_->parallel_for_index(blocks, run_block);
    else
      for (std::uint64_t b = 0; b < blocks; ++b) run_block(b);
    for (const NodeId fresh : fail_counts_) failed_count_ += fresh;
  }

  detail::GnpSampler sampler_;
  double churn_;
  double fail_prob_;
  std::function<double(std::uint32_t)> p_of_round_;
  StreamKey churn_key_;  ///< per-(round, chunk) sketch stream root
  StreamKey fail_key_;   ///< per-(round, block) failure stream root
  ThreadPool* pool_ = nullptr;
  std::vector<NodeId> fail_counts_;  ///< per-block new failures, merged serially
  double log1m_churn_ = 0.0;
  double inv_log1m_fail_ = 0.0;
  std::uint64_t horizon_ = 0;
  std::uint32_t round_ = 0;
  std::uint32_t last_sweep_round_ = 0;
  std::size_t sketch_watermark_ = 0;

  detail::PairSketch sketch_;
  std::vector<char> marks_;
  std::vector<char> failed_;
  NodeId failed_count_ = 0;
  std::vector<NodeId> live_tx_;
  std::vector<PinnedTouch> pinned_;
  std::vector<PinnedEvent> pinned_events_;
  std::vector<SketchShard> shards_;       ///< per-chunk scratch, reused
  std::vector<std::uint32_t> pinned_order_;   ///< gather sort scratch
  std::vector<PinnedTouch> pinned_scratch_;   ///< gather sort scratch
  std::vector<std::size_t> group_starts_; ///< pinned group offsets + sentinel
  SketchPhase sketch_phase_;              ///< current phase inputs
};

}  // namespace radnet::sim
