// Explicit CSR topology backends: delivery over a materialised
// graph::Digraph (static or per-round sequences). The any-topology oracle —
// geometric, structured and lower-bound networks that the implicit G(n,p)
// backends cannot express all run here — and, since PR 4, a sharded one:
// every delivery strategy decomposes into the listener blocks of
// sim/sharding.hpp and fans out over the engine's thread pool.
//
// Exactness contract: trivially exact for every protocol — the backend
// walks the materialised graph, so a round's events are a deterministic
// function of (graph, transmitter set). No RNG is drawn anywhere in
// delivery, hence no StreamKey keying either (that scheme exists for the
// sampling families; see the README backend matrix): the block-merge
// ordering invariant of sim/sharding.hpp alone makes the parallel event
// stream byte-identical to the serial one at any thread count.
//
// Three delivery strategies (DeliveryPath), all producing byte-identical
// event streams:
//
//   * kSortedTouch / kLinearScan — per-edge hit counters: walk each
//     transmitter's out-edges, count hits per receiver, then emit events in
//     ascending receiver order (sorting the touched list, or linear-scanning
//     the hit array when many receivers were touched). Cost O(k·d̄ + emit).
//   * kInNeighborScan — per-receiver scan of in-neighbours against a
//     transmitter bitset with early exit at the second hit; wins in very
//     dense rounds. Cost O(n · 2/f) expected, f = transmitting fraction.
//
// Parallel decomposition (no RNG is involved anywhere, so bit-identity at
// any thread count holds by construction):
//
//   * The in-neighbour scan is listener-parallel as-is: the graph and the
//     transmitter bitset are read-only, so listener blocks scan
//     independently into private ShardBuffers, merged in block order.
//   * The counter paths scatter-gather: transmitter chunks first partition
//     their out-edges into per-(chunk, listener-block) segments (two CSR
//     walks: count, then fill), then listener blocks gather their segments
//     into the per-block slices of the shared hit array — blocks own
//     disjoint listener ranges, so no two threads ever touch the same
//     counter — and emit their events in ascending listener order. Hit
//     counts are order-independent sums and a single-hit receiver's sender
//     is unique, so the merged stream equals the serial one exactly.
//
// The per-round strategy choice (kAuto) is thread-count-aware: with a pool
// attached the bitset-scan threshold halves (the counter path pays a second
// edge walk for the scatter, the bitset scan parallelises for free), and
// the sort-vs-scan emit choice is made per block from the block's own
// touched count rather than from a global n/8 threshold tuned for one core.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/dynamics.hpp"
#include "sim/sharding.hpp"
#include "support/bitset.hpp"
#include "support/require.hpp"
#include "support/thread_pool.hpp"

namespace radnet::sim {

namespace detail {

/// Shared delivery machinery for explicit CSR graphs: scratch arrays plus
/// the serial and block-parallel forms of the three delivery strategies.
/// Owned by the backend objects below.
class CsrDelivery {
 public:
  /// Minimum per-round work (edges touched, or listeners scanned for the
  /// in-neighbour path) before a pool-attached round actually fans out.
  static constexpr std::uint64_t kMinParallelRoundWork = 4096;

  void attach(NodeId n) {
    hits_.assign(n, 0);
    heard_from_.assign(n, 0);
    touched_.clear();
    tx_bits_ = Bitset(n);
  }

  /// Serial blocks when null (the default); sharded delivery on `pool`
  /// otherwise. Either way the output is bit-identical.
  void set_parallelism(ThreadPool* pool) { pool_ = pool; }

  template <class Sink>
  void deliver(const graph::Digraph& g, std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path,
               const std::optional<std::span<const NodeId>>& attentive,
               bool collisions_inert, Sink& sink) {
    const NodeId n = g.num_nodes();
    const AttentiveFlags* inert_deliveries = nullptr;
    if (attentive.has_value()) {
      att_flags_.set_round(n, *attentive);
      inert_deliveries = &att_flags_;
    }

    const unsigned width = pool_ == nullptr ? 1u : pool_->size() + 1;
    const unsigned shift = csr_block_shift(n, width);
    const std::uint64_t blocks =
        block_count(n, static_cast<NodeId>(NodeId{1} << shift));
    const bool par_capable = pool_ != nullptr && blocks > 1;

    // The in-neighbour scan wins when most receivers hear >= 2
    // transmitters quickly: a receiver stops after ~2/f scanned
    // neighbours (f = transmitting fraction), vs ~f*degree counter
    // writes on the counter path — cheaper when f^2 * degree > C, i.e.
    // k * load > C * n^2 with load = sum of transmitter out-degrees.
    // Parallel-capable rounds halve C: the counter path then walks the
    // edges twice (scatter + gather) while the bitset scan shards as-is.
    // The degree sum feeds the kAuto heuristic and the parallel work
    // gate of the counter paths; a forced path on a serial schedule (and
    // a forced in-neighbour scan anywhere) never reads it.
    std::uint64_t load = 0;
    if (path == DeliveryPath::kAuto ||
        (par_capable && path != DeliveryPath::kInNeighborScan))
      for (const NodeId u : transmitters) load += g.out_degree(u);
    const bool in_scan =
        path == DeliveryPath::kInNeighborScan ||
        (path == DeliveryPath::kAuto &&
         transmitters.size() * load >
             (par_capable ? 2u : 4u) * static_cast<std::uint64_t>(n) * n);
    // Tiny rounds stay serial: below ~a block's worth of work the pool
    // dispatch and buffer bookkeeping cost more than they save (the
    // measured small-n regression regime). The gate only picks a
    // schedule — output is identical either way.
    const std::uint64_t round_work = in_scan ? n : load;
    const bool parallel = par_capable && round_work >= kMinParallelRoundWork;

    if (parallel) {
      if (in_scan)
        in_neighbor_scan_parallel(g, transmitters, is_tx, half_duplex, shift,
                                  blocks, inert_deliveries, collisions_inert,
                                  sink);
      else
        counter_paths_parallel(g, transmitters, is_tx, half_duplex, path,
                               load, shift, blocks, inert_deliveries,
                               collisions_inert, sink);
    } else {
      RecordNone record;
      DirectEmitter<Sink, RecordNone> em{sink, record, collisions_inert,
                                         inert_deliveries};
      if (in_scan)
        in_neighbor_scan(g, transmitters, is_tx, half_duplex, em);
      else
        counter_paths(g, transmitters, is_tx, half_duplex, path, em);
      em.flush_block();
    }

    if (attentive.has_value()) att_flags_.clear_round(*attentive);
  }

 private:
  /// The serial counter path: accumulate per-edge hits transmitter-major,
  /// then emit in ascending receiver order (sort the touched list, or — in
  /// dense rounds — linear-scan the hit array, which yields the same order
  /// cheaper than the O(k log k) sort).
  template <class Emitter>
  void counter_paths(const graph::Digraph& g,
                     std::span<const NodeId> transmitters,
                     const std::vector<char>& is_tx, bool half_duplex,
                     DeliveryPath path, Emitter& em) {
    const NodeId n = g.num_nodes();
    for (const NodeId u : transmitters) {
      for (const NodeId w : g.out_neighbors(u)) {
        if (hits_[w] == 0) {
          heard_from_[w] = u;
          touched_.push_back(w);
        }
        ++hits_[w];
      }
    }
    const bool scan = path == DeliveryPath::kLinearScan ||
                      (path == DeliveryPath::kAuto && touched_.size() > n / 8);
    if (scan) {
      touched_.clear();
      for (NodeId w = 0; w < n; ++w)
        if (hits_[w] != 0) touched_.push_back(w);
    } else {
      std::sort(touched_.begin(), touched_.end());
    }
    for (const NodeId w : touched_) emit_counted(w, is_tx, half_duplex, em);
    touched_.clear();
  }

  /// The parallel counter path: scatter, gather, merge (see the file
  /// comment). `load` is the precomputed sum of transmitter out-degrees.
  template <class Sink>
  void counter_paths_parallel(const graph::Digraph& g,
                              std::span<const NodeId> transmitters,
                              const std::vector<char>& is_tx,
                              bool half_duplex, DeliveryPath path,
                              std::uint64_t load, unsigned shift,
                              std::uint64_t blocks,
                              const AttentiveFlags* inert_deliveries,
                              bool inert_collisions, Sink& sink) {
    const NodeId n = g.num_nodes();
    const std::uint64_t k = transmitters.size();

    // Cut the transmitter list into contiguous chunks of roughly equal
    // out-edge load (~4 per thread). The cut points never affect output:
    // hit counts are sums over all chunks and a single-hit receiver's
    // sender is the unique transmitter that reached it.
    const std::uint64_t want_chunks = std::min<std::uint64_t>(
        std::max<std::uint64_t>(k, 1),
        std::uint64_t{pool_->size() + 1} * 4);
    const std::uint64_t target = load / want_chunks + 1;
    chunk_starts_.clear();
    chunk_starts_.push_back(0);
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < k; ++i) {
      if (acc >= target && chunk_starts_.size() < want_chunks) {
        chunk_starts_.push_back(i);
        acc = 0;
      }
      acc += g.out_degree(transmitters[i]);
    }
    chunk_starts_.push_back(k);
    const std::uint64_t chunks = chunk_starts_.size() - 1;

    // Phase 1 (parallel over transmitter chunks): partition each chunk's
    // out-edges into per-(chunk, block) segments — one counting walk, one
    // filling walk over the CSR rows.
    if (scatter_.size() < chunks) {
      scatter_.resize(chunks);
      scatter_off_.resize(chunks);
    }
    pool_->parallel_for_index(chunks, [&](std::uint64_t c) {
      auto& seg = scatter_[c];
      auto& off = scatter_off_[c];
      off.assign(blocks + 1, 0);
      const std::span<const NodeId> slice = transmitters.subspan(
          chunk_starts_[c], chunk_starts_[c + 1] - chunk_starts_[c]);
      for (const NodeId u : slice)
        for (const NodeId w : g.out_neighbors(u)) ++off[(w >> shift) + 1];
      for (std::uint64_t b = 0; b < blocks; ++b) off[b + 1] += off[b];
      seg.resize(off[blocks]);
      // Counting-sort fill, advancing off[b] in place (no cursor copy on
      // the hot path): afterwards off[b] has slid to the *end* of segment
      // b, so segment b is read back as [b ? off[b-1] : 0, off[b]).
      for (const NodeId u : slice)
        for (const NodeId w : g.out_neighbors(u))
          seg[off[w >> shift]++] = {w, u};
    });

    // Phase 2 (parallel over listener blocks): gather the block's segments
    // into its private slice of the shared hit array — disjoint ranges, no
    // synchronisation — and emit events in ascending listener order into
    // the block's buffer. The emit-order strategy is chosen per block from
    // the block's own touched count.
    if (buffers_.size() < blocks) buffers_.resize(blocks);
    if (touched_blocks_.size() < blocks) touched_blocks_.resize(blocks);
    pool_->parallel_for_index(blocks, [&](std::uint64_t b) {
      ShardBuffer& buf = buffers_[b];
      buf.clear();
      BufferEmitter em{buf, /*want_records=*/false, inert_collisions,
                       inert_deliveries};
      const NodeId lo = static_cast<NodeId>(b << shift);
      const NodeId hi = static_cast<NodeId>(
          std::min<std::uint64_t>(n, (b + 1) << shift));
      auto& touched = touched_blocks_[b];
      touched.clear();
      for (std::uint64_t c = 0; c < chunks; ++c) {
        const auto& seg = scatter_[c];
        const auto& off = scatter_off_[c];
        // off[b] slid to the end of segment b during the scatter fill.
        for (std::uint64_t i = b == 0 ? 0 : off[b - 1]; i < off[b]; ++i) {
          const auto [w, u] = seg[i];
          if (hits_[w] == 0) {
            heard_from_[w] = u;
            touched.push_back(w);
          }
          ++hits_[w];
        }
      }
      const bool scan =
          path == DeliveryPath::kLinearScan ||
          (path == DeliveryPath::kAuto && touched.size() > (hi - lo) / 8u);
      if (scan) {
        for (NodeId w = lo; w < hi; ++w)
          if (hits_[w] != 0) emit_counted(w, is_tx, half_duplex, em);
      } else {
        std::sort(touched.begin(), touched.end());
        for (const NodeId w : touched) emit_counted(w, is_tx, half_duplex, em);
      }
      touched.clear();
    });

    merge_shard_buffers(std::span<const ShardBuffer>(buffers_.data(), blocks),
                        sink, RecordNone{});
  }

  /// Emits receiver w's event from its accumulated hit count and resets
  /// the counter (a transmitting radio hears nothing under half-duplex).
  template <class Emitter>
  void emit_counted(NodeId w, const std::vector<char>& is_tx,
                    bool half_duplex, Emitter& em) {
    if (half_duplex && is_tx[w]) {
      hits_[w] = 0;
      return;
    }
    if (hits_[w] == 1)
      em.on_deliver(w, heard_from_[w]);
    else
      em.on_collide(w);
    hits_[w] = 0;
  }

  /// One listener block of the in-neighbour bitset scan; the caller owns
  /// the tx_bits_ set/reset bracketing. Reads only shared state, so blocks
  /// run concurrently as-is.
  template <class Emitter>
  void in_scan_block(const graph::Digraph& g, const std::vector<char>& is_tx,
                     bool half_duplex, NodeId lo, NodeId hi, Emitter& em) {
    for (NodeId w = lo; w < hi; ++w) {
      if (half_duplex && is_tx[w]) continue;
      std::uint32_t c = 0;
      NodeId sender = 0;
      for (const NodeId v : g.in_neighbors(w)) {
        if (tx_bits_.test(v)) {
          sender = v;
          if (++c == 2) break;
        }
      }
      if (c == 1)
        em.on_deliver(w, sender);
      else if (c >= 2)
        em.on_collide(w);
    }
  }

  template <class Emitter>
  void in_neighbor_scan(const graph::Digraph& g,
                        std::span<const NodeId> transmitters,
                        const std::vector<char>& is_tx, bool half_duplex,
                        Emitter& em) {
    for (const NodeId u : transmitters) tx_bits_.set(u);
    in_scan_block(g, is_tx, half_duplex, 0, g.num_nodes(), em);
    for (const NodeId u : transmitters) tx_bits_.reset(u);
  }

  template <class Sink>
  void in_neighbor_scan_parallel(const graph::Digraph& g,
                                 std::span<const NodeId> transmitters,
                                 const std::vector<char>& is_tx,
                                 bool half_duplex, unsigned shift,
                                 std::uint64_t blocks,
                                 const AttentiveFlags* inert_deliveries,
                                 bool inert_collisions, Sink& sink) {
    const NodeId n = g.num_nodes();
    for (const NodeId u : transmitters) tx_bits_.set(u);
    if (buffers_.size() < blocks) buffers_.resize(blocks);
    pool_->parallel_for_index(blocks, [&](std::uint64_t b) {
      ShardBuffer& buf = buffers_[b];
      buf.clear();
      BufferEmitter em{buf, /*want_records=*/false, inert_collisions,
                       inert_deliveries};
      const NodeId lo = static_cast<NodeId>(b << shift);
      const NodeId hi = static_cast<NodeId>(
          std::min<std::uint64_t>(n, (b + 1) << shift));
      in_scan_block(g, is_tx, half_duplex, lo, hi, em);
    });
    merge_shard_buffers(std::span<const ShardBuffer>(buffers_.data(), blocks),
                        sink, RecordNone{});
    for (const NodeId u : transmitters) tx_bits_.reset(u);
  }

  std::vector<std::uint32_t> hits_;
  std::vector<NodeId> heard_from_;
  std::vector<NodeId> touched_;
  Bitset tx_bits_;
  ThreadPool* pool_ = nullptr;
  AttentiveFlags att_flags_;
  std::vector<ShardBuffer> buffers_;  ///< per-block output, reused per round
  std::vector<std::vector<NodeId>> touched_blocks_;  ///< per-block touched
  std::vector<std::uint64_t> chunk_starts_;  ///< transmitter chunk cuts
  /// Per-chunk scatter segments, block-partitioned by scatter_off_.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> scatter_;
  std::vector<std::vector<std::uint64_t>> scatter_off_;
};

}  // namespace detail

/// Backend over one fixed, materialised graph.
class CsrTopology {
 public:
  explicit CsrTopology(const graph::Digraph& g) : g_(&g) {
    delivery_.attach(g.num_nodes());
  }

  [[nodiscard]] NodeId num_nodes() const { return g_->num_nodes(); }
  void begin_round(std::uint32_t /*round*/) {}
  void set_parallelism(ThreadPool* pool) { delivery_.set_parallelism(pool); }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path,
               const std::optional<std::span<const NodeId>>& attentive,
               bool collisions_inert, Sink& sink) {
    delivery_.deliver(*g_, transmitters, is_tx, half_duplex, path, attentive,
                      collisions_inert, sink);
  }

 private:
  const graph::Digraph* g_;
  detail::CsrDelivery delivery_;
};

/// Backend over a changing topology: round r uses sequence.at(r).
class DynamicCsrTopology {
 public:
  explicit DynamicCsrTopology(graph::TopologySequence& sequence)
      : sequence_(&sequence), n_(sequence.num_nodes()) {
    delivery_.attach(n_);
  }

  [[nodiscard]] NodeId num_nodes() const { return n_; }
  void set_parallelism(ThreadPool* pool) { delivery_.set_parallelism(pool); }

  void begin_round(std::uint32_t round) {
    g_ = &sequence_->at(round);
    RADNET_CHECK(g_->num_nodes() == n_, "topology changed its node count");
  }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath path,
               const std::optional<std::span<const NodeId>>& attentive,
               bool collisions_inert, Sink& sink) {
    delivery_.deliver(*g_, transmitters, is_tx, half_duplex, path, attentive,
                      collisions_inert, sink);
  }

 private:
  graph::TopologySequence* sequence_;
  NodeId n_;
  const graph::Digraph* g_ = nullptr;
  detail::CsrDelivery delivery_;
};

}  // namespace radnet::sim
