// The implicit mobility-RGG backend: random-walk mobility over a random
// geometric graph, with the graph never materialised. This is the
// graph-free counterpart of graph::MobilityRgg — the same process law (n
// devices uniform in the unit square, an independent uniform step of
// length at most `step` per round reflected at the borders, symmetric
// links within `radius`) — realised as O(n) position state plus a
// per-round cell grid instead of an O(m) edge list rebuilt every round.
//
// Exactness contract: *exact in distribution for every protocol.* Unlike
// the G(n,p) sampling backends, delivery here involves no randomness at
// all — given the round's positions, listener v hears transmitter t iff
// their distance is within `radius`, deterministically — so the only
// random state is the motion process itself, which this backend simulates
// faithfully (same initial law, same per-round step law as
// graph::MobilityRgg). There is no repeated-transmitter caveat and no
// modelled regime: a run differs from the explicit oracle only in *which*
// uniforms the motion draws consume (counter-keyed streams here,
// one sequential stream there), i.e. bit-level, never in law.
// tests/sim/rgg_topology_equivalence_test.cpp pins this with KS checks
// against the explicit MobilityRgg oracle and with a brute-force
// O(n·k) geometry cross-check of single rounds.
//
// Cell-grid delivery: positions bucket into a square grid of side >=
// `radius` (cells_ per axis, capped so the grid never exceeds O(n)
// cells). A listener's potential transmitters all lie in its own cell or
// the 8 surrounding ones, so one round costs
//   O(n)                 movement (2 uniforms per node)
// + O(k + occupied·9)    bucket the k transmitters, stamp active cells
//                        (sharded per transmitter chunk, serial merge
//                        O(runs) — see bucket_transmitters)
// + O(n + sum over listeners near transmitters of the <= 9 cells'
//                        transmitter counts, early-exiting at the second
//                        hit — a collision needs no exact count)
// with zero graph memory: state is 16 B per node (positions) plus O(cells)
// grid scratch. Listeners whose 3x3 neighbourhood holds no transmitter are
// rejected with a single stamp load.
//
// StreamKey keying scheme (support/rng.hpp): the backend's root key forks
// one lane per round — round r's movement draws come from
// key.fork(r).fork(block) — plus the reserved kInitLane (>= 2^32, so it
// can never collide with a round counter) for the initial placement. A
// node's step is therefore a pure function of (spec seed, round, block),
// never of thread schedule or draw order, so the sharded movement sweep
// is bit-identical at any thread count. The delivery sweep draws no
// randomness at all and shards over the same fixed kShardBlockSize
// listener blocks, emitted through the ShardBuffer/merge machinery of
// sim/sharding.hpp: blocks run in any order, buffers merge serially in
// ascending listener order, and the engine sink observes exactly the
// event sequence a serial sweep would have produced (the block-merge
// ordering invariant). The transmitter bucketing is sharded too, under
// the per-chunk merge contract: each transmitter chunk counting-sorts
// locally, a serial cell-ordered merge lays out the shared CSR, and the
// chunks scatter into disjoint reserved slots — RNG-free, so the bucket
// contents the sweep sees are byte-identical at any thread count *and*
// any chunk granularity (the bucketing oracle test sweeps both).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/generators.hpp"
#include "sim/sharding.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/thread_pool.hpp"

namespace radnet::sim {

/// Parameters of an implicit (never materialised) mobility RGG: n devices
/// in the unit square, uniform step of length at most `step` per round
/// (reflected at the borders), symmetric links within `radius` — the same
/// model as graph::MobilityRgg, graph-free. `rng` is the private motion
/// randomness; a run consumes a copy, so the same spec replays identically.
struct ImplicitRgg {
  NodeId n = 0;
  double radius = 0.0;
  double step = 0.0;
  Rng rng{};
};

/// The implicit mobility-RGG backend. See the file comment for the model,
/// the exactness contract and the cell-grid round cost.
class ImplicitRggTopology {
 public:
  /// Listeners (and movers) per shard block. Fixed — part of the motion
  /// randomness contract: results depend on the block decomposition,
  /// never on thread count.
  static constexpr NodeId kShardBlockSize = detail::kShardBlockSize;

  /// Reserved fork counter for the initial placement draws. Round
  /// counters stay below 2^32, so this lane can never collide with a
  /// round's movement key.
  static constexpr std::uint64_t kInitLane = 0x1'0000'0003ull;

  /// Default transmitter-chunk width of the sharded bucketing phase. Not
  /// part of any randomness contract — bucketing draws no RNG and the
  /// cell-ordered merge makes the bucket contents provably independent of
  /// the decomposition — so it is free to change (and overridable below).
  static constexpr NodeId kTxChunkSize = 4096;

  explicit ImplicitRggTopology(const ImplicitRgg& spec)
      : n_(spec.n), radius_(spec.radius), step_(spec.step) {
    RADNET_REQUIRE(spec.n >= 1, "implicit RGG needs n >= 1");
    RADNET_REQUIRE(spec.radius > 0.0 && spec.radius <= 1.5,
                   "radius must be in (0, 1.5]");
    RADNET_REQUIRE(spec.step >= 0.0 && spec.step <= 1.0,
                   "step must be in [0,1]");
    key_ = StreamKey::from_rng(spec.rng);
    r2_ = radius_ * radius_;
    // Cell side >= radius keeps the 3x3 neighbourhood sufficient; the cap
    // keeps grid scratch O(n) even for radii far below the connectivity
    // threshold (larger cells are still correct, just scan more pairs).
    const auto from_radius = static_cast<std::uint64_t>(1.0 / radius_);
    const auto cap = static_cast<std::uint64_t>(
        std::ceil(std::sqrt(2.0 * static_cast<double>(n_))));
    cells_ = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, std::min(from_radius, std::max<std::uint64_t>(1, cap))));
    cell_size_ = 1.0 / static_cast<double>(cells_);
    const std::size_t grid = static_cast<std::size_t>(cells_) * cells_;
    cell_begin_.assign(grid + 1, 0);
    cell_fill_.assign(grid, 0);
    near_tx_stamp_.assign(grid, 0);
    pts_.resize(n_);
    init_positions();
  }

  [[nodiscard]] NodeId num_nodes() const { return n_; }

  /// The current round's positions (for tests and geometry oracles); valid
  /// after begin_round(r) for round r.
  [[nodiscard]] const std::vector<graph::Point>& positions() const {
    return pts_;
  }

  /// Serial blocks when null (the default); sharded movement, transmitter
  /// bucketing and delivery sweeps on `pool` otherwise. Either way the
  /// output is bit-identical.
  void set_parallelism(ThreadPool* pool) { pool_ = pool; }

  /// Forces the transmitter-chunk width of the sharded bucketing phase
  /// (0 restores the default). A test/bench knob, never an observable
  /// one: the bucketing oracle in
  /// tests/sim/rgg_topology_equivalence_test.cpp sweeps granularities ×
  /// schedules and asserts identical cell contents and stamps throughout.
  void set_bucket_chunk(NodeId width) {
    bucket_chunk_ = width == 0 ? kTxChunkSize : width;
  }

  // --- bucketing introspection (for the oracle test and diagnostics) ----

  /// Runs just the bucketing phase for the current round's positions;
  /// callers pair it with unbucket_for_test() to restore the grid.
  void bucket_for_test(std::span<const NodeId> transmitters) {
    bucket_transmitters(transmitters);
  }
  void unbucket_for_test() { unbucket_transmitters(); }
  [[nodiscard]] std::uint32_t grid_cells() const { return cells_; }
  [[nodiscard]] std::uint32_t cell_of(NodeId v) const {
    return cell_index(pts_[v]);
  }
  /// Ids of the transmitters bucketed into `cell`, in segment order (the
  /// order the sweep enumerates hits in); empty for unoccupied cells.
  [[nodiscard]] std::span<const NodeId> cell_entries(
      std::uint32_t cell) const {
    return {tx_id_.data() + cell_begin_[cell],
            cell_fill_[cell] - cell_begin_[cell]};
  }
  /// Whether the sweep would consider `cell`'s listeners at all this
  /// round (some transmitter occupies its 3x3 neighbourhood).
  [[nodiscard]] bool cell_stamped(std::uint32_t cell) const {
    return near_tx_stamp_[cell] == round_stamp_;
  }

  /// Advances the motion process to round `round` (non-decreasing, the
  /// engine's access pattern). Round 0 is the initial placement; each
  /// later round applies one reflected uniform step per node, drawn from
  /// that round's counter-keyed streams.
  void begin_round(std::uint32_t round) {
    RADNET_REQUIRE(round >= cur_round_,
                   "implicit RGG must be accessed with non-decreasing rounds");
    while (cur_round_ < round) {
      ++cur_round_;
      move_step(cur_round_);
    }
  }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath /*path*/,
               const std::optional<std::span<const NodeId>>& attentive,
               bool collisions_inert, Sink& sink) {
    if (transmitters.empty()) return;
    bucket_transmitters(transmitters);

    const detail::AttentiveFlags* inert_deliveries = nullptr;
    if (attentive.has_value()) {
      att_flags_.set_round(n_, *attentive);
      inert_deliveries = &att_flags_;
    }

    const std::uint64_t blocks = detail::block_count(n_, kShardBlockSize);
    const auto run_block = [&](std::uint64_t b, auto& em) {
      const NodeId lo = static_cast<NodeId>(b * kShardBlockSize);
      const NodeId hi = static_cast<NodeId>(std::min<std::uint64_t>(
          n_, (b + 1) * static_cast<std::uint64_t>(kShardBlockSize)));
      sweep_block(lo, hi, is_tx, half_duplex, em);
    };
    if (pool_ != nullptr && blocks > 1) {
      if (buffers_.size() < blocks) buffers_.resize(blocks);
      pool_->parallel_for_index(blocks, [&](std::uint64_t b) {
        detail::ShardBuffer& buf = buffers_[b];
        buf.clear();
        detail::BufferEmitter em{buf, /*want_records=*/false,
                                 collisions_inert, inert_deliveries};
        run_block(b, em);
      });
      detail::merge_shard_buffers(
          std::span<const detail::ShardBuffer>(buffers_.data(), blocks), sink,
          detail::RecordNone{});
    } else {
      detail::RecordNone none;
      detail::DirectEmitter<Sink, detail::RecordNone> em{
          sink, none, collisions_inert, inert_deliveries};
      for (std::uint64_t b = 0; b < blocks; ++b) {
        run_block(b, em);
        em.flush_block();
      }
    }

    if (attentive.has_value()) att_flags_.clear_round(*attentive);
    unbucket_transmitters();
  }

 private:
  [[nodiscard]] std::uint32_t cell_index(const graph::Point& pt) const {
    auto cx = static_cast<std::uint32_t>(pt.x / cell_size_);
    auto cy = static_cast<std::uint32_t>(pt.y / cell_size_);
    cx = std::min(cx, cells_ - 1);
    cy = std::min(cy, cells_ - 1);
    return cy * cells_ + cx;
  }

  /// Initial placement: uniform in the unit square, drawn per block from
  /// the reserved init lane so the placement (like every later step) is a
  /// pure function of (spec seed, block).
  void init_positions() {
    const StreamKey init_key = key_.fork(kInitLane);
    for_each_block([&](std::uint64_t b, NodeId lo, NodeId hi) {
      Rng rng = init_key.fork(b).make_rng();
      for (NodeId v = lo; v < hi; ++v)
        pts_[v] = graph::Point{rng.next_double(), rng.next_double()};
    });
  }

  /// One motion round: the same reflected uniform step law as
  /// graph::MobilityRgg::move_step, drawn from (round, block)-keyed
  /// streams. Blocks write disjoint position ranges, so the parallel
  /// schedule is race-free and (being counter-keyed) bit-identical to the
  /// serial one.
  void move_step(std::uint32_t round) {
    if (step_ <= 0.0) return;  // parked devices: topology is static
    const StreamKey round_key = key_.fork(round);
    for_each_block([&](std::uint64_t b, NodeId lo, NodeId hi) {
      Rng rng = round_key.fork(b).make_rng();
      for (NodeId v = lo; v < hi; ++v) {
        graph::Point& pt = pts_[v];
        pt.x += rng.uniform_real(-step_, step_);
        pt.y += rng.uniform_real(-step_, step_);
        if (pt.x < 0.0) pt.x = -pt.x;
        if (pt.x > 1.0) pt.x = 2.0 - pt.x;
        if (pt.y < 0.0) pt.y = -pt.y;
        if (pt.y > 1.0) pt.y = 2.0 - pt.y;
        pt.x = std::clamp(pt.x, 0.0, 1.0);
        pt.y = std::clamp(pt.y, 0.0, 1.0);
      }
    });
  }

  template <class Body>
  void for_each_block(Body&& body) {
    const std::uint64_t blocks = detail::block_count(n_, kShardBlockSize);
    const auto run = [&](std::uint64_t b) {
      const NodeId lo = static_cast<NodeId>(b * kShardBlockSize);
      const NodeId hi = static_cast<NodeId>(std::min<std::uint64_t>(
          n_, (b + 1) * static_cast<std::uint64_t>(kShardBlockSize)));
      body(b, lo, hi);
    };
    if (pool_ != nullptr && blocks > 1)
      pool_->parallel_for_index(blocks, run);
    else
      for (std::uint64_t b = 0; b < blocks; ++b) run(b);
  }

  /// Counting-sorts the round's k transmitters into the cell grid
  /// (cell_begin_/the tx SoA arrays form a CSR over occupied cells only)
  /// and stamps every cell whose 3x3 neighbourhood holds a transmitter, so
  /// the sweep rejects listeners in silent neighbourhoods with one load.
  /// Sharded per transmitter chunk under the per-chunk merge contract of
  /// sim/sharding.hpp: each chunk sorts its transmitters by cell locally
  /// (stable, so chunk-local order = transmitter-list order), a serial
  /// cell-ordered merge lays out the shared CSR in O(runs), and the chunks
  /// scatter coordinates into their reserved, disjoint slots. Chunks are
  /// merged in ascending order, so each cell's segment concatenates the
  /// chunks' sub-segments in transmitter-list order — the sweep's hit
  /// enumeration is byte-identical to a serial counting sort's, at any
  /// thread count and any chunk granularity (the phase draws no RNG).
  /// Cost O(k + occupied·9) work; the CSR counters are restored to zero in
  /// O(occupied) by unbucket_transmitters.
  void bucket_transmitters(std::span<const NodeId> transmitters) {
    const std::uint64_t chunks =
        detail::block_count(transmitters.size(), bucket_chunk_);
    if (bucket_chunks_.size() < chunks) bucket_chunks_.resize(chunks);
    bucket_tx_ = transmitters;

    // Phase 1 (parallel): chunk-local counting sort into (cell, len) runs.
    detail::run_chunked(pool_, chunks,
                        [this](std::uint64_t c) { bucket_sort_chunk(c); });

    // Phase 2 (serial cell-ordered merge, O(runs)): accumulate per-cell
    // counts in chunk-scan order (occupied_ = first-touch order), lay the
    // CSR out with an exclusive scan, then hand every run its scatter
    // slot. After this loop cell_fill_[c] is the segment *end*, the same
    // invariant the sweep reads.
    occupied_.clear();
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const BucketChunk& bc = bucket_chunks_[c];
      for (std::size_t r = 0; r < bc.run_cell.size(); ++r) {
        const std::uint32_t cell = bc.run_cell[r];
        if (cell_fill_[cell] == 0) occupied_.push_back(cell);
        cell_fill_[cell] += bc.run_len[r];
      }
    }
    // Coordinates are inlined (structure-of-arrays, so the distance kernel
    // can load four x's or four y's as one vector) rather than
    // random-accessed from the n-sized positions array.
    std::uint32_t offset = 0;
    for (const std::uint32_t cell : occupied_) {
      cell_begin_[cell] = offset;
      offset += cell_fill_[cell];
      cell_fill_[cell] = cell_begin_[cell];
    }
    for (std::uint64_t c = 0; c < chunks; ++c) {
      BucketChunk& bc = bucket_chunks_[c];
      bc.run_slot.resize(bc.run_cell.size());
      for (std::size_t r = 0; r < bc.run_cell.size(); ++r) {
        bc.run_slot[r] = cell_fill_[bc.run_cell[r]];
        cell_fill_[bc.run_cell[r]] += bc.run_len[r];
      }
    }

    const std::size_t k = transmitters.size();
    tx_x_.resize(k + simd::kRggPad);
    tx_y_.resize(k + simd::kRggPad);
    tx_id_.resize(k + simd::kRggPad);
    // Version-stamp the active neighbourhoods; stamps self-invalidate next
    // round, so nothing is ever cleared.
    ++round_stamp_;

    // Phase 3 (parallel): scatter into the reserved disjoint slots and
    // stamp each run cell's 3x3 neighbourhood. A cell split across chunks
    // is stamped more than once — every store writes the same
    // round_stamp_ value through a relaxed atomic_ref, and the pool join
    // orders all of them before the sweep's plain loads.
    detail::run_chunked(pool_, chunks,
                        [this](std::uint64_t c) { bucket_scatter_chunk(c); });

    // Far-away sentinels let the vector scan load full-width chunks that
    // overhang the final segment without reading garbage distances.
    for (std::size_t i = k; i < k + simd::kRggPad; ++i) {
      tx_x_[i] = 1e30;
      tx_y_[i] = 1e30;
      tx_id_[i] = detail::kNoSender;
    }
  }

  /// Phase 1 of bucket_transmitters for chunk `c`: cell indices for the
  /// chunk's transmitters, a stable local sort by cell, and the collapsed
  /// (cell, len) run list. Out-of-line so the pool fan-out lambda captures
  /// only `this` (std::function inline storage — no per-round allocation).
  void bucket_sort_chunk(std::uint64_t c) {
    BucketChunk& bc = bucket_chunks_[c];
    const std::uint64_t lo = c * static_cast<std::uint64_t>(bucket_chunk_);
    const std::uint64_t hi =
        std::min<std::uint64_t>(bucket_tx_.size(), lo + bucket_chunk_);
    const auto len = static_cast<std::uint32_t>(hi - lo);
    bc.cell.resize(len);
    bc.order.resize(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      bc.cell[i] = cell_index(pts_[bucket_tx_[lo + i]]);
      bc.order[i] = i;
    }
    // Index tie-break = stable order, without std::stable_sort's per-call
    // heap-allocated merge buffer (tests/sim/shard_scratch_test.cpp pins
    // steady-state rounds allocation-free).
    std::sort(bc.order.begin(), bc.order.end(),
              [&bc](std::uint32_t a, std::uint32_t b) {
                return bc.cell[a] != bc.cell[b] ? bc.cell[a] < bc.cell[b]
                                                : a < b;
              });
    bc.run_cell.clear();
    bc.run_len.clear();
    for (std::uint32_t i = 0; i < len; ++i) {
      const std::uint32_t cell = bc.cell[bc.order[i]];
      if (bc.run_cell.empty() || bc.run_cell.back() != cell) {
        bc.run_cell.push_back(cell);
        bc.run_len.push_back(0);
      }
      ++bc.run_len.back();
    }
  }

  /// Phase 3 of bucket_transmitters for chunk `c`: scatter the chunk's
  /// transmitters (in local sorted order) into the runs' reserved slots
  /// and stamp each run cell's neighbourhood.
  void bucket_scatter_chunk(std::uint64_t c) {
    BucketChunk& bc = bucket_chunks_[c];
    const std::uint64_t lo = c * static_cast<std::uint64_t>(bucket_chunk_);
    std::size_t pos = 0;
    for (std::size_t r = 0; r < bc.run_cell.size(); ++r) {
      const std::uint32_t len = bc.run_len[r];
      std::uint32_t slot = bc.run_slot[r];
      for (std::uint32_t j = 0; j < len; ++j, ++pos, ++slot) {
        const NodeId t = bucket_tx_[lo + bc.order[pos]];
        const graph::Point& pt = pts_[t];
        tx_x_[slot] = pt.x;
        tx_y_[slot] = pt.y;
        tx_id_[slot] = t;
      }
      stamp_cell(bc.run_cell[r]);
    }
  }

  /// Stamps `cell`'s 3x3 neighbourhood with the current round stamp.
  /// Callable concurrently: all concurrent stores write the same value.
  void stamp_cell(std::uint32_t cell) {
    const std::uint32_t cx = cell % cells_;
    const std::uint32_t cy = cell / cells_;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= cells_ || ny >= cells_) continue;
        std::atomic_ref<std::uint32_t>(
            near_tx_stamp_[static_cast<std::uint32_t>(ny) * cells_ +
                           static_cast<std::uint32_t>(nx)])
            .store(round_stamp_, std::memory_order_relaxed);
      }
    }
  }

  /// Restores the zero-count invariant so the next round's bucketing can
  /// skip a full-grid clear.
  void unbucket_transmitters() {
    for (const std::uint32_t c : occupied_) {
      cell_begin_[c] = 0;
      cell_fill_[c] = 0;
    }
  }

  /// One listener block of the delivery sweep: for each listener able to
  /// hear, count transmitters within `radius` among the <= 9 neighbouring
  /// cells, early-exiting at the second hit (a collision needs no exact
  /// count). The per-cell distance checks run through the dispatched
  /// simd::rgg_scan kernel — four squared distances per compare on AVX2,
  /// in the exact double-precision form of the scalar scan, so every mode
  /// emits the same events. Purely deterministic geometry — no RNG — so
  /// block outputs are independent of schedule by construction.
  template <class Emitter>
  void sweep_block(NodeId lo, NodeId hi, const std::vector<char>& is_tx,
                   bool half_duplex, Emitter& em) {
    const simd::RggScanCtx ctx{tx_x_.data(),       tx_y_.data(),
                               tx_id_.data(),      cell_begin_.data(),
                               cell_fill_.data(),  cells_,
                               r2_};
    for (NodeId v = lo; v < hi; ++v) {
      if (half_duplex && is_tx[v]) continue;  // its own radio is busy
      const graph::Point& pv = pts_[v];
      auto cx = static_cast<std::uint32_t>(pv.x / cell_size_);
      auto cy = static_cast<std::uint32_t>(pv.y / cell_size_);
      cx = std::min(cx, cells_ - 1);
      cy = std::min(cy, cells_ - 1);
      if (near_tx_stamp_[cy * cells_ + cx] != round_stamp_)
        continue;  // no transmitter within reach: silence
      NodeId sender = 0;
      const std::uint32_t hits = simd::rgg_scan(ctx, pv.x, pv.y, cx, cy, v,
                                                &sender);
      if (hits == 1)
        em.on_deliver(v, sender);
      else if (hits >= 2)
        em.on_collide(v);
    }
  }

  NodeId n_ = 0;
  double radius_ = 0.0;
  double step_ = 0.0;
  double r2_ = 0.0;
  std::uint32_t cells_ = 1;   ///< grid cells per axis
  double cell_size_ = 1.0;    ///< 1 / cells_, always >= radius (or capped)
  StreamKey key_;             ///< motion randomness root (from the spec's rng)
  std::uint32_t cur_round_ = 0;
  ThreadPool* pool_ = nullptr;

  std::vector<graph::Point> pts_;        ///< current positions, 16 B/node
  std::vector<std::uint32_t> cell_begin_;  ///< tx CSR starts (occupied cells)
  std::vector<std::uint32_t> cell_fill_;   ///< tx CSR ends / scatter cursors
  /// Transmitters, cell-grouped, structure-of-arrays with kRggPad
  /// sentinels (see bucket_transmitters / simd::RggScanCtx).
  std::vector<double> tx_x_;
  std::vector<double> tx_y_;
  std::vector<NodeId> tx_id_;
  std::vector<std::uint32_t> occupied_;    ///< cells holding >= 1 transmitter
  std::vector<std::uint32_t> near_tx_stamp_;  ///< round_stamp_ if 3x3 has a tx
  std::uint32_t round_stamp_ = 0;

  /// One transmitter chunk's private bucketing scratch, reused across
  /// rounds (resized, never shrunk) — pinned allocation-free in steady
  /// state by tests/sim/shard_scratch_test.cpp.
  struct BucketChunk {
    std::vector<std::uint32_t> cell;   ///< cell of chunk-local tx i
    std::vector<std::uint32_t> order;  ///< local indices, stably cell-sorted
    std::vector<std::uint32_t> run_cell;  ///< distinct cells, sorted order
    std::vector<std::uint32_t> run_len;   ///< transmitters per run
    std::vector<std::uint32_t> run_slot;  ///< global scatter start per run
  };
  NodeId bucket_chunk_ = kTxChunkSize;  ///< see set_bucket_chunk()
  std::span<const NodeId> bucket_tx_;   ///< current phase's transmitters
  std::vector<BucketChunk> bucket_chunks_;
  detail::AttentiveFlags att_flags_;          ///< swept rounds' attentive mask
  std::vector<detail::ShardBuffer> buffers_;  ///< per-block scratch, reused
};

}  // namespace radnet::sim
