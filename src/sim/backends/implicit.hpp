// The implicit G(n,p) backend: the graph is never materialised. For
// directed G(n,p) the number of transmissions a listener hears, given k
// transmitters, is Binomial(k, p) independently per listener (with k-1 for
// a listener that is itself a transmitter: self-loops do not exist), and
// conditioned on hearing exactly one, the sender is uniform over the
// eligible transmitters. A round therefore costs O(n) — or O(expected
// hits) in sparse rounds via geometric skip-sampling over the
// transmitter x listener pair grid — with zero graph memory.
//
// Exactness contract: exactly equivalent to a fixed G(n,p) whenever each
// node transmits at most once (Algorithm 1: no ordered pair is ever
// examined twice); for repeated transmitters it simulates the memoryless
// churn = 1 limit — see backends/implicit_dynamic.hpp for the full
// dynamic model set, and the README backend matrix + exactness table for
// the family-wide picture.
//
// Within-trial parallelism: listener outcomes are independent across
// listeners (and the pair grid independent across pairs), so a round sweep
// decomposes exactly into contiguous listener blocks of kShardBlockSize.
// Each (round, block) derives a private Rng by counter keying (StreamKey in
// support/rng.hpp) — never from a shared sequential stream — so blocks can
// execute on the thread pool in any order and still produce bit-identical
// results for any thread count. Blocks buffer their events (and
// resolved-pair records) into the ShardBuffers of sim/sharding.hpp, merged
// serially in ascending listener order into the engine sink.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "sim/sharding.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/thread_pool.hpp"

namespace radnet::sim {

/// Parameters of an implicit (never materialised) directed G(n,p) topology.
/// `rng` is the private edge-randomness stream; a run consumes a copy, so
/// the same spec replays identically.
struct ImplicitGnp {
  NodeId n = 0;
  double p = 0.0;
  Rng rng{};
};

namespace detail {

/// The shared sampling core of the implicit G(n,p) family: per-listener
/// outcome laws and the sparse / dense / attentive round strategies. Both
/// implicit backends delegate here; the dynamic backend adds two hooks —
///   Skip:   bool skip(listener)  — listeners handled elsewhere this round
///           (sketch-pinned) or unable to hear (failed); sampled paths
///           reject them, aggregate universes exclude them by count. Must
///           be safe to call concurrently (it only reads per-round state).
///   Record: record(sender, listener) — called for every ordered pair
///           individually resolved *present* (a clean delivery's sender,
///           every hit the sparse pair grid enumerates); the dynamic
///           backend persists these in its sketch. Only invoked serially,
///           during buffer merge.
///
/// Randomness is counter-keyed, never sequential: begin_round(r) forks a
/// per-round key, every sweep block b draws from fork(r).fork(b), and the
/// serial attentive/aggregate path from a reserved lane of the same round
/// key. A draw is a pure function of (backend seed, round, block), so the
/// sweep is bit-identical for any thread count and any block execution
/// order.
class GnpSampler {
 public:
  /// Listeners per shard block. Fixed — part of the randomness contract:
  /// results depend on the block decomposition, never on thread count.
  static constexpr NodeId kShardBlockSize = detail::kShardBlockSize;

  /// Reserved fork counters: kAuxLane feeds the serial aggregate draws,
  /// kAttentiveLane roots the attentive path's per-chunk streams. Sweep
  /// block indices stay below 2^32, so lanes >= 2^32 can never collide.
  static constexpr std::uint64_t kAuxLane = 0x1'0000'0001ull;
  static constexpr std::uint64_t kAttentiveLane = 0x1'0000'0002ull;

  /// Sub-stream layout of a dense plain-sweep block's key: fork counters
  /// 0 .. LaneRng::kLanes-1 seed the lane generator (the listener at block
  /// offset i consumes lane i % kLanes's draw number i / kLanes — a pure
  /// function of the offset, so classification batches without any
  /// per-listener branching), and kSenderSubLane feeds the block's sender
  /// stream, consumed in ascending listener order by the deliveries. The
  /// split decouples the fixed-rate classification draws from the
  /// variable-length sender draws (Lemire rejection), which is what lets
  /// the classification vectorise at all.
  static constexpr std::uint64_t kSenderSubLane = LaneRng::kLanes;

  void init(NodeId n, double p, Rng rng) {
    RADNET_REQUIRE(n >= 1, "implicit G(n,p) needs n >= 1");
    RADNET_REQUIRE(p >= 0.0 && p <= 1.0, "p must be in [0,1]");
    n_ = n;
    key_ = StreamKey::from_rng(rng);
    begin_round(0);
    set_p(p);
  }

  /// Serial blocks when null (the default); sharded sweeps on `pool`
  /// otherwise. Either way the output is bit-identical.
  void set_parallelism(ThreadPool* pool) { pool_ = pool; }

  /// The dynamic backend turns this off when it is not tracking pair
  /// states (churn == 1): its Record hook is then a runtime no-op, and
  /// buffering resolutions for it would be pure overhead. Purely a
  /// buffering knob — the serial path calls the hook either way.
  void set_records_enabled(bool enabled) { records_enabled_ = enabled; }

  /// Forks the round's key; must be called once per round before deliver.
  void begin_round(std::uint32_t round) {
    round_key_ = key_.fork(round);
    lane_rng_ = round_key_.fork(kAuxLane).make_rng();
  }

  void set_p(double p) {
    p_ = p;
    inv_log1m_p_ = (p_ > 0.0 && p_ < 1.0) ? 1.0 / std::log1p(-p_) : 0.0;
  }

  [[nodiscard]] NodeId n() const noexcept { return n_; }
  [[nodiscard]] double p() const noexcept { return p_; }

  /// Per-round listener outcome probabilities for a common eligible
  /// transmitter count c: P[hear nothing] = (1-p)^c, P[hear exactly one] =
  /// c p (1-p)^{c-1}, everything else collides. The engine's semantics only
  /// distinguish these three classes, so the exact hit count never needs to
  /// be drawn in dense rounds.
  struct OutcomeProbs {
    double silent = 1.0;  ///< P[X = 0]
    double single = 0.0;  ///< P[X = 1]

    [[nodiscard]] double hit() const { return 1.0 - silent; }
    /// P[exactly one | at least one].
    [[nodiscard]] double single_given_hit() const {
      const double q = hit();
      return q > 0.0 ? single / q : 0.0;
    }
  };

  [[nodiscard]] OutcomeProbs outcome_probs(std::uint64_t count) const {
    // Threshold evaluations are O(1) per round (hoisted out of the block
    // loops into dense_plan / the attentive preamble); the counter pins
    // that in a regression test. Only touched on the coordinating thread —
    // parallel callers with per-listener eligible counts (the dynamic
    // backend's sharded classify phase) use outcome_probs_for() instead.
    ++outcome_probs_evals_;
    return outcome_probs_for(count);
  }

  /// The pure outcome law for `count` eligible transmitters — no eval
  /// counter, so it is safe to call concurrently from sharded phases whose
  /// per-listener counts genuinely vary (nothing to hoist there).
  [[nodiscard]] OutcomeProbs outcome_probs_for(std::uint64_t count) const {
    OutcomeProbs probs;
    if (count == 0 || p_ <= 0.0) return probs;
    if (p_ >= 1.0) {  // degenerate complete graph
      probs.silent = 0.0;
      probs.single = count == 1 ? 1.0 : 0.0;
      return probs;
    }
    const double cd = static_cast<double>(count);
    probs.silent = std::exp(cd * std::log1p(-p_));
    probs.single = cd * p_ * std::exp((cd - 1.0) * std::log1p(-p_));
    return probs;
  }

  /// Total outcome_probs evaluations so far — a regression hook: the
  /// per-round thresholds are computed once per sweep, never per block.
  [[nodiscard]] std::uint64_t outcome_probs_evals() const {
    return outcome_probs_evals_;
  }

  /// Everything a dense (non-sparse) round's blocks need, computed once
  /// per sweep from round-global quantities — every block sees the same
  /// plan, so the strategy choice and thresholds are shared, not
  /// recomputed per block.
  struct DensePlan {
    OutcomeProbs probs;     ///< non-transmitting listener outcome law
    OutcomeProbs probs_tx;  ///< transmitting listener law (silent=1 half-dup)
    bool plain = false;     ///< q > 0.5: vectorised plain sweep
    double q = 0.0;         ///< P[hear >= 1] for a non-transmitting listener
    // Skip-walk constants (only filled when !plain):
    double q_tx = 0.0;
    double single_given_hit = 0.0;
    double single_given_hit_tx = 0.0;
    double inv_log1m_q = 0.0;
    // Plain-sweep thresholds (only meaningful when plain):
    simd::DenseClassifyParams params{};
  };

  [[nodiscard]] DensePlan dense_plan(std::uint64_t k, bool half_duplex) const {
    DensePlan plan;
    plan.probs = outcome_probs(k);
    plan.probs_tx = half_duplex ? OutcomeProbs{} : outcome_probs(k - 1);
    plan.q = plan.probs.hit();
    plan.plain = plan.q > 0.5;
    if (plan.plain) {
      plan.params = simd::DenseClassifyParams{
          plan.probs.silent, plan.probs.silent + plan.probs.single,
          plan.probs_tx.silent, plan.probs_tx.silent + plan.probs_tx.single};
    } else {
      plan.q_tx = plan.probs_tx.hit();
      plan.single_given_hit = plan.probs.single_given_hit();
      plan.single_given_hit_tx = plan.probs_tx.single_given_hit();
      plan.inv_log1m_q = 1.0 / std::log1p(-plan.q);
    }
    return plan;
  }

  /// The full static-backend round: attentive fast path when the protocol
  /// declared few listeners attentive, sparse pair grid or dense binomial
  /// classification otherwise. `universe_nontx` / `universe_tx` size the
  /// aggregate groups of the attentive path (the static backend passes
  /// n - k and k; the dynamic backend subtracts failed and pinned nodes).
  template <class Sink, class Skip, class Record>
  void round(std::span<const NodeId> transmitters,
             const std::vector<char>& is_tx, bool half_duplex,
             const std::optional<std::span<const NodeId>>& attentive,
             bool collisions_inert, Sink& sink, Skip&& skip, Record&& record,
             std::uint64_t universe_nontx, std::uint64_t universe_tx) {
    const std::uint64_t k = transmitters.size();
    if (k == 0 || p_ <= 0.0) return;
    const double expected_events =
        static_cast<double>(n_) *
        std::min(1.0, static_cast<double>(k) * p_);  // ~ listeners with hits
    // When the protocol has declared most listeners inert and enumerating
    // just those is cheaper than enumerating every hit listener, classify
    // the attentive listeners individually and fold the rest into exact
    // aggregate counts: O(|attentive| + k) per round.
    if (attentive.has_value() &&
        static_cast<double>(attentive->size()) < expected_events) {
      attentive_round(transmitters, is_tx, half_duplex, *attentive,
                      collisions_inert, sink, skip, record, universe_nontx,
                      universe_tx);
      return;
    }
    sweep(transmitters, is_tx, half_duplex, attentive, collisions_inert, sink,
          skip, record);
  }

  /// Per-listener enumeration in ascending listener order, block-sharded:
  /// the listener range splits into kShardBlockSize blocks, each drawing
  /// from its own (round, block) counter-keyed Rng into a private buffer;
  /// blocks run on the pool (or serially — same bits either way) and the
  /// buffers merge into the sink in block order. Per block, the sparse
  /// pair grid runs when well under one expected hit per listener, the
  /// binomial classification otherwise (the strategy choice depends only
  /// on round-global quantities, so all blocks agree). When an attentive
  /// hint accompanies a swept round (the hint was too large for the
  /// attentive fast path), deliveries to listeners outside it fold into
  /// per-block bulk counts — their callbacks are declared no-ops — which
  /// keeps the serial merge O(attentive deliveries).
  template <class Sink, class Skip, class Record>
  void sweep(std::span<const NodeId> transmitters,
             const std::vector<char>& is_tx, bool half_duplex,
             const std::optional<std::span<const NodeId>>& attentive,
             bool collisions_inert, Sink& sink, Skip&& skip,
             Record&& record) {
    const std::uint64_t k = transmitters.size();
    if (k == 0 || p_ <= 0.0) return;
    const AttentiveFlags* inert_deliveries = nullptr;
    if (attentive.has_value()) {
      att_flags_.set_round(n_, *attentive);
      inert_deliveries = &att_flags_;
    }
    // Expected hits per listener is k*p. Sparse rounds (well under one hit
    // per listener) enumerate the Bernoulli(p) pair grid by geometric
    // skipping — O(expected hits). Dense rounds classify each listener as
    // silent / single / collided straight from the round's Binomial outcome
    // probabilities — O(event listeners) via a skip-walk, O(n) at worst.
    // Both laws are independent across listeners (and pairs), so the block
    // decomposition is exact, not approximate.
    const bool sparse = p_ < 1.0 && static_cast<double>(k) * p_ < 0.25;
    // Round-global thresholds and strategy, computed exactly once per sweep
    // (never per block — pinned by outcome_probs_evals()).
    DensePlan plan;
    if (!sparse && p_ < 1.0) plan = dense_plan(k, half_duplex);
    const std::uint64_t blocks = block_count(n_, kShardBlockSize);
    const auto run_block = [&](std::uint64_t b, auto& em,
                               const StreamKey& block_key) {
      const NodeId lo = static_cast<NodeId>(b * kShardBlockSize);
      const NodeId hi = static_cast<NodeId>(std::min<std::uint64_t>(
          n_, (b + 1) * static_cast<std::uint64_t>(kShardBlockSize)));
      if (sparse) {
        Rng rng = block_key.make_rng();
        pair_grid_block(lo, hi, rng, transmitters, is_tx, half_duplex, em,
                        skip);
      } else {
        binomial_block(lo, hi, block_key, plan, transmitters, is_tx,
                       half_duplex, em, skip);
      }
    };
    if (pool_ != nullptr && blocks > 1) {
      const bool want_records = wants_records<Record>();
      if (buffers_.size() < blocks) buffers_.resize(blocks);
      pool_->parallel_for_index(blocks, [&](std::uint64_t b) {
        ShardBuffer& buf = buffers_[b];
        buf.clear();
        BufferEmitter em{buf, want_records, collisions_inert,
                         inert_deliveries};
        run_block(b, em, round_key_.fork(b));
      });
      merge_shard_buffers(std::span<const ShardBuffer>(buffers_.data(), blocks),
                          sink, record);
    } else {
      // Serial schedule: same blocks, same per-block keyed streams, but
      // events flow straight to the sink — no buffering, no replay.
      DirectEmitter<Sink, std::remove_reference_t<Record>> em{
          sink, record, collisions_inert, inert_deliveries};
      for (std::uint64_t b = 0; b < blocks; ++b) {
        run_block(b, em, round_key_.fork(b));
        em.flush_block();
      }
    }
    if (attentive.has_value()) att_flags_.clear_round(*attentive);
  }

  /// O(|attentive| + k) round, block-sharded over the hint's span:
  /// contiguous chunks of kShardBlockSize attentive listeners classify on
  /// their own (round, attentive-lane, chunk) counter-keyed streams, the
  /// buffers merge in chunk order (preserving the hint-order event
  /// contract), and every other listener's outcome folds into the two-draw
  /// aggregate below. For Algorithm-1-style protocols the heavy
  /// mid-broadcast rounds live here, so this path shards exactly like the
  /// full sweep.
  template <class Sink, class Skip, class Record>
  void attentive_round(std::span<const NodeId> transmitters,
                       const std::vector<char>& is_tx, bool half_duplex,
                       std::span<const NodeId> attentive,
                       bool collisions_inert, Sink& sink, Skip&& skip,
                       Record&& record, std::uint64_t universe_nontx,
                       std::uint64_t universe_tx) {
    const std::uint64_t k = transmitters.size();
    const OutcomeProbs probs = outcome_probs(k);
    const OutcomeProbs probs_tx =
        half_duplex ? OutcomeProbs{} : outcome_probs(k - 1);

    const std::uint64_t m = attentive.size();
    const std::uint64_t blocks = (m + kShardBlockSize - 1) / kShardBlockSize;
    std::uint64_t att_nontx = 0, att_tx = 0;
    if (m > 0) {
      const StreamKey att_key = round_key_.fork(kAttentiveLane);
      const auto run_chunk = [&](std::uint64_t b, auto& em, Rng& rng) {
        const std::uint64_t lo = b * kShardBlockSize;
        const std::uint64_t hi =
            std::min<std::uint64_t>(m, lo + kShardBlockSize);
        std::uint64_t nontx = 0, txc = 0;
        for (std::uint64_t i = lo; i < hi; ++i) {
          const NodeId v = attentive[static_cast<std::size_t>(i)];
          if (skip(v)) continue;
          const bool tx = is_tx[v] != 0;
          if (tx && half_duplex) continue;
          ++(tx ? txc : nontx);
          classify(v, tx, probs, probs_tx, transmitters, em, rng);
        }
        return std::pair<std::uint64_t, std::uint64_t>{nontx, txc};
      };
      if (pool_ != nullptr && blocks > 1) {
        const bool want_records = wants_records<Record>();
        if (buffers_.size() < blocks) buffers_.resize(blocks);
        if (att_counts_.size() < blocks) att_counts_.resize(blocks);
        pool_->parallel_for_index(blocks, [&](std::uint64_t b) {
          ShardBuffer& buf = buffers_[b];
          buf.clear();
          BufferEmitter em{buf, want_records, collisions_inert};
          Rng rng = att_key.fork(b).make_rng();
          att_counts_[b] = run_chunk(b, em, rng);
        });
        merge_shard_buffers(std::span<const ShardBuffer>(buffers_.data(), blocks),
                            sink, record);
        for (std::uint64_t b = 0; b < blocks; ++b) {
          att_nontx += att_counts_[b].first;
          att_tx += att_counts_[b].second;
        }
      } else {
        DirectEmitter<Sink, std::remove_reference_t<Record>> em{
            sink, record, collisions_inert};
        for (std::uint64_t b = 0; b < blocks; ++b) {
          Rng rng = att_key.fork(b).make_rng();
          const auto counts = run_chunk(b, em, rng);
          em.flush_block();
          att_nontx += counts.first;
          att_tx += counts.second;
        }
      }
    }
    // The silent majority: all remaining listeners, by eligible
    // transmitter count.
    RADNET_CHECK(att_nontx <= universe_nontx,
                 "attentive span exceeds the listener universe");
    aggregate_group(universe_nontx - att_nontx, probs, sink);
    if (!half_duplex) {
      RADNET_CHECK(att_tx <= universe_tx,
                   "attentive span exceeds the transmitter universe");
      aggregate_group(universe_tx - att_tx, probs_tx, sink);
    }
  }

  /// Aggregate outcome accounting for `count` exchangeable listeners the
  /// protocol declared inert: the number of single-hit listeners is
  /// Binomial(count, P1) and, conditioned on it, the number of collided
  /// listeners is Binomial(count - singles, P2 / (1 - P1)) — exactly the
  /// marginal the per-listener enumeration would produce, in two draws
  /// from the round's reserved lane.
  template <class Sink>
  void aggregate_group(std::uint64_t count, const OutcomeProbs& probs,
                       Sink& sink) {
    if (count == 0 || probs.hit() <= 0.0) return;
    const std::uint64_t singles = lane_rng_.binomial(count, probs.single);
    const double collide_given_not_single =
        probs.single >= 1.0
            ? 0.0
            : std::min(1.0, (1.0 - probs.silent - probs.single) /
                                (1.0 - probs.single));
    const std::uint64_t collisions =
        lane_rng_.binomial(count - singles, collide_given_not_single);
    sink.deliver_bulk(singles);
    sink.collide_bulk(collisions);
  }

 private:
  /// Whether `Record` actually stores resolutions: RecordNone never does
  /// (the static backend), and the dynamic backend declares its hook a
  /// no-op via set_records_enabled(false) at churn == 1. Blocks then skip
  /// buffering pairs entirely.
  template <class Record>
  [[nodiscard]] bool wants_records() const {
    return records_enabled_ &&
           !std::is_same_v<std::remove_cvref_t<Record>, RecordNone>;
  }

  /// Draws one listener's outcome from its three-way distribution and
  /// emits the matching event (nothing / delivery / collision). The single
  /// classification step shared by the attentive path and the dense sweep;
  /// the caller supplies the stream (a block rng or the serial lane).
  template <class Emitter>
  void classify(NodeId v, bool tx, const OutcomeProbs& probs,
                const OutcomeProbs& probs_tx,
                std::span<const NodeId> transmitters, Emitter& em, Rng& rng) {
    const OutcomeProbs& pr = tx ? probs_tx : probs;
    const double u = rng.next_double();
    if (u < pr.silent) return;
    if (u < pr.silent + pr.single)
      deliver_uniform(v, tx, transmitters, em, rng);
    else
      em.on_collide(v);
  }

  /// Delivers to listener v from a uniformly chosen eligible transmitter
  /// (by symmetry, conditioned on exactly one hit the sender is uniform).
  /// A full-duplex transmitter listener excludes itself by swapping the
  /// last slot in for a draw that lands on v.
  template <class Emitter>
  void deliver_uniform(NodeId v, bool tx, std::span<const NodeId> transmitters,
                       Emitter& em, Rng& rng) {
    const std::uint64_t k = transmitters.size();
    const std::uint64_t eligible = k - (tx ? 1u : 0u);
    const std::uint64_t j = rng.uniform_below(eligible);
    NodeId sender = transmitters[static_cast<std::size_t>(j)];
    if (tx && sender == v) sender = transmitters[static_cast<std::size_t>(k - 1)];
    em.on_record(sender, v);
    em.on_deliver(v, sender);
  }

  /// Skip-samples one block's slice of the listener-major grid of
  /// (listener, transmitter) ordered pairs — pair indices
  /// [lo * k, hi * k) — each present with probability p; pairs whose
  /// transmitter is the listener itself (self-loops) or, under
  /// half-duplex, whose listener transmits (its radio cannot hear) are
  /// discarded. Listener-major layout groups a listener's pair samples
  /// consecutively, so events stream out in ascending listener order with
  /// no counter arrays and no sort, and a listener never spans two blocks.
  /// Expected cost O(k * (hi - lo) * p). Every retained hit is an
  /// individually resolved present pair and is passed to on_record.
  template <class Emitter, class Skip>
  void pair_grid_block(NodeId lo, NodeId hi, Rng& rng,
                       std::span<const NodeId> transmitters,
                       const std::vector<char>& is_tx, bool half_duplex,
                       Emitter& em, Skip&& skip) {
    const std::uint64_t k = transmitters.size();
    const std::uint64_t limit = static_cast<std::uint64_t>(hi) * k;
    NodeId cur = hi;  // listener whose hits are being accumulated
    std::uint32_t cur_hits = 0;
    NodeId cur_sender = 0;
    const auto flush = [&] {
      if (cur_hits == 0) return;
      if (cur_hits == 1)
        em.on_deliver(cur, cur_sender);
      else
        em.on_collide(cur);
      cur_hits = 0;
    };
    for (std::uint64_t idx = static_cast<std::uint64_t>(lo) * k +
                             rng.geometric_inv(inv_log1m_p_) - 1;
         idx < limit; idx += rng.geometric_inv(inv_log1m_p_)) {
      const NodeId v = static_cast<NodeId>(idx / k);
      const NodeId t = transmitters[static_cast<std::size_t>(idx % k)];
      if (v == t || (half_duplex && is_tx[v]) || skip(v)) continue;
      if (v != cur) {
        flush();
        cur = v;
      }
      em.on_record(t, v);
      ++cur_hits;
      cur_sender = t;
    }
    flush();
  }

  /// Listeners classified per call to the dispatched dense kernel: large
  /// enough to amortise the dispatch and keep lane state in registers,
  /// small enough for the code buffer to live in L1. A multiple of
  /// LaneRng::kLanes, so partial lane batches only occur at block ends.
  static constexpr NodeId kDenseChunk = 2048;

  /// Classifies one block's listeners as silent / single-hit / collided
  /// directly from Binomial(k', p) outcome probabilities, where k'
  /// excludes the listener itself when it is transmitting (no self-loops).
  /// Thresholds and strategy come precomputed in `plan` (round-global, so
  /// every block agrees). Two regimes:
  ///
  ///   * plain (q > 0.5): most listeners hear something, so every listener
  ///     draws one classification uniform. This is the vectorised path:
  ///     the block's LaneRng (seeded from the block key's lane counters)
  ///     produces the uniforms positionally — listener offset i consumes
  ///     lane i % kLanes — and simd::classify_dense turns a whole chunk
  ///     into outcome codes branch-free; only the (rare in this regime)
  ///     silent gaps and the emit calls remain scalar. Skipped and
  ///     half-duplex-transmitting listeners consume their positional draw
  ///     like everyone else (outcome discarded), keeping the draw schedule
  ///     a pure function of the block span. Sender draws on delivery come
  ///     from the block's dedicated kSenderSubLane stream in ascending
  ///     listener order.
  ///   * skip-walk (q <= 0.5): geometric skip-sampling over the listeners
  ///     with >= 1 hit at rate q, on the block key's direct Rng — a
  ///     transmitter listener's true hit probability q' (from
  ///     Binomial(k-1, p)) is below the walk's rate q, so those landings
  ///     are thinned by q'/q — exact rejection, preserving per-listener
  ///     independence. O(event listeners), inherently branchy, left scalar.
  template <class Emitter, class Skip>
  void binomial_block(NodeId lo, NodeId hi, const StreamKey& block_key,
                      const DensePlan& plan,
                      std::span<const NodeId> transmitters,
                      const std::vector<char>& is_tx, bool half_duplex,
                      Emitter& em, Skip&& skip) {
    const std::uint64_t k = transmitters.size();
    if (p_ >= 1.0) {
      // Degenerate complete graph: every listener hears every eligible
      // transmitter deterministically.
      for (NodeId v = lo; v < hi; ++v) {
        const bool tx = is_tx[v] != 0;
        if ((half_duplex && tx) || skip(v)) continue;
        const std::uint64_t eligible = k - (tx ? 1u : 0u);
        if (eligible == 0) continue;
        if (eligible >= 2) {
          em.on_collide(v);
          continue;
        }
        NodeId sender = transmitters[0];
        if (tx && sender == v) sender = transmitters[k - 1];
        em.on_deliver(v, sender);
      }
      return;
    }

    if (plan.plain) {
      LaneRng lanes(block_key);
      Rng sender_rng = block_key.fork(kSenderSubLane).make_rng();
      unsigned char codes[kDenseChunk];
      const NodeId span = hi - lo;
      for (NodeId base = 0; base < span; base += kDenseChunk) {
        const NodeId m = std::min<NodeId>(kDenseChunk, span - base);
        simd::classify_dense(lanes, is_tx.data() + lo + base, m, codes,
                             plan.params);
        for (NodeId i = 0; i < m; ++i) {
          if (codes[i] == simd::kOutcomeSilent) continue;
          const NodeId v = lo + base + i;
          if (skip(v)) continue;
          const bool tx = is_tx[v] != 0;
          // Half-duplex transmitters classify against silent_tx = 1 and
          // never reach here; full-duplex ones carry the probs_tx law.
          if (codes[i] == simd::kOutcomeDeliver)
            deliver_uniform(v, tx, transmitters, em, sender_rng);
          else
            em.on_collide(v);
        }
      }
      return;
    }

    Rng rng = block_key.make_rng();
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo;
    for (std::uint64_t o = rng.geometric_inv(plan.inv_log1m_q) - 1; o < span;
         o += rng.geometric_inv(plan.inv_log1m_q)) {
      const NodeId v = lo + static_cast<NodeId>(o);
      if (skip(v)) continue;
      const bool tx = is_tx[v] != 0;
      double single_prob = plan.single_given_hit;
      if (tx) {
        if (half_duplex) continue;
        if (rng.next_double() * plan.q >= plan.q_tx) continue;
        single_prob = plan.single_given_hit_tx;
      }
      if (rng.next_double() < single_prob)
        deliver_uniform(v, tx, transmitters, em, rng);
      else
        em.on_collide(v);
    }
  }

  NodeId n_ = 0;
  double p_ = 0.0;
  double inv_log1m_p_ = 0.0;
  /// Regression hook (see outcome_probs): bumped only on the coordinating
  /// thread — all per-block work receives precomputed thresholds.
  mutable std::uint64_t outcome_probs_evals_ = 0;
  StreamKey key_;        ///< backend randomness root (from the spec's rng)
  StreamKey round_key_;  ///< key_.fork(round), re-forked every begin_round
  Rng lane_rng_;         ///< serial attentive/aggregate stream for the round
  ThreadPool* pool_ = nullptr;
  bool records_enabled_ = true;
  AttentiveFlags att_flags_;          ///< swept rounds' attentive mask
  std::vector<ShardBuffer> buffers_;  ///< per-block scratch, reused per round
  /// Per-chunk (non-tx, tx) attentive-listener counts, merged serially.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> att_counts_;
};

}  // namespace detail

/// The implicit G(n,p) backend: per-round delivery outcomes are sampled
/// directly from the transmitter count, the graph never exists. See the
/// file comment for the model and exactness conditions.
class ImplicitGnpTopology {
 public:
  explicit ImplicitGnpTopology(const ImplicitGnp& spec) {
    sampler_.init(spec.n, spec.p, spec.rng);
  }

  [[nodiscard]] NodeId num_nodes() const { return sampler_.n(); }
  void begin_round(std::uint32_t round) { sampler_.begin_round(round); }
  void set_parallelism(ThreadPool* pool) { sampler_.set_parallelism(pool); }

  template <class Sink>
  void deliver(std::span<const NodeId> transmitters,
               const std::vector<char>& is_tx, bool half_duplex,
               DeliveryPath /*path*/,
               const std::optional<std::span<const NodeId>>& attentive,
               bool collisions_inert, Sink& sink) {
    const std::uint64_t k = transmitters.size();
    sampler_.round(transmitters, is_tx, half_duplex, attentive,
                   collisions_inert, sink, detail::SkipNone{},
                   detail::RecordNone{},
                   static_cast<std::uint64_t>(sampler_.n()) - k, k);
  }

 private:
  detail::GnpSampler sampler_;
};

}  // namespace radnet::sim
