#include "sim/reference_engine.hpp"

#include <algorithm>
#include <vector>

#include "support/require.hpp"

namespace radnet::sim {

RunResult ReferenceEngine::run(const graph::Digraph& g, Protocol& protocol,
                               Rng protocol_rng, const RunOptions& options) {
  const graph::NodeId n = g.num_nodes();
  RADNET_REQUIRE(n >= 1, "cannot simulate an empty network");

  RunResult result;
  result.ledger.reset(n);
  protocol.reset(n, std::move(protocol_rng));

  if (protocol.is_complete()) {
    result.completed = true;
    return result;
  }

  std::vector<char> is_tx(n, 0);

  for (Round r = 0; r < options.max_rounds; ++r) {
    protocol.begin_round(r);

    std::vector<graph::NodeId> transmitters;
    const auto candidates = protocol.candidates();
    if (candidates.empty() &&
        (options.stop_on_empty_candidates ||
         (options.run_to_quiescence && result.completed)))
      break;
    if (!protocol.sample_transmitters(r, transmitters))
      for (const graph::NodeId v : candidates)
        if (protocol.wants_transmit(v, r)) transmitters.push_back(v);

    std::fill(is_tx.begin(), is_tx.end(), 0);
    for (const graph::NodeId u : transmitters) {
      is_tx[u] = 1;
      result.ledger.record_transmission(u);
    }

    RoundTrace* rt = nullptr;
    if (options.record_trace) {
      result.trace.rounds.push_back({});
      rt = &result.trace.rounds.back();
      rt->round = r;
      rt->transmitters = transmitters;
      std::sort(rt->transmitters.begin(), rt->transmitters.end());
    }

    // First-principles reception: for every node, count transmitting
    // in-neighbours; exactly one means delivery from that neighbour.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (options.half_duplex && is_tx[v]) continue;
      std::uint32_t heard = 0;
      graph::NodeId sender = 0;
      for (const graph::NodeId u : g.in_neighbors(v)) {
        if (is_tx[u]) {
          ++heard;
          sender = u;
          if (heard > 1) break;
        }
      }
      if (heard == 1) {
        ++result.ledger.total_deliveries;
        if (rt != nullptr) rt->deliveries.push_back({v, sender});
        protocol.on_delivered(v, sender, r);
      } else if (heard > 1) {
        ++result.ledger.total_collisions;
        if (rt != nullptr) rt->collisions.push_back(v);
        protocol.on_collision(v, r);
      }
    }

    protocol.end_round(r);
    result.rounds_executed = r + 1;
    result.ledger.node_rounds =
        static_cast<std::uint64_t>(n) * result.rounds_executed;
    if (options.round_observer) options.round_observer(r);

    if (!result.completed && protocol.is_complete()) {
      result.completed = true;
      result.completion_round = r + 1;
      if (!options.run_to_quiescence) break;
    }
  }

  return result;
}

}  // namespace radnet::sim
