// Small integer/real math helpers used throughout the reproduction.
//
// The paper's quantities are all in terms of log n, log d, log(n/D) and d = np;
// these helpers centralise the conventions (log base 2 unless stated, floors
// and ceilings as in the paper's definitions of T and lambda).
#pragma once

#include <cmath>
#include <cstdint>

namespace radnet {

/// floor(log2(x)) for x >= 1. ilog2(1) == 0.
[[nodiscard]] std::uint32_t ilog2_floor(std::uint64_t x);

/// ceil(log2(x)) for x >= 1. ilog2_ceil(1) == 0.
[[nodiscard]] std::uint32_t ilog2_ceil(std::uint64_t x);

/// Natural log of n as a double; requires n >= 1.
[[nodiscard]] double ln(double x);

/// log base 2 as a double; requires x > 0.
[[nodiscard]] double log2d(double x);

/// The paper's Phase-1 round count T = floor(log n / log d) for d > 1.
/// Saturates at 1 from below (a single round) so callers need not special-case
/// very dense graphs where d >= n.
[[nodiscard]] std::uint32_t phase1_rounds(std::uint64_t n, double d);

/// The paper's lambda = log2(n / D), clamped to [1, log2 n]. Used by
/// Algorithm 3 and the Theorem 4.2 trade-off.
[[nodiscard]] double lambda_of(std::uint64_t n, std::uint64_t diameter);

/// Integer power with saturation at std::uint64_t max.
[[nodiscard]] std::uint64_t ipow_sat(std::uint64_t base, std::uint32_t exp);

/// 2^-k as a double for k in [0, 1023]; k beyond that returns 0.
[[nodiscard]] double pow2_neg(std::uint32_t k);

}  // namespace radnet
