#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/require.hpp"
#include "support/rng.hpp"

namespace radnet {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double Sample::mean() const {
  RADNET_REQUIRE(!values_.empty(), "Sample::mean on empty sample");
  double s = 0.0;
  for (const double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  RADNET_REQUIRE(!values_.empty(), "Sample::stddev on empty sample");
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (const double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Sample::min() const {
  RADNET_REQUIRE(!values_.empty(), "Sample::min on empty sample");
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  RADNET_REQUIRE(!values_.empty(), "Sample::max on empty sample");
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::quantile(double q) const {
  RADNET_REQUIRE(!values_.empty(), "Sample::quantile on empty sample");
  RADNET_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Sample::Interval Sample::bootstrap_mean_ci(Rng& rng, double confidence,
                                           std::uint32_t resamples) const {
  RADNET_REQUIRE(!values_.empty(), "bootstrap on empty sample");
  RADNET_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0,1)");
  std::vector<double> means;
  means.reserve(resamples);
  const std::size_t n = values_.size();
  for (std::uint32_t r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      s += values_[rng.uniform_below(n)];
    means.push_back(s / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto idx = [&](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    return means[static_cast<std::size_t>(std::llround(pos))];
  };
  return Interval{idx(alpha), idx(1.0 - alpha)};
}

Histogram::Histogram(double lo, double hi, std::uint32_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RADNET_REQUIRE(hi > lo, "Histogram needs hi > lo");
  RADNET_REQUIRE(bins >= 1, "Histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  double pos = (x - lo_) / span * static_cast<double>(counts_.size());
  if (pos < 0.0) pos = 0.0;
  const double maxbin = static_cast<double>(counts_.size() - 1);
  if (pos > maxbin) pos = maxbin;
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

std::uint64_t Histogram::bin_count(std::uint32_t b) const {
  RADNET_REQUIRE(b < counts_.size(), "Histogram bin out of range");
  return counts_[b];
}

double Histogram::bin_lo(std::uint32_t b) const {
  RADNET_REQUIRE(b < counts_.size(), "Histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::uint32_t b) const {
  RADNET_REQUIRE(b < counts_.size(), "Histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(b + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::uint32_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::uint32_t b = 0; b < counts_.size(); ++b) {
    const auto bars = static_cast<std::uint32_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) * width);
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ")  ";
    for (std::uint32_t i = 0; i < bars; ++i) os << '#';
    os << "  " << counts_[b] << '\n';
  }
  return os.str();
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  RADNET_REQUIRE(x.size() == y.size(), "fit_linear needs equal-length vectors");
  RADNET_REQUIRE(x.size() >= 2, "fit_linear needs at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-300) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double normal_two_sided_z(double confidence) {
  RADNET_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0, 1)");
  // Solve erf(x) = confidence by Newton iteration and return x * sqrt(2).
  // erf is concave increasing on [0, inf), so Newton from BELOW the root is
  // monotone and globally convergent (the tangent line lies above the
  // curve, so each iterate lands past the previous one but never past the
  // root). Starting above the root would be catastrophic: erf's tail is so
  // flat that the first step overshoots to large negative x and diverges.
  constexpr double kSqrt2 = 1.4142135623730951;
  constexpr double kTwoOverSqrtPi = 1.1283791670955126;
  double x = 0.0;
  for (int it = 0; it < 80; ++it) {
    const double f = std::erf(x) - confidence;
    const double d = kTwoOverSqrtPi * std::exp(-x * x);
    const double step = f / d;
    x -= step;
    if (std::abs(step) < 1e-14) break;
  }
  return x * kSqrt2;
}

Sample::Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                 double confidence) {
  RADNET_REQUIRE(trials >= 1, "wilson_interval needs at least one trial");
  RADNET_REQUIRE(successes <= trials,
                 "wilson_interval needs successes <= trials");
  const double z = normal_two_sided_z(confidence);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return Sample::Interval{std::max(0.0, centre - half),
                          std::min(1.0, centre + half)};
}

std::optional<Sample::Interval> quantile_ci(const Sample& sample, double q,
                                            double confidence) {
  RADNET_REQUIRE(q > 0.0 && q < 1.0, "quantile_ci needs q in (0, 1)");
  const std::size_t n = sample.size();
  // The normal approximation to Binomial(n, q) needs some mass on both
  // sides of the quantile; below this the order-statistic bound cannot
  // hold at any useful confidence.
  if (n < 2 || static_cast<double>(n) * q * (1.0 - q) < 1.0)
    return std::nullopt;
  const double z = normal_two_sided_z(confidence);
  const double m = static_cast<double>(n) * q;
  const double sd = std::sqrt(static_cast<double>(n) * q * (1.0 - q));
  const double lo_pos = std::floor(m - z * sd);
  const double hi_pos = std::ceil(m + z * sd);
  // Required order statistics outside the sample: the quantile is not
  // bounded at this confidence yet.
  if (lo_pos < 0.0 || hi_pos > static_cast<double>(n - 1)) return std::nullopt;
  std::vector<double> sorted = sample.values();
  std::sort(sorted.begin(), sorted.end());
  const auto lo = static_cast<std::size_t>(lo_pos);
  const auto hi = static_cast<std::size_t>(hi_pos);
  return Sample::Interval{sorted[lo], sorted[hi]};
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  RADNET_REQUIRE(!a.empty() && !b.empty(),
                 "ks_statistic needs two non-empty samples");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

}  // namespace radnet
