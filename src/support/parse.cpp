#include "support/parse.hpp"

#include <charconv>
#include <cmath>
#include <string>

#include "support/require.hpp"

namespace radnet {

namespace {

[[noreturn]] void fail(std::string_view what, std::string_view expected,
                       std::string_view text) {
  throw std::invalid_argument(std::string(what) + " expects " +
                              std::string(expected) + ", got '" +
                              std::string(text) + "'");
}

}  // namespace

std::uint64_t parse_u64_strict(std::string_view text, std::string_view what) {
  std::uint64_t v = 0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  // from_chars on unsigned rejects '-' itself, but be explicit about '+'
  // too: flag values are canonical text, not freeform arithmetic.
  if (text.empty() || text.front() == '+' || text.front() == '-')
    fail(what, "a non-negative integer", text);
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last)
    fail(what, "a non-negative integer", text);
  return v;
}

double parse_double_strict(std::string_view text, std::string_view what) {
  double v = 0.0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  if (text.empty()) fail(what, "a number", text);
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last || !std::isfinite(v))
    fail(what, "a finite number", text);
  return v;
}

double parse_double_in(std::string_view text, std::string_view what, double lo,
                       double hi) {
  const double v = parse_double_strict(text, what);
  RADNET_REQUIRE(v >= lo && v <= hi,
                 std::string(what) + " must be in [" + std::to_string(lo) +
                     ", " + std::to_string(hi) + "], got " + std::string(text));
  return v;
}

}  // namespace radnet
