#include "support/rng.hpp"

#include <bit>
#include <cmath>

#include "support/require.hpp"
#include "support/simd.hpp"

namespace radnet {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : s_) w = splitmix64(s);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ull;
}

Rng Rng::split(std::uint64_t a) const {
  std::uint64_t h = s_[0] ^ mix64(a + 0x100ull);
  return Rng(mix64(h));
}

Rng Rng::split(std::uint64_t a, std::uint64_t b) const {
  std::uint64_t h = s_[0] ^ mix64(a + 0x100ull);
  h = mix64(h ^ mix64(b + 0x200ull));
  return Rng(h);
}

Rng Rng::split(std::uint64_t a, std::uint64_t b, std::uint64_t c) const {
  std::uint64_t h = s_[0] ^ mix64(a + 0x100ull);
  h = mix64(h ^ mix64(b + 0x200ull));
  h = mix64(h ^ mix64(c + 0x300ull));
  return Rng(h);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  RADNET_REQUIRE(bound >= 1, "uniform_below needs bound >= 1");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RADNET_REQUIRE(lo <= hi, "uniform_int needs lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform_real(double lo, double hi) {
  RADNET_REQUIRE(lo < hi, "uniform_real needs lo < hi");
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::geometric(double p) {
  RADNET_REQUIRE(p > 0.0 && p <= 1.0, "geometric needs p in (0,1]");
  if (p >= 1.0) return 1;
  // Single source of truth for the inversion: callers with a round-constant
  // p precompute the inverse log themselves and call geometric_inv directly.
  return geometric_inv(1.0 / std::log1p(-p));
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double np = static_cast<double>(n) * p;
  if (n <= 64 || np <= 16.0) {
    // Direct simulation / geometric skipping for the sparse case.
    if (p < 0.1) {
      std::uint64_t count = 0;
      std::uint64_t i = 0;
      while (true) {
        i += geometric(p);
        if (i > n) break;
        ++count;
      }
      return count;
    }
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < n; ++i) count += bernoulli(p) ? 1u : 0u;
    return count;
  }
  // Mode-centred inversion for large n*p: exact for any (n, p), expected
  // O(sqrt(n p (1-p))) steps. Start at the mode, walk outward alternately
  // above/below, subtracting pmf mass until the uniform is consumed; the
  // pmf is advanced by its two-term recurrences from a single lgamma-based
  // evaluation at the mode.
  const double q = 1.0 - p;
  const double nd = static_cast<double>(n);
  std::uint64_t m = static_cast<std::uint64_t>((nd + 1.0) * p);
  if (m > n) m = n;
  const double md = static_cast<double>(m);
  const double log_pm = std::lgamma(nd + 1.0) - std::lgamma(md + 1.0) -
                        std::lgamma(nd - md + 1.0) + md * std::log(p) +
                        (nd - md) * std::log1p(-p);
  const double pm = std::exp(log_pm);
  const double up_ratio = p / q;
  const double down_ratio = q / p;
  double u = next_double();
  u -= pm;
  if (u < 0.0) return m;
  std::uint64_t lo = m, hi = m;
  double lo_p = pm, hi_p = pm;
  while (lo > 0 || hi < n) {
    if (hi < n) {
      hi_p *= static_cast<double>(n - hi) / static_cast<double>(hi + 1) *
              up_ratio;
      ++hi;
      u -= hi_p;
      if (u < 0.0) return hi;
    }
    if (lo > 0) {
      lo_p *= static_cast<double>(lo) / static_cast<double>(n - lo + 1) *
              down_ratio;
      --lo;
      u -= lo_p;
      if (u < 0.0) return lo;
    }
  }
  // Floating-point leftovers (mass ~1e-16) land on the mode.
  return m;
}

LaneRng::LaneRng(const StreamKey& key) {
  for (unsigned l = 0; l < kLanes; ++l) {
    // Exactly key.fork(l).make_rng()'s seeding: four splitmix64 steps from
    // the forked key, with the same (unreachable) all-zero guard.
    std::uint64_t s = key.fork(l).value();
    for (unsigned w = 0; w < 4; ++w) s_[w][l] = splitmix64(s);
    if ((s_[0][l] | s_[1][l] | s_[2][l] | s_[3][l]) == 0)
      s_[0][l] = 0x9e3779b97f4a7c15ull;
  }
}

std::uint64_t LaneRng::next_u64_lane(unsigned lane) {
  const std::uint64_t s1 = s_[1][lane];
  const std::uint64_t result = std::rotl(s1 * 5, 7) * 9;
  const std::uint64_t t = s1 << 17;
  s_[2][lane] ^= s_[0][lane];
  s_[3][lane] ^= s1;
  s_[1][lane] ^= s_[2][lane];
  s_[0][lane] ^= s_[3][lane];
  s_[2][lane] ^= t;
  s_[3][lane] = std::rotl(s_[3][lane], 45);
  return result;
}

double LaneRng::next_double_lane(unsigned lane) {
  return static_cast<double>(next_u64_lane(lane) >> 11) * 0x1.0p-53;
}

void LaneRng::next_u64_lanes_scalar(std::uint64_t* out) {
  for (unsigned l = 0; l < kLanes; ++l) out[l] = next_u64_lane(l);
}

void LaneRng::next_u64_lanes(std::uint64_t* out) {
  simd::lane_step(*this, out);
}

void LaneRng::uniform_lanes(double* out) {
  std::uint64_t bits[kLanes];
  next_u64_lanes(bits);
  for (unsigned l = 0; l < kLanes; ++l)
    out[l] = static_cast<double>(bits[l] >> 11) * 0x1.0p-53;
}

std::uint64_t LaneRng::bernoulli_lanes(double p) {
  double u[kLanes];
  uniform_lanes(u);
  std::uint64_t mask = 0;
  for (unsigned l = 0; l < kLanes; ++l) mask |= (u[l] < p ? 1ull : 0ull) << l;
  return mask;
}

StreamKey StreamKey::from_rng(const Rng& rng) {
  const std::array<std::uint64_t, 4> s = rng.state();
  std::uint64_t k = mix64(s[0] ^ 0x517cc1b727220a95ull);
  k = mix64(k ^ s[1]);
  k = mix64(k ^ s[2]);
  k = mix64(k ^ s[3]);
  return StreamKey(k);
}

std::uint64_t Rng::sample_cdf(const double* cdf, std::uint64_t size,
                              std::uint64_t miss) {
  RADNET_REQUIRE(size >= 1, "sample_cdf needs a non-empty cdf");
  const double u = next_double();
  if (u >= cdf[size - 1]) return miss;
  // Binary search for the first index with cdf[i] > u.
  std::uint64_t lo = 0, hi = size - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cdf[mid] > u)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

}  // namespace radnet
