// Paper-style result tables.
//
// Every bench binary regenerates one of the paper's tables/figures as (a) an
// aligned ASCII table on stdout and (b) optionally a CSV file, so results can
// be diffed across runs and plotted externally. Cells are strings internally;
// numeric helpers format with a fixed precision so tables are stable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace radnet {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Optional caption printed above the table.
  void set_caption(std::string caption) { caption_ = std::move(caption); }

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double v, int precision = 3);
  Table& add(std::uint64_t v);
  Table& add(std::int64_t v);
  Table& add(int v);
  /// Formats a mean ± stddev pair in one cell.
  Table& add_pm(double mean, double sd, int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const;

  /// Renders the aligned ASCII table.
  [[nodiscard]] std::string str() const;

  /// Writes the table to `os` (ASCII form).
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our cells; commas are asserted
  /// absent).
  [[nodiscard]] std::string csv() const;

  /// Writes csv() to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;

  void push_cell(std::string s);
};

}  // namespace radnet
