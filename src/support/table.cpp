#include "support/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/require.hpp"

namespace radnet {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RADNET_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

Table& Table::row() {
  RADNET_CHECK(cells_.empty() || cells_.back().size() == headers_.size(),
               "previous row incomplete");
  cells_.emplace_back();
  return *this;
}

void Table::push_cell(std::string s) {
  RADNET_REQUIRE(!cells_.empty(), "call row() before add()");
  RADNET_REQUIRE(cells_.back().size() < headers_.size(), "row overfull");
  cells_.back().push_back(std::move(s));
}

Table& Table::add(const std::string& cell) {
  push_cell(cell);
  return *this;
}

Table& Table::add(const char* cell) {
  push_cell(std::string(cell));
  return *this;
}

Table& Table::add(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  push_cell(os.str());
  return *this;
}

Table& Table::add(std::uint64_t v) {
  push_cell(std::to_string(v));
  return *this;
}

Table& Table::add(std::int64_t v) {
  push_cell(std::to_string(v));
  return *this;
}

Table& Table::add(int v) {
  push_cell(std::to_string(v));
  return *this;
}

Table& Table::add_pm(double mean, double sd, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mean << " ± "
     << std::setprecision(precision) << sd;
  push_cell(os.str());
  return *this;
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  RADNET_REQUIRE(r < cells_.size() && c < cells_[r].size(),
                 "Table::cell out of range");
  return cells_[r][c];
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  if (!caption_.empty()) os << caption_ << '\n';
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < row.size() ? row[c] : std::string();
      os << "| " << s << std::string(width[c] - s.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << "|" << std::string(width[c] + 2, '-');
  os << "|\n";
  for (const auto& row : cells_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << str(); }

std::string Table::csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      RADNET_CHECK(row[c].find(',') == std::string::npos,
                   "CSV cell contains a comma");
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << csv();
  if (!out) throw std::runtime_error("error writing " + path);
}

}  // namespace radnet
