// Canonical field hashing for specs-as-data.
//
// The batch sweep service (harness/batch.hpp) addresses every Monte-Carlo
// result by a stable 64-bit hash of its *canonicalised* spec — the
// validated, defaulted field set, never the source text — so two spec
// lines that differ only in key order, whitespace or spelled-out defaults
// collide onto the same cache entry. HashStream is FNV-1a over tagged
// field encodings with a splitmix64 avalanche finish: FNV gives cheap
// incremental bytes, the final mix removes FNV's weak low-bit diffusion
// so truncated hashes (cache shard prefixes) stay uniform.
//
// Field tags make the encoding self-delimiting: every put() feeds the
// field's tag before its payload, so adjacent fields can never alias
// (e.g. {a="xy", b="z"} vs {a="x", b="yz"}). Doubles hash their IEEE bit
// pattern with -0.0 canonicalised to +0.0; NaNs are rejected — a spec
// field that parsed to NaN is a validation bug, not a hashable value.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "support/require.hpp"
#include "support/rng.hpp"  // mix64

namespace radnet {

/// One-shot FNV-1a over raw bytes with the same avalanche finish
/// HashStream uses — the payload checksum of the cache entries and journal
/// records (support/io.hpp, support/journal.hpp). Not a MAC: it detects
/// torn writes and bit rot, not adversarial tampering.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(h);
}

class HashStream {
 public:
  /// Field tags; stable across sessions — append, never renumber, or every
  /// cached result is silently invalidated (bump the domain string instead
  /// when the encoding itself changes).
  using Tag = std::uint32_t;

  /// Starts a stream under a domain-separation string (e.g.
  /// "radnet-batch-spec-v1") so unrelated hash users never collide.
  explicit HashStream(std::string_view domain) { put_bytes(domain); }

  HashStream& put_u64(Tag tag, std::uint64_t v) {
    put_raw_u64(tag);
    put_raw_u64(v);
    return *this;
  }

  HashStream& put_double(Tag tag, double v) {
    RADNET_REQUIRE(!std::isnan(v), "cannot hash a NaN spec field");
    if (v == 0.0) v = 0.0;  // -0.0 == 0.0, canonicalise the bit pattern
    put_raw_u64(tag);
    put_raw_u64(std::bit_cast<std::uint64_t>(v));
    return *this;
  }

  HashStream& put_string(Tag tag, std::string_view s) {
    put_raw_u64(tag);
    put_raw_u64(s.size());
    put_bytes(s);
    return *this;
  }

  /// Avalanche-finished digest; the stream remains usable (more fields may
  /// be fed and value() taken again).
  [[nodiscard]] std::uint64_t value() const { return mix64(h_); }

 private:
  static constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

  void put_bytes(std::string_view bytes) {
    for (const char c : bytes) {
      h_ ^= static_cast<std::uint8_t>(c);
      h_ *= kFnvPrime;
    }
  }
  void put_raw_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= kFnvPrime;
    }
  }

  std::uint64_t h_ = kFnvOffset;
};

}  // namespace radnet
