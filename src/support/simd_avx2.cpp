// AVX2 implementations of the dispatched kernels (support/simd.hpp). This
// TU is the only one compiled with -mavx2 (plus -ffp-contract=off, shared
// with simd.cpp, so neither side of the identity contract can fuse
// mul+add); everything here must stay byte-identical to the scalar
// reference in simd.cpp — see the header for the exactness argument.
#include "support/simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace radnet::simd {

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

namespace {

inline __m256i rotl64(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

inline __m256i mul5(__m256i x) {
  return _mm256_add_epi64(x, _mm256_slli_epi64(x, 2));
}

inline __m256i mul9(__m256i x) {
  return _mm256_add_epi64(x, _mm256_slli_epi64(x, 3));
}

/// Exact u64 -> double for values below 2^53 (all our inputs are
/// 53-bit: bits >> 11). Split into 32-bit halves, rebias via the
/// 2^84 / 2^52 exponent constants, recombine; every step is exact, so the
/// result equals the scalar static_cast<double> bit-for-bit.
inline __m256d u64_to_pd_exact(__m256i v) {
  const __m256i hi_magic = _mm256_set1_epi64x(0x4530000000000000ll);  // 2^84
  const __m256i lo_magic = _mm256_set1_epi64x(0x4330000000000000ll);  // 2^52
  const __m256d hi_bias = _mm256_set1_pd(0x1.00000001p84);  // 2^84 + 2^52
  __m256i x_hi = _mm256_or_si256(_mm256_srli_epi64(v, 32), hi_magic);
  __m256i x_lo = _mm256_blend_epi32(v, lo_magic, 0xAA);
  __m256d f = _mm256_sub_pd(_mm256_castsi256_pd(x_hi), hi_bias);
  return _mm256_add_pd(f, _mm256_castsi256_pd(x_lo));
}

/// One xoshiro256** step of four lanes held in registers; returns the
/// output word. Same recurrence as Rng::next_u64, exact 64-bit integer ops.
inline __m256i xoshiro_step4(__m256i& s0, __m256i& s1, __m256i& s2,
                             __m256i& s3) {
  const __m256i result = mul9(rotl64(mul5(s1), 7));
  const __m256i t = _mm256_slli_epi64(s1, 17);
  s2 = _mm256_xor_si256(s2, s0);
  s3 = _mm256_xor_si256(s3, s1);
  s1 = _mm256_xor_si256(s1, s2);
  s0 = _mm256_xor_si256(s0, s3);
  s2 = _mm256_xor_si256(s2, t);
  s3 = rotl64(s3, 45);
  return result;
}

}  // namespace

void lane_step_avx2(LaneRng& lanes, std::uint64_t* out) {
  static_assert(LaneRng::kLanes == 8, "two 4-wide halves per step");
  for (unsigned h = 0; h < 2; ++h) {
    // s_[w] rows are 32-byte aligned and each half offset is 32 bytes.
    auto* w0 = reinterpret_cast<__m256i*>(lanes.word(0) + 4 * h);
    auto* w1 = reinterpret_cast<__m256i*>(lanes.word(1) + 4 * h);
    auto* w2 = reinterpret_cast<__m256i*>(lanes.word(2) + 4 * h);
    auto* w3 = reinterpret_cast<__m256i*>(lanes.word(3) + 4 * h);
    __m256i s0 = _mm256_load_si256(w0);
    __m256i s1 = _mm256_load_si256(w1);
    __m256i s2 = _mm256_load_si256(w2);
    __m256i s3 = _mm256_load_si256(w3);
    const __m256i r = xoshiro_step4(s0, s1, s2, s3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * h), r);
    _mm256_store_si256(w0, s0);
    _mm256_store_si256(w1, s1);
    _mm256_store_si256(w2, s2);
    _mm256_store_si256(w3, s3);
  }
}

void classify_dense_avx2(LaneRng& lanes, const char* is_tx,
                         std::uint32_t count, unsigned char* codes,
                         const DenseClassifyParams& params) {
  constexpr unsigned kW = LaneRng::kLanes;
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  const __m256d silent = _mm256_set1_pd(params.silent);
  const __m256d edge = _mm256_set1_pd(params.edge);
  const __m256d silent_tx = _mm256_set1_pd(params.silent_tx);
  const __m256d edge_tx = _mm256_set1_pd(params.edge_tx);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one64 = _mm256_set1_epi64x(1);
  // Keep all lane state in registers across the whole chunk.
  __m256i s[2][4];
  for (unsigned h = 0; h < 2; ++h)
    for (unsigned w = 0; w < 4; ++w)
      s[h][w] =
          _mm256_load_si256(reinterpret_cast<__m256i*>(lanes.word(w) + 4 * h));
  for (std::uint32_t base = 0; base < count; base += kW) {
    const std::uint32_t m = std::min<std::uint32_t>(kW, count - base);
    unsigned char txb[8];
    if (m == kW) {
      std::memcpy(txb, is_tx + base, 8);
    } else {
      std::memset(txb, 0, 8);  // never read past is_tx + count
      std::memcpy(txb, is_tx + base, m);
    }
    const __m128i txv =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(txb));
    alignas(32) std::uint64_t codebuf[kW];
    for (unsigned h = 0; h < 2; ++h) {
      const __m256i r = xoshiro_step4(s[h][0], s[h][1], s[h][2], s[h][3]);
      const __m256d u =
          _mm256_mul_pd(u64_to_pd_exact(_mm256_srli_epi64(r, 11)), scale);
      // A lane is tx iff its byte is nonzero — match scalar `!= 0` for any
      // byte value, so test equality with zero and select the non-tx
      // thresholds where it holds.
      const __m128i tb = h ? _mm_srli_si128(txv, 4) : txv;
      const __m256i not_tx =
          _mm256_cmpeq_epi64(_mm256_cvtepi8_epi64(tb), zero);
      const __m256d sv =
          _mm256_blendv_pd(silent_tx, silent, _mm256_castsi256_pd(not_tx));
      const __m256d ev =
          _mm256_blendv_pd(edge_tx, edge, _mm256_castsi256_pd(not_tx));
      const __m256d lt_silent = _mm256_cmp_pd(u, sv, _CMP_LT_OQ);
      const __m256d lt_edge = _mm256_cmp_pd(u, ev, _CMP_LT_OQ);
      // code = !(u < silent) + !(u < edge): 0 silent, 1 deliver, 2 collide.
      const __m256i code = _mm256_add_epi64(
          _mm256_andnot_si256(_mm256_castpd_si256(lt_silent), one64),
          _mm256_andnot_si256(_mm256_castpd_si256(lt_edge), one64));
      _mm256_store_si256(reinterpret_cast<__m256i*>(codebuf + 4 * h), code);
    }
    for (std::uint32_t l = 0; l < m; ++l)
      codes[base + l] = static_cast<unsigned char>(codebuf[l]);
  }
  for (unsigned h = 0; h < 2; ++h)
    for (unsigned w = 0; w < 4; ++w)
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.word(w) + 4 * h),
                         s[h][w]);
}

std::uint32_t rgg_scan_avx2(const RggScanCtx& ctx, double px, double py,
                            std::uint32_t cx, std::uint32_t cy,
                            std::uint32_t self, std::uint32_t* sender) {
  const __m256d pxv = _mm256_set1_pd(px);
  const __m256d pyv = _mm256_set1_pd(py);
  const __m256d r2v = _mm256_set1_pd(ctx.r2);
  const std::uint32_t x0 = cx > 0 ? cx - 1 : 0;
  const std::uint32_t x1 = std::min(cx + 1, ctx.cells - 1);
  const std::uint32_t y0 = cy > 0 ? cy - 1 : 0;
  const std::uint32_t y1 = std::min(cy + 1, ctx.cells - 1);
  std::uint32_t hits = 0;
  for (std::uint32_t y = y0; y <= y1; ++y) {
    for (std::uint32_t x = x0; x <= x1; ++x) {
      const std::uint32_t c = y * ctx.cells + x;
      const std::uint32_t end = ctx.cell_end[c];
      for (std::uint32_t i = ctx.cell_begin[c]; i < end; i += 4) {
        // Full-width loads may overhang the segment (kRggPad sentinels make
        // them safe); the tail mask discards the overhang, and hits are
        // consumed in ascending index order — same order, same early exit,
        // same sender as the scalar scan.
        const __m256d xs = _mm256_loadu_pd(ctx.xs + i);
        const __m256d ys = _mm256_loadu_pd(ctx.ys + i);
        const __m256d dx = _mm256_sub_pd(pxv, xs);
        const __m256d dy = _mm256_sub_pd(pyv, ys);
        const __m256d d2 =
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
        int mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, r2v, _CMP_LE_OQ));
        const std::uint32_t rem = end - i;
        if (rem < 4) mask &= (1 << rem) - 1;
        while (mask) {
          const int lane = __builtin_ctz(static_cast<unsigned>(mask));
          mask &= mask - 1;
          const std::uint32_t id = ctx.ids[i + static_cast<std::uint32_t>(lane)];
          if (id == self) continue;
          *sender = id;
          if (++hits >= 2) return 2;
        }
      }
    }
  }
  return hits;
}

}  // namespace radnet::simd

#else  // !__AVX2__ — non-x86 build or compiler without -mavx2 support.

namespace radnet::simd {

bool cpu_has_avx2() { return false; }

void lane_step_avx2(LaneRng& lanes, std::uint64_t* out) {
  lane_step_scalar(lanes, out);
}

void classify_dense_avx2(LaneRng& lanes, const char* is_tx,
                         std::uint32_t count, unsigned char* codes,
                         const DenseClassifyParams& params) {
  classify_dense_scalar(lanes, is_tx, count, codes, params);
}

std::uint32_t rgg_scan_avx2(const RggScanCtx& ctx, double px, double py,
                            std::uint32_t cx, std::uint32_t cy,
                            std::uint32_t self, std::uint32_t* sender) {
  return rgg_scan_scalar(ctx, px, py, cx, cy, self, sender);
}

}  // namespace radnet::simd

#endif
