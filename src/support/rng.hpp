// Deterministic, splittable random number generation.
//
// Every randomised quantity in the reproduction is a pure function of a
// 64-bit root seed plus a logical stream path (trial index, node id, phase...).
// This gives three properties the experiment harness depends on:
//
//   1. Reproducibility: re-running a bench with the same seed regenerates the
//      same tables bit-for-bit.
//   2. Schedule independence: Monte-Carlo trials produce identical results
//      whether they run serially or on a thread pool, because each trial owns
//      a generator derived only from (root, trial), never from shared state.
//   3. Independence-by-construction: streams derived with distinct paths are
//      produced by hashing with splitmix64, the standard seeding method for
//      xoshiro-family generators.
//
// The generator is xoshiro256** (Blackman & Vigna), which is small, fast and
// passes BigCrush; the standard library engines are deliberately avoided for
// distribution generation because their results differ across standard library
// implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace radnet {

/// splitmix64 step: the finaliser used for seeding and stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// One-shot avalanche hash of a value (splitmix64 finaliser).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** PRNG with helpers for the distributions the simulator needs.
class Rng {
 public:
  /// Seeds the four state words by running splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derives an independent generator for a logical sub-stream. The path
  /// values are hashed into the seed one by one; distinct paths give
  /// (empirically) independent streams.
  [[nodiscard]] Rng split(std::uint64_t a) const;
  [[nodiscard]] Rng split(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] Rng split(std::uint64_t a, std::uint64_t b, std::uint64_t c) const;

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double();

  /// Bernoulli trial: true with probability p (p clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform integer in [0, bound) ; bound >= 1. Uses Lemire rejection.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi); requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Geometric: number of Bernoulli(p) trials up to and including the first
  /// success, i.e. support {1, 2, ...}. Requires 0 < p <= 1.
  std::uint64_t geometric(double p);

  /// Geometric draw with the 1 / log1p(-p) constant precomputed by the
  /// caller — skip-sampling loops draw millions of these per run with a
  /// fixed p, and hoisting the log out of the draw is the dominant win of
  /// the sparse paths (see sim/topology.hpp and the bulk transmitter
  /// samplers). Requires inv_log1m_p = 1.0 / log1p(-p) for p in (0, 1).
  std::uint64_t geometric_inv(double inv_log1m_p) {
    const double u = 1.0 - next_double();  // (0, 1]
    const double g = std::ceil(std::log(u) * inv_log1m_p);
    return g < 1.0 ? 1u : static_cast<std::uint64_t>(g);
  }

  /// Binomial(n, p) sample, exact for all (n, p): geometric skipping /
  /// direct simulation for small n*p, mode-centred inversion (expected
  /// O(sqrt(n p (1-p))) steps) otherwise. The implicit G(n,p) topology
  /// backend draws one of these per listener per dense round, so both
  /// exactness and speed matter here.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Samples an index from a discrete distribution given cumulative weights
  /// `cdf` (non-decreasing, cdf.back() == total mass <= 1 is allowed: with
  /// probability 1 - total the sentinel `miss` is returned).
  std::uint64_t sample_cdf(const double* cdf, std::uint64_t size, std::uint64_t miss);

  /// The internal 256-bit state, for checkpoint tests.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

class StreamKey;

/// Eight independent xoshiro256** generators stepped in lockstep — the
/// batched lane generator behind the SIMD round sweeps (support/simd.hpp).
///
/// Lane l is seeded from key.fork(l), i.e. from *consecutive StreamKey fork
/// counters*, and every lane's output sequence is byte-identical to what
/// `key.fork(l).make_rng()` would draw on its own. The bulk draws
/// (next_u64_lanes / uniform_lanes / bernoulli_lanes) advance every lane by
/// exactly one step; the per-lane accessors advance a single lane. Both
/// views share the same state words, so a fused vector kernel and a scalar
/// replay of the same draw schedule consume the same streams — that is the
/// whole bit-identity argument of the vectorised sweeps, pinned by
/// tests/support/simd_test.cpp.
///
/// State is stored word-major (s_[word][lane]) so the AVX2 path can load
/// one state word of four lanes as a single 256-bit register; the scalar
/// fallback walks the same layout. The bulk draws dispatch at runtime
/// (support/simd.hpp) and are byte-identical in every mode.
class LaneRng {
 public:
  /// Lane count. Fixed — part of the dense sweep's randomness contract:
  /// listener position i consumes lane i % kLanes, independent of the
  /// vector width the host happens to execute with.
  static constexpr unsigned kLanes = 8;

  LaneRng() = default;

  /// Seeds lane l from key.fork(l) for l in [0, kLanes).
  explicit LaneRng(const StreamKey& key);

  /// One lockstep step: out[l] = lane l's next 64 random bits.
  /// Runtime-dispatched; byte-identical to kLanes next_u64_lane calls.
  void next_u64_lanes(std::uint64_t* out);

  /// One lockstep step: out[l] = lane l's next uniform double in [0, 1).
  void uniform_lanes(double* out);

  /// One lockstep step: bit l of the result is set iff lane l's uniform
  /// draw is < p (the same `u < p` comparison Rng::bernoulli uses).
  std::uint64_t bernoulli_lanes(double p);

  /// Advances a single lane (shares state with the lockstep steps).
  std::uint64_t next_u64_lane(unsigned lane);
  double next_double_lane(unsigned lane);

  /// Portable reference implementation of next_u64_lanes — the scalar
  /// fallback the dispatched path must match byte-for-byte.
  void next_u64_lanes_scalar(std::uint64_t* out);

  /// Raw state row for word w (kLanes values) — the fused SIMD kernels in
  /// support/simd_avx2.cpp operate on these in place.
  [[nodiscard]] std::uint64_t* word(unsigned w) noexcept { return s_[w]; }
  [[nodiscard]] const std::uint64_t* word(unsigned w) const noexcept {
    return s_[w];
  }

 private:
  alignas(32) std::uint64_t s_[4][kLanes] = {};
};

/// Counter-keyed sub-stream derivation, the randomness backbone of the
/// block-sharded round sweeps (sim/topology.hpp).
///
/// A StreamKey is a single avalanche-mixed 64-bit key; `fork(i)` derives the
/// child key for counter i, and `make_rng()` materialises a generator seeded
/// from the key. Every draw made from a key chain like
///
///     root.fork(round).fork(block).make_rng()
///
/// is a pure function of (root, round, block) — never of which thread ran
/// the block, or in what order, or what any other block drew. That is what
/// makes the sharded sweeps bit-identical for any thread count: determinism
/// by construction rather than by locking. Forking costs two mix64 calls
/// and materialisation four splitmix64 steps, cheap enough to re-key every
/// (round, block) pair of a 10^8-listener sweep.
class StreamKey {
 public:
  StreamKey() = default;

  /// Derives the key from a generator's full 256-bit state, so distinct
  /// seed Rngs (and distinct split() streams) yield distinct key roots.
  [[nodiscard]] static StreamKey from_rng(const Rng& rng);

  /// Child key for sub-stream `counter`; distinct counters give
  /// (empirically) independent streams, same guarantee as Rng::split.
  [[nodiscard]] StreamKey fork(std::uint64_t counter) const {
    return StreamKey(mix64(key_ ^ mix64(counter + 0x9e3779b97f4a7c15ull)));
  }

  /// Materialises the generator for this key.
  [[nodiscard]] Rng make_rng() const { return Rng(key_); }

  /// The raw key, for audits and tests.
  [[nodiscard]] std::uint64_t value() const noexcept { return key_; }

 private:
  explicit StreamKey(std::uint64_t key) : key_(key) {}

  std::uint64_t key_ = 0;
};

}  // namespace radnet
