#include "support/bitset.hpp"

#include <bit>

#include "support/require.hpp"

namespace radnet {

Bitset::Bitset(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

void Bitset::set(std::size_t i) {
  RADNET_REQUIRE(i < size_, "Bitset::set out of range");
  words_[i / 64] |= (std::uint64_t{1} << (i % 64));
}

void Bitset::reset(std::size_t i) {
  RADNET_REQUIRE(i < size_, "Bitset::reset out of range");
  words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

bool Bitset::test(std::size_t i) const {
  RADNET_REQUIRE(i < size_, "Bitset::test out of range");
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void Bitset::set_all() noexcept {
  for (auto& w : words_) w = ~std::uint64_t{0};
  zero_tail();
}

void Bitset::reset_all() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t Bitset::count() const noexcept {
  std::size_t c = 0;
  for (const auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool Bitset::all() const noexcept { return count() == size_; }

bool Bitset::none() const noexcept {
  for (const auto w : words_)
    if (w != 0) return false;
  return true;
}

bool Bitset::unite(const Bitset& other) {
  RADNET_REQUIRE(size_ == other.size_, "Bitset::unite size mismatch");
  std::uint64_t changed = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t before = words_[i];
    words_[i] |= other.words_[i];
    changed |= words_[i] ^ before;
  }
  return changed != 0;
}

void Bitset::intersect(const Bitset& other) {
  RADNET_REQUIRE(size_ == other.size_, "Bitset::intersect size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

bool Bitset::contains(const Bitset& other) const {
  RADNET_REQUIRE(size_ == other.size_, "Bitset::contains size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  return true;
}

void Bitset::zero_tail() noexcept {
  const std::size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << tail) - 1;
}

}  // namespace radnet
