// Append-only, per-record-checksummed run journal.
//
// The batch sweep service logs every grant's trial outcomes and every
// committed result line here, so a run killed at any instant can resume
// from its committed prefix and still produce a byte-identical output
// stream (harness/batch.hpp `--resume`). The format is deliberately dumb —
// text lines, one record each:
//
//   <fnv1a-16-hex of payload> <payload>\n
//
// Replay reads records until the first line whose checksum does not match
// or whose trailing newline is missing; everything from that point on is a
// torn tail (the write the crash interrupted) and is DISCARDED, never
// half-applied. Each record carries its end byte offset so a resuming
// writer can truncate the file back to the committed prefix before
// appending — the torn bytes must not survive in front of new records.
//
// Appends flush to the OS per record and throw io::IoError on any stream
// failure (including injected ENOSPC): a crash-safe layer must stop rather
// than run on past an unjournaled grant. Durability is process-crash
// level — an OS/power crash can lose the tail, which replay then treats
// exactly like a kill: the committed prefix resumes, the rest recomputes.
//
// tests/support/journal_test.cpp pins the record format and tail
// semantics; tests/harness/faultinject_test.cpp tortures it end-to-end.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace radnet {

struct JournalRecord {
  std::string payload;
  std::uint64_t end_offset = 0;  ///< file offset just past this record
};

struct JournalReplay {
  std::vector<JournalRecord> records;  ///< the committed prefix, in order
  bool torn_tail = false;  ///< trailing bytes were truncated/garbled
  std::uint64_t committed_bytes = 0;  ///< prefix length holding `records`
};

/// Reads the committed prefix of a journal file. A missing file is an
/// empty replay, not an error — resume from nothing is a fresh run.
[[nodiscard]] JournalReplay read_journal(const std::string& path);

class JournalWriter {
 public:
  /// Opens `path` for appending after truncating it to `keep_bytes`
  /// (0 starts a fresh journal; a resumer passes the replay's
  /// committed_bytes so torn tail bytes never precede new records).
  /// Throws io::IoError if the file cannot be opened.
  void open(const std::string& path, std::uint64_t keep_bytes);

  [[nodiscard]] bool is_open() const { return out_.is_open(); }

  /// Appends one checksummed record and flushes it to the OS. `payload`
  /// must not contain '\n' (RADNET_REQUIRE). Throws io::IoError on any
  /// stream failure — fault point "journal-append" can inject one.
  void append(std::string_view payload);

  void close() { out_.close(); }

 private:
  std::ofstream out_;
  std::string path_;
};

}  // namespace radnet
