#include "support/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "support/hash.hpp"
#include "support/io.hpp"
#include "support/require.hpp"

namespace radnet {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

JournalReplay read_journal(const std::string& path) {
  JournalReplay replay;
  const auto content = io::read_file(path);
  if (!content.has_value()) return replay;
  std::uint64_t offset = 0;
  while (offset < content->size()) {
    const std::size_t eol = content->find('\n', offset);
    if (eol == std::string::npos) {
      replay.torn_tail = true;  // the write a crash interrupted
      break;
    }
    const std::string_view line(content->data() + offset, eol - offset);
    // "<hex16> <payload>": a line too short for the checksum field, a
    // non-hex checksum or a mismatch all end the committed prefix here.
    if (line.size() < 17 || line[16] != ' ') {
      replay.torn_tail = true;
      break;
    }
    const std::string_view payload = line.substr(17);
    if (std::string_view(line.substr(0, 16)) != hex16(fnv1a64(payload))) {
      replay.torn_tail = true;
      break;
    }
    offset = eol + 1;
    replay.records.push_back(JournalRecord{std::string(payload), offset});
    replay.committed_bytes = offset;
  }
  if (offset < content->size()) replay.torn_tail = true;
  return replay;
}

void JournalWriter::open(const std::string& path, std::uint64_t keep_bytes) {
  namespace fs = std::filesystem;
  path_ = path;
  std::error_code ec;
  if (fs::exists(path, ec)) {
    // Truncate away any torn tail (or, with keep_bytes = 0, the whole
    // previous journal) BEFORE appending: committed records must never
    // sit behind garbage bytes.
    fs::resize_file(path, keep_bytes, ec);
    if (ec)
      throw io::IoError("cannot truncate journal '" + path +
                        "': " + ec.message());
  }
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) throw io::IoError("cannot open journal '" + path + "'");
}

void JournalWriter::append(std::string_view payload) {
  RADNET_REQUIRE(payload.find('\n') == std::string_view::npos,
                 "journal payloads are single lines");
  RADNET_CHECK(out_.is_open(), "journal append before open");
  out_ << hex16(fnv1a64(payload)) << ' ' << payload << '\n';
  if (io::check_fault("journal-append") == io::FaultAction::kEnospc)
    out_.setstate(std::ios::badbit);
  out_.flush();
  // An unjournaled grant must stop the run — resume depends on the journal
  // never silently lagging the work.
  if (!out_.good())
    throw io::IoError("journal append to '" + path_ +
                      "' failed (disk full?) — run is resumable from the "
                      "committed prefix");
}

}  // namespace radnet
