// Runtime-dispatched SIMD kernels for the two hot per-round sweeps.
//
// Design rule: the vector paths are *transcriptions* of the scalar
// reference, not approximations. Every kernel here has a portable scalar
// implementation and (on x86-64) an AVX2 implementation compiled in its own
// translation unit with -mavx2; the two produce byte-identical results:
//
//   * lane_step / classify_dense reproduce the xoshiro256** recurrence with
//     exact 64-bit integer ops, and convert u64 -> double with the
//     magic-constant trick, which is exact for values below 2^53 — the
//     (bits >> 11) * 0x1.0p-53 uniform is therefore bit-equal to the scalar
//     static_cast. Threshold comparisons use ordered `<`, same as scalar.
//   * rgg_scan keeps every squared distance in the exact same double form
//     as the scalar sweep (mul, mul, add — never FMA; the AVX2 TU is built
//     with -mavx2 only, so the compiler cannot contract either path), and
//     visits hits in ascending index order with the same early exit.
//
// Mode selection: CPUID at first use, overridable by the RADNET_SIMD
// environment variable (`off` or `scalar` pins the portable path, `avx2`
// requests the vector path and falls back with a warning when the CPU
// lacks it) and programmatically by set_mode() for benches and tests.
// Because every mode emits the same bytes, the override is a debugging and
// benchmarking knob, never a correctness knob.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace radnet::simd {

enum class Mode : std::uint8_t { kScalar = 0, kAvx2 = 1 };

/// True when the CPU (and the build) can execute the AVX2 kernels.
[[nodiscard]] bool cpu_has_avx2();

/// The mode all dispatched kernels currently run in. Resolved on first use:
/// RADNET_SIMD override if set, else AVX2 when available, else scalar.
[[nodiscard]] Mode active_mode();

/// Programmatic override (benches, tests). Requests for kAvx2 on a host
/// without it degrade to kScalar.
void set_mode(Mode mode);

/// "scalar" / "avx2" — the spelling used by RADNET_SIMD and the BENCH JSON.
[[nodiscard]] const char* mode_name(Mode mode);

// ---------------------------------------------------------------------------
// Lane generator step (LaneRng bulk draw backend).
// ---------------------------------------------------------------------------

/// Advances all LaneRng lanes by one step; out[l] = lane l's next u64.
void lane_step(LaneRng& lanes, std::uint64_t* out);
void lane_step_scalar(LaneRng& lanes, std::uint64_t* out);
void lane_step_avx2(LaneRng& lanes, std::uint64_t* out);

// ---------------------------------------------------------------------------
// Dense G(n,p) outcome classification (GnpSampler's plain dense sweep).
// ---------------------------------------------------------------------------

/// Per-round outcome thresholds, precomputed once per sweep (see
/// GnpSampler::outcome_probs): a listener's uniform u classifies as silent
/// when u < silent, as a single-sender delivery when u < edge, else as a
/// collision. Transmitting listeners use the *_tx pair (silent_tx = 1 under
/// half-duplex, so they always classify silent).
struct DenseClassifyParams {
  double silent;
  double edge;
  double silent_tx;
  double edge_tx;
};

inline constexpr unsigned char kOutcomeSilent = 0;
inline constexpr unsigned char kOutcomeDeliver = 1;
inline constexpr unsigned char kOutcomeCollide = 2;

/// Classifies `count` consecutive listeners: codes[i] for the listener at
/// position i, whose uniform is lane (i % kLanes)'s draw number (i / kLanes).
/// Every batch of kLanes positions advances all lanes once — including the
/// final partial batch, so stream consumption is a function of count alone.
/// is_tx must have `count` valid bytes (nonzero = transmitting listener);
/// the kernels never read past is_tx + count.
void classify_dense(LaneRng& lanes, const char* is_tx, std::uint32_t count,
                    unsigned char* codes, const DenseClassifyParams& params);
void classify_dense_scalar(LaneRng& lanes, const char* is_tx,
                           std::uint32_t count, unsigned char* codes,
                           const DenseClassifyParams& params);
void classify_dense_avx2(LaneRng& lanes, const char* is_tx,
                         std::uint32_t count, unsigned char* codes,
                         const DenseClassifyParams& params);

// ---------------------------------------------------------------------------
// RGG neighbourhood distance scan (ImplicitRggTopology's delivery sweep).
// ---------------------------------------------------------------------------

/// One round's bucketed transmitters in SoA form (sim/backends/
/// implicit_rgg.hpp). xs/ys/ids hold the coordinates and node ids of all
/// transmitters, cell-segmented by the CSR arrays: cell c's entries are
/// [cell_begin[c], cell_end[c]). The arrays carry >= kRggPad sentinel
/// entries (coordinates far outside the unit square) past the last real
/// transmitter so the vector path may load full 4-wide chunks that overhang
/// a segment end.
struct RggScanCtx {
  const double* xs;
  const double* ys;
  const std::uint32_t* ids;
  const std::uint32_t* cell_begin;
  const std::uint32_t* cell_end;
  std::uint32_t cells;  ///< grid side length
  double r2;            ///< squared delivery radius
};

/// Sentinel padding the SoA arrays must carry past the final entry.
inline constexpr std::uint32_t kRggPad = 4;

/// Counts transmitters within radius of listener (px, py) over the 3x3 cell
/// neighbourhood of (cx, cy), skipping id == self, early-exiting once two
/// are seen. Returns the hit count capped at 2; when it is exactly 1,
/// *sender is the unique transmitter's id. Hits are visited in ascending
/// bucket order in every mode, so the returned sender is mode-independent.
std::uint32_t rgg_scan(const RggScanCtx& ctx, double px, double py,
                       std::uint32_t cx, std::uint32_t cy, std::uint32_t self,
                       std::uint32_t* sender);
std::uint32_t rgg_scan_scalar(const RggScanCtx& ctx, double px, double py,
                              std::uint32_t cx, std::uint32_t cy,
                              std::uint32_t self, std::uint32_t* sender);
std::uint32_t rgg_scan_avx2(const RggScanCtx& ctx, double px, double py,
                            std::uint32_t cx, std::uint32_t cy,
                            std::uint32_t self, std::uint32_t* sender);

}  // namespace radnet::simd
