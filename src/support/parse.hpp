// Strict text-to-number parsing for CLI flags and spec files.
//
// std::stod / std::stoul silently accept trailing garbage ("10junk" -> 10)
// and stoul wraps negatives into huge values — exactly the failure mode an
// experiment configuration must not have. These helpers require the WHOLE
// token to parse (std::from_chars with an end-pointer check), reject
// signs where unsigned values are expected, and throw
// std::invalid_argument with a message naming the flag/field the value
// came from, so a typo fails the run loudly instead of corrupting it.
#pragma once

#include <cstdint>
#include <string_view>

namespace radnet {

/// Parses a non-negative integer; `what` names the flag or spec field in
/// the error message (e.g. "--jammers", "spec field n").
[[nodiscard]] std::uint64_t parse_u64_strict(std::string_view text,
                                             std::string_view what);

/// Parses a finite double (leading '-' allowed, "nan"/"inf" rejected).
[[nodiscard]] double parse_double_strict(std::string_view text,
                                         std::string_view what);

/// parse_double_strict plus an inclusive range check, for probability- and
/// fraction-valued flags where out-of-range values are as wrong as
/// unparseable ones.
[[nodiscard]] double parse_double_in(std::string_view text,
                                     std::string_view what, double lo,
                                     double hi);

}  // namespace radnet
