// Fixed-capacity dynamic bitset.
//
// Used for rumor sets in the gossip algorithms (Section 3 of the paper: nodes
// join messages, so each node carries the set of rumors it knows) and for
// visited/informed sets in graph algorithms. The hot operation is
// `unite` (word-parallel OR) which models the paper's "join messages
// originated from different nodes together to one large message".
#pragma once

#include <cstdint>
#include <vector>

namespace radnet {

class Bitset {
 public:
  Bitset() = default;

  /// Constructs a bitset of `size` bits, all clear.
  explicit Bitset(std::size_t size);

  /// Number of addressable bits.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Sets bit i. Requires i < size().
  void set(std::size_t i);

  /// Clears bit i. Requires i < size().
  void reset(std::size_t i);

  /// Reads bit i. Requires i < size().
  [[nodiscard]] bool test(std::size_t i) const;

  /// Sets every bit.
  void set_all() noexcept;

  /// Clears every bit.
  void reset_all() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True iff every bit is set.
  [[nodiscard]] bool all() const noexcept;

  /// True iff no bit is set.
  [[nodiscard]] bool none() const noexcept;

  /// this |= other. Requires identical sizes. Returns true iff this changed
  /// (i.e. `other` contained at least one bit new to us) — the gossip
  /// algorithms use the return value to detect rumor progress cheaply.
  bool unite(const Bitset& other);

  /// this &= other. Requires identical sizes.
  void intersect(const Bitset& other);

  /// True iff all bits of `other` are contained in this.
  [[nodiscard]] bool contains(const Bitset& other) const;

  /// Invokes f(i) for each set bit i in ascending order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        f(w * 64 + tz);
        bits &= bits - 1;
      }
    }
  }

  [[nodiscard]] bool operator==(const Bitset& other) const = default;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;

  void zero_tail() noexcept;
};

}  // namespace radnet
