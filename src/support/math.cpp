#include "support/math.hpp"

#include <bit>
#include <limits>

#include "support/require.hpp"

namespace radnet {

std::uint32_t ilog2_floor(std::uint64_t x) {
  RADNET_REQUIRE(x >= 1, "ilog2_floor needs x >= 1");
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

std::uint32_t ilog2_ceil(std::uint64_t x) {
  RADNET_REQUIRE(x >= 1, "ilog2_ceil needs x >= 1");
  const std::uint32_t fl = ilog2_floor(x);
  return (x == (std::uint64_t{1} << fl)) ? fl : fl + 1;
}

double ln(double x) {
  RADNET_REQUIRE(x > 0.0, "ln needs x > 0");
  return std::log(x);
}

double log2d(double x) {
  RADNET_REQUIRE(x > 0.0, "log2d needs x > 0");
  return std::log2(x);
}

std::uint32_t phase1_rounds(std::uint64_t n, double d) {
  RADNET_REQUIRE(n >= 2, "phase1_rounds needs n >= 2");
  RADNET_REQUIRE(d > 1.0, "phase1_rounds needs expected degree d > 1");
  const double t = std::floor(std::log(static_cast<double>(n)) / std::log(d));
  if (t < 1.0) return 1;
  return static_cast<std::uint32_t>(t);
}

double lambda_of(std::uint64_t n, std::uint64_t diameter) {
  RADNET_REQUIRE(n >= 2, "lambda_of needs n >= 2");
  RADNET_REQUIRE(diameter >= 1, "lambda_of needs diameter >= 1");
  const double l = std::log2(static_cast<double>(n) / static_cast<double>(diameter));
  const double max_l = std::log2(static_cast<double>(n));
  if (l < 1.0) return 1.0;
  if (l > max_l) return max_l;
  return l;
}

std::uint64_t ipow_sat(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (base != 0 && r > std::numeric_limits<std::uint64_t>::max() / base)
      return std::numeric_limits<std::uint64_t>::max();
    r *= base;
  }
  return r;
}

double pow2_neg(std::uint32_t k) {
  if (k > 1023) return 0.0;
  return std::ldexp(1.0, -static_cast<int>(k));
}

}  // namespace radnet
