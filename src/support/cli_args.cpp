#include "support/cli_args.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/require.hpp"

namespace radnet {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RADNET_REQUIRE(arg.rfind("--", 0) == 0, "flags must start with --: " + arg);
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare boolean flag
    }
    RADNET_REQUIRE(std::find(known.begin(), known.end(), arg) != known.end(),
                   "unknown flag --" + arg);
    values_[arg] = value;
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 0);
  RADNET_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                 "flag --" + name + " expects an integer, got " + it->second);
  return v;
}

std::uint64_t CliArgs::get_u64(const std::string& name,
                               std::uint64_t fallback) const {
  const std::int64_t v = get_int(name, static_cast<std::int64_t>(fallback));
  RADNET_REQUIRE(v >= 0, "flag --" + name + " expects a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  RADNET_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                 "flag --" + name + " expects a number, got " + it->second);
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  RADNET_REQUIRE(false, "flag --" + name + " expects a boolean, got " + s);
  return fallback;
}

}  // namespace radnet
