// Minimal command-line flag parsing for the tools and examples.
//
// Syntax: `--name value` or `--name=value`; bare `--flag` is a boolean
// true. Unknown flags are an error (fail loudly rather than silently
// ignoring a typo in an experiment configuration). Typed getters return a
// default when the flag is absent and throw std::invalid_argument when the
// value does not parse.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace radnet {

class CliArgs {
 public:
  /// Parses argv[1..argc). `known` lists the accepted flag names (without
  /// the leading dashes); anything else throws.
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& known);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace radnet
