// A small work-stealing-free thread pool plus deterministic parallel_for.
//
// The reproduction parallelises across *independent Monte-Carlo trials*
// (each trial owns an Rng split from (root seed, trial index)), so the pool
// only needs static chunking: parallel_for_index divides [0, n) into
// contiguous blocks, one in-flight task per worker. Results must be written
// into pre-sized output slots indexed by trial, which makes parallel output
// bit-identical to serial output regardless of thread count — a property the
// tests assert.
//
// Exceptions thrown by a task are captured and rethrown on the calling
// thread (first one wins), per C++ Core Guidelines E.2.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radnet {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Runs body(i) for every i in [0, n), distributing contiguous chunks over
  /// the workers, and blocks until all complete. The calling thread also
  /// executes chunks. If any invocation throws, the first captured exception
  /// is rethrown here after all chunks finish or are abandoned.
  void parallel_for_index(std::uint64_t n,
                          const std::function<void(std::uint64_t)>& body);

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void submit(std::function<void()> fn);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// A process-wide pool, lazily created with hardware concurrency. Benches and
/// the Monte-Carlo harness share it so nested sweeps don't oversubscribe.
ThreadPool& global_pool();

}  // namespace radnet
