// A small work-stealing-free thread pool plus deterministic parallel_for.
//
// The reproduction parallelises at two levels: across *independent
// Monte-Carlo trials* (each trial owns an Rng split from (root seed, trial
// index)) and, inside a single trial, across the *listener blocks* of the
// implicit backends' round sweeps (each block owns an Rng keyed by
// (trial, round, block) — see StreamKey in support/rng.hpp). Both levels
// write into pre-sized output slots, which makes parallel output
// bit-identical to serial output regardless of thread count — a property
// the tests assert.
//
// parallel_for_index uses a single shared atomic chunk counter per call:
// workers and the calling thread claim contiguous chunks until the range is
// exhausted. The job descriptor lives on the caller's stack and is
// broadcast to the workers through one pointer — no per-chunk (or even
// per-call) heap-allocated task objects.
//
// Re-entrancy: a nested parallel_for_index issued by a thread that is
// already executing chunks of this pool (a worker, or the calling thread
// participating in an outer loop) runs the whole range inline on that
// thread. This means a parallel round sweep nested under the parallel
// Monte-Carlo harness can never deadlock waiting for workers that are all
// busy with outer work, and never oversubscribes the machine.
//
// Exceptions thrown by a task are captured and rethrown on the calling
// thread (first one wins), per C++ Core Guidelines E.2; remaining chunks of
// a failed job are abandoned.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radnet {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs body(i) for every i in [0, n), distributing contiguous chunks over
  /// the workers, and blocks until all complete. The calling thread also
  /// executes chunks. Nested calls from inside a chunk run inline (see the
  /// file comment). If any invocation throws, the first captured exception
  /// is rethrown here after all chunks finish or are abandoned.
  void parallel_for_index(std::uint64_t n,
                          const std::function<void(std::uint64_t)>& body);

 private:
  /// One parallel_for_index invocation; lives on the caller's stack.
  struct Job {
    std::uint64_t n = 0;
    std::uint64_t chunk = 1;
    const std::function<void(std::uint64_t)>* body = nullptr;
    std::atomic<std::uint64_t> next{0};
    std::atomic<bool> failed{false};  ///< stop claiming chunks after a throw
    unsigned active = 0;  ///< workers currently inside the job (guards: mu_)
    std::exception_ptr first_error;  ///< guarded by the pool's mu_
  };

  void worker_loop();
  void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_cv_;  ///< workers wait for a job or shutdown
  std::condition_variable done_cv_;  ///< the job owner waits for completion
  Job* job_ = nullptr;               ///< current job broadcast (guards: mu_)
  std::uint64_t job_gen_ = 0;        ///< bumped per job so workers join once
  bool stopping_ = false;
  std::mutex owner_mu_;  ///< serialises concurrent external callers
};

/// A process-wide pool, lazily created with hardware concurrency — or with
/// RADNET_THREADS workers when that environment variable is set to a
/// positive integer (0 or unset = hardware concurrency). Benches, tests,
/// the CLI and the Monte-Carlo harness all share it, so one knob sizes
/// every parallel path in the process.
ThreadPool& global_pool();

/// Maps the RunOptions-style thread knob to a pool: 1 (the default) means
/// serial — nullptr; 0 means the shared global_pool(); any other count
/// returns a lazily created process-cached pool of exactly that many
/// workers (so tests can pin 2- and 8-thread schedules in one process).
/// Thread count never changes results — only how fast they arrive.
ThreadPool* resolve_pool(unsigned threads);

}  // namespace radnet
