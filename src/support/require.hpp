// Precondition / invariant checking for the radnet library.
//
// Per the C++ Core Guidelines (I.6, E.12) we express preconditions explicitly
// and fail loudly. RADNET_REQUIRE throws std::invalid_argument with a message
// naming the violated condition and its location; RADNET_CHECK throws
// std::logic_error and is meant for internal invariants. Both are always on:
// the simulator is a research instrument, and silent corruption of an
// experiment is far more expensive than the branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace radnet {

namespace detail {

[[noreturn]] inline void throw_requirement(const char* kind, const char* cond,
                                           const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "precondition") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace radnet

// Precondition on arguments of a public API. Throws std::invalid_argument.
#define RADNET_REQUIRE(cond, msg)                                            \
  do {                                                                       \
    if (!(cond))                                                             \
      ::radnet::detail::throw_requirement("precondition", #cond, __FILE__,   \
                                          __LINE__, (msg));                  \
  } while (0)

// Internal invariant. Throws std::logic_error.
#define RADNET_CHECK(cond, msg)                                              \
  do {                                                                       \
    if (!(cond))                                                             \
      ::radnet::detail::throw_requirement("invariant", #cond, __FILE__,      \
                                          __LINE__, (msg));                  \
  } while (0)
