// Crash-safe file I/O primitives for the harness's persistent state.
//
// The batch sweep service keeps two kinds of on-disk state — the result
// cache and the run journal — and both must satisfy one invariant: a
// process death at ANY instant (SIGKILL, ENOSPC, power loss mid-write)
// leaves files that are either complete or detectably incomplete, never
// silently wrong. This header supplies the building blocks:
//
//   * atomic_write_file — write-to-temp + rename() commit, so a reader
//     never observes a half-written file under the final name; the stream
//     state is checked after writing and the temp is unlinked on any
//     failure (the torn-write window the v1 cache had);
//   * quarantine_file — corrupt or foreign files are renamed aside to
//     `<name>.quarantine` instead of deleted, preserving the evidence
//     while guaranteeing they can never be replayed as an answer;
//   * sweep_stale_files — startup reaping of `*.tmp.*` / `*.quarantine`
//     debris older than a cutoff, age-gated so a concurrent run's live
//     temp files are left alone;
//   * check_fault — the RADNET_FAULT injection hook the fault tests drive:
//     named fault points in the cache/journal/grant paths that can kill
//     the process, simulate ENOSPC or hang on their N-th hit, so crash
//     windows are exercised deterministically rather than by timing.
//
// tests/support/io_test.cpp pins the primitives;
// tests/harness/faultinject_test.cpp drives them end-to-end.
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace radnet::io {

/// Thrown when a write the caller cannot safely ignore fails (journal
/// appends: continuing past an unjournaled grant would break resume).
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// ---- Fault injection ------------------------------------------------------
//
// One fault is armed at a time, from the RADNET_FAULT environment variable
// or programmatically via set_fault. Spec syntax:
//
//   <point>@<n>:<action>     e.g.  grant@3:kill   journal-append@1:enospc
//
// The fault fires on the n-th hit (1-based) of the named point and then
// disarms — one shot per process. Forked children inherit the parent's
// armed state by memory copy, so each isolate-mode child re-fires
// independently (how the watchdog tests crash every retry attempt).
// Actions: `kill` raises SIGKILL at the point (a crash at a precise
// boundary), `hang` sleeps forever (a wedged spec for the watchdog),
// `enospc` makes the current write fail as if the disk were full.

enum class FaultAction : std::uint8_t {
  kNone = 0,   ///< nothing armed here — proceed
  kEnospc = 1, ///< caller must fail this write as if ENOSPC
};

/// Arms a fault from a spec string ("" disarms). Malformed specs throw
/// std::invalid_argument naming the field.
void set_fault(std::string_view spec);

/// Reports (and consumes) the fault armed at `point`. kKill and kHang are
/// executed here — callers only ever see kNone or kEnospc. The first call
/// also reads RADNET_FAULT if set_fault was never used.
[[nodiscard]] FaultAction check_fault(std::string_view point);

// ---- Atomic file primitives ----------------------------------------------

/// Reads the whole file; std::nullopt if it cannot be opened.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Atomically replaces `path` with `content`: writes `path + ".tmp.<pid>"`,
/// checks the stream state after write + flush, then rename()s onto the
/// final name. On ANY failure (including an injected ENOSPC at fault point
/// `fault_point`) the temp file is removed and false is returned — the
/// final name is never left holding a partial write.
bool atomic_write_file(const std::string& path, std::string_view content,
                       std::string_view fault_point);

/// Moves a corrupt/foreign file aside to `path + ".quarantine"` (replacing
/// any previous quarantine of the same name). Returns false if the rename
/// failed; the caller must treat the path as a miss either way.
bool quarantine_file(const std::string& path);

/// Removes `*.tmp.*` and `*.quarantine` entries in `dir` whose mtime is
/// older than `max_age`, returning the number removed. Younger files are
/// left untouched — they may belong to a live concurrent run. Missing or
/// unreadable directories reap nothing.
std::size_t sweep_stale_files(const std::string& dir,
                              std::chrono::seconds max_age);

}  // namespace radnet::io
