// Mode resolution and the portable scalar kernels. The AVX2 twins live in
// simd_avx2.cpp (own TU, built with -mavx2); byte-identity between the two
// is pinned by tests/support/simd_test.cpp and the bench_smoke gate.
#include "support/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace radnet::simd {

namespace {

// Lazily resolved active mode. kUnresolved until the first active_mode()
// call (or an explicit set_mode), so tests can pin a mode before any sweep
// runs and the env override is read exactly once.
constexpr int kUnresolved = -1;
std::atomic<int> g_mode{kUnresolved};

Mode resolve_default() {
  if (const char* env = std::getenv("RADNET_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0)
      return Mode::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (cpu_has_avx2()) return Mode::kAvx2;
      std::fprintf(stderr,
                   "radnet: RADNET_SIMD=avx2 requested but AVX2 is "
                   "unavailable; using the scalar path (same bytes)\n");
      return Mode::kScalar;
    }
    std::fprintf(stderr,
                 "radnet: unknown RADNET_SIMD value '%s' "
                 "(want off|scalar|avx2); auto-selecting\n",
                 env);
  }
  return cpu_has_avx2() ? Mode::kAvx2 : Mode::kScalar;
}

}  // namespace

Mode active_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m == kUnresolved) {
    m = static_cast<int>(resolve_default());
    int expected = kUnresolved;
    // Racing first calls agree on the resolved value, so either store wins.
    g_mode.compare_exchange_strong(expected, m, std::memory_order_relaxed);
  }
  return static_cast<Mode>(m);
}

void set_mode(Mode mode) {
  if (mode == Mode::kAvx2 && !cpu_has_avx2()) mode = Mode::kScalar;
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char* mode_name(Mode mode) {
  return mode == Mode::kAvx2 ? "avx2" : "scalar";
}

void lane_step(LaneRng& lanes, std::uint64_t* out) {
  if (active_mode() == Mode::kAvx2)
    lane_step_avx2(lanes, out);
  else
    lane_step_scalar(lanes, out);
}

void lane_step_scalar(LaneRng& lanes, std::uint64_t* out) {
  lanes.next_u64_lanes_scalar(out);
}

void classify_dense(LaneRng& lanes, const char* is_tx, std::uint32_t count,
                    unsigned char* codes, const DenseClassifyParams& params) {
  if (active_mode() == Mode::kAvx2)
    classify_dense_avx2(lanes, is_tx, count, codes, params);
  else
    classify_dense_scalar(lanes, is_tx, count, codes, params);
}

void classify_dense_scalar(LaneRng& lanes, const char* is_tx,
                           std::uint32_t count, unsigned char* codes,
                           const DenseClassifyParams& params) {
  constexpr unsigned kW = LaneRng::kLanes;
  std::uint64_t bits[kW];
  for (std::uint32_t base = 0; base < count; base += kW) {
    lanes.next_u64_lanes_scalar(bits);  // all lanes step, even on the tail
    const std::uint32_t m = std::min<std::uint32_t>(kW, count - base);
    for (std::uint32_t l = 0; l < m; ++l) {
      const double u = static_cast<double>(bits[l] >> 11) * 0x1.0p-53;
      const bool tx = is_tx[base + l] != 0;
      const double silent = tx ? params.silent_tx : params.silent;
      const double edge = tx ? params.edge_tx : params.edge;
      codes[base + l] = u < silent  ? kOutcomeSilent
                        : u < edge ? kOutcomeDeliver
                                   : kOutcomeCollide;
    }
  }
}

std::uint32_t rgg_scan(const RggScanCtx& ctx, double px, double py,
                       std::uint32_t cx, std::uint32_t cy, std::uint32_t self,
                       std::uint32_t* sender) {
  if (active_mode() == Mode::kAvx2)
    return rgg_scan_avx2(ctx, px, py, cx, cy, self, sender);
  return rgg_scan_scalar(ctx, px, py, cx, cy, self, sender);
}

std::uint32_t rgg_scan_scalar(const RggScanCtx& ctx, double px, double py,
                              std::uint32_t cx, std::uint32_t cy,
                              std::uint32_t self, std::uint32_t* sender) {
  const std::uint32_t x0 = cx > 0 ? cx - 1 : 0;
  const std::uint32_t x1 = std::min(cx + 1, ctx.cells - 1);
  const std::uint32_t y0 = cy > 0 ? cy - 1 : 0;
  const std::uint32_t y1 = std::min(cy + 1, ctx.cells - 1);
  std::uint32_t hits = 0;
  for (std::uint32_t y = y0; y <= y1 && hits < 2; ++y) {
    for (std::uint32_t x = x0; x <= x1 && hits < 2; ++x) {
      const std::uint32_t c = y * ctx.cells + x;
      const std::uint32_t end = ctx.cell_end[c];
      for (std::uint32_t i = ctx.cell_begin[c]; i < end; ++i) {
        const std::uint32_t id = ctx.ids[i];
        if (id == self) continue;
        const double ddx = px - ctx.xs[i];
        const double ddy = py - ctx.ys[i];
        if (ddx * ddx + ddy * ddy > ctx.r2) continue;
        *sender = id;
        if (++hits >= 2) break;
      }
    }
  }
  return hits;
}

}  // namespace radnet::simd
