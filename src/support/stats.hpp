// Statistics utilities for the experiment harness.
//
// Every bench reports mean / stddev / min / max / quantiles of quantities like
// broadcast time and transmissions per node over Monte-Carlo trials. Online
// accumulation (Welford) is used where samples are streamed; Sample keeps the
// raw values when quantiles or bootstrap confidence intervals are needed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace radnet {

class Rng;

/// Streaming mean/variance accumulator (Welford), mergeable so that
/// per-thread accumulators can be combined deterministically.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A stored sample of doubles with quantile and bootstrap support.
class Sample {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolation quantile, q in [0,1]. Requires a non-empty sample.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Empty-safe counterparts: nullopt instead of a throw when the sample is
  /// empty. Aggregation paths that can legitimately see zero completed
  /// trials (heavy-attack adversary regimes, censored rounds samples) must
  /// use these — an all-fail spec is a data point, not an error.
  [[nodiscard]] std::optional<double> try_mean() const {
    return empty() ? std::nullopt : std::optional<double>(mean());
  }
  [[nodiscard]] std::optional<double> try_stddev() const {
    return empty() ? std::nullopt : std::optional<double>(stddev());
  }
  [[nodiscard]] std::optional<double> try_quantile(double q) const {
    return empty() ? std::nullopt : std::optional<double>(quantile(q));
  }
  [[nodiscard]] std::optional<double> try_min() const {
    return empty() ? std::nullopt : std::optional<double>(min());
  }
  [[nodiscard]] std::optional<double> try_max() const {
    return empty() ? std::nullopt : std::optional<double>(max());
  }

  /// Percentile bootstrap confidence interval for the mean.
  struct Interval {
    double lo = 0.0;
    double hi = 0.0;
  };
  [[nodiscard]] Interval bootstrap_mean_ci(Rng& rng, double confidence = 0.95,
                                           std::uint32_t resamples = 1000) const;

 private:
  std::vector<double> values_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range values are clamped into
/// the edge bins. Used by benches that plot distributions (e.g. per-node
/// transmission counts).
class Histogram {
 public:
  Histogram(double lo, double hi, std::uint32_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::uint32_t bins() const noexcept {
    return static_cast<std::uint32_t>(counts_.size());
  }
  [[nodiscard]] std::uint64_t bin_count(std::uint32_t b) const;
  [[nodiscard]] double bin_lo(std::uint32_t b) const;
  [[nodiscard]] double bin_hi(std::uint32_t b) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Multi-line ASCII rendering with proportional bars.
  [[nodiscard]] std::string render(std::uint32_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ordinary least squares fit of y = a + b*x; used by benches to report the
/// empirical scaling exponent of measured times against model predictions
/// (fit in log-log space).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F_a(x) - F_b(x)| of the
/// empirical CDFs. Used by the implicit-vs-CSR topology equivalence tests
/// to compare completion-round and transmission-count distributions; for
/// discrete samples the statistic is conservative. Requires both samples
/// non-empty.
[[nodiscard]] double ks_statistic(std::vector<double> a, std::vector<double> b);

// ---- Sequential-stopping confidence intervals ------------------------------
//
// The batched sweep service (harness/batch.hpp) early-stops a spec once its
// completion-rate and rounds-quantile intervals are below tolerance, so
// these helpers are evaluated after every granted trial batch. They are
// *monitoring* intervals: repeated looks inflate the nominal coverage
// somewhat (the classic sequential-testing caveat), which is acceptable for
// a stopping heuristic whose result remains an exact prefix of the full run —
// the tolerance bounds reported to the user come from the final interval.

/// Two-sided standard-normal quantile: the z with
/// P(-z <= Z <= z) = confidence. Newton iteration on std::erf, exact to
/// ~1e-12; confidence must be in (0, 1).
[[nodiscard]] double normal_two_sided_z(double confidence);

/// Wilson score interval for a Binomial proportion after `successes` out of
/// `trials` Bernoulli outcomes. Well-behaved at 0 and `trials` successes
/// (never collapses to a zero-width interval on extreme counts, unlike the
/// Wald interval), which is exactly the heavy-attack all-fail regime the
/// early stopper must handle. trials >= 1.
[[nodiscard]] Sample::Interval wilson_interval(std::uint64_t successes,
                                               std::uint64_t trials,
                                               double confidence = 0.95);

/// Distribution-free confidence interval for the q-quantile from order
/// statistics: [x_(l), x_(u)] with l, u chosen by the normal approximation
/// to Binomial(n, q). Returns nullopt when the sample is too small for the
/// approximation to bound the quantile at this confidence (n*q*(1-q) < 1 or
/// the required order statistics fall outside the sample) — callers treat
/// nullopt as "not converged", never as "converged for free".
[[nodiscard]] std::optional<Sample::Interval> quantile_ci(
    const Sample& sample, double q, double confidence = 0.95);

}  // namespace radnet
