// Statistics utilities for the experiment harness.
//
// Every bench reports mean / stddev / min / max / quantiles of quantities like
// broadcast time and transmissions per node over Monte-Carlo trials. Online
// accumulation (Welford) is used where samples are streamed; Sample keeps the
// raw values when quantiles or bootstrap confidence intervals are needed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace radnet {

class Rng;

/// Streaming mean/variance accumulator (Welford), mergeable so that
/// per-thread accumulators can be combined deterministically.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A stored sample of doubles with quantile and bootstrap support.
class Sample {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolation quantile, q in [0,1]. Requires a non-empty sample.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Percentile bootstrap confidence interval for the mean.
  struct Interval {
    double lo = 0.0;
    double hi = 0.0;
  };
  [[nodiscard]] Interval bootstrap_mean_ci(Rng& rng, double confidence = 0.95,
                                           std::uint32_t resamples = 1000) const;

 private:
  std::vector<double> values_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range values are clamped into
/// the edge bins. Used by benches that plot distributions (e.g. per-node
/// transmission counts).
class Histogram {
 public:
  Histogram(double lo, double hi, std::uint32_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::uint32_t bins() const noexcept {
    return static_cast<std::uint32_t>(counts_.size());
  }
  [[nodiscard]] std::uint64_t bin_count(std::uint32_t b) const;
  [[nodiscard]] double bin_lo(std::uint32_t b) const;
  [[nodiscard]] double bin_hi(std::uint32_t b) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Multi-line ASCII rendering with proportional bars.
  [[nodiscard]] std::string render(std::uint32_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ordinary least squares fit of y = a + b*x; used by benches to report the
/// empirical scaling exponent of measured times against model predictions
/// (fit in log-log space).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F_a(x) - F_b(x)| of the
/// empirical CDFs. Used by the implicit-vs-CSR topology equivalence tests
/// to compare completion-round and transmission-count distributions; for
/// discrete samples the statistic is conservative. Requires both samples
/// non-empty.
[[nodiscard]] double ks_statistic(std::vector<double> a, std::vector<double> b);

}  // namespace radnet
