#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>

#include "support/require.hpp"

namespace radnet {

namespace {

/// Stack of pools whose chunks this thread is currently executing (as a
/// worker or as a participating caller) — a linked list of stack frames,
/// one per active parallel_for_index. A nested parallel_for_index on any
/// pool in the chain runs inline instead of waiting on workers that may
/// all be busy with outer jobs — the re-entrancy guarantee the
/// nested-sweep paths rely on, including A-inside-B-inside-A chains.
struct BusyFrame {
  const ThreadPool* pool;
  const BusyFrame* prev;
};
thread_local const BusyFrame* tl_busy_chain = nullptr;

bool busy_on(const ThreadPool* pool) {
  for (const BusyFrame* f = tl_busy_chain; f != nullptr; f = f->prev)
    if (f->pool == pool) return true;
  return false;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    // Once any chunk has thrown, the job is abandoned: stop claiming work
    // (already-running chunks finish, the first exception is rethrown on
    // the owner).
    if (job.failed.load(std::memory_order_relaxed)) return;
    const std::uint64_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const std::uint64_t end = std::min(job.n, begin + job.chunk);
    try {
      for (std::uint64_t i = begin; i < end; ++i) (*job.body)(i);
    } catch (...) {
      job.failed.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      if (!job.first_error) job.first_error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_gen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_cv_.wait(lock, [&] {
      return stopping_ || (job_ != nullptr && job_gen_ != seen_gen);
    });
    if (stopping_) return;
    seen_gen = job_gen_;
    Job& job = *job_;
    ++job.active;
    lock.unlock();
    const BusyFrame frame{this, tl_busy_chain};
    tl_busy_chain = &frame;
    run_chunks(job);
    tl_busy_chain = frame.prev;
    lock.lock();
    // The owner's completion predicate reads `active` under mu_, so this
    // decrement-and-notify cannot race with the job being destroyed. An
    // abandoned job (failed) completes without next ever reaching n.
    if (--job.active == 0 &&
        (job.failed.load(std::memory_order_relaxed) ||
         job.next.load(std::memory_order_relaxed) >= job.n))
      done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for_index(
    std::uint64_t n, const std::function<void(std::uint64_t)>& body) {
  if (n == 0) return;
  if (busy_on(this)) {
    // Nested call from inside one of this pool's chunks: run inline. The
    // outer job already owns the workers; waiting for them here could
    // deadlock, and stealing them would oversubscribe.
    for (std::uint64_t i = 0; i < n; ++i) body(i);
    return;
  }

  // One job at a time; a second external caller queues behind the first.
  std::lock_guard<std::mutex> owner_lock(owner_mu_);

  Job job;
  job.n = n;
  job.body = &body;
  // Chunks are purely a claim-frequency knob (results are slot-indexed, so
  // chunking never affects output): fine-grained enough to balance uneven
  // bodies, coarse enough that a cheap body isn't all fetch_add traffic.
  const std::uint64_t parts = (workers_.size() + 1) * 8;
  job.chunk = std::max<std::uint64_t>(1, n / parts);

  {
    std::lock_guard<std::mutex> lock(mu_);
    RADNET_CHECK(!stopping_, "parallel_for_index after shutdown");
    job_ = &job;
    ++job_gen_;
  }
  wake_cv_.notify_all();

  const BusyFrame frame{this, tl_busy_chain};
  tl_busy_chain = &frame;
  run_chunks(job);  // the calling thread participates
  tl_busy_chain = frame.prev;

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.active == 0 &&
             (job.failed.load(std::memory_order_relaxed) ||
              job.next.load(std::memory_order_relaxed) >= job.n);
    });
    job_ = nullptr;  // late-waking workers must not join a finished job
  }

  if (job.first_error) std::rethrow_exception(job.first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("RADNET_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 0 && v <= 4096)
        return static_cast<unsigned>(v);  // 0 = hardware concurrency
    }
    return 0u;
  }());
  return pool;
}

ThreadPool* resolve_pool(unsigned threads) {
  if (threads == 1) return nullptr;
  if (threads == 0) return &global_pool();
  // Same ceiling as RADNET_THREADS: a typo'd huge count would die mid-
  // construction spawning threads (joinable-thread destructor terminates
  // the process) and each distinct size is cached for the process
  // lifetime. Reject loudly instead.
  RADNET_REQUIRE(threads <= 4096, "thread count must be <= 4096");
  static std::mutex mu;
  static std::map<unsigned, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& pool = pools[threads];
  if (!pool) pool = std::make_unique<ThreadPool>(threads);
  return pool.get();
}

}  // namespace radnet
