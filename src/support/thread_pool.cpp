#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "support/require.hpp"

namespace radnet {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RADNET_CHECK(!stopping_, "submit after shutdown");
    queue_.push_back(Task{std::move(fn)});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for_index(
    std::uint64_t n, const std::function<void(std::uint64_t)>& body) {
  if (n == 0) return;
  const std::uint64_t workers = size() + 1;  // workers plus the calling thread
  const std::uint64_t chunk = std::max<std::uint64_t>(1, (n + workers - 1) / workers);

  struct Shared {
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> pending{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::exception_ptr first_error;
    std::mutex error_mu;
  } shared;

  const auto run_chunks = [&]() {
    for (;;) {
      const std::uint64_t begin =
          shared.next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::uint64_t end = std::min(n, begin + chunk);
      try {
        for (std::uint64_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.error_mu);
        if (!shared.first_error) shared.first_error = std::current_exception();
      }
    }
  };

  const std::uint64_t tasks = std::min<std::uint64_t>(workers - 1, (n + chunk - 1) / chunk);
  shared.pending.store(tasks, std::memory_order_relaxed);
  for (std::uint64_t t = 0; t < tasks; ++t) {
    submit([&shared, run_chunks] {
      run_chunks();
      if (shared.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(shared.done_mu);
        shared.done_cv.notify_all();
      }
    });
  }

  run_chunks();  // the calling thread participates

  std::unique_lock<std::mutex> lock(shared.done_mu);
  shared.done_cv.wait(lock, [&shared] {
    return shared.pending.load(std::memory_order_acquire) == 0;
  });

  if (shared.first_error) std::rethrow_exception(shared.first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace radnet
