#include "support/io.hpp"

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/parse.hpp"
#include "support/require.hpp"

namespace radnet::io {

namespace {

namespace fs = std::filesystem;

/// The armed fault. Grant boundaries, journal appends and cache writes all
/// happen on the batch loop's thread, so plain statics suffice; forked
/// children get their own copy by memory inheritance (see header).
struct FaultState {
  std::string point;
  std::uint64_t countdown = 0;  ///< fires when a hit decrements this to 0
  enum class Kind : std::uint8_t { kNone, kKill, kHang, kEnospc } kind =
      Kind::kNone;
  bool env_checked = false;
};

FaultState g_fault;

void arm_from_spec(std::string_view spec) {
  g_fault = FaultState{};
  g_fault.env_checked = true;
  if (spec.empty()) return;
  const std::size_t colon = spec.rfind(':');
  RADNET_REQUIRE(colon != std::string_view::npos,
                 "fault spec looks like point@n:action, got '" +
                     std::string(spec) + "'");
  const std::string_view action = spec.substr(colon + 1);
  const std::string_view head = spec.substr(0, colon);
  const std::size_t at = head.rfind('@');
  RADNET_REQUIRE(at != std::string_view::npos && at > 0,
                 "fault spec looks like point@n:action, got '" +
                     std::string(spec) + "'");
  g_fault.point = std::string(head.substr(0, at));
  g_fault.countdown =
      parse_u64_strict(head.substr(at + 1), "fault spec hit count");
  RADNET_REQUIRE(g_fault.countdown >= 1, "fault spec hit count must be >= 1");
  if (action == "kill") {
    g_fault.kind = FaultState::Kind::kKill;
  } else if (action == "hang") {
    g_fault.kind = FaultState::Kind::kHang;
  } else if (action == "enospc") {
    g_fault.kind = FaultState::Kind::kEnospc;
  } else {
    throw std::invalid_argument("fault spec action must be kill, hang or "
                                "enospc, got '" + std::string(action) + "'");
  }
}

}  // namespace

void set_fault(std::string_view spec) { arm_from_spec(spec); }

FaultAction check_fault(std::string_view point) {
  if (!g_fault.env_checked) {
    const char* env = std::getenv("RADNET_FAULT");
    arm_from_spec(env != nullptr ? std::string_view(env)
                                 : std::string_view());
  }
  if (g_fault.kind == FaultState::Kind::kNone || g_fault.point != point)
    return FaultAction::kNone;
  if (--g_fault.countdown > 0) return FaultAction::kNone;
  const auto kind = g_fault.kind;
  g_fault.kind = FaultState::Kind::kNone;  // one shot per process
  switch (kind) {
    case FaultState::Kind::kKill:
      // A real SIGKILL — no unwinding, no flushes: exactly the crash the
      // journal and atomic-rename protocols must survive.
      std::raise(SIGKILL);
      break;
    case FaultState::Kind::kHang:
      // A wedged spec for the watchdog to reap; the sleep outlives any
      // sane isolate timeout and the process dies by SIGKILL.
      for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
      break;
    case FaultState::Kind::kEnospc:
      return FaultAction::kEnospc;
    case FaultState::Kind::kNone:
      break;
  }
  return FaultAction::kNone;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(content).str();
}

bool atomic_write_file(const std::string& path, std::string_view content,
                       std::string_view fault_point) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (check_fault(fault_point) == FaultAction::kEnospc)
      out.setstate(std::ios::badbit);
    out.flush();
    // The stream state check after write + flush is the whole point: a
    // full disk or I/O error here must abort the commit, not leave a
    // truncated file for a later reader to trust.
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);  // atomic within a filesystem
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

bool quarantine_file(const std::string& path) {
  std::error_code ec;
  fs::rename(path, path + ".quarantine", ec);
  return !ec;
}

std::size_t sweep_stale_files(const std::string& dir,
                              std::chrono::seconds max_age) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;
  const auto cutoff = fs::file_time_type::clock::now() - max_age;
  std::size_t removed = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    const bool is_tmp = name.find(".tmp.") != std::string::npos;
    const bool is_quarantine =
        name.size() > 11 &&
        name.compare(name.size() - 11, 11, ".quarantine") == 0;
    if (!is_tmp && !is_quarantine) continue;
    const auto mtime = fs::last_write_time(entry.path(), ec);
    if (ec || mtime >= cutoff) continue;  // young — maybe a live run's temp
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace radnet::io
