#include "baselines/decay.hpp"

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::baselines {

void DecayProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "Decay needs n >= 2");
  rng_ = rng;
  phase_len_ = ilog2_ceil(num_nodes) + 1;
  state_.reset(num_nodes, params_.source);
}

std::span<const NodeId> DecayProtocol::candidates() const {
  return state_.active();
}

bool DecayProtocol::wants_transmit(NodeId v, sim::Round r) {
  if (params_.active_phases != 0) {
    const sim::Round expiry =
        state_.informed_time(v) + params_.active_phases * phase_len_;
    if (r >= expiry) {
      state_.deactivate(v);
      return false;
    }
  }
  const std::uint32_t j = r % phase_len_;
  return rng_.bernoulli(pow2_neg(j));
}

void DecayProtocol::on_delivered(NodeId receiver, NodeId sender, sim::Round r) {
  state_.deliver(receiver, r, true, state_.copy_is_valid(sender));
}

void DecayProtocol::on_delivered_corrupted(NodeId receiver, NodeId /*sender*/,
                                           sim::Round r) {
  state_.deliver(receiver, r, true, /*copy_valid=*/false);
}

void DecayProtocol::end_round(sim::Round /*r*/) { state_.commit(); }

bool DecayProtocol::is_complete() const { return state_.goal_reached(); }

}  // namespace radnet::baselines
