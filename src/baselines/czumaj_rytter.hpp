// The Czumaj–Rytter known-diameter broadcast [11], transformed as the paper
// describes (§4: "stop nodes from transmitting after a certain number of
// rounds") into a bounded-energy protocol.
//
// It is the same sequence-broadcast machinery as Algorithm 3 but with the
// floorless distribution alpha' and a correspondingly *longer* active
// window: because min_k alpha'_k lacks the 1/(2 log n) floor, the worst-case
// per-neighbour delivery probability drops by a factor Theta(log(n/D)), so a
// node must stay awake ~beta * log(n/D) * log^2 n rounds to deliver w.h.p.
// (the paper: expected Theta(log^2 n) transmissions per node versus
// Algorithm 3's O(log^2 n / log(n/D))). The E6 bench runs both at equal
// success rates and measures exactly this energy gap.
#pragma once

#include <memory>

#include "core/broadcast_general.hpp"

namespace radnet::baselines {

/// Builds the CR-known-D protocol for (n, D): GeneralBroadcastProtocol with
/// distribution alpha'(n, D) and window ceil(beta * lambda * log2(n)^2).
[[nodiscard]] std::unique_ptr<core::GeneralBroadcastProtocol> czumaj_rytter(
    std::uint64_t n, std::uint64_t diameter, double beta,
    graph::NodeId source = 0);

/// The CR window ceil(beta * lambda * log2(n)^2).
[[nodiscard]] sim::Round czumaj_rytter_window(std::uint64_t n,
                                              std::uint64_t diameter,
                                              double beta);

}  // namespace radnet::baselines
