#include "baselines/gossip_baselines.hpp"

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::baselines {

void TdmaGossipProtocol::reset(NodeId num_nodes, Rng /*rng*/) {
  RADNET_REQUIRE(num_nodes >= 2, "TDMA gossip needs n >= 2");
  n_ = num_nodes;
  slot_.assign(1, 0);
  rumors_.assign(n_, Bitset(n_));
  for (NodeId v = 0; v < n_; ++v) rumors_[v].set(v);
  known_ = n_;
}

void TdmaGossipProtocol::begin_round(sim::Round r) {
  slot_[0] = static_cast<NodeId>(r % n_);
}

std::span<const NodeId> TdmaGossipProtocol::candidates() const {
  return {slot_.data(), slot_.size()};
}

bool TdmaGossipProtocol::wants_transmit(NodeId /*v*/, sim::Round /*r*/) {
  return true;  // the slot owner always uses its slot
}

void TdmaGossipProtocol::on_delivered(NodeId receiver, NodeId sender,
                                      sim::Round /*r*/) {
  const std::size_t before = rumors_[receiver].count();
  if (rumors_[receiver].unite(rumors_[sender]))
    known_ += rumors_[receiver].count() - before;
}

bool TdmaGossipProtocol::is_complete() const {
  return known_ == static_cast<std::uint64_t>(n_) * n_;
}

void DecayGossipProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "decay gossip needs n >= 2");
  n_ = num_nodes;
  rng_ = rng;
  phase_len_ = ilog2_ceil(num_nodes) + 1;
  everyone_.resize(n_);
  for (NodeId v = 0; v < n_; ++v) everyone_[v] = v;
  rumors_.assign(n_, Bitset(n_));
  for (NodeId v = 0; v < n_; ++v) rumors_[v].set(v);
  known_ = n_;
}

std::span<const NodeId> DecayGossipProtocol::candidates() const {
  return {everyone_.data(), everyone_.size()};
}

bool DecayGossipProtocol::wants_transmit(NodeId /*v*/, sim::Round r) {
  return rng_.bernoulli(pow2_neg(r % phase_len_));
}

void DecayGossipProtocol::on_delivered(NodeId receiver, NodeId sender,
                                       sim::Round /*r*/) {
  const std::size_t before = rumors_[receiver].count();
  if (rumors_[receiver].unite(rumors_[sender]))
    known_ += rumors_[receiver].count() - before;
}

bool DecayGossipProtocol::is_complete() const {
  return known_ == static_cast<std::uint64_t>(n_) * n_;
}

}  // namespace radnet::baselines
