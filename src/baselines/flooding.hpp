// Naive flooding: every informed node transmits in every round, forever.
//
// In a wired network this is the textbook broadcast; in the radio model it
// is a cautionary baseline — as soon as a node has two informed in-
// neighbours every round collides and the node is never informed. The
// examples and E11 use it to demonstrate *why* the paper's randomised
// schedules are necessary: flooding succeeds only on collision-free
// topologies (paths, trees traversed layer by layer) and burns one
// transmission per node per round while doing so.
#pragma once

#include <string>

#include "core/broadcast_state.hpp"
#include "sim/protocol.hpp"

namespace radnet::baselines {

using core::BroadcastState;
using graph::NodeId;

class FloodingProtocol final : public sim::Protocol {
 public:
  explicit FloodingProtocol(NodeId source = 0) : source_(source) {}

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  void on_delivered_corrupted(NodeId receiver, NodeId sender,
                              sim::Round r) override;
  void end_round(sim::Round r) override;
  [[nodiscard]] bool is_complete() const override;
  void set_goal_exclusions(std::span<const NodeId> nodes) override {
    state_.exclude_from_goal(nodes);
  }
  [[nodiscard]] std::optional<NodeId> stranded_count() const override {
    return state_.stranded_count();
  }
  [[nodiscard]] std::string name() const override { return "flooding"; }

  [[nodiscard]] NodeId informed_count() const noexcept {
    return state_.informed_count();
  }

 private:
  NodeId source_;
  BroadcastState state_;
};

}  // namespace radnet::baselines
