// The Elsässer–Gasieniec random-graph broadcast [12] (SPAA 2005), as
// described in the paper's related-work section (§1.1) — the direct
// predecessor Algorithm 1 improves on.
//
// Three phases on G(n,p) with d = np and diameter estimate D = T + 1,
// T = floor(log n / log d) (Lemma 3.1 gives D = ceil(log n / log d) w.h.p.):
//
//   Phase 1 (D - 1 rounds): every informed node transmits with
//     probability 1 *in every round* — so a node informed early transmits up
//     to D - 1 times. This is the key difference from Algorithm 1, whose
//     nodes go passive after their single Phase-1 shot.
//   Phase 2 (one round): every informed node transmits with probability
//     n/d^D = 1/(d^T p), the same density Algorithm 1 uses.
//   Phase 3 (Theta(log n) rounds): every informed node transmits with
//     probability 1/d, never becoming passive.
//
// Broadcast time matches Algorithm 1 at O(log n) w.h.p.; the energy cost is
// what the comparison benches (E11) measure: up to D-1 transmissions per
// node in Phase 1 plus ~1 expected per Phase-3 participant-window, against
// Algorithm 1's hard <= 1.
#pragma once

#include <string>

#include "core/broadcast_state.hpp"
#include "sim/protocol.hpp"

namespace radnet::baselines {

using core::BroadcastState;
using graph::NodeId;

struct ElsasserGasieniecParams {
  double p = 0.0;
  NodeId source = 0;
  /// Phase 3 runs for ceil(phase3_factor * log2 n) rounds.
  double phase3_factor = 32.0;
};

class ElsasserGasieniecProtocol final : public sim::Protocol {
 public:
  explicit ElsasserGasieniecProtocol(ElsasserGasieniecParams params);

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  void on_delivered_corrupted(NodeId receiver, NodeId sender,
                              sim::Round r) override;
  void end_round(sim::Round r) override;
  [[nodiscard]] bool is_complete() const override;
  void set_goal_exclusions(std::span<const NodeId> nodes) override {
    state_.exclude_from_goal(nodes);
  }
  [[nodiscard]] std::optional<NodeId> stranded_count() const override {
    return state_.stranded_count();
  }
  [[nodiscard]] std::string name() const override { return "eg2005"; }

  [[nodiscard]] sim::Round phase1_end() const noexcept { return t_; }
  [[nodiscard]] sim::Round round_budget() const noexcept {
    return t_ + 1 + phase3_len_;
  }

 private:
  ElsasserGasieniecParams params_;
  Rng rng_;
  BroadcastState state_;
  NodeId n_ = 0;
  double d_ = 0.0;
  sim::Round t_ = 0;  // phase-1 length = D - 1 = T
  double phase2_prob_ = 0.0;
  double phase3_prob_ = 0.0;
  sim::Round phase3_len_ = 0;
};

}  // namespace radnet::baselines
