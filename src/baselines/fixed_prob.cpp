#include "baselines/fixed_prob.hpp"

#include <sstream>

#include "support/require.hpp"

namespace radnet::baselines {

FixedProbProtocol::FixedProbProtocol(FixedProbParams params) : params_(params) {
  RADNET_REQUIRE(params_.q > 0.0 && params_.q <= 1.0, "q must be in (0,1]");
}

void FixedProbProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "FixedProb needs n >= 2");
  rng_ = rng;
  state_.reset(num_nodes, params_.source);
}

std::span<const NodeId> FixedProbProtocol::candidates() const {
  return state_.active();
}

bool FixedProbProtocol::wants_transmit(NodeId v, sim::Round r) {
  if (params_.window != 0 && r >= state_.informed_time(v) + params_.window) {
    state_.deactivate(v);
    return false;
  }
  return rng_.bernoulli(params_.q);
}

void FixedProbProtocol::on_delivered(NodeId receiver, NodeId sender,
                                     sim::Round r) {
  state_.deliver(receiver, r, true, state_.copy_is_valid(sender));
}

void FixedProbProtocol::on_delivered_corrupted(NodeId receiver,
                                               NodeId /*sender*/,
                                               sim::Round r) {
  state_.deliver(receiver, r, true, /*copy_valid=*/false);
}

void FixedProbProtocol::end_round(sim::Round /*r*/) { state_.commit(); }

bool FixedProbProtocol::is_complete() const { return state_.goal_reached(); }

std::string FixedProbProtocol::name() const {
  std::ostringstream os;
  os << "fixed(q=" << params_.q << ")";
  return os.str();
}

}  // namespace radnet::baselines
