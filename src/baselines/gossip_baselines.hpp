// Gossip baselines.
//
// TdmaGossipProtocol: a deterministic round-robin ("TDMA") schedule — in
// round r exactly the node with id r mod n transmits, carrying the join of
// everything it knows. There are never collisions, so correctness is
// trivial; the cost is time: a rumor advances at most one hop per n rounds
// in the worst case, giving Theta(n * D) rounds against Algorithm 2's
// O(d log n). The E5 bench contrasts the two to show what the randomised
// schedule buys. Per-node energy is the number of sweeps, i.e. ~rounds/n.
// This stands in for the deterministic gossip line of work the paper cites
// ([27] etc.) in spirit: collision-free but slow.
//
// DecayGossipProtocol: gossip for *general* (non-random) networks in the
// spirit of the Chrobak–Gasieniec–Rytter framework [8] as used by [11]:
// every node runs the BGI Decay schedule continuously (transmit with
// probability 2^{-(r mod phase)} each round) and joins whatever it hears.
// Decay's coin-halving makes some round of every phase match any local
// density, so rumors advance one hop per O(log n) rounds regardless of the
// topology — no knowledge of d required, unlike Algorithm 2. The price is
// energy: ~2 transmissions per node per phase, Theta(rounds / log n) per
// node overall, against Algorithm 2's O(log n) total.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/protocol.hpp"
#include "support/bitset.hpp"

namespace radnet::baselines {

using graph::NodeId;

class TdmaGossipProtocol final : public sim::Protocol {
 public:
  TdmaGossipProtocol() = default;

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  [[nodiscard]] bool is_complete() const override;
  [[nodiscard]] std::string name() const override { return "tdma-gossip"; }

  [[nodiscard]] std::uint64_t pairs_known() const noexcept { return known_; }

 private:
  NodeId n_ = 0;
  // The single slot owner for the current round; refreshed in begin_round.
  void begin_round(sim::Round r) override;
  std::vector<NodeId> slot_;  // one-element candidate list
  std::vector<Bitset> rumors_;
  std::uint64_t known_ = 0;
};

class DecayGossipProtocol final : public sim::Protocol {
 public:
  DecayGossipProtocol() = default;

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  [[nodiscard]] bool is_complete() const override;
  [[nodiscard]] std::string name() const override { return "decay-gossip"; }

  [[nodiscard]] std::uint64_t pairs_known() const noexcept { return known_; }
  [[nodiscard]] sim::Round phase_length() const noexcept { return phase_len_; }

 private:
  NodeId n_ = 0;
  Rng rng_;
  sim::Round phase_len_ = 1;
  std::vector<NodeId> everyone_;
  std::vector<Bitset> rumors_;
  std::uint64_t known_ = 0;
};

}  // namespace radnet::baselines
