// The Decay protocol of Bar-Yehuda, Goldreich and Itai [3].
//
// Time is divided into phases of ceil(log2 n) + 1 rounds. In round j of a
// phase (j = 0, 1, ...), every informed node transmits with probability
// 2^{-j}: everybody shouts, then half drop out, then half again — so for any
// receiver there is some j at which the expected number of transmitting
// in-neighbours is about 1 and delivery succeeds with constant probability.
// This yields O((D + log n) log n) broadcast time w.h.p. and Theta(log n)
// transmissions per node per phase-window — the classic baseline the paper
// compares against for general networks.
//
// `active_phases` bounds how many phases a node participates in after being
// informed (0 = forever); the energy comparison benches set it to the same
// window Algorithm 3 uses so the time/energy trade compares like for like.
#pragma once

#include <string>

#include "core/broadcast_state.hpp"
#include "sim/protocol.hpp"

namespace radnet::baselines {

using core::BroadcastState;
using graph::NodeId;

struct DecayParams {
  NodeId source = 0;
  /// Number of decay phases a node stays active after being informed;
  /// 0 means unlimited.
  std::uint32_t active_phases = 0;
};

class DecayProtocol final : public sim::Protocol {
 public:
  explicit DecayProtocol(DecayParams params) : params_(params) {}

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  void on_delivered_corrupted(NodeId receiver, NodeId sender,
                              sim::Round r) override;
  void end_round(sim::Round r) override;
  [[nodiscard]] bool is_complete() const override;
  void set_goal_exclusions(std::span<const NodeId> nodes) override {
    state_.exclude_from_goal(nodes);
  }
  [[nodiscard]] std::optional<NodeId> stranded_count() const override {
    return state_.stranded_count();
  }
  [[nodiscard]] std::string name() const override { return "decay"; }

  [[nodiscard]] sim::Round phase_length() const noexcept { return phase_len_; }

 private:
  DecayParams params_;
  Rng rng_;
  BroadcastState state_;
  sim::Round phase_len_ = 1;
};

}  // namespace radnet::baselines
