// Fixed-probability oblivious schedules — the algorithm class of the
// lower-bound experiments (§4.2).
//
// Observation 4.3 and Theorem 4.4 reason about oblivious algorithms whose
// per-round send probability comes from a fixed (time-invariant)
// distribution. The canonical member is "every informed node transmits with
// probability q every round". On the Observation 4.3 network the probability
// that destination d_i is informed in a round is 2q(1-q), and the proof
// shows any such schedule needs a sum of per-round probabilities >= log n / 4
// per intermediate — i.e. >= n log n / 2 total expected transmissions — to
// reach success probability 1 - 1/n. The E8 bench sweeps q and the round
// budget and reproduces exactly that transmission threshold.
#pragma once

#include <string>

#include "core/broadcast_state.hpp"
#include "sim/protocol.hpp"

namespace radnet::baselines {

using core::BroadcastState;
using graph::NodeId;

struct FixedProbParams {
  /// Per-round transmit probability for every informed node.
  double q = 0.5;
  NodeId source = 0;
  /// Rounds a node stays active after being informed; 0 = forever.
  sim::Round window = 0;
};

class FixedProbProtocol final : public sim::Protocol {
 public:
  explicit FixedProbProtocol(FixedProbParams params);

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  void on_delivered_corrupted(NodeId receiver, NodeId sender,
                              sim::Round r) override;
  void end_round(sim::Round r) override;
  [[nodiscard]] bool is_complete() const override;
  void set_goal_exclusions(std::span<const NodeId> nodes) override {
    state_.exclude_from_goal(nodes);
  }
  [[nodiscard]] std::optional<NodeId> stranded_count() const override {
    return state_.stranded_count();
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] NodeId informed_count() const noexcept {
    return state_.informed_count();
  }

 private:
  FixedProbParams params_;
  Rng rng_;
  BroadcastState state_;
};

}  // namespace radnet::baselines
