#include "baselines/flooding.hpp"

namespace radnet::baselines {

void FloodingProtocol::reset(NodeId num_nodes, Rng /*rng*/) {
  state_.reset(num_nodes, source_);
}

std::span<const NodeId> FloodingProtocol::candidates() const {
  return state_.active();
}

bool FloodingProtocol::wants_transmit(NodeId /*v*/, sim::Round /*r*/) {
  return true;  // flood: always transmit while informed
}

void FloodingProtocol::on_delivered(NodeId receiver, NodeId sender,
                                    sim::Round r) {
  // The copy inherits the sender's provenance (half-duplex: the sender's
  // current bit is the bit it transmitted).
  state_.deliver(receiver, r, true, state_.copy_is_valid(sender));
}

void FloodingProtocol::on_delivered_corrupted(NodeId receiver,
                                              NodeId /*sender*/, sim::Round r) {
  state_.deliver(receiver, r, true, /*copy_valid=*/false);
}

void FloodingProtocol::end_round(sim::Round /*r*/) { state_.commit(); }

bool FloodingProtocol::is_complete() const { return state_.goal_reached(); }

}  // namespace radnet::baselines
