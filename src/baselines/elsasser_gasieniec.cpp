#include "baselines/elsasser_gasieniec.hpp"

#include <cmath>

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::baselines {

ElsasserGasieniecProtocol::ElsasserGasieniecProtocol(
    ElsasserGasieniecParams params)
    : params_(params) {
  RADNET_REQUIRE(params_.p > 0.0 && params_.p <= 1.0, "p must be in (0,1]");
  RADNET_REQUIRE(params_.phase3_factor > 0.0, "phase3_factor must be positive");
}

void ElsasserGasieniecProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "EG needs n >= 2");
  n_ = num_nodes;
  rng_ = rng;
  d_ = static_cast<double>(n_) * params_.p;
  RADNET_REQUIRE(d_ > 1.0, "EG needs expected degree d = np > 1");
  t_ = phase1_rounds(n_, d_);
  const double dT = std::pow(d_, static_cast<double>(t_));
  phase2_prob_ = std::min(1.0, 1.0 / (dT * params_.p));  // = n / d^{T+1}
  phase3_prob_ = std::min(1.0, 1.0 / d_);
  phase3_len_ = static_cast<sim::Round>(
      std::ceil(params_.phase3_factor * log2d(static_cast<double>(n_))));
  state_.reset(n_, params_.source);
}

std::span<const NodeId> ElsasserGasieniecProtocol::candidates() const {
  return state_.active();
}

bool ElsasserGasieniecProtocol::wants_transmit(NodeId v, sim::Round r) {
  if (r < t_) return true;                              // Phase 1, every round
  if (r == t_) return rng_.bernoulli(phase2_prob_);     // Phase 2
  if (r >= round_budget()) {                            // budget exhausted
    state_.deactivate(v);
    return false;
  }
  return rng_.bernoulli(phase3_prob_);                  // Phase 3
}

void ElsasserGasieniecProtocol::on_delivered(NodeId receiver, NodeId sender,
                                             sim::Round r) {
  // As in [12] (and Algorithm 1): only nodes informed in the first two
  // phases transmit in Phase 3; late informees stay silent.
  state_.deliver(receiver, r, /*activate=*/r <= t_,
                 /*copy_valid=*/state_.copy_is_valid(sender));
}

void ElsasserGasieniecProtocol::on_delivered_corrupted(NodeId receiver,
                                                       NodeId /*sender*/,
                                                       sim::Round r) {
  state_.deliver(receiver, r, /*activate=*/r <= t_, /*copy_valid=*/false);
}

void ElsasserGasieniecProtocol::end_round(sim::Round /*r*/) { state_.commit(); }

bool ElsasserGasieniecProtocol::is_complete() const {
  return state_.goal_reached();
}

}  // namespace radnet::baselines
