#include "baselines/czumaj_rytter.hpp"

#include <cmath>

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::baselines {

sim::Round czumaj_rytter_window(std::uint64_t n, std::uint64_t diameter,
                                double beta) {
  RADNET_REQUIRE(n >= 4, "czumaj_rytter_window needs n >= 4");
  RADNET_REQUIRE(beta > 0.0, "beta must be positive");
  const double l = log2d(static_cast<double>(n));
  const double lambda = lambda_of(n, diameter);
  return static_cast<sim::Round>(std::ceil(beta * lambda * l * l));
}

std::unique_ptr<core::GeneralBroadcastProtocol> czumaj_rytter(
    std::uint64_t n, std::uint64_t diameter, double beta,
    graph::NodeId source) {
  core::GeneralBroadcastParams params{
      .distribution = core::SequenceDistribution::alpha_prime(n, diameter),
      .window = czumaj_rytter_window(n, diameter, beta),
      .source = source,
      .label = "czumaj-rytter"};
  return std::make_unique<core::GeneralBroadcastProtocol>(std::move(params));
}

}  // namespace radnet::baselines
