#include "harness/experiment.hpp"

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <new>

#include "support/cli_args.hpp"
#include "support/require.hpp"

namespace radnet::harness {

std::uint32_t BenchEnv::trials(std::uint32_t default_trials) const {
  return trials_override != 0 ? trials_override : default_trials;
}

std::uint64_t BenchEnv::scaled(std::uint64_t base, std::uint64_t min) const {
  const double v = static_cast<double>(base) * scale;
  return std::max<std::uint64_t>(min, static_cast<std::uint64_t>(std::llround(v)));
}

BenchEnv bench_env() {
  BenchEnv env;
  if (const char* s = std::getenv("RADNET_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) env.scale = v;
  }
  if (const char* s = std::getenv("RADNET_TRIALS")) {
    const long v = std::atol(s);
    if (v > 0) env.trials_override = static_cast<std::uint32_t>(v);
  }
  if (const char* s = std::getenv("RADNET_SEED")) {
    env.seed = std::strtoull(s, nullptr, 0);
  }
  if (const char* s = std::getenv("RADNET_CSV")) {
    env.csv_dir = s;
  }
  return env;
}

void emit_table(const BenchEnv& env, const std::string& bench,
                const std::string& table_id, const Table& table) {
  std::cout << table.str() << '\n';
  if (!env.csv_dir.empty()) {
    const std::string path = env.csv_dir + "/" + bench + "_" + table_id + ".csv";
    table.write_csv(path);
    std::cout << "[csv written: " << path << "]\n\n";
  }
}

bool parse_topology_flag(int argc, char** argv, std::string* label_out,
                         const char* default_value) {
  std::string topology;
  try {
    const CliArgs args(argc, argv, {"topology"});
    topology = args.get_string("topology", default_value);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    std::exit(2);
  }
  if (topology != "implicit" && topology != "csr") {
    std::cerr << "unknown --topology '" << topology
              << "' (expected implicit|csr)\n";
    std::exit(2);
  }
  if (label_out != nullptr) *label_out = topology;
  return topology == "implicit";
}

void banner(const std::string& bench_id, const std::string& claim) {
  std::cout << "==============================================================\n"
            << bench_id << '\n'
            << claim << '\n'
            << "==============================================================\n\n";
}

double wilson_half_width(double rate, std::uint64_t trials, double z) {
  RADNET_REQUIRE(trials >= 1, "wilson_half_width needs trials >= 1");
  const double n = static_cast<double>(trials);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (rate + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(rate * (1.0 - rate) / n + z2 / (4.0 * n * n)) / denom;
  (void)center;
  return half;
}

int run_memory_limited(std::uint64_t limit_bytes, int (*attempt)()) {
  const pid_t pid = fork();
  if (pid == 0) {
    rlimit lim{limit_bytes, limit_bytes};
    setrlimit(RLIMIT_AS, &lim);
    int rc;
    try {
      rc = attempt();
    } catch (const std::bad_alloc&) {
      _exit(1);
    } catch (...) {
      _exit(2);
    }
    _exit(rc);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 3;  // killed (e.g. OOM before bad_alloc could propagate)
}

}  // namespace radnet::harness
