// Experiment-level conveniences shared by the bench binaries.
//
// Benches are standalone programs that print paper-style tables; their
// problem sizes honour two environment variables so the same binaries serve
// quick smoke runs and overnight sweeps:
//   RADNET_SCALE  — multiplies the largest n in each sweep (default 1.0)
//   RADNET_TRIALS — overrides the per-point trial count
//   RADNET_SEED   — overrides the root seed
//   RADNET_CSV    — when set to a directory, every table is also written
//                   there as <bench>_<table>.csv
#pragma once

#include <cstdint>
#include <string>

#include "support/table.hpp"

namespace radnet::harness {

struct BenchEnv {
  double scale = 1.0;
  std::uint32_t trials_override = 0;  ///< 0 = use the bench's default
  std::uint64_t seed = 0x5eedull;
  std::string csv_dir;                ///< empty = don't write CSVs

  /// Applies the trial override (if any) to a bench's default.
  [[nodiscard]] std::uint32_t trials(std::uint32_t default_trials) const;

  /// Scales a sweep's maximum size: round(base * scale), at least `min`.
  [[nodiscard]] std::uint64_t scaled(std::uint64_t base, std::uint64_t min = 2) const;
};

/// Reads the RADNET_* environment variables.
[[nodiscard]] BenchEnv bench_env();

/// Parses the benches' shared `--topology=implicit|csr` flag (the only
/// command-line flag the topology-switchable bench binaries take). Returns
/// true for implicit; fills `label_out` (when non-null) with the value for
/// banners. Unknown flags or values print a message and exit 2.
[[nodiscard]] bool parse_topology_flag(int argc, char** argv,
                                       std::string* label_out,
                                       const char* default_value = "csr");

/// Prints the table to stdout and, when env.csv_dir is set, writes
/// "<env.csv_dir>/<bench>_<table>.csv".
void emit_table(const BenchEnv& env, const std::string& bench,
                const std::string& table_id, const Table& table);

/// A banner line naming the experiment and paper artefact it reproduces.
void banner(const std::string& bench_id, const std::string& claim);

/// Wilson score interval half-width for a success rate (used to annotate
/// success-probability columns with sampling error).
[[nodiscard]] double wilson_half_width(double rate, std::uint64_t trials,
                                       double z = 1.96);

/// Runs `attempt` in a forked child under an RLIMIT_AS of `limit_bytes` —
/// the memory-budget demonstrations of bench_e15_topology and
/// bench_e16_dynamic_scale. Returns the child's exit code: 0 success,
/// 1 allocation failure (std::bad_alloc), 2 other exception, 3 killed
/// before an exception could propagate (e.g. OOM).
[[nodiscard]] int run_memory_limited(std::uint64_t limit_bytes,
                                     int (*attempt)());

}  // namespace radnet::harness
