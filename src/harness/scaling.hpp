// Empirical scaling checks.
//
// The paper's claims are asymptotic (O(log n), O(d log n), ...). The benches
// validate them as *shapes*: measured quantity divided by the model should be
// flat across the sweep, equivalently a log-log fit of measurement against
// the model should have slope ~1. ScalingCheck collects (model, measured)
// pairs and reports the fitted log-log exponent, the flatness band of the
// normalised ratio, and a verdict — one uniform mechanism every table-
// producing bench can append to its output.
#pragma once

#include <string>
#include <vector>

#include "support/stats.hpp"

namespace radnet::harness {

class ScalingCheck {
 public:
  /// `name` describes the claim, e.g. "rounds = O(log n)";
  /// `slope_tolerance` is the allowed deviation of the log-log slope from 1.
  explicit ScalingCheck(std::string name, double slope_tolerance = 0.35);

  /// Adds one sweep point: the model's prediction (e.g. log2 n) and the
  /// measured mean (e.g. completion rounds). Both must be positive.
  void add(double model, double measured);

  [[nodiscard]] std::size_t points() const noexcept { return model_.size(); }

  /// Fitted exponent of measured ~ model^s (log-log OLS slope). Requires at
  /// least two points with distinct model values.
  [[nodiscard]] double fitted_exponent() const;

  /// max/min of the normalised ratio measured/model across the sweep — the
  /// "constant band" width. 1 means perfectly flat.
  [[nodiscard]] double band_ratio() const;

  /// True when the fitted exponent is within slope_tolerance of 1.
  [[nodiscard]] bool passes() const;

  /// One-line human-readable verdict for bench output.
  [[nodiscard]] std::string report() const;

  /// Band-based verdict, for sweeps whose model range is too narrow for a
  /// meaningful log-log slope (e.g. log n varying by < 2x): passes when the
  /// normalised ratio stays within `max_band`.
  [[nodiscard]] bool band_passes(double max_band) const;
  [[nodiscard]] std::string report_band(double max_band) const;

 private:
  std::string name_;
  double tolerance_;
  std::vector<double> model_;
  std::vector<double> measured_;
};

}  // namespace radnet::harness
