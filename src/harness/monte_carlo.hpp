// Deterministic, parallel Monte-Carlo trial runner.
//
// A *trial* is one protocol execution on one network. Trial t derives its
// graph RNG from (seed, t, 0) and its protocol RNG from (seed, t, 1), so the
// full experiment is a pure function of the root seed, and trials are
// independent by construction. Trials run on the global thread pool with
// results written into a pre-sized slot vector — aggregation afterwards is
// serial, so the output is identical whether the pool has 1 or 64 threads
// (asserted by tests/harness tests).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "graph/digraph.hpp"
#include "sim/engine.hpp"
#include "support/stats.hpp"

namespace radnet::harness {

/// Everything a bench wants to know about one trial.
struct TrialOutcome {
  bool completed = false;
  sim::Round rounds = 0;         ///< completion round if completed, else rounds run
  std::uint64_t total_tx = 0;
  std::uint32_t max_tx_node = 0; ///< max transmissions by any single node
  double mean_tx_node = 0.0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  graph::NodeId nodes = 0;
  /// In-goal nodes left without a valid message copy when the trial ended
  /// (see Protocol::stranded_count); nullopt when the protocol does not
  /// track provenance. The robustness benches' headline "stranded
  /// fraction" is stranded / nodes.
  std::optional<graph::NodeId> stranded;
};

/// Trial topology for the implicit G(n,p) backend (see sim/topology.hpp):
/// the graph is never materialised, each trial's edge randomness is the
/// same (seed, trial, 0) stream make_graph would have received — so an
/// implicit spec and a CSR spec with identical seeds form paired trials.
struct ImplicitGnpParams {
  graph::NodeId n = 0;
  double p = 0.0;
};

struct McSpec {
  /// Hard ceiling on `trials`, enforced by validate(): the harness
  /// pre-sizes one TrialOutcome slot per trial before anything runs, so a
  /// fat-fingered trial count must fail validation loudly instead of
  /// silently attempting a multi-GiB allocation (at the bound the slot
  /// vector alone is ~1 GiB; the per-trial topology state scales on top of
  /// it). The slot-sizing arithmetic itself is overflow-checked in
  /// run_monte_carlo_range for 32-bit size_t targets.
  static constexpr std::uint32_t kMaxTrials = 1u << 24;

  /// Number of independent trials.
  std::uint32_t trials = 32;
  /// Root seed; the entire experiment is a function of this.
  std::uint64_t seed = 1;
  /// Produces (or shares) the network for a trial. Called once per trial
  /// with that trial's private graph RNG. Ignored when implicit_gnp /
  /// implicit_dynamic / make_sequence is set.
  std::function<std::shared_ptr<const graph::Digraph>(std::uint32_t trial, Rng rng)>
      make_graph;
  /// Produces a *changing* topology (churn / mobility) for a trial, run on
  /// the explicit dynamic-CSR backend. Called once per trial with that
  /// trial's private graph RNG; takes precedence over make_graph.
  std::function<std::unique_ptr<graph::TopologySequence>(std::uint32_t trial,
                                                         Rng rng)>
      make_sequence;
  /// When set, trials run on the implicit G(n,p) backend instead of a
  /// materialised graph; make_protocol then receives an empty placeholder
  /// Digraph (protocols are oblivious and never look at it anyway).
  std::optional<ImplicitGnpParams> implicit_gnp;
  /// When set, trials run on the implicit dynamic G(n,p) backend (takes
  /// precedence over the explicit factories; setting two implicit
  /// backends at once is contradictory and rejected by validate());
  /// set the model fields
  /// (n, p, churn, fail_prob, p_of_round, sketch_capacity) only — the
  /// spec's rng is overwritten per trial with the (seed, trial, 0) stream,
  /// so an implicit-dynamic spec and a make_sequence ChurnGnp spec form
  /// paired experiments.
  std::optional<sim::ImplicitDynamicGnp> implicit_dynamic;
  /// When set, trials run on the implicit mobility-RGG backend (takes
  /// precedence over the explicit factories; combining it with another
  /// implicit backend is rejected by validate()); set the model fields
  /// (n, radius, step) only — the spec's rng is
  /// overwritten per trial with the (seed, trial, 0) stream, so an
  /// implicit-RGG spec and a make_sequence MobilityRgg spec form paired
  /// experiments (same process law; the motion streams are consumed
  /// differently, so the pairing is distributional, not bit-level).
  std::optional<sim::ImplicitRgg> implicit_rgg;
  /// Produces a fresh protocol object for a trial (trials may run
  /// concurrently, so protocols cannot be shared).
  std::function<std::unique_ptr<sim::Protocol>(const graph::Digraph& g,
                                               std::uint32_t trial)>
      make_protocol;
  /// Engine options (max_rounds etc.), shared by all trials. When
  /// run_options.adversary is active, its seed is re-keyed per trial from
  /// the (seed, trial, 2) stream so adversarial role/budget/fault draws
  /// vary across trials exactly like graph and protocol randomness (and
  /// paired specs with equal root seeds face *identical* adversaries).
  sim::RunOptions run_options;
  /// Run trials serially on the calling thread (used by the determinism
  /// tests and when a caller is already inside a parallel region).
  bool serial = false;

  /// Rejects malformed and self-contradictory specs with
  /// std::invalid_argument (RADNET_REQUIRE) before any trial runs:
  /// missing factories, more than one implicit backend set at once,
  /// out-of-range implicit model parameters, invalid adversary spec.
  /// run_monte_carlo calls this; callers may use it to fail fast.
  void validate() const;
};

struct McResult {
  std::vector<TrialOutcome> outcomes;  ///< indexed by trial
  std::uint32_t successes = 0;

  [[nodiscard]] std::uint32_t trials() const {
    return static_cast<std::uint32_t>(outcomes.size());
  }
  [[nodiscard]] double success_rate() const;

  /// Sample over completed trials only (rounds of failed trials are
  /// censored at max_rounds and would poison time statistics).
  [[nodiscard]] Sample rounds_sample() const;
  /// Samples over all trials (energy is well-defined even on failure).
  [[nodiscard]] Sample total_tx_sample() const;
  [[nodiscard]] Sample max_tx_sample() const;
  [[nodiscard]] Sample mean_tx_sample() const;
  /// Stranded-node counts over trials whose protocol reports provenance
  /// (empty when none do); failures included — stranding is the outcome
  /// robustness curves care about, completed or not.
  [[nodiscard]] Sample stranded_sample() const;
};

/// Runs the experiment described by `spec`.
[[nodiscard]] McResult run_monte_carlo(const McSpec& spec);

/// Incremental accumulation: runs trials [first, first + count) of the
/// experiment and appends their outcomes to `into` (which must already
/// hold exactly the outcomes of trials [0, first) — typically from earlier
/// calls). Trial t is a pure function of (spec.seed, t) regardless of how
/// the trial range is chunked or threaded, so a sequence of range calls
/// produces outcomes bit-identical to one run_monte_carlo call — this is
/// what lets the batch sweep service (harness/batch.hpp) early-stop a spec
/// and still guarantee its result is an exact prefix of the full run.
/// first + count <= spec.trials; validates the spec on every call.
void run_monte_carlo_range(const McSpec& spec, std::uint32_t first,
                           std::uint32_t count, McResult& into);

/// Convenience: wraps an already-built graph for McSpec::make_graph.
[[nodiscard]] std::function<std::shared_ptr<const graph::Digraph>(std::uint32_t, Rng)>
shared_graph(graph::Digraph g);

}  // namespace radnet::harness
