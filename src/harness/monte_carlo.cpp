#include "harness/monte_carlo.hpp"

#include "support/require.hpp"
#include "support/thread_pool.hpp"

namespace radnet::harness {

double McResult::success_rate() const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(successes) / static_cast<double>(outcomes.size());
}

Sample McResult::rounds_sample() const {
  Sample s;
  for (const auto& o : outcomes)
    if (o.completed) s.add(static_cast<double>(o.rounds));
  return s;
}

Sample McResult::total_tx_sample() const {
  Sample s;
  for (const auto& o : outcomes) s.add(static_cast<double>(o.total_tx));
  return s;
}

Sample McResult::max_tx_sample() const {
  Sample s;
  for (const auto& o : outcomes) s.add(static_cast<double>(o.max_tx_node));
  return s;
}

Sample McResult::mean_tx_sample() const {
  Sample s;
  for (const auto& o : outcomes) s.add(o.mean_tx_node);
  return s;
}

Sample McResult::stranded_sample() const {
  Sample s;
  for (const auto& o : outcomes)
    if (o.stranded.has_value()) s.add(static_cast<double>(*o.stranded));
  return s;
}

void McSpec::validate() const {
  RADNET_REQUIRE(trials >= 1, "need at least one trial");
  RADNET_REQUIRE(trials <= kMaxTrials,
                 "trials exceeds McSpec::kMaxTrials — the per-trial slot "
                 "vector would need a multi-GiB allocation; split the "
                 "experiment or raise the bound deliberately");
  const int implicit_backends = (implicit_gnp.has_value() ? 1 : 0) +
                                (implicit_dynamic.has_value() ? 1 : 0) +
                                (implicit_rgg.has_value() ? 1 : 0);
  RADNET_REQUIRE(implicit_backends <= 1,
                 "contradictory spec: at most one of implicit_gnp, "
                 "implicit_dynamic and implicit_rgg may be set");
  RADNET_REQUIRE(implicit_backends == 1 ||
                     static_cast<bool>(make_sequence) ||
                     static_cast<bool>(make_graph),
                 "a topology source is required: make_graph, make_sequence, "
                 "implicit_gnp, implicit_dynamic or implicit_rgg");
  RADNET_REQUIRE(static_cast<bool>(make_protocol),
                 "make_protocol is required");
  if (implicit_gnp.has_value()) {
    RADNET_REQUIRE(implicit_gnp->n >= 1, "implicit_gnp needs n >= 1");
    RADNET_REQUIRE(implicit_gnp->p > 0.0 && implicit_gnp->p <= 1.0,
                   "implicit_gnp needs p in (0, 1]");
  }
  if (implicit_dynamic.has_value()) {
    RADNET_REQUIRE(implicit_dynamic->n >= 1, "implicit_dynamic needs n >= 1");
    RADNET_REQUIRE(implicit_dynamic->p > 0.0 && implicit_dynamic->p <= 1.0,
                   "implicit_dynamic needs p in (0, 1]");
    // churn = 0 would freeze a graph that was never drawn: the static
    // model is implicit_gnp, so a zero-churn dynamic spec (with or
    // without fail_prob) is contradictory, not a degenerate case.
    RADNET_REQUIRE(implicit_dynamic->churn > 0.0 &&
                       implicit_dynamic->churn <= 1.0,
                   "implicit_dynamic needs churn in (0, 1]; for a static "
                   "graph use implicit_gnp");
    RADNET_REQUIRE(implicit_dynamic->fail_prob >= 0.0 &&
                       implicit_dynamic->fail_prob < 1.0,
                   "implicit_dynamic needs fail_prob in [0, 1)");
  }
  if (implicit_rgg.has_value()) {
    RADNET_REQUIRE(implicit_rgg->n >= 1, "implicit_rgg needs n >= 1");
    RADNET_REQUIRE(implicit_rgg->radius > 0.0 && implicit_rgg->radius <= 1.5,
                   "implicit_rgg needs radius in (0, 1.5]");
    RADNET_REQUIRE(implicit_rgg->step >= 0.0 && implicit_rgg->step <= 1.0,
                   "implicit_rgg needs step in [0, 1]");
  }
  run_options.adversary.validate();
}

McResult run_monte_carlo(const McSpec& spec) {
  McResult result;
  run_monte_carlo_range(spec, 0, spec.trials, result);
  return result;
}

void run_monte_carlo_range(const McSpec& spec, std::uint32_t first,
                           std::uint32_t count, McResult& into) {
  spec.validate();
  RADNET_REQUIRE(static_cast<std::uint64_t>(first) + count <= spec.trials,
                 "trial range [first, first + count) exceeds spec.trials");
  RADNET_REQUIRE(into.outcomes.size() == first,
                 "`into` must hold exactly the outcomes of trials "
                 "[0, first) — ranges accumulate in order");
  if (count == 0) return;
  // Overflow-checked slot sizing: validate() bounds trials at kMaxTrials,
  // but the arithmetic below must stay safe even if that bound is ever
  // raised (32-bit size_t: count * sizeof(TrialOutcome) can wrap).
  const std::uint64_t slots = static_cast<std::uint64_t>(first) + count;
  const std::uint64_t bytes = slots * sizeof(TrialOutcome);
  RADNET_REQUIRE(bytes / sizeof(TrialOutcome) == slots &&
                     bytes <= static_cast<std::uint64_t>(SIZE_MAX),
                 "trial slot vector size overflows size_t");

  McResult& result = into;
  result.outcomes.resize(static_cast<std::size_t>(slots));
  const Rng root(spec.seed);
  // Handed to make_protocol for implicit trials; protocols are oblivious
  // and must not read the topology from it.
  static const graph::Digraph placeholder;

  // Trial- vs round-parallelism: with at least one trial per pool thread,
  // independent trials saturate the machine, so each trial runs its rounds
  // serially. With fewer trials than threads (the huge-trial regime),
  // trials run sequentially on the calling thread and each trial fans its
  // sharded round phases — listener-block sweeps, the dynamic sketch
  // gather/classify chunks, the RGG bucketing chunks — out over the whole
  // pool instead. The sampled
  // backends always shard their sweeps, so any under-subscribed trial
  // count prefers round-parallelism; explicit-CSR rounds below the work
  // gate (CsrDelivery::kMinParallelRoundWork) stay serial inside the
  // backend, so only a single-trial explicit spec — where
  // trial-parallelism has nothing to offer anyway — flips, and 2..pool
  // explicit trials keep their trial-parallel schedule. Results are
  // identical either way — within-trial randomness is counter-keyed per
  // (round, block) and CSR delivery draws none — so this is purely a
  // utilisation choice. An explicit RunOptions::threads (!= 1) wins.
  sim::RunOptions run_options = spec.run_options;
  const bool sampled_backend = spec.implicit_gnp.has_value() ||
                               spec.implicit_dynamic.has_value() ||
                               spec.implicit_rgg.has_value();
  // The heuristic looks at the trial count of *this* range — an
  // early-stopping caller's last small grant prefers round-parallelism
  // just like a small standalone spec would. Purely a schedule choice:
  // outcomes are identical either way.
  const bool round_parallel =
      !spec.serial && run_options.threads == 1 &&
      global_pool().size() > 1 &&
      (sampled_backend ? count < global_pool().size() : count == 1);
  if (round_parallel) run_options.threads = 0;

  // Adversarial specs re-key the adversary per trial from the (seed,
  // trial, 2) stream — the phase after graph (0) and protocol (1) — so
  // roles, budgets and fault draws differ across trials, and paired specs
  // with the same root seed face identical adversaries.
  const bool adversarial = run_options.adversary.active();

  const auto run_trial = [&](std::uint64_t idx) {
    // Absolute trial id: randomness streams are keyed on it, so a trial's
    // outcome never depends on which range call ran it.
    const std::uint64_t t = first + idx;
    const auto trial = static_cast<std::uint32_t>(t);
    Rng graph_rng = root.split(t, 0);
    const Rng protocol_rng = root.split(t, 1);
    sim::RunOptions trial_options;
    const sim::RunOptions* options = &run_options;
    if (adversarial) {
      trial_options = run_options;
      trial_options.adversary.seed = root.split(t, 2).next_u64();
      options = &trial_options;
    }

    sim::Engine engine;
    sim::RunResult run;
    std::unique_ptr<sim::Protocol> protocol;
    graph::NodeId nodes = 0;
    if (spec.implicit_dynamic.has_value()) {
      sim::ImplicitDynamicGnp gnp = *spec.implicit_dynamic;
      gnp.rng = graph_rng;
      protocol = spec.make_protocol(placeholder, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(gnp, *protocol, protocol_rng, *options);
      nodes = gnp.n;
    } else if (spec.implicit_rgg.has_value()) {
      sim::ImplicitRgg rgg = *spec.implicit_rgg;
      rgg.rng = graph_rng;
      protocol = spec.make_protocol(placeholder, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(rgg, *protocol, protocol_rng, *options);
      nodes = rgg.n;
    } else if (spec.implicit_gnp.has_value()) {
      const sim::ImplicitGnp gnp{spec.implicit_gnp->n, spec.implicit_gnp->p,
                                 graph_rng};
      protocol = spec.make_protocol(placeholder, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(gnp, *protocol, protocol_rng, *options);
      nodes = gnp.n;
    } else if (spec.make_sequence) {
      const std::unique_ptr<graph::TopologySequence> seq =
          spec.make_sequence(trial, graph_rng);
      RADNET_CHECK(seq != nullptr, "make_sequence returned null");
      protocol = spec.make_protocol(placeholder, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(*seq, *protocol, protocol_rng, *options);
      nodes = seq->num_nodes();
    } else {
      const std::shared_ptr<const graph::Digraph> g =
          spec.make_graph(trial, graph_rng);
      RADNET_CHECK(g != nullptr, "make_graph returned null");
      protocol = spec.make_protocol(*g, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(*g, *protocol, protocol_rng, *options);
      nodes = g->num_nodes();
    }

    TrialOutcome& out = result.outcomes[trial];
    out.stranded = protocol->stranded_count();
    out.completed = run.completed;
    out.rounds = run.completed ? run.completion_round : run.rounds_executed;
    out.total_tx = run.ledger.total_transmissions;
    out.max_tx_node = run.ledger.max_tx_per_node();
    out.mean_tx_node = run.ledger.mean_tx_per_node();
    out.deliveries = run.ledger.total_deliveries;
    out.collisions = run.ledger.total_collisions;
    out.nodes = nodes;
  };

  if (spec.serial || round_parallel) {
    // Sequential trials: either truly serial (spec.serial) or because each
    // trial's round sweeps own the pool (round_parallel — launching trials
    // through the pool here would inline the nested sweeps instead).
    for (std::uint32_t i = 0; i < count; ++i) run_trial(i);
  } else {
    global_pool().parallel_for_index(count, run_trial);
  }

  // `into.successes` already counts trials [0, first); fold in the range.
  for (std::size_t i = first; i < result.outcomes.size(); ++i)
    if (result.outcomes[i].completed) ++result.successes;
}

std::function<std::shared_ptr<const graph::Digraph>(std::uint32_t, Rng)>
shared_graph(graph::Digraph g) {
  auto shared = std::make_shared<const graph::Digraph>(std::move(g));
  return [shared](std::uint32_t, Rng) { return shared; };
}

}  // namespace radnet::harness
