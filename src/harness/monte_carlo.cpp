#include "harness/monte_carlo.hpp"

#include "support/require.hpp"
#include "support/thread_pool.hpp"

namespace radnet::harness {

double McResult::success_rate() const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(successes) / static_cast<double>(outcomes.size());
}

Sample McResult::rounds_sample() const {
  Sample s;
  for (const auto& o : outcomes)
    if (o.completed) s.add(static_cast<double>(o.rounds));
  return s;
}

Sample McResult::total_tx_sample() const {
  Sample s;
  for (const auto& o : outcomes) s.add(static_cast<double>(o.total_tx));
  return s;
}

Sample McResult::max_tx_sample() const {
  Sample s;
  for (const auto& o : outcomes) s.add(static_cast<double>(o.max_tx_node));
  return s;
}

Sample McResult::mean_tx_sample() const {
  Sample s;
  for (const auto& o : outcomes) s.add(o.mean_tx_node);
  return s;
}

McResult run_monte_carlo(const McSpec& spec) {
  RADNET_REQUIRE(spec.trials >= 1, "need at least one trial");
  RADNET_REQUIRE(spec.implicit_gnp.has_value() ||
                     spec.implicit_dynamic.has_value() ||
                     spec.implicit_rgg.has_value() ||
                     static_cast<bool>(spec.make_sequence) ||
                     static_cast<bool>(spec.make_graph),
                 "a topology source is required: make_graph, make_sequence, "
                 "implicit_gnp, implicit_dynamic or implicit_rgg");
  RADNET_REQUIRE(static_cast<bool>(spec.make_protocol),
                 "make_protocol is required");

  McResult result;
  result.outcomes.resize(spec.trials);
  const Rng root(spec.seed);
  // Handed to make_protocol for implicit trials; protocols are oblivious
  // and must not read the topology from it.
  static const graph::Digraph placeholder;

  // Trial- vs round-parallelism: with at least one trial per pool thread,
  // independent trials saturate the machine, so each trial runs its rounds
  // serially. With fewer trials than threads (the huge-trial regime),
  // trials run sequentially on the calling thread and each trial fans its
  // block-sharded rounds out over the whole pool instead. The sampled
  // backends always shard their sweeps, so any under-subscribed trial
  // count prefers round-parallelism; explicit-CSR rounds below the work
  // gate (CsrDelivery::kMinParallelRoundWork) stay serial inside the
  // backend, so only a single-trial explicit spec — where
  // trial-parallelism has nothing to offer anyway — flips, and 2..pool
  // explicit trials keep their trial-parallel schedule. Results are
  // identical either way — within-trial randomness is counter-keyed per
  // (round, block) and CSR delivery draws none — so this is purely a
  // utilisation choice. An explicit RunOptions::threads (!= 1) wins.
  sim::RunOptions run_options = spec.run_options;
  const bool sampled_backend = spec.implicit_gnp.has_value() ||
                               spec.implicit_dynamic.has_value() ||
                               spec.implicit_rgg.has_value();
  const bool round_parallel =
      !spec.serial && run_options.threads == 1 &&
      global_pool().size() > 1 &&
      (sampled_backend ? spec.trials < global_pool().size()
                       : spec.trials == 1);
  if (round_parallel) run_options.threads = 0;

  const auto run_trial = [&](std::uint64_t t) {
    const auto trial = static_cast<std::uint32_t>(t);
    Rng graph_rng = root.split(t, 0);
    const Rng protocol_rng = root.split(t, 1);

    sim::Engine engine;
    sim::RunResult run;
    graph::NodeId nodes = 0;
    if (spec.implicit_dynamic.has_value()) {
      sim::ImplicitDynamicGnp gnp = *spec.implicit_dynamic;
      gnp.rng = graph_rng;
      const std::unique_ptr<sim::Protocol> protocol =
          spec.make_protocol(placeholder, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(gnp, *protocol, protocol_rng, run_options);
      nodes = gnp.n;
    } else if (spec.implicit_rgg.has_value()) {
      sim::ImplicitRgg rgg = *spec.implicit_rgg;
      rgg.rng = graph_rng;
      const std::unique_ptr<sim::Protocol> protocol =
          spec.make_protocol(placeholder, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(rgg, *protocol, protocol_rng, run_options);
      nodes = rgg.n;
    } else if (spec.implicit_gnp.has_value()) {
      const sim::ImplicitGnp gnp{spec.implicit_gnp->n, spec.implicit_gnp->p,
                                 graph_rng};
      const std::unique_ptr<sim::Protocol> protocol =
          spec.make_protocol(placeholder, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(gnp, *protocol, protocol_rng, run_options);
      nodes = gnp.n;
    } else if (spec.make_sequence) {
      const std::unique_ptr<graph::TopologySequence> seq =
          spec.make_sequence(trial, graph_rng);
      RADNET_CHECK(seq != nullptr, "make_sequence returned null");
      const std::unique_ptr<sim::Protocol> protocol =
          spec.make_protocol(placeholder, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(*seq, *protocol, protocol_rng, run_options);
      nodes = seq->num_nodes();
    } else {
      const std::shared_ptr<const graph::Digraph> g =
          spec.make_graph(trial, graph_rng);
      RADNET_CHECK(g != nullptr, "make_graph returned null");
      const std::unique_ptr<sim::Protocol> protocol =
          spec.make_protocol(*g, trial);
      RADNET_CHECK(protocol != nullptr, "make_protocol returned null");
      run = engine.run(*g, *protocol, protocol_rng, run_options);
      nodes = g->num_nodes();
    }

    TrialOutcome& out = result.outcomes[trial];
    out.completed = run.completed;
    out.rounds = run.completed ? run.completion_round : run.rounds_executed;
    out.total_tx = run.ledger.total_transmissions;
    out.max_tx_node = run.ledger.max_tx_per_node();
    out.mean_tx_node = run.ledger.mean_tx_per_node();
    out.deliveries = run.ledger.total_deliveries;
    out.collisions = run.ledger.total_collisions;
    out.nodes = nodes;
  };

  if (spec.serial || round_parallel) {
    // Sequential trials: either truly serial (spec.serial) or because each
    // trial's round sweeps own the pool (round_parallel — launching trials
    // through the pool here would inline the nested sweeps instead).
    for (std::uint32_t t = 0; t < spec.trials; ++t) run_trial(t);
  } else {
    global_pool().parallel_for_index(spec.trials, run_trial);
  }

  for (const auto& o : result.outcomes)
    if (o.completed) ++result.successes;
  return result;
}

std::function<std::shared_ptr<const graph::Digraph>(std::uint32_t, Rng)>
shared_graph(graph::Digraph g) {
  auto shared = std::make_shared<const graph::Digraph>(std::move(g));
  return [shared](std::uint32_t, Rng) { return shared; };
}

}  // namespace radnet::harness
