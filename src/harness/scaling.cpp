#include "harness/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/require.hpp"

namespace radnet::harness {

ScalingCheck::ScalingCheck(std::string name, double slope_tolerance)
    : name_(std::move(name)), tolerance_(slope_tolerance) {
  RADNET_REQUIRE(slope_tolerance > 0.0, "tolerance must be positive");
}

void ScalingCheck::add(double model, double measured) {
  RADNET_REQUIRE(model > 0.0, "model prediction must be positive");
  RADNET_REQUIRE(measured > 0.0, "measured value must be positive");
  model_.push_back(model);
  measured_.push_back(measured);
}

double ScalingCheck::fitted_exponent() const {
  RADNET_REQUIRE(model_.size() >= 2, "need at least two sweep points");
  std::vector<double> lx, ly;
  lx.reserve(model_.size());
  ly.reserve(model_.size());
  for (std::size_t i = 0; i < model_.size(); ++i) {
    lx.push_back(std::log(model_[i]));
    ly.push_back(std::log(measured_[i]));
  }
  return fit_linear(lx, ly).slope;
}

double ScalingCheck::band_ratio() const {
  RADNET_REQUIRE(!model_.empty(), "no sweep points");
  double lo = 1e300, hi = 0.0;
  for (std::size_t i = 0; i < model_.size(); ++i) {
    const double r = measured_[i] / model_[i];
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  return hi / lo;
}

bool ScalingCheck::passes() const {
  return std::abs(fitted_exponent() - 1.0) <= tolerance_;
}

std::string ScalingCheck::report() const {
  std::ostringstream os;
  os << "[scaling] " << name_ << ": exponent "
     << fitted_exponent() << " (target 1 ± " << tolerance_ << "), band x"
     << band_ratio() << " -> " << (passes() ? "OK" : "DEVIATES");
  return os.str();
}

bool ScalingCheck::band_passes(double max_band) const {
  RADNET_REQUIRE(max_band >= 1.0, "max_band must be >= 1");
  return band_ratio() <= max_band;
}

std::string ScalingCheck::report_band(double max_band) const {
  std::ostringstream os;
  os << "[scaling] " << name_ << ": normalised ratio flat within x"
     << band_ratio() << " (allowed x" << max_band << ") -> "
     << (band_passes(max_band) ? "OK" : "DEVIATES");
  return os.str();
}

}  // namespace radnet::harness
