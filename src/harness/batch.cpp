#include "harness/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "baselines/decay.hpp"
#include "baselines/elsasser_gasieniec.hpp"
#include "baselines/fixed_prob.hpp"
#include "baselines/flooding.hpp"
#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "support/hash.hpp"
#include "support/math.hpp"
#include "support/parse.hpp"
#include "support/require.hpp"

namespace radnet::harness {

namespace {

constexpr double kPi = 3.141592653589793;

constexpr std::size_t kNoDup = std::numeric_limits<std::size_t>::max();

bool known_protocol(const std::string& name) {
  return name == "alg1" || name == "alg2m" || name == "eg2005" ||
         name == "flooding" || name == "fixed" || name == "decay";
}

BatchFamily family_from_name(std::string_view name, std::string_view what) {
  if (name == "csr") return BatchFamily::kCsr;
  if (name == "ignp") return BatchFamily::kImplicitGnp;
  if (name == "idgnp") return BatchFamily::kImplicitDynamic;
  if (name == "irgg") return BatchFamily::kImplicitRgg;
  throw std::invalid_argument(std::string(what) +
                              " must be csr, ignp, idgnp or irgg, got '" +
                              std::string(name) + "'");
}

/// Deterministic double formatting for the result lines: %.12g is exact
/// enough to distinguish every statistic we report and — unlike iostream
/// state — has no locale or stream-flag dependence, so the same result
/// always renders to the same bytes (the cold/warm identity contract).
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string fmt_opt(const std::optional<double>& v) {
  return v.has_value() ? fmt_double(*v) : "null";
}

std::string fmt_interval(const Sample::Interval& iv) {
  return "[" + fmt_double(iv.lo) + "," + fmt_double(iv.hi) + "]";
}

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Convergence test evaluated after every granted batch: both the
/// completion-rate Wilson interval and (when any trial completed) the
/// rounds-median order-statistic interval must be inside tolerance.
/// With zero completions there is no rounds distribution to bound — the
/// rate interval hugging zero IS the answer (the all-fail regime).
bool spec_converged(const BatchSpec& spec, const McResult& acc,
                    std::uint32_t granted) {
  if (granted == 0 || spec.tol <= 0.0) return false;
  const Sample::Interval rate =
      wilson_interval(acc.successes, granted, spec.confidence);
  if ((rate.hi - rate.lo) / 2.0 > spec.tol) return false;
  if (acc.successes == 0) return true;
  const Sample rounds = acc.rounds_sample();
  const auto ci = quantile_ci(rounds, 0.5, spec.confidence);
  if (!ci.has_value()) return false;
  const double median = rounds.quantile(0.5);
  return (ci->hi - ci->lo) / 2.0 <= spec.tol * std::max(1.0, median);
}

// ---- Disk cache ----------------------------------------------------------
//
// One file per (spec hash, seed): a header recording the format version and
// the granted trial count, then the emitted JSON line verbatim. Replaying
// the stored bytes (never re-deriving them) is what makes a warm run
// byte-identical to the cold run that filled the cache.

constexpr const char* kCacheVersion = "radnet-batch-cache-v1";

std::string cache_path(const std::string& dir, std::uint64_t hash,
                       std::uint64_t seed) {
  return dir + "/h" + hex16(hash) + "_s" + hex16(seed) + ".rbc";
}

struct CacheEntry {
  std::uint32_t granted = 0;
  bool converged = false;
  std::string json;
};

std::optional<CacheEntry> cache_load(const std::string& dir,
                                     std::uint64_t hash, std::uint64_t seed) {
  std::ifstream in(cache_path(dir, hash, seed));
  if (!in) return std::nullopt;
  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  std::istringstream hs(header);
  std::string version, hash_hex, seed_hex;
  std::uint32_t granted = 0;
  int converged = 0;
  if (!(hs >> version >> hash_hex >> seed_hex >> granted >> converged))
    return std::nullopt;
  // Any mismatch — stale format, foreign file, truncation — is a miss,
  // never a wrong answer: the worst a corrupt cache can do is recompute.
  if (version != kCacheVersion || hash_hex != hex16(hash) ||
      seed_hex != hex16(seed))
    return std::nullopt;
  CacheEntry entry;
  entry.granted = granted;
  entry.converged = converged != 0;
  if (!std::getline(in, entry.json) || entry.json.empty()) return std::nullopt;
  return entry;
}

void cache_store(const std::string& dir, std::uint64_t hash,
                 std::uint64_t seed, std::uint32_t granted, bool converged,
                 const std::string& json) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // cache is an accelerator: failing to store is not fatal
  std::ofstream out(cache_path(dir, hash, seed), std::ios::trunc);
  if (!out) return;
  out << kCacheVersion << ' ' << hex16(hash) << ' ' << hex16(seed) << ' '
      << granted << ' ' << (converged ? 1 : 0) << '\n'
      << json << '\n';
}

}  // namespace

const char* batch_family_name(BatchFamily family) {
  switch (family) {
    case BatchFamily::kCsr: return "csr";
    case BatchFamily::kImplicitGnp: return "ignp";
    case BatchFamily::kImplicitDynamic: return "idgnp";
    case BatchFamily::kImplicitRgg: return "irgg";
  }
  RADNET_CHECK(false, "unreachable batch family");
  return "";
}

double BatchSpec::effective_p() const {
  if (family == BatchFamily::kImplicitRgg) {
    const double r = rgg_radius();
    return std::min(1.0, kPi * r * r);
  }
  if (p > 0.0) return p;
  // Dense small-n corners of a delta sweep can push delta*ln(n)/n past 1;
  // the model then saturates at the complete graph rather than rejecting.
  return std::min(1.0, delta * std::log(static_cast<double>(n)) /
                           static_cast<double>(n));
}

double BatchSpec::rgg_radius() const {
  return graph::rgg_threshold_radius(n, radius_mult);
}

std::uint64_t BatchSpec::resolved_max_rounds() const {
  if (max_rounds > 0) return max_rounds;
  // Same budget radnet_cli derives: 64 * (D log n + log^2 n), with the hop
  // diameter D from the family's geometry. Keeping the formulas identical
  // means a batch spec and the equivalent CLI invocation run the same
  // experiment.
  const double log2n = std::log2(static_cast<double>(n));
  const std::uint64_t diameter =
      family == BatchFamily::kImplicitRgg
          ? std::max<std::uint64_t>(
                2, static_cast<std::uint64_t>(std::ceil(1.4143 / rgg_radius())))
          : 2ull * ilog2_floor(n) + 8;
  return static_cast<std::uint64_t>(
      64.0 * (static_cast<double>(diameter) * std::max(1.0, log2n) +
              log2n * log2n));
}

void BatchSpec::validate() const {
  RADNET_REQUIRE(known_protocol(protocol),
                 "spec field protocol must be alg1, alg2m, eg2005, flooding, "
                 "fixed or decay, got '" + protocol + "'");
  RADNET_REQUIRE(n >= 1, "spec field n must be >= 1");
  RADNET_REQUIRE(trials >= 1 && trials <= McSpec::kMaxTrials,
                 "spec field trials must be in [1, McSpec::kMaxTrials]");
  RADNET_REQUIRE(std::isfinite(tol) && tol >= 0.0,
                 "spec field tol must be finite and >= 0");
  RADNET_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "spec field confidence must be in (0, 1)");
  RADNET_REQUIRE(std::isfinite(q) && q >= 0.0 && q <= 1.0,
                 "spec field q must be in [0, 1]");
  RADNET_REQUIRE(p >= 0.0 && p <= 1.0, "spec field p must be in [0, 1]");
  RADNET_REQUIRE(std::isfinite(delta) && delta > 0.0,
                 "spec field delta must be > 0");
  if (family == BatchFamily::kImplicitRgg) {
    RADNET_REQUIRE(std::isfinite(radius_mult) && radius_mult > 0.0,
                   "spec field radius-mult must be > 0");
    const double r = rgg_radius();
    RADNET_REQUIRE(r > 0.0 && r <= 1.5,
                   "spec field radius-mult yields a radius outside (0, 1.5]");
    RADNET_REQUIRE(step >= 0.0 && step <= 1.0,
                   "spec field step must be in [0, 1]");
  } else {
    RADNET_REQUIRE(effective_p() > 0.0,
                   "resolved link probability must be > 0 (n = 1 with a "
                   "delta default has no edges; set p explicitly)");
  }
  if (family == BatchFamily::kImplicitDynamic) {
    RADNET_REQUIRE(churn > 0.0 && churn <= 1.0,
                   "spec field churn must be in (0, 1]");
    RADNET_REQUIRE(fail_prob >= 0.0 && fail_prob < 1.0,
                   "spec field fail-prob must be in [0, 1)");
  }
  RADNET_REQUIRE(resolved_max_rounds() >= 1 &&
                     resolved_max_rounds() <=
                         std::numeric_limits<sim::Round>::max(),
                 "spec field max-rounds is out of range");
  adversary.validate();
}

std::uint64_t BatchSpec::hash() const {
  validate();
  // Resolved values, not as-written ones: `delta=8` and the explicit p it
  // resolves to hash identically, as do an explicit max-rounds equal to
  // the derived default. Tags are append-only (see HashStream).
  HashStream h("radnet-batch-spec-v1");
  h.put_string(1, protocol);
  h.put_u64(2, static_cast<std::uint64_t>(family));
  h.put_u64(3, n);
  h.put_double(4, effective_p());
  h.put_double(5, q);
  h.put_double(6, churn);
  h.put_double(7, fail_prob);
  h.put_double(8, radius_mult);
  h.put_double(9, step);
  h.put_u64(10, trials);
  h.put_u64(11, seed);
  h.put_u64(12, resolved_max_rounds());
  h.put_double(13, tol);
  h.put_double(14, confidence);
  h.put_double(15, adversary.jammer_fraction);
  h.put_double(16, adversary.byzantine_fraction);
  h.put_double(17, adversary.budget_mean);
  h.put_double(18, adversary.budget_spread);
  h.put_u64(19, static_cast<std::uint64_t>(adversary.exhaust_mode));
  h.put_u64(20, adversary.fault_schedule.size());
  for (const sim::FaultEvent& ev : adversary.fault_schedule) {
    h.put_u64(21, ev.round);
    h.put_u64(22, static_cast<std::uint64_t>(ev.kind));
    h.put_double(23, ev.fraction);
  }
  h.put_u64(24, adversary.protected_nodes.size());
  for (const graph::NodeId v : adversary.protected_nodes) h.put_u64(25, v);
  return h.value();
}

McSpec BatchSpec::to_mc_spec() const {
  validate();
  McSpec mc;
  mc.trials = trials;
  mc.seed = seed;
  const double eff_p = effective_p();
  const graph::NodeId nodes = n;
  switch (family) {
    case BatchFamily::kCsr:
      mc.make_graph = [nodes, eff_p](std::uint32_t, Rng rng) {
        return std::make_shared<const graph::Digraph>(
            graph::gnp_directed(nodes, eff_p, rng));
      };
      break;
    case BatchFamily::kImplicitGnp:
      mc.implicit_gnp = ImplicitGnpParams{nodes, eff_p};
      break;
    case BatchFamily::kImplicitDynamic: {
      sim::ImplicitDynamicGnp d;
      d.n = nodes;
      d.p = eff_p;
      d.churn = churn;
      d.fail_prob = fail_prob;
      mc.implicit_dynamic = std::move(d);
      break;
    }
    case BatchFamily::kImplicitRgg: {
      const double r = rgg_radius();
      mc.implicit_rgg = sim::ImplicitRgg{nodes, r, r * step, Rng{}};
      break;
    }
  }
  const std::string name = protocol;
  const double qq = q;
  mc.make_protocol = [name, eff_p, qq](const graph::Digraph&, std::uint32_t)
      -> std::unique_ptr<sim::Protocol> {
    if (name == "alg1")
      return std::make_unique<core::BroadcastRandomProtocol>(
          core::BroadcastRandomParams{.p = eff_p, .source = 0});
    if (name == "alg2m")
      return std::make_unique<core::GossipRumorMarginalProtocol>(
          core::GossipRumorMarginalParams{.p = eff_p, .rumor_source = 0});
    if (name == "eg2005")
      return std::make_unique<baselines::ElsasserGasieniecProtocol>(
          baselines::ElsasserGasieniecParams{.p = eff_p, .source = 0});
    if (name == "flooding")
      return std::make_unique<baselines::FloodingProtocol>(graph::NodeId{0});
    if (name == "fixed")
      return std::make_unique<baselines::FixedProbProtocol>(
          baselines::FixedProbParams{.q = qq, .source = 0});
    if (name == "decay")
      return std::make_unique<baselines::DecayProtocol>(
          baselines::DecayParams{.source = 0});
    throw std::invalid_argument("unknown batch protocol: " + name);
  };
  mc.run_options.max_rounds = static_cast<sim::Round>(resolved_max_rounds());
  mc.run_options.stop_on_empty_candidates = true;
  mc.run_options.adversary = adversary;
  return mc;
}

BatchSpec parse_batch_spec(std::string_view line) {
  BatchSpec spec;
  std::unordered_set<std::string> seen;
  std::istringstream tokens{std::string(line)};
  std::string token;
  while (tokens >> token) {
    if (token[0] == '#') break;
    const std::size_t eq = token.find('=');
    RADNET_REQUIRE(eq != std::string::npos && eq > 0,
                   "spec tokens look like key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    RADNET_REQUIRE(seen.insert(key).second,
                   "duplicate spec key '" + key + "'");
    const std::string what = "spec field " + key;
    if (key == "protocol") {
      RADNET_REQUIRE(known_protocol(value),
                     what + " must be alg1, alg2m, eg2005, flooding, fixed "
                            "or decay, got '" + value + "'");
      spec.protocol = value;
    } else if (key == "family") {
      spec.family = family_from_name(value, what);
    } else if (key == "n") {
      const std::uint64_t v = parse_u64_strict(value, what);
      RADNET_REQUIRE(v >= 1 && v <= std::numeric_limits<graph::NodeId>::max(),
                     what + " is out of range");
      spec.n = static_cast<graph::NodeId>(v);
    } else if (key == "p") {
      spec.p = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "delta") {
      spec.delta = parse_double_strict(value, what);
    } else if (key == "q") {
      spec.q = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "churn") {
      spec.churn = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "fail-prob") {
      spec.fail_prob = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "radius-mult") {
      spec.radius_mult = parse_double_strict(value, what);
    } else if (key == "step") {
      spec.step = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "trials") {
      const std::uint64_t v = parse_u64_strict(value, what);
      RADNET_REQUIRE(v >= 1 && v <= McSpec::kMaxTrials,
                     what + " is out of range");
      spec.trials = static_cast<std::uint32_t>(v);
    } else if (key == "seed") {
      spec.seed = parse_u64_strict(value, what);
    } else if (key == "max-rounds") {
      spec.max_rounds = parse_u64_strict(value, what);
    } else if (key == "tol") {
      spec.tol = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "confidence") {
      spec.confidence = parse_double_strict(value, what);
    } else if (key == "jammers") {
      spec.adversary.jammer_fraction = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "byzantine") {
      spec.adversary.byzantine_fraction =
          parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "energy-budget") {
      sim::parse_energy_budget(value, what, spec.adversary);
    } else if (key == "fault-schedule") {
      spec.adversary.fault_schedule = sim::parse_fault_schedule(value, what);
    } else {
      throw std::invalid_argument("unknown spec key '" + key + "'");
    }
  }
  RADNET_REQUIRE(!seen.empty(), "empty spec line");
  // Node 0 is every batch protocol's source; protecting it makes the
  // attacked quantity the spread of the rumor, not its existence
  // (radnet_cli does the same).
  if (spec.adversary.active()) spec.adversary.protected_nodes = {0};
  spec.validate();
  return spec;
}

std::vector<BatchSpec> parse_batch_file(std::istream& in) {
  std::vector<BatchSpec> specs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      specs.push_back(parse_batch_spec(line));
    } catch (const std::exception& e) {
      throw std::invalid_argument("spec line " + std::to_string(lineno) +
                                  ": " + e.what());
    }
  }
  return specs;
}

std::string batch_result_json(const BatchSpec& spec, const McResult& result,
                              std::uint32_t granted, bool converged) {
  RADNET_REQUIRE(result.outcomes.size() == granted,
                 "result holds a different trial count than `granted`");
  RADNET_REQUIRE(granted >= 1, "cannot report a spec with zero trials");
  const Sample::Interval rate =
      wilson_interval(result.successes, granted, spec.confidence);
  const Sample rounds = result.rounds_sample();
  const auto rounds_ci = quantile_ci(rounds, 0.5, spec.confidence);
  std::string json;
  json.reserve(512);
  json += "{\"hash\":\"" + hex16(spec.hash()) + "\"";
  json += ",\"protocol\":\"" + spec.protocol + "\"";
  json += ",\"family\":\"";
  json += batch_family_name(spec.family);
  json += "\",\"n\":" + std::to_string(spec.n);
  json += ",\"seed\":" + std::to_string(spec.seed);
  json += ",\"trials_max\":" + std::to_string(spec.trials);
  json += ",\"trials_granted\":" + std::to_string(granted);
  json += std::string(",\"converged\":") + (converged ? "true" : "false");
  json += ",\"successes\":" + std::to_string(result.successes);
  json += ",\"success_rate\":" + fmt_double(result.success_rate());
  json += ",\"rate_ci\":" + fmt_interval(rate);
  // The censored-rounds sample is empty in the all-fail regime: report
  // nulls, not NaNs — the line must stay machine-parseable JSON.
  json += ",\"rounds_median\":" + fmt_opt(rounds.try_quantile(0.5));
  json += ",\"rounds_ci\":" +
          (rounds_ci.has_value() ? fmt_interval(*rounds_ci)
                                 : std::string("null"));
  json += ",\"rounds_mean\":" + fmt_opt(rounds.try_mean());
  json += ",\"total_tx_mean\":" + fmt_opt(result.total_tx_sample().try_mean());
  json += ",\"stranded_mean\":" + fmt_opt(result.stranded_sample().try_mean());
  json += "}";
  return json;
}

std::vector<BatchOutcome> run_batch(const std::vector<BatchSpec>& specs,
                                    const BatchOptions& options,
                                    std::ostream& out, BatchStats* stats_out) {
  RADNET_REQUIRE(options.min_grant >= 1, "BatchOptions.min_grant must be >= 1");
  BatchStats stats;
  stats.specs = specs.size();

  struct SpecState {
    const BatchSpec* spec = nullptr;
    std::uint64_t hash = 0;
    McSpec mc;
    McResult acc;
    std::uint32_t granted = 0;
    std::size_t dup_of = kNoDup;  ///< state index of the first equal-hash spec
    bool done = false;
    bool converged = false;
    bool from_cache = false;
    std::string json;
  };

  std::vector<SpecState> states(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SpecState& st = states[i];
    st.spec = &specs[i];
    st.hash = specs[i].hash();
    st.mc = specs[i].to_mc_spec();
    // Thread schedule only — never results: 1 pins trials to the calling
    // thread, k > 1 gives each trial k-thread round sweeps, 0 lets the
    // harness choose per grant.
    if (options.threads == 1)
      st.mc.serial = true;
    else if (options.threads > 1)
      st.mc.run_options.threads = options.threads;
  }

  // Emission (and scheduling) order: family-major, stable by input index.
  std::vector<std::size_t> order(specs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return states[a].spec->family < states[b].spec->family;
                   });

  // In-run memo + disk lookups. A duplicate hash always points backwards in
  // emission order (equal hash => equal spec => same family, and the sort
  // is stable), so a dup's primary is resolved before the dup is reached.
  std::unordered_map<std::uint64_t, std::size_t> memo;
  for (const std::size_t idx : order) {
    SpecState& st = states[idx];
    const auto [it, inserted] = memo.emplace(st.hash, idx);
    if (!inserted) {
      st.dup_of = it->second;
      continue;
    }
    if (options.cache_dir.empty() || options.force_full) continue;
    if (auto entry = cache_load(options.cache_dir, st.hash, st.spec->seed)) {
      st.done = true;
      st.from_cache = true;
      st.granted = entry->granted;
      st.converged = entry->converged;
      st.json = std::move(entry->json);
      ++stats.cache_hits;
      stats.trials_saved += st.spec->trials - st.granted;
    }
  }

  std::size_t frontier = 0;
  const auto flush = [&] {
    while (frontier < order.size() && states[order[frontier]].done) {
      out << states[order[frontier]].json << '\n';
      ++frontier;
    }
  };

  // Round-robin grant passes: every unconverged spec receives one
  // (doubling) grant per pass, so slow-converging specs never starve fast
  // ones, and the grant sequence — hence every reported trial count — is a
  // pure function of the specs themselves.
  bool pending = true;
  while (pending) {
    pending = false;
    for (const std::size_t idx : order) {
      SpecState& st = states[idx];
      if (st.done) continue;
      if (st.dup_of != kNoDup) {
        const SpecState& primary = states[st.dup_of];
        // The primary precedes the dup in emission order but may still be
        // mid-schedule this pass; the dup just waits for it.
        if (!primary.done) {
          pending = true;
          continue;
        }
        st.done = true;
        st.converged = primary.converged;
        st.from_cache = true;
        st.granted = primary.granted;
        st.json = primary.json;
        ++stats.cache_hits;
        stats.trials_saved += st.spec->trials;
        flush();
        continue;
      }
      const std::uint32_t remaining = st.spec->trials - st.granted;
      const std::uint32_t grant =
          options.force_full
              ? remaining
              : std::min(remaining, std::max(options.min_grant, st.granted));
      run_monte_carlo_range(st.mc, st.granted, grant, st.acc);
      st.granted += grant;
      stats.trials_run += grant;
      const bool converged = spec_converged(*st.spec, st.acc, st.granted);
      const bool exhausted = st.granted == st.spec->trials;
      if ((converged && !options.force_full) || exhausted) {
        st.done = true;
        st.converged = converged;
        stats.trials_saved += st.spec->trials - st.granted;
        st.json = batch_result_json(*st.spec, st.acc, st.granted, converged);
        // force_full runs are diagnostic (prefix-of-full-run comparisons):
        // storing them would make a later early-stopping run replay the
        // full-trial line instead of the bytes it would compute itself.
        if (!options.cache_dir.empty() && !options.force_full) {
          cache_store(options.cache_dir, st.hash, st.spec->seed, st.granted,
                      converged, st.json);
          ++stats.cache_stores;
        }
        flush();
      } else {
        pending = true;
      }
    }
  }
  flush();
  RADNET_CHECK(frontier == order.size(), "batch ended with unemitted specs");

  std::vector<BatchOutcome> outcomes(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    outcomes[i] = BatchOutcome{states[i].hash, states[i].granted,
                               states[i].converged, states[i].from_cache,
                               std::move(states[i].json)};
  }
  if (stats_out != nullptr) *stats_out = stats;
  return outcomes;
}

}  // namespace radnet::harness
