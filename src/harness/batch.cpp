#include "harness/batch.hpp"

#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "baselines/decay.hpp"
#include "baselines/elsasser_gasieniec.hpp"
#include "baselines/fixed_prob.hpp"
#include "baselines/flooding.hpp"
#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "support/hash.hpp"
#include "support/io.hpp"
#include "support/journal.hpp"
#include "support/math.hpp"
#include "support/parse.hpp"
#include "support/require.hpp"

namespace radnet::harness {

namespace {

constexpr double kPi = 3.141592653589793;

constexpr std::size_t kNoDup = std::numeric_limits<std::size_t>::max();

bool known_protocol(const std::string& name) {
  return name == "alg1" || name == "alg2m" || name == "eg2005" ||
         name == "flooding" || name == "fixed" || name == "decay";
}

BatchFamily family_from_name(std::string_view name, std::string_view what) {
  if (name == "csr") return BatchFamily::kCsr;
  if (name == "ignp") return BatchFamily::kImplicitGnp;
  if (name == "idgnp") return BatchFamily::kImplicitDynamic;
  if (name == "irgg") return BatchFamily::kImplicitRgg;
  throw std::invalid_argument(std::string(what) +
                              " must be csr, ignp, idgnp or irgg, got '" +
                              std::string(name) + "'");
}

/// Deterministic double formatting for the result lines: %.12g is exact
/// enough to distinguish every statistic we report and — unlike iostream
/// state — has no locale or stream-flag dependence, so the same result
/// always renders to the same bytes (the cold/warm identity contract).
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string fmt_opt(const std::optional<double>& v) {
  return v.has_value() ? fmt_double(*v) : "null";
}

std::string fmt_interval(const Sample::Interval& iv) {
  return "[" + fmt_double(iv.lo) + "," + fmt_double(iv.hi) + "]";
}

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Convergence test evaluated after every granted batch: both the
/// completion-rate Wilson interval and (when any trial completed) the
/// rounds-median order-statistic interval must be inside tolerance.
/// With zero completions there is no rounds distribution to bound — the
/// rate interval hugging zero IS the answer (the all-fail regime).
bool spec_converged(const BatchSpec& spec, const McResult& acc,
                    std::uint32_t granted) {
  if (granted == 0 || spec.tol <= 0.0) return false;
  const Sample::Interval rate =
      wilson_interval(acc.successes, granted, spec.confidence);
  if ((rate.hi - rate.lo) / 2.0 > spec.tol) return false;
  if (acc.successes == 0) return true;
  const Sample rounds = acc.rounds_sample();
  const auto ci = quantile_ci(rounds, 0.5, spec.confidence);
  if (!ci.has_value()) return false;
  const double median = rounds.quantile(0.5);
  return (ci->hi - ci->lo) / 2.0 <= spec.tol * std::max(1.0, median);
}

// ---- Disk cache ----------------------------------------------------------
//
// One file per (spec hash, seed):
//
//   radnet-batch-cache-v2 <checksum16> <hash16> <seed16> <granted> <conv>\n
//   <json>\n
//
// where <checksum16> is fnv1a64 over EVERYTHING after its trailing space —
// key fields, counters and payload alike — so no single flipped or dropped
// byte can survive verification. Entries commit by write-to-temp +
// rename() (support/io.hpp), closing the v1 torn-write window where a
// death mid-store left a header-complete, payload-truncated file. On load,
// any file that fails the format or checksum check — truncated, garbled,
// stale-format, foreign — is quarantined to `*.quarantine` and treated as
// a miss: corruption can cost a recompute, never a wrong answer. Replaying
// the stored bytes (never re-deriving them) is what makes a warm run
// byte-identical to the cold run that filled the cache.

constexpr const char* kCacheVersion = "radnet-batch-cache-v2";

std::string cache_path(const std::string& dir, std::uint64_t hash,
                       std::uint64_t seed) {
  return dir + "/h" + hex16(hash) + "_s" + hex16(seed) + ".rbc";
}

struct CacheEntry {
  std::uint32_t granted = 0;
  bool converged = false;
  std::string json;
};

/// The checksummed region: key fields + counters + payload.
std::string cache_body(std::uint64_t hash, std::uint64_t seed,
                       std::uint32_t granted, bool converged,
                       const std::string& json) {
  return hex16(hash) + ' ' + hex16(seed) + ' ' + std::to_string(granted) +
         ' ' + (converged ? '1' : '0') + '\n' + json + '\n';
}

std::optional<CacheEntry> cache_load(const std::string& dir,
                                     std::uint64_t hash, std::uint64_t seed,
                                     BatchStats& stats) {
  const std::string path = cache_path(dir, hash, seed);
  const auto text = io::read_file(path);
  if (!text.has_value()) return std::nullopt;  // plain miss: no file
  const auto corrupt = [&]() -> std::optional<CacheEntry> {
    // Anything else under this name — torn write from a pre-v2 run, bit
    // rot, a foreign file — is moved aside, keeping the evidence while
    // guaranteeing it can never be replayed as an answer.
    if (io::quarantine_file(path)) ++stats.cache_quarantined;
    return std::nullopt;
  };
  const std::string prefix = std::string(kCacheVersion) + ' ';
  if (text->size() < prefix.size() + 17 ||
      text->compare(0, prefix.size(), prefix) != 0 ||
      (*text)[prefix.size() + 16] != ' ')
    return corrupt();
  const std::string_view checksum(text->data() + prefix.size(), 16);
  const std::string_view body(text->data() + prefix.size() + 17,
                              text->size() - prefix.size() - 17);
  if (checksum != hex16(fnv1a64(body))) return corrupt();
  std::istringstream fields{std::string(
      body.substr(0, body.find('\n')))};
  std::string hash_hex, seed_hex;
  std::uint32_t granted = 0;
  int converged = -1;
  if (!(fields >> hash_hex >> seed_hex >> granted >> converged) ||
      (converged != 0 && converged != 1))
    return corrupt();
  // A checksum-valid entry under the wrong name is a foreign file (e.g. a
  // renamed sibling), not this query's answer.
  if (hash_hex != hex16(hash) || seed_hex != hex16(seed)) return corrupt();
  CacheEntry entry;
  entry.granted = granted;
  entry.converged = converged == 1;
  const std::size_t nl = body.find('\n');
  entry.json = std::string(body.substr(nl + 1));
  if (entry.json.empty() || entry.json.back() != '\n') return corrupt();
  entry.json.pop_back();
  if (entry.json.empty() || entry.json.find('\n') != std::string::npos)
    return corrupt();
  return entry;
}

void cache_store(const std::string& dir, std::uint64_t hash,
                 std::uint64_t seed, std::uint32_t granted, bool converged,
                 const std::string& json, BatchStats& stats) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // cache is an accelerator: failing to store is not fatal
  const std::string body = cache_body(hash, seed, granted, converged, json);
  const std::string content =
      std::string(kCacheVersion) + ' ' + hex16(fnv1a64(body)) + ' ' + body;
  // Temp + rename: a death (or injected ENOSPC) at any instant leaves
  // either the old entry, no entry, or the complete new entry — never a
  // partial write under the final name.
  if (io::atomic_write_file(cache_path(dir, hash, seed), content,
                            "cache-write"))
    ++stats.cache_stores;
}

// ---- Run journal ---------------------------------------------------------
//
// Record payloads (each checksummed per line by support/journal.hpp):
//
//   header <version> <spec-set-hash16> <force_full> <min_grant>
//   trials <state-idx> <first> <count> <outcome> <outcome> ...
//   result <state-idx> <granted> <converged> <from_cache> <error> <json>
//
// The header binds the journal to one (spec set, grant schedule); a
// `trials` record holds the outcomes of one grant so resume restores the
// accumulator mid-spec; a `result` record commits the exact bytes of an
// emitted line, appended BEFORE the line is written to the output stream,
// so a resumed run re-emits committed lines verbatim and recomputes
// nothing that was journaled. Replay validates every record against the
// state it applies to (index in range, contiguous trial ranges) and treats
// the first inconsistent record as the end of the committed prefix —
// whatever follows is recomputed, which by the (seed, t) keying yields the
// same bytes.

constexpr const char* kJournalVersion = "radnet-batch-journal-v1";

std::uint64_t spec_set_hash(const std::vector<BatchSpec>& specs) {
  HashStream h(kJournalVersion);
  for (const BatchSpec& spec : specs) h.put_u64(1, spec.hash());
  return h.value();
}

std::string journal_header_payload(const std::vector<BatchSpec>& specs,
                                   const BatchOptions& options) {
  return std::string("header ") + kJournalVersion + ' ' +
         hex16(spec_set_hash(specs)) + ' ' +
         (options.force_full ? '1' : '0') + ' ' +
         std::to_string(options.min_grant);
}

/// One trial outcome as a colon-separated token. The double travels as a
/// %a hexfloat so serialisation round-trips bit-exactly — resume must
/// reproduce the uninterrupted run's statistics to the last bit.
std::string fmt_outcome(const TrialOutcome& o) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%d:%u:%llu:%u:%a:%llu:%llu:%u:%lld",
                o.completed ? 1 : 0, o.rounds,
                static_cast<unsigned long long>(o.total_tx), o.max_tx_node,
                o.mean_tx_node,
                static_cast<unsigned long long>(o.deliveries),
                static_cast<unsigned long long>(o.collisions), o.nodes,
                o.stranded.has_value()
                    ? static_cast<long long>(*o.stranded)
                    : -1ll);
  return buf;
}

bool parse_outcome(std::string_view text, TrialOutcome& o) {
  std::array<std::string_view, 9> fields;
  std::size_t start = 0;
  for (std::size_t f = 0; f < fields.size(); ++f) {
    const bool last = f + 1 == fields.size();
    const std::size_t colon = last ? text.size() : text.find(':', start);
    if (colon == std::string_view::npos) return false;
    fields[f] = text.substr(start, colon - start);
    start = colon + 1;
  }
  const auto parse_u64 = [](std::string_view s, std::uint64_t& v) {
    if (s.empty()) return false;
    char* end = nullptr;
    const std::string tmp(s);
    errno = 0;
    v = std::strtoull(tmp.c_str(), &end, 10);
    return errno == 0 && end == tmp.c_str() + tmp.size();
  };
  std::uint64_t completed = 0, rounds = 0, max_tx = 0, nodes = 0;
  if (!parse_u64(fields[0], completed) || completed > 1) return false;
  if (!parse_u64(fields[1], rounds) ||
      rounds > std::numeric_limits<sim::Round>::max())
    return false;
  if (!parse_u64(fields[2], o.total_tx)) return false;
  if (!parse_u64(fields[3], max_tx) ||
      max_tx > std::numeric_limits<std::uint32_t>::max())
    return false;
  {
    const std::string tmp(fields[4]);
    char* end = nullptr;
    o.mean_tx_node = std::strtod(tmp.c_str(), &end);
    if (end != tmp.c_str() + tmp.size()) return false;
  }
  if (!parse_u64(fields[5], o.deliveries)) return false;
  if (!parse_u64(fields[6], o.collisions)) return false;
  if (!parse_u64(fields[7], nodes) ||
      nodes > std::numeric_limits<graph::NodeId>::max())
    return false;
  if (fields[8] == "-1") {
    o.stranded.reset();
  } else {
    std::uint64_t stranded = 0;
    if (!parse_u64(fields[8], stranded) ||
        stranded > std::numeric_limits<graph::NodeId>::max())
      return false;
    o.stranded = static_cast<graph::NodeId>(stranded);
  }
  o.completed = completed == 1;
  o.rounds = static_cast<sim::Round>(rounds);
  o.max_tx_node = static_cast<std::uint32_t>(max_tx);
  o.nodes = static_cast<graph::NodeId>(nodes);
  return true;
}

/// Per-spec scheduler state (shared by run_batch and the isolate child).
struct SpecState {
  const BatchSpec* spec = nullptr;
  std::uint64_t hash = 0;
  McSpec mc;
  McResult acc;
  std::uint32_t granted = 0;
  std::size_t dup_of = kNoDup;  ///< state index of the first equal-hash spec
  bool done = false;
  bool converged = false;
  bool from_cache = false;
  bool error = false;
  std::string json;
};

// ---- Watchdogged spec isolation ------------------------------------------

struct ChildResult {
  enum class Status : std::uint8_t { kOk, kCrash, kTimeout, kError } status =
      Status::kError;
  std::uint32_t granted = 0;
  bool converged = false;
  std::string json;
};

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t w = ::write(fd, data.data(), data.size());
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(w));
  }
  return true;
}

/// Child side of isolate mode: runs the spec's remaining doubling grants
/// to convergence/exhaustion serially (the parent's pool threads do not
/// survive fork) and writes "<granted> <converged>\n<json>\n" to the pipe.
/// Exit codes: 0 ok, 97 exception. Result bytes are identical to the
/// in-process path because the grant schedule and the (seed, t) trial
/// keying are the same; only the executor differs.
int isolate_child_run(SpecState& st, const BatchOptions& options, int wfd) {
  try {
    // Test hook: a deliberately pathological spec crashes or wedges here.
    (void)io::check_fault("spec:" + hex16(st.hash));
    st.mc.serial = true;
    st.mc.run_options.threads = 1;
    for (;;) {
      if (st.granted > 0) {
        const bool converged = spec_converged(*st.spec, st.acc, st.granted);
        const bool exhausted = st.granted == st.spec->trials;
        if ((converged && !options.force_full) || exhausted) {
          const std::string json =
              batch_result_json(*st.spec, st.acc, st.granted, converged);
          const std::string msg = std::to_string(st.granted) + ' ' +
                                  (converged ? '1' : '0') + '\n' + json +
                                  '\n';
          return write_all(wfd, msg) ? 0 : 97;
        }
      }
      const std::uint32_t remaining = st.spec->trials - st.granted;
      const std::uint32_t grant =
          options.force_full
              ? remaining
              : std::min(remaining,
                         std::max(options.min_grant, st.granted));
      run_monte_carlo_range(st.mc, st.granted, grant, st.acc);
      st.granted += grant;
    }
  } catch (...) {
    return 97;
  }
}

/// Parent side: fork the child, cap its address space, read its pipe under
/// a wall-clock deadline, SIGKILL it on expiry. One attempt; the caller
/// owns retry and backoff.
ChildResult supervise_spec(SpecState& st, const BatchOptions& options) {
  ChildResult res;
  int fds[2];
  if (::pipe(fds) != 0) return res;  // kError
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return res;
  }
  if (pid == 0) {
    ::close(fds[0]);
    if (options.isolate_mem_bytes > 0) {
      rlimit rl{};
      rl.rlim_cur = options.isolate_mem_bytes;
      rl.rlim_max = options.isolate_mem_bytes;
      ::setrlimit(RLIMIT_AS, &rl);
    }
    ::_exit(isolate_child_run(st, options, fds[1]));
  }
  ::close(fds[1]);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options.isolate_timeout_ms);
  std::string buf;
  bool timed_out = false;
  for (;;) {
    int timeout_ms = -1;
    if (options.isolate_timeout_ms > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(std::max<long long>(0, left.count()));
    }
    pollfd pfd{fds[0], POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {  // the watchdog fires: the spec is wedged
      ::kill(pid, SIGKILL);
      timed_out = true;
      break;
    }
    char chunk[4096];
    const ssize_t r = ::read(fds[0], chunk, sizeof chunk);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;  // EOF: child exited (or died) — status tells which
    buf.append(chunk, static_cast<std::size_t>(r));
  }
  ::close(fds[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (timed_out) {
    res.status = ChildResult::Status::kTimeout;
    return res;
  }
  if (WIFSIGNALED(status)) {
    res.status = ChildResult::Status::kCrash;
    return res;
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return res;  // kError
  // "<granted> <converged>\n<json>\n"
  const std::size_t nl = buf.find('\n');
  if (nl == std::string::npos || buf.empty() || buf.back() != '\n')
    return res;
  std::istringstream head(buf.substr(0, nl));
  std::uint32_t granted = 0;
  int converged = -1;
  if (!(head >> granted >> converged) || (converged != 0 && converged != 1))
    return res;
  res.granted = granted;
  res.converged = converged == 1;
  res.json = buf.substr(nl + 1, buf.size() - nl - 2);
  if (res.json.empty() || res.json.find('\n') != std::string::npos)
    return res;
  res.status = ChildResult::Status::kOk;
  return res;
}

// ---- Journal record payloads ---------------------------------------------

std::string trials_payload(std::size_t idx, std::uint32_t first,
                           const McResult& acc, std::uint32_t count) {
  std::string s = "trials " + std::to_string(idx) + ' ' +
                  std::to_string(first) + ' ' + std::to_string(count);
  for (std::uint32_t t = first; t < first + count; ++t)
    s += ' ' + fmt_outcome(acc.outcomes[t]);
  return s;
}

std::string result_payload(std::size_t idx, const SpecState& st) {
  return "result " + std::to_string(idx) + ' ' + std::to_string(st.granted) +
         (st.converged ? " 1" : " 0") + (st.from_cache ? " 1" : " 0") +
         (st.error ? " 1" : " 0") + ' ' + st.json;
}

/// Applies one replayed record to the state vector. Returns false — ending
/// the committed prefix — on any record that does not parse or is
/// inconsistent with the state it targets (wrong index, non-contiguous
/// trial range, duplicate result): a journal can only ever shorten the
/// work, never corrupt it.
bool apply_journal_record(std::string_view payload,
                          std::vector<SpecState>& states, BatchStats& stats) {
  std::istringstream in{std::string(payload)};
  std::string kind;
  if (!(in >> kind)) return false;
  if (kind == "trials") {
    std::size_t idx = 0;
    std::uint32_t first = 0, count = 0;
    if (!(in >> idx >> first >> count)) return false;
    if (idx >= states.size() || count == 0) return false;
    SpecState& st = states[idx];
    if (st.done || st.dup_of != kNoDup) return false;
    if (first != st.granted || first + count > st.spec->trials) return false;
    std::vector<TrialOutcome> outcomes(count);
    std::string token;
    for (std::uint32_t t = 0; t < count; ++t)
      if (!(in >> token) || !parse_outcome(token, outcomes[t])) return false;
    if (in >> token) return false;  // trailing garbage
    for (TrialOutcome& o : outcomes) {
      if (o.completed) ++st.acc.successes;
      st.acc.outcomes.push_back(o);
    }
    st.granted += count;
    stats.journal_trials += count;
    return true;
  }
  if (kind == "result") {
    std::size_t idx = 0;
    std::uint32_t granted = 0;
    int conv = -1, from_cache = -1, error = -1;
    if (!(in >> idx >> granted >> conv >> from_cache >> error)) return false;
    if (idx >= states.size()) return false;
    if (conv != 0 && conv != 1) return false;
    if (from_cache != 0 && from_cache != 1) return false;
    if (error != 0 && error != 1) return false;
    SpecState& st = states[idx];
    if (st.done) return false;
    if (granted > st.spec->trials || (error == 0 && granted == 0))
      return false;
    std::string json;
    std::getline(in, json);
    if (json.size() < 2 || json[0] != ' ') return false;
    json.erase(0, 1);
    st.done = true;
    st.granted = granted;
    st.converged = conv == 1;
    st.from_cache = from_cache == 1;
    st.error = error == 1;
    st.json = std::move(json);
    ++stats.journal_results;
    return true;
  }
  return false;
}

}  // namespace

const char* batch_family_name(BatchFamily family) {
  switch (family) {
    case BatchFamily::kCsr: return "csr";
    case BatchFamily::kImplicitGnp: return "ignp";
    case BatchFamily::kImplicitDynamic: return "idgnp";
    case BatchFamily::kImplicitRgg: return "irgg";
  }
  RADNET_CHECK(false, "unreachable batch family");
  return "";
}

double BatchSpec::effective_p() const {
  if (family == BatchFamily::kImplicitRgg) {
    const double r = rgg_radius();
    return std::min(1.0, kPi * r * r);
  }
  if (p > 0.0) return p;
  // Dense small-n corners of a delta sweep can push delta*ln(n)/n past 1;
  // the model then saturates at the complete graph rather than rejecting.
  return std::min(1.0, delta * std::log(static_cast<double>(n)) /
                           static_cast<double>(n));
}

double BatchSpec::rgg_radius() const {
  return graph::rgg_threshold_radius(n, radius_mult);
}

std::uint64_t BatchSpec::resolved_max_rounds() const {
  if (max_rounds > 0) return max_rounds;
  // Same budget radnet_cli derives: 64 * (D log n + log^2 n), with the hop
  // diameter D from the family's geometry. Keeping the formulas identical
  // means a batch spec and the equivalent CLI invocation run the same
  // experiment.
  const double log2n = std::log2(static_cast<double>(n));
  const std::uint64_t diameter =
      family == BatchFamily::kImplicitRgg
          ? std::max<std::uint64_t>(
                2, static_cast<std::uint64_t>(std::ceil(1.4143 / rgg_radius())))
          : 2ull * ilog2_floor(n) + 8;
  return static_cast<std::uint64_t>(
      64.0 * (static_cast<double>(diameter) * std::max(1.0, log2n) +
              log2n * log2n));
}

void BatchSpec::validate() const {
  RADNET_REQUIRE(known_protocol(protocol),
                 "spec field protocol must be alg1, alg2m, eg2005, flooding, "
                 "fixed or decay, got '" + protocol + "'");
  RADNET_REQUIRE(n >= 1, "spec field n must be >= 1");
  RADNET_REQUIRE(trials >= 1 && trials <= McSpec::kMaxTrials,
                 "spec field trials must be in [1, McSpec::kMaxTrials]");
  RADNET_REQUIRE(std::isfinite(tol) && tol >= 0.0,
                 "spec field tol must be finite and >= 0");
  RADNET_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "spec field confidence must be in (0, 1)");
  RADNET_REQUIRE(std::isfinite(q) && q >= 0.0 && q <= 1.0,
                 "spec field q must be in [0, 1]");
  RADNET_REQUIRE(p >= 0.0 && p <= 1.0, "spec field p must be in [0, 1]");
  RADNET_REQUIRE(std::isfinite(delta) && delta > 0.0,
                 "spec field delta must be > 0");
  if (family == BatchFamily::kImplicitRgg) {
    RADNET_REQUIRE(std::isfinite(radius_mult) && radius_mult > 0.0,
                   "spec field radius-mult must be > 0");
    const double r = rgg_radius();
    RADNET_REQUIRE(r > 0.0 && r <= 1.5,
                   "spec field radius-mult yields a radius outside (0, 1.5]");
    RADNET_REQUIRE(step >= 0.0 && step <= 1.0,
                   "spec field step must be in [0, 1]");
  } else {
    RADNET_REQUIRE(effective_p() > 0.0,
                   "resolved link probability must be > 0 (n = 1 with a "
                   "delta default has no edges; set p explicitly)");
  }
  if (family == BatchFamily::kImplicitDynamic) {
    RADNET_REQUIRE(churn > 0.0 && churn <= 1.0,
                   "spec field churn must be in (0, 1]");
    RADNET_REQUIRE(fail_prob >= 0.0 && fail_prob < 1.0,
                   "spec field fail-prob must be in [0, 1)");
  }
  RADNET_REQUIRE(resolved_max_rounds() >= 1 &&
                     resolved_max_rounds() <=
                         std::numeric_limits<sim::Round>::max(),
                 "spec field max-rounds is out of range");
  adversary.validate();
}

std::uint64_t BatchSpec::hash() const {
  validate();
  // Resolved values, not as-written ones: `delta=8` and the explicit p it
  // resolves to hash identically, as do an explicit max-rounds equal to
  // the derived default. Tags are append-only (see HashStream).
  HashStream h("radnet-batch-spec-v1");
  h.put_string(1, protocol);
  h.put_u64(2, static_cast<std::uint64_t>(family));
  h.put_u64(3, n);
  h.put_double(4, effective_p());
  h.put_double(5, q);
  h.put_double(6, churn);
  h.put_double(7, fail_prob);
  h.put_double(8, radius_mult);
  h.put_double(9, step);
  h.put_u64(10, trials);
  h.put_u64(11, seed);
  h.put_u64(12, resolved_max_rounds());
  h.put_double(13, tol);
  h.put_double(14, confidence);
  h.put_double(15, adversary.jammer_fraction);
  h.put_double(16, adversary.byzantine_fraction);
  h.put_double(17, adversary.budget_mean);
  h.put_double(18, adversary.budget_spread);
  h.put_u64(19, static_cast<std::uint64_t>(adversary.exhaust_mode));
  h.put_u64(20, adversary.fault_schedule.size());
  for (const sim::FaultEvent& ev : adversary.fault_schedule) {
    h.put_u64(21, ev.round);
    h.put_u64(22, static_cast<std::uint64_t>(ev.kind));
    h.put_double(23, ev.fraction);
  }
  h.put_u64(24, adversary.protected_nodes.size());
  for (const graph::NodeId v : adversary.protected_nodes) h.put_u64(25, v);
  return h.value();
}

McSpec BatchSpec::to_mc_spec() const {
  validate();
  McSpec mc;
  mc.trials = trials;
  mc.seed = seed;
  const double eff_p = effective_p();
  const graph::NodeId nodes = n;
  switch (family) {
    case BatchFamily::kCsr:
      mc.make_graph = [nodes, eff_p](std::uint32_t, Rng rng) {
        return std::make_shared<const graph::Digraph>(
            graph::gnp_directed(nodes, eff_p, rng));
      };
      break;
    case BatchFamily::kImplicitGnp:
      mc.implicit_gnp = ImplicitGnpParams{nodes, eff_p};
      break;
    case BatchFamily::kImplicitDynamic: {
      sim::ImplicitDynamicGnp d;
      d.n = nodes;
      d.p = eff_p;
      d.churn = churn;
      d.fail_prob = fail_prob;
      mc.implicit_dynamic = std::move(d);
      break;
    }
    case BatchFamily::kImplicitRgg: {
      const double r = rgg_radius();
      mc.implicit_rgg = sim::ImplicitRgg{nodes, r, r * step, Rng{}};
      break;
    }
  }
  const std::string name = protocol;
  const double qq = q;
  mc.make_protocol = [name, eff_p, qq](const graph::Digraph&, std::uint32_t)
      -> std::unique_ptr<sim::Protocol> {
    if (name == "alg1")
      return std::make_unique<core::BroadcastRandomProtocol>(
          core::BroadcastRandomParams{.p = eff_p, .source = 0});
    if (name == "alg2m")
      return std::make_unique<core::GossipRumorMarginalProtocol>(
          core::GossipRumorMarginalParams{.p = eff_p, .rumor_source = 0});
    if (name == "eg2005")
      return std::make_unique<baselines::ElsasserGasieniecProtocol>(
          baselines::ElsasserGasieniecParams{.p = eff_p, .source = 0});
    if (name == "flooding")
      return std::make_unique<baselines::FloodingProtocol>(graph::NodeId{0});
    if (name == "fixed")
      return std::make_unique<baselines::FixedProbProtocol>(
          baselines::FixedProbParams{.q = qq, .source = 0});
    if (name == "decay")
      return std::make_unique<baselines::DecayProtocol>(
          baselines::DecayParams{.source = 0});
    throw std::invalid_argument("unknown batch protocol: " + name);
  };
  mc.run_options.max_rounds = static_cast<sim::Round>(resolved_max_rounds());
  mc.run_options.stop_on_empty_candidates = true;
  mc.run_options.adversary = adversary;
  return mc;
}

BatchSpec parse_batch_spec(std::string_view line) {
  BatchSpec spec;
  std::unordered_set<std::string> seen;
  std::istringstream tokens{std::string(line)};
  std::string token;
  while (tokens >> token) {
    if (token[0] == '#') break;
    const std::size_t eq = token.find('=');
    RADNET_REQUIRE(eq != std::string::npos && eq > 0,
                   "spec tokens look like key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    RADNET_REQUIRE(seen.insert(key).second,
                   "duplicate spec key '" + key + "'");
    const std::string what = "spec field " + key;
    if (key == "protocol") {
      RADNET_REQUIRE(known_protocol(value),
                     what + " must be alg1, alg2m, eg2005, flooding, fixed "
                            "or decay, got '" + value + "'");
      spec.protocol = value;
    } else if (key == "family") {
      spec.family = family_from_name(value, what);
    } else if (key == "n") {
      const std::uint64_t v = parse_u64_strict(value, what);
      RADNET_REQUIRE(v >= 1 && v <= std::numeric_limits<graph::NodeId>::max(),
                     what + " is out of range");
      spec.n = static_cast<graph::NodeId>(v);
    } else if (key == "p") {
      spec.p = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "delta") {
      spec.delta = parse_double_strict(value, what);
    } else if (key == "q") {
      spec.q = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "churn") {
      spec.churn = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "fail-prob") {
      spec.fail_prob = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "radius-mult") {
      spec.radius_mult = parse_double_strict(value, what);
    } else if (key == "step") {
      spec.step = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "trials") {
      const std::uint64_t v = parse_u64_strict(value, what);
      RADNET_REQUIRE(v >= 1 && v <= McSpec::kMaxTrials,
                     what + " is out of range");
      spec.trials = static_cast<std::uint32_t>(v);
    } else if (key == "seed") {
      spec.seed = parse_u64_strict(value, what);
    } else if (key == "max-rounds") {
      spec.max_rounds = parse_u64_strict(value, what);
    } else if (key == "tol") {
      spec.tol = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "confidence") {
      spec.confidence = parse_double_strict(value, what);
    } else if (key == "jammers") {
      spec.adversary.jammer_fraction = parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "byzantine") {
      spec.adversary.byzantine_fraction =
          parse_double_in(value, what, 0.0, 1.0);
    } else if (key == "energy-budget") {
      sim::parse_energy_budget(value, what, spec.adversary);
    } else if (key == "fault-schedule") {
      spec.adversary.fault_schedule = sim::parse_fault_schedule(value, what);
    } else {
      throw std::invalid_argument("unknown spec key '" + key + "'");
    }
  }
  RADNET_REQUIRE(!seen.empty(), "empty spec line");
  // Node 0 is every batch protocol's source; protecting it makes the
  // attacked quantity the spread of the rumor, not its existence
  // (radnet_cli does the same).
  if (spec.adversary.active()) spec.adversary.protected_nodes = {0};
  spec.validate();
  return spec;
}

std::vector<BatchSpec> parse_batch_file(std::istream& in) {
  std::vector<BatchSpec> specs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      specs.push_back(parse_batch_spec(line));
    } catch (const std::exception& e) {
      throw std::invalid_argument("spec line " + std::to_string(lineno) +
                                  ": " + e.what());
    }
  }
  return specs;
}

std::string batch_result_json(const BatchSpec& spec, const McResult& result,
                              std::uint32_t granted, bool converged) {
  RADNET_REQUIRE(result.outcomes.size() == granted,
                 "result holds a different trial count than `granted`");
  RADNET_REQUIRE(granted >= 1, "cannot report a spec with zero trials");
  const Sample::Interval rate =
      wilson_interval(result.successes, granted, spec.confidence);
  const Sample rounds = result.rounds_sample();
  const auto rounds_ci = quantile_ci(rounds, 0.5, spec.confidence);
  std::string json;
  json.reserve(512);
  json += "{\"hash\":\"" + hex16(spec.hash()) + "\"";
  json += ",\"protocol\":\"" + spec.protocol + "\"";
  json += ",\"family\":\"";
  json += batch_family_name(spec.family);
  json += "\",\"n\":" + std::to_string(spec.n);
  json += ",\"seed\":" + std::to_string(spec.seed);
  json += ",\"trials_max\":" + std::to_string(spec.trials);
  json += ",\"trials_granted\":" + std::to_string(granted);
  json += std::string(",\"converged\":") + (converged ? "true" : "false");
  json += ",\"successes\":" + std::to_string(result.successes);
  json += ",\"success_rate\":" + fmt_double(result.success_rate());
  json += ",\"rate_ci\":" + fmt_interval(rate);
  // The censored-rounds sample is empty in the all-fail regime: report
  // nulls, not NaNs — the line must stay machine-parseable JSON.
  json += ",\"rounds_median\":" + fmt_opt(rounds.try_quantile(0.5));
  json += ",\"rounds_ci\":" +
          (rounds_ci.has_value() ? fmt_interval(*rounds_ci)
                                 : std::string("null"));
  json += ",\"rounds_mean\":" + fmt_opt(rounds.try_mean());
  json += ",\"total_tx_mean\":" + fmt_opt(result.total_tx_sample().try_mean());
  json += ",\"stranded_mean\":" + fmt_opt(result.stranded_sample().try_mean());
  json += "}";
  return json;
}

std::string batch_error_json(const BatchSpec& spec, std::string_view cause,
                             std::uint32_t attempts) {
  RADNET_REQUIRE(cause == "crash" || cause == "timeout" || cause == "error",
                 "error cause must be crash, timeout or error");
  std::string json;
  json.reserve(192);
  json += "{\"hash\":\"" + hex16(spec.hash()) + "\"";
  json += ",\"error\":\"" + std::string(cause) + "\"";
  json += ",\"protocol\":\"" + spec.protocol + "\"";
  json += ",\"family\":\"";
  json += batch_family_name(spec.family);
  json += "\",\"n\":" + std::to_string(spec.n);
  json += ",\"seed\":" + std::to_string(spec.seed);
  json += ",\"attempts\":" + std::to_string(attempts);
  json += "}";
  return json;
}

std::vector<BatchOutcome> run_batch(const std::vector<BatchSpec>& specs,
                                    const BatchOptions& options,
                                    std::ostream& out, BatchStats* stats_out) {
  RADNET_REQUIRE(options.min_grant >= 1, "BatchOptions.min_grant must be >= 1");
  RADNET_REQUIRE(!options.resume || !options.journal_path.empty(),
                 "BatchOptions.resume requires journal_path");
  RADNET_REQUIRE(!options.isolate || options.isolate_attempts >= 1,
                 "BatchOptions.isolate_attempts must be >= 1");
  BatchStats stats;
  stats.specs = specs.size();

  std::vector<SpecState> states(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SpecState& st = states[i];
    st.spec = &specs[i];
    st.hash = specs[i].hash();
    st.mc = specs[i].to_mc_spec();
    // Thread schedule only — never results: 1 pins trials to the calling
    // thread, k > 1 gives each trial k-thread round sweeps, 0 lets the
    // harness choose per grant.
    if (options.threads == 1)
      st.mc.serial = true;
    else if (options.threads > 1)
      st.mc.run_options.threads = options.threads;
  }

  // Emission (and scheduling) order: family-major, stable by input index.
  std::vector<std::size_t> order(specs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return states[a].spec->family < states[b].spec->family;
                   });

  // In-run memo: a duplicate hash always points backwards in emission
  // order (equal hash => equal spec => same family, and the sort is
  // stable), so a dup's primary is resolved before the dup is reached.
  std::unordered_map<std::uint64_t, std::size_t> memo;
  for (const std::size_t idx : order) {
    SpecState& st = states[idx];
    const auto [it, inserted] = memo.emplace(st.hash, idx);
    if (!inserted) st.dup_of = it->second;
  }

  // Reap debris from dead runs (aborted temp files, quarantined entries)
  // before touching the cache; the age gate leaves a live concurrent run's
  // temp files alone.
  if (!options.cache_dir.empty())
    stats.stale_reaped =
        io::sweep_stale_files(options.cache_dir, std::chrono::hours(1));

  // Journal replay + (re)open. The committed prefix restores trial
  // accumulators mid-spec and finished results verbatim; everything after
  // the first torn or inconsistent record is truncated away and recomputed.
  JournalWriter writer;
  if (!options.journal_path.empty()) {
    std::uint64_t keep_bytes = 0;
    bool write_header = true;
    if (options.resume) {
      const JournalReplay replay = read_journal(options.journal_path);
      if (!replay.records.empty()) {
        const std::string expect = journal_header_payload(specs, options);
        const std::string& head = replay.records.front().payload;
        if (head.rfind("header ", 0) != 0)
          throw std::invalid_argument("journal '" + options.journal_path +
                                      "' is not a radnet batch journal");
        if (head != expect)
          throw std::invalid_argument(
              "journal '" + options.journal_path +
              "' was written by a different sweep or grant schedule — "
              "refusing to splice result streams");
        write_header = false;
        keep_bytes = replay.records.front().end_offset;
        for (std::size_t r = 1; r < replay.records.size(); ++r) {
          if (!apply_journal_record(replay.records[r].payload, states, stats))
            break;  // first inconsistent record ends the committed prefix
          keep_bytes = replay.records[r].end_offset;
        }
      }
    }
    writer.open(options.journal_path, keep_bytes);
    if (write_header) writer.append(journal_header_payload(specs, options));
  }

  const auto cancelled = [&] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  std::size_t frontier = 0;
  const auto flush = [&] {
    while (frontier < order.size() && states[order[frontier]].done) {
      out << states[order[frontier]].json << '\n';
      ++frontier;
    }
  };

  // Journal-then-emit: the result record is committed before the line can
  // reach `out`, so a resumed run re-emits exactly what was (or would have
  // been) printed.
  const auto commit_result = [&](std::size_t idx) {
    if (writer.is_open()) writer.append(result_payload(idx, states[idx]));
    flush();
  };

  const auto try_finish = [&](std::size_t idx) -> bool {
    SpecState& st = states[idx];
    if (st.granted == 0) return false;
    const bool converged = spec_converged(*st.spec, st.acc, st.granted);
    const bool exhausted = st.granted == st.spec->trials;
    if (!((converged && !options.force_full) || exhausted)) return false;
    st.done = true;
    st.converged = converged;
    stats.trials_saved += st.spec->trials - st.granted;
    st.json = batch_result_json(*st.spec, st.acc, st.granted, converged);
    // force_full runs are diagnostic (prefix-of-full-run comparisons):
    // storing them would make a later early-stopping run replay the
    // full-trial line instead of the bytes it would compute itself.
    if (!options.cache_dir.empty() && !options.force_full)
      cache_store(options.cache_dir, st.hash, st.spec->seed, st.granted,
                  converged, st.json, stats);
    commit_result(idx);
    return true;
  };

  // Disk lookups for specs the journal did not already answer. A spec the
  // replay left mid-schedule keeps computing — its grant sequence must
  // match the uninterrupted run's, not jump to a cache entry the original
  // run never saw.
  if (!options.cache_dir.empty() && !options.force_full) {
    for (const std::size_t idx : order) {
      SpecState& st = states[idx];
      if (st.done || st.dup_of != kNoDup || st.granted > 0) continue;
      if (auto entry =
              cache_load(options.cache_dir, st.hash, st.spec->seed, stats)) {
        st.done = true;
        st.from_cache = true;
        st.granted = entry->granted;
        st.converged = entry->converged;
        st.json = std::move(entry->json);
        ++stats.cache_hits;
        stats.trials_saved += st.spec->trials - st.granted;
        commit_result(idx);
      }
    }
  }

  // A crash between a grant's `trials` append and its `result` append
  // leaves a restored accumulator that may already satisfy its stop rule;
  // finishing it here (instead of granting again) keeps the grant
  // sequence — hence the reported trial counts — identical to the
  // uninterrupted run's.
  for (const std::size_t idx : order) {
    SpecState& st = states[idx];
    if (!st.done && st.dup_of == kNoDup && st.granted > 0) try_finish(idx);
  }

  const auto run_isolated = [&](std::size_t idx) {
    SpecState& st = states[idx];
    std::string_view cause = "error";
    for (std::uint32_t attempt = 0; attempt < options.isolate_attempts;
         ++attempt) {
      if (attempt > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<std::uint64_t>(options.isolate_backoff_ms)
            << (attempt - 1)));
      const ChildResult res = supervise_spec(st, options);
      if (res.status == ChildResult::Status::kOk) {
        stats.trials_run += res.granted - st.granted;
        st.done = true;
        st.converged = res.converged;
        st.granted = res.granted;
        stats.trials_saved += st.spec->trials - st.granted;
        st.json = res.json;
        if (!options.cache_dir.empty() && !options.force_full)
          cache_store(options.cache_dir, st.hash, st.spec->seed, st.granted,
                      st.converged, st.json, stats);
        commit_result(idx);
        return;
      }
      switch (res.status) {
        case ChildResult::Status::kCrash: cause = "crash"; break;
        case ChildResult::Status::kTimeout: cause = "timeout"; break;
        default: cause = "error"; break;
      }
      if (cancelled()) return;  // leave unfinished; resume retries afresh
    }
    st.done = true;
    st.error = true;
    st.converged = false;
    st.json = batch_error_json(*st.spec, cause, options.isolate_attempts);
    ++stats.spec_errors;
    commit_result(idx);
  };

  // Round-robin grant passes: every unconverged spec receives one
  // (doubling) grant per pass, so slow-converging specs never starve fast
  // ones, and the grant sequence — hence every reported trial count — is a
  // pure function of the specs themselves. The cancel flag is polled only
  // at grant boundaries: a stop is always clean, with everything done so
  // far journal-committed.
  bool pending = true;
  while (pending && !stats.interrupted) {
    pending = false;
    for (const std::size_t idx : order) {
      if (cancelled()) {
        stats.interrupted = true;
        break;
      }
      SpecState& st = states[idx];
      if (st.done) continue;
      if (st.dup_of != kNoDup) {
        const SpecState& primary = states[st.dup_of];
        // The primary precedes the dup in emission order but may still be
        // mid-schedule this pass; the dup just waits for it.
        if (!primary.done) {
          pending = true;
          continue;
        }
        st.done = true;
        st.converged = primary.converged;
        st.from_cache = true;
        st.error = primary.error;
        st.granted = primary.granted;
        st.json = primary.json;
        ++stats.cache_hits;
        stats.trials_saved += st.spec->trials;
        commit_result(idx);
        continue;
      }
      if (options.isolate) {
        run_isolated(idx);
        if (!st.done) pending = true;  // cancelled mid-retry
        continue;
      }
      const std::uint32_t remaining = st.spec->trials - st.granted;
      const std::uint32_t grant =
          options.force_full
              ? remaining
              : std::min(remaining, std::max(options.min_grant, st.granted));
      (void)io::check_fault("grant");  // crash window: grant not yet run
      const std::uint32_t first = st.granted;
      run_monte_carlo_range(st.mc, first, grant, st.acc);
      st.granted += grant;
      stats.trials_run += grant;
      if (writer.is_open()) {
        // Crash window between compute and commit: resume reruns the grant
        // and — trial t being a pure function of (seed, t) — reproduces
        // the same outcomes bit-for-bit.
        (void)io::check_fault("grant-commit");
        writer.append(trials_payload(idx, first, st.acc, grant));
      }
      if (!try_finish(idx)) pending = true;
    }
  }
  flush();
  if (!stats.interrupted)
    RADNET_CHECK(frontier == order.size(), "batch ended with unemitted specs");

  std::vector<BatchOutcome> outcomes(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    outcomes[i] = BatchOutcome{states[i].hash,       states[i].granted,
                               states[i].converged,  states[i].from_cache,
                               states[i].error,      std::move(states[i].json)};
  }
  if (stats_out != nullptr) *stats_out = stats;
  return outcomes;
}

}  // namespace radnet::harness
