// Batched many-query Monte-Carlo: the engine as a service.
//
// The one-shot harness (monte_carlo.hpp) answers a single
// (protocol, topology, n, p, adversary) question per invocation; serving
// heavy traffic means amortising across thousands of such questions. This
// layer turns specs into data:
//
//   * a BatchSpec is one declarative query — parsed from a `key=value`
//     spec line, defaulted, validated, and canonicalised into a stable
//     64-bit hash (support/hash.hpp) over the resolved field set, so the
//     same question always addresses the same cached answer regardless of
//     key order or spelled-out defaults;
//   * run_batch groups specs by backend family and admits trials
//     incrementally (a deterministic doubling grant schedule per spec,
//     interleaved round-robin within each family group) on the shared
//     global pool;
//   * each spec early-stops as soon as its completion-rate Wilson interval
//     and its completion-rounds median order-statistic interval
//     (support/stats.hpp) are below its tolerance. Because trial t's
//     randomness is keyed on (seed, t) alone — never on the grant schedule
//     or thread count — an early-stopped result is bit-identical to a
//     prefix of the full run (run_monte_carlo_range's contract);
//   * converged results are streamed to the output in deterministic order
//     (family-major, then input order: a spec's line prints as soon as it
//     and every spec before it in that order have converged), so the byte
//     stream is identical at any thread count and cold vs warm cache;
//   * results are cached on disk keyed by (spec hash, seed) with the
//     granted trial count recorded inside the entry, so a repeated query
//     is an O(1) lookup that replays the stored line verbatim. An
//     in-memory memo gives the same O(1) answer to duplicates within one
//     invocation even with the disk cache disabled.
//
// The execution layer is crash-safe:
//
//   * cache entries are checksummed and committed by write-to-temp +
//     rename() (support/io.hpp); a corrupt, truncated or foreign file is
//     quarantined to `*.quarantine` and treated as a miss — corruption can
//     cost a recompute, never a wrong answer;
//   * with BatchOptions::journal_path set, every grant's trial outcomes
//     and every committed result line are append-logged with per-record
//     checksums (support/journal.hpp); a run killed at any instant resumes
//     (options.resume) by replaying the committed prefix and continuing
//     the doubling schedule mid-spec, and the resumed output stream is
//     byte-identical to an uninterrupted run (trial t is keyed on
//     (seed, t) alone, so recomputed and replayed trials agree bit-for-bit);
//   * options.cancel gives SIGINT/SIGTERM handlers a flag run_batch polls
//     at grant boundaries: the run stops cleanly with the journal
//     committed, ready to resume;
//   * options.isolate runs each spec's grants in a forked, watchdogged
//     child (RLIMIT_AS cap + wall-clock timeout, bounded retry with
//     exponential backoff), so a crashing or wedged spec degrades into a
//     structured `"error"` JSON line while every other spec completes with
//     byte-identical results.
//
// tools/radnet_batch.cpp is the thin CLI over this layer;
// tests/harness/batch_test.cpp pins the determinism, prefix and cache
// contracts; tests/harness/faultinject_test.cpp pins the crash-safety
// invariant resume(interrupt(run)) == run; tools/bench_runner.cpp gates
// cold-vs-cached, serial-vs-parallel and kill-resume identity in the
// bench_smoke JSON (schema v7).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "harness/monte_carlo.hpp"
#include "sim/adversary.hpp"

namespace radnet::harness {

/// Backend family of a batch spec — the scheduler's grouping key (specs of
/// one family share graph-build code paths and cache behaviour).
enum class BatchFamily : std::uint8_t {
  kCsr = 0,              ///< explicit CSR G(n,p), materialised per trial
  kImplicitGnp = 1,      ///< graph-free static G(n,p)
  kImplicitDynamic = 2,  ///< graph-free dynamic G(n,p) (churn / failures)
  kImplicitRgg = 3,      ///< graph-free mobility RGG
};

/// Short name used in spec lines and result JSON ("csr", "ignp", ...).
[[nodiscard]] const char* batch_family_name(BatchFamily family);

/// One declarative Monte-Carlo query. Field defaults ARE the canonical
/// defaults: parse_batch_spec applies them, validate() checks the resolved
/// values, and hash() covers every field below (resolved, not as written),
/// so adding a field here requires a new tag in hash() — never a renumber.
struct BatchSpec {
  /// alg1 | alg2m | eg2005 | flooding | fixed | decay
  std::string protocol = "alg1";
  BatchFamily family = BatchFamily::kImplicitGnp;
  graph::NodeId n = 1024;
  /// Link probability; 0 means "use delta": p = delta * ln(n) / n.
  double p = 0.0;
  double delta = 8.0;
  /// fixed-prob protocol's transmit probability.
  double q = 0.5;
  /// Implicit-dynamic family: per-round link churn in (0, 1] and permanent
  /// radio-failure probability in [0, 1).
  double churn = 1.0;
  double fail_prob = 0.0;
  /// Implicit-RGG family: radio range as a multiple of the connectivity-
  /// threshold radius, and per-round step as a fraction of the range.
  double radius_mult = 2.0;
  double step = 0.125;
  /// Maximum trials; early stopping may grant fewer (never more).
  std::uint32_t trials = 256;
  std::uint64_t seed = 0x5eed;
  /// Per-trial round budget; 0 derives the standard budget from n (and the
  /// RGG hop diameter), mirroring radnet_cli.
  std::uint64_t max_rounds = 0;
  /// Early-stop tolerance: converged once the completion-rate CI half-width
  /// is <= tol AND the rounds-median CI half-width is <= tol * median.
  /// 0 disables early stopping (every trial runs).
  double tol = 0.05;
  double confidence = 0.95;
  /// Adversary scenario (jammers / byzantine / energy-budget /
  /// fault-schedule spec keys); node 0 — the source — is auto-protected.
  sim::AdversarySpec adversary;

  /// Rejects out-of-range resolved fields with std::invalid_argument
  /// (the batch runner refuses whole files fail-fast, before any trial).
  void validate() const;

  /// Link probability after the delta default is resolved; for the RGG
  /// family this is the mean-degree fraction pi*r^2 (tunes protocol rates).
  [[nodiscard]] double effective_p() const;
  /// RGG radio range (rgg_threshold_radius(n, radius_mult)).
  [[nodiscard]] double rgg_radius() const;
  /// max_rounds after the 0-default is resolved.
  [[nodiscard]] std::uint64_t resolved_max_rounds() const;

  /// Canonical 64-bit spec hash (FNV-1a + avalanche over the validated,
  /// resolved field set, adversary block included). The cache address.
  [[nodiscard]] std::uint64_t hash() const;

  /// Lowers the query to a one-shot harness spec (factories bound, round
  /// budget resolved, source protected under an active adversary).
  [[nodiscard]] McSpec to_mc_spec() const;
};

/// Parses one `key=value ...` spec line (whitespace-separated; `#` starts
/// a comment). Unknown keys and malformed values throw
/// std::invalid_argument naming the key. Defaults per BatchSpec.
[[nodiscard]] BatchSpec parse_batch_spec(std::string_view line);

/// Parses a whole spec file: one spec per non-blank, non-comment line.
/// Errors are rethrown with the 1-based line number prepended.
[[nodiscard]] std::vector<BatchSpec> parse_batch_file(std::istream& in);

struct BatchOptions {
  /// Result cache directory (created on demand); empty disables the disk
  /// cache. Entries are invalidated by construction: the filename carries
  /// (spec hash, seed) and the header records the format version and
  /// granted trials, so any mismatch is a miss, never a wrong answer.
  std::string cache_dir;
  /// Grant every spec its full trial count regardless of tolerances (the
  /// forced full run the prefix tests compare early stops against).
  bool force_full = false;
  /// Thread schedule, radnet_cli semantics: 1 = fully serial, 0 = harness
  /// default (trial- vs round-parallelism per grant), k = k-thread round
  /// sweeps. Output bytes are identical for every value.
  unsigned threads = 0;
  /// First grant quantum; grants double thereafter (16, 16, 32, 64, ...),
  /// so granted counts are a deterministic function of convergence alone.
  std::uint32_t min_grant = 16;
  /// Run journal path; empty disables journaling. The journal header binds
  /// the spec set (hash over every spec hash, in input order) plus
  /// force_full and min_grant, so resuming against a different sweep or
  /// grant schedule fails loudly instead of splicing streams.
  std::string journal_path;
  /// Replay the journal's committed prefix, re-emit its result lines
  /// verbatim, and continue the doubling schedule mid-spec. The output
  /// stream of a resumed run is the COMPLETE stream — byte-identical to an
  /// uninterrupted run — so callers write it to a fresh (truncated) file
  /// rather than appending to the interrupted run's partial output (whose
  /// tail may be torn). Requires journal_path; a missing or fully torn
  /// journal resumes from nothing, i.e. runs fresh.
  bool resume = false;
  /// Polled at grant boundaries (signal handlers set it): when true the
  /// run stops cleanly after the in-flight grant, with everything done so
  /// far journal-committed and the emitted prefix flushed. BatchStats
  /// reports interrupted = true; resume finishes the sweep.
  const std::atomic<bool>* cancel = nullptr;
  /// Watchdogged spec isolation: run each spec's grants in a forked child
  /// under an optional RLIMIT_AS cap and wall-clock timeout, retrying
  /// crashed/hung/failed children with exponential backoff. A spec that
  /// exhausts its attempts yields a structured `"error"` JSON line in its
  /// stream slot; every other spec's bytes are identical to a non-isolated
  /// run (children run the identical grant schedule, serially — thread
  /// count never affects result bytes). Mid-spec journaling is coarser
  /// under isolation: a kill loses at most the in-flight spec's trials.
  bool isolate = false;
  /// Attempts per spec before the error line (>= 1).
  std::uint32_t isolate_attempts = 3;
  /// Wall-clock budget per attempt in ms; 0 disables the watchdog timer.
  std::uint32_t isolate_timeout_ms = 300'000;
  /// RLIMIT_AS for each child in bytes; 0 inherits the parent's limit.
  std::uint64_t isolate_mem_bytes = 0;
  /// Base retry backoff in ms (doubles per attempt). Kept small in tests.
  std::uint32_t isolate_backoff_ms = 100;
};

/// One spec's outcome; `json` is exactly the line streamed to `out`.
struct BatchOutcome {
  std::uint64_t hash = 0;
  std::uint32_t trials_granted = 0;
  bool converged = false;    ///< CIs under tolerance (vs trials exhausted)
  bool from_cache = false;   ///< answered by disk cache, memo or journal
  bool error = false;        ///< isolate mode exhausted its attempts;
                             ///< `json` is the structured error line
  std::string json;
};

/// Aggregate counters for the invocation (reported to stderr by the CLI).
struct BatchStats {
  std::uint64_t specs = 0;
  std::uint64_t cache_hits = 0;    ///< disk hits + in-run memo hits
  std::uint64_t cache_stores = 0;
  std::uint64_t cache_quarantined = 0;  ///< corrupt entries moved aside
  std::uint64_t stale_reaped = 0;  ///< old .tmp/.quarantine files removed
  std::uint64_t trials_run = 0;
  std::uint64_t trials_saved = 0;  ///< sum over specs of (trials - granted)
  std::uint64_t journal_trials = 0;   ///< trials restored by replay, not run
  std::uint64_t journal_results = 0;  ///< result lines re-emitted verbatim
  std::uint64_t spec_errors = 0;   ///< isolate-mode error lines emitted
  bool interrupted = false;        ///< options.cancel stopped the run early
};

/// Runs every spec and streams result lines to `out` in deterministic
/// (family-major, then input) order. Returns per-spec outcomes in INPUT
/// order. The byte stream written to `out` is identical across thread
/// counts, cold vs warm cache, and early-stop vs force_full re-runs of
/// already-converged grants (same grants => same bytes).
[[nodiscard]] std::vector<BatchOutcome> run_batch(
    const std::vector<BatchSpec>& specs, const BatchOptions& options,
    std::ostream& out, BatchStats* stats = nullptr);

/// The canonical result line for a (spec, accumulated result) pair —
/// exposed so tests and bench_runner can re-derive the expected bytes.
/// Handles the zero-completions regime with JSON nulls (never NaN): an
/// all-fail spec is a data point, not a formatting error.
[[nodiscard]] std::string batch_result_json(const BatchSpec& spec,
                                            const McResult& result,
                                            std::uint32_t granted,
                                            bool converged);

/// The structured error line isolate mode emits for a spec that exhausted
/// its attempts: spec identity (hash, protocol, family, n, seed), the
/// terminal cause ("crash", "timeout" or "error") and the attempt count.
/// Deterministic given (spec, cause, attempts), so error lines are as
/// reproducible as result lines.
[[nodiscard]] std::string batch_error_json(const BatchSpec& spec,
                                           std::string_view cause,
                                           std::uint32_t attempts);

}  // namespace radnet::harness
