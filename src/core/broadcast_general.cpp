#include "core/broadcast_general.hpp"

#include <cmath>

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::core {

sim::Round general_window(std::uint64_t n, double beta) {
  RADNET_REQUIRE(n >= 2, "general_window needs n >= 2");
  RADNET_REQUIRE(beta > 0.0, "beta must be positive");
  const double l = log2d(static_cast<double>(n));
  return static_cast<sim::Round>(std::ceil(beta * l * l));
}

sim::Round general_round_budget(std::uint64_t n, std::uint64_t diameter,
                                double lambda, double c) {
  RADNET_REQUIRE(n >= 2, "general_round_budget needs n >= 2");
  RADNET_REQUIRE(diameter >= 1, "diameter must be >= 1");
  RADNET_REQUIRE(lambda >= 1.0, "lambda must be >= 1");
  RADNET_REQUIRE(c > 0.0, "c must be positive");
  const double l = log2d(static_cast<double>(n));
  const double bound = c * (static_cast<double>(diameter) * lambda + l * l);
  return static_cast<sim::Round>(std::ceil(bound));
}

GeneralBroadcastProtocol::GeneralBroadcastProtocol(GeneralBroadcastParams params)
    : params_(std::move(params)) {}

void GeneralBroadcastProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "Algorithm 3 needs n >= 2");
  n_ = num_nodes;
  rng_ = rng;
  RADNET_REQUIRE(params_.source < n_, "source out of range");
  state_.reset(n_, params_.source);
  current_k_.reset();
  current_tx_prob_ = 0.0;
}

void GeneralBroadcastProtocol::begin_round(sim::Round /*r*/) {
  // One shared draw per round: the whole network sees the same I_r (common
  // randomness, as in the selection sequences of [11]).
  current_k_ = params_.distribution.sample(rng_);
  current_tx_prob_ = current_k_ ? pow2_neg(*current_k_) : 0.0;
}

std::span<const NodeId> GeneralBroadcastProtocol::candidates() const {
  return state_.active();
}

bool GeneralBroadcastProtocol::wants_transmit(NodeId v, sim::Round r) {
  if (params_.window != 0) {
    const sim::Round t_u = state_.informed_time(v);
    if (r >= t_u + params_.window) {
      state_.deactivate(v);  // the paper's "u becomes passive"
      return false;
    }
  }
  if (current_tx_prob_ <= 0.0) return false;
  return rng_.bernoulli(current_tx_prob_);
}

void GeneralBroadcastProtocol::on_delivered(NodeId receiver, NodeId sender,
                                            sim::Round r) {
  state_.deliver(receiver, r, true, state_.copy_is_valid(sender));
}

void GeneralBroadcastProtocol::on_delivered_corrupted(NodeId receiver,
                                                      NodeId /*sender*/,
                                                      sim::Round r) {
  state_.deliver(receiver, r, true, /*copy_valid=*/false);
}

void GeneralBroadcastProtocol::end_round(sim::Round /*r*/) { state_.commit(); }

bool GeneralBroadcastProtocol::is_complete() const {
  return state_.goal_reached();
}

std::string GeneralBroadcastProtocol::name() const {
  if (!params_.label.empty()) return params_.label;
  return "alg3[" + params_.distribution.name() + "]";
}

}  // namespace radnet::core
