// Algorithm 3 — energy-efficient broadcast for arbitrary networks with
// known diameter D (§4.1).
//
// A shared random sequence I = <I_0, I_1, ...> is drawn with
// Pr[I_r = k] = alpha_k (see core/distributions.hpp); in round r every
// *active* node transmits with probability 2^{-I_r}. A node stays active for
// a window of beta * log^2 n rounds after it is informed (the paper's
// "if r <= t_u + beta log^2 n"), then goes passive for good.
//
// Theorem 4.1: with the distribution alpha(n, D), broadcasting completes in
// O(D log(n/D) + log^2 n) rounds w.h.p. and costs an expected
// O(log^2 n / log(n/D)) transmissions per node.
//
// Theorem 4.2 (trade-off): with alpha_with_lambda(n, lambda) for
// log(n/D) <= lambda <= log n, time becomes O(D lambda + log^2 n) and energy
// O(log^2 n / lambda) per node — the same protocol class, so the trade-off
// bench just sweeps the distribution.
//
// The Czumaj–Rytter baseline and the lower-bound schedules of §4.2 are also
// instances of this class (different distribution and window); see
// baselines/czumaj_rytter.hpp and baselines/fixed_prob.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/broadcast_state.hpp"
#include "core/distributions.hpp"
#include "sim/protocol.hpp"

namespace radnet::core {

struct GeneralBroadcastParams {
  /// Per-round transmit-probability distribution (the shared sequence's law).
  SequenceDistribution distribution;
  /// Active window in rounds: a node informed at time t transmits only while
  /// r < t + window. 0 means unlimited (never passive).
  sim::Round window = 0;
  /// Broadcast originator.
  NodeId source = 0;
  /// Optional display name override for result tables.
  std::string label;
};

/// The paper's window beta * log2(n)^2, rounded up.
[[nodiscard]] sim::Round general_window(std::uint64_t n, double beta);

/// A generous engine round budget c * (D * lambda + log2(n)^2) matching the
/// Theorem 4.1/4.2 time bound.
[[nodiscard]] sim::Round general_round_budget(std::uint64_t n, std::uint64_t diameter,
                                              double lambda, double c);

class GeneralBroadcastProtocol final : public sim::Protocol {
 public:
  explicit GeneralBroadcastProtocol(GeneralBroadcastParams params);

  void reset(NodeId num_nodes, Rng rng) override;
  void begin_round(sim::Round r) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  void on_delivered_corrupted(NodeId receiver, NodeId sender,
                              sim::Round r) override;
  void end_round(sim::Round r) override;
  [[nodiscard]] bool is_complete() const override;
  void set_goal_exclusions(std::span<const NodeId> nodes) override {
    state_.exclude_from_goal(nodes);
  }
  [[nodiscard]] std::optional<NodeId> stranded_count() const override {
    return state_.stranded_count();
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] NodeId informed_count() const noexcept {
    return state_.informed_count();
  }
  [[nodiscard]] NodeId active_count() const noexcept {
    return state_.active_count();
  }
  /// The sequence value drawn for the current round (nullopt = silent).
  [[nodiscard]] std::optional<std::uint32_t> current_k() const noexcept {
    return current_k_;
  }

 private:
  GeneralBroadcastParams params_;
  Rng rng_;
  BroadcastState state_;
  NodeId n_ = 0;
  std::optional<std::uint32_t> current_k_;
  double current_tx_prob_ = 0.0;
};

}  // namespace radnet::core
