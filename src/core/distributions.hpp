// The sequence distributions of Section 4 (Fig. 1).
//
// Algorithm 3 draws a shared random sequence I = <I_1, I_2, ...> with
// Pr[I_r = k] = alpha_k over k in {1, ..., log2 n}; in round r every active
// node transmits with probability 2^{-I_r}. The distribution alpha (left of
// Fig. 1) is the paper's contribution; alpha' (right of Fig. 1) is
// Czumaj–Rytter's distribution from [11] used as the baseline.
//
// Reconstruction note (see DESIGN.md §2): Fig. 1 itself is an image absent
// from the text. alpha is rebuilt from its stated properties, with
//   lambda = log2(n / D),  L = log2 n:
//     alpha_k = max( shape_k, 1/(2 L) )  with
//     shape_k = 1/(4 lambda)                    for 1 <= k <= lambda
//             = 2^{-(k-lambda)} / (2 lambda)    for lambda < k <= L
// (the 1/(2L) floor covers the whole support; note the paper's two stated
// bounds 1/(2 log n) <= alpha_k <= 1/(4 lambda) are jointly satisfiable only
// when lambda <= log(n)/2, i.e. D >= sqrt(n) — outside that regime the floor
// takes precedence because the w.h.p. delivery argument needs it),
// and any probability mass left over is a *silent* round (I_r = infinity,
// transmit probability 0); if the raw weights exceed mass 1 (possible when
// lambda ~ L) they are renormalised. alpha' is the same construction
// without the 1/(2L) floor. All the properties the paper states —
//   1/(2 log n) <= alpha_k <= 1/(4 lambda),   alpha_k >= alpha'_k / 2,
// and E[2^{-I}] = Theta(1/lambda) — are asserted by the unit tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace radnet::core {

class SequenceDistribution {
 public:
  /// The paper's alpha for a network with n nodes and known diameter D
  /// (Theorem 4.1): lambda = log2(n/D).
  [[nodiscard]] static SequenceDistribution alpha(std::uint64_t n, std::uint64_t diameter);

  /// The trade-off family of Theorem 4.2: alpha with an explicit lambda in
  /// [log2(n/D), log2 n]. lambda is clamped into [1, log2 n].
  [[nodiscard]] static SequenceDistribution alpha_with_lambda(std::uint64_t n, double lambda);

  /// Czumaj–Rytter's alpha' (the floorless variant; see file comment).
  [[nodiscard]] static SequenceDistribution alpha_prime(std::uint64_t n, std::uint64_t diameter);

  /// Uniform distribution over {1..log2 n} with no silence; the simplest
  /// oblivious choice, used as a further baseline.
  [[nodiscard]] static SequenceDistribution uniform(std::uint64_t n);

  /// Degenerate distribution: always k (Pr[I_r = k] = 1). Used by the
  /// lower-bound experiments as the canonical time-invariant single-point
  /// schedule.
  [[nodiscard]] static SequenceDistribution point(std::uint64_t n, std::uint32_t k);

  /// Largest k in the support (= ceil(log2 n)).
  [[nodiscard]] std::uint32_t max_k() const noexcept { return max_k_; }

  /// Pr[I_r = k] for k in [1, max_k()]; 0 outside.
  [[nodiscard]] double prob(std::uint32_t k) const;

  /// Probability of a silent round (I_r drawn as "no transmission").
  [[nodiscard]] double silence_prob() const noexcept { return silence_; }

  /// The lambda this distribution was built with (log2(n/D) or explicit).
  [[nodiscard]] double lambda() const noexcept { return lambda_; }

  /// Expected per-round transmit probability E[2^{-I}] (silence counts 0).
  /// For alpha this is Theta(1/lambda) — the source of the paper's
  /// O(log^2 n / lambda) energy bound.
  [[nodiscard]] double expected_tx_prob() const;

  /// Draws I_r: a k in [1, max_k()], or nullopt for a silent round.
  [[nodiscard]] std::optional<std::uint32_t> sample(Rng& rng) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  SequenceDistribution(std::string name, double lambda,
                       std::vector<double> probs, double silence);

  std::string name_;
  double lambda_ = 1.0;
  std::uint32_t max_k_ = 1;
  std::vector<double> probs_;  // probs_[k-1] = Pr[I = k]
  std::vector<double> cdf_;    // inclusive prefix sums of probs_
  double silence_ = 0.0;
};

}  // namespace radnet::core
