// Algorithm 2 — gossip for random networks (§3).
//
// Every node starts with its own rumor. In every round, every node transmits
// with probability 1/d (d = np), sending the *join* of every rumor it knows
// (the combined-message model of [8,11]: a message can carry any set of
// rumors and still fits in one round). A node that hears a clean
// transmission joins the incoming rumor set into its own.
//
// Theorem 3.2: with p > delta log n / n, gossip completes in O(d log n)
// rounds w.h.p. and every node performs O(log n) transmissions w.h.p. —
// nodes never become passive here; the energy bound comes from the round
// budget 128 d log n times the 1/d transmit probability.
//
// Rumor sets are bitsets of size n; delivery merges are word-parallel. The
// protocol tracks the global count of (node, rumor) pairs known so the
// engine's completion check is O(1).
//
// Topology note: gossip nodes transmit repeatedly, so on the implicit
// G(n,p) backend (sim/topology.hpp) the same ordered pair can be examined
// in several rounds and is resampled each time — the run then models the
// per-round-resampled G(n,p) (the churn = 1 mobility model of
// graph/dynamics.hpp), not one fixed graph. sim::ImplicitDynamicGnp
// extends this to partial churn (persistent pair-state sketches), node
// failures and p(t) schedules; use the CSR path when the fixed-graph
// reading of Theorem 3.2 is the point of the experiment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/broadcast_state.hpp"
#include "sim/protocol.hpp"
#include "support/bitset.hpp"

namespace radnet::core {

using graph::NodeId;

struct GossipRandomParams {
  /// Edge probability the protocol is tuned for (nodes know n and p).
  double p = 0.0;
  /// The protocol's round budget is ceil(round_factor * d * log2 n). The
  /// paper's constant is 128; the engine stops at completion, so this only
  /// bounds the worst case.
  double round_factor = 128.0;
};

class GossipRandomProtocol final : public sim::Protocol {
 public:
  explicit GossipRandomProtocol(GossipRandomParams params);

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  /// Bulk path: every node transmits independently with probability 1/d
  /// every round, so the transmitter subset is skip-sampled in
  /// O(transmitters) instead of n coin flips per round.
  [[nodiscard]] bool sample_transmitters(sim::Round r,
                                         std::vector<NodeId>& out) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  [[nodiscard]] bool is_complete() const override;
  [[nodiscard]] std::string name() const override { return "alg2"; }

  /// ceil(round_factor * d * log2 n): pass to RunOptions::max_rounds.
  [[nodiscard]] sim::Round round_budget() const noexcept { return budget_; }

  /// Number of rumors node v currently knows.
  [[nodiscard]] std::size_t rumors_known(NodeId v) const;

  /// Total (node, rumor) pairs known, out of n * n.
  [[nodiscard]] std::uint64_t pairs_known() const noexcept { return known_; }

  [[nodiscard]] double degree() const noexcept { return d_; }

 private:
  GossipRandomParams params_;
  Rng rng_;
  NodeId n_ = 0;
  double d_ = 0.0;
  double tx_prob_ = 0.0;
  sim::Round budget_ = 0;
  std::vector<NodeId> everyone_;
  std::vector<Bitset> rumors_;
  std::uint64_t known_ = 0;
};

/// The single-rumor *marginal* of Algorithm 2, for graph-free scaling runs.
///
/// In Algorithm 2, whether a node transmits never depends on its rumor set,
/// so the spread of any one fixed rumor is a Markov chain on its knower
/// set alone: a clean delivery teaches the listener the rumor iff the
/// sender already knew it. Simulating that marginal needs O(n) state
/// instead of Algorithm 2's n^2-bit rumor matrix, which is what lets a
/// gossip trial run at n = 10^7 (bench E16). Under the engine's default
/// half-duplex semantics the marginal is *exactly* the law of
/// `rumor_source`'s rumor inside a full Algorithm 2 execution: a
/// transmitting node cannot simultaneously receive, so no intra-round
/// relay chain exists and a sender's knowledge is its start-of-round state.
/// Full-gossip completion is the maximum of the n per-rumor marginals.
struct GossipRumorMarginalParams {
  /// Edge probability the protocol is tuned for (tx prob = 1/(np)).
  double p = 0.0;
  /// Whose rumor the marginal follows.
  NodeId rumor_source = 0;
  /// Round budget factor, as in GossipRandomParams.
  double round_factor = 128.0;
};

class GossipRumorMarginalProtocol final : public sim::Protocol {
 public:
  explicit GossipRumorMarginalProtocol(GossipRumorMarginalParams params);

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  [[nodiscard]] bool sample_transmitters(sim::Round r,
                                         std::vector<NodeId>& out) override;
  /// Deliveries only matter at nodes that do not know the rumor yet.
  [[nodiscard]] std::optional<std::span<const NodeId>> attentive_listeners()
      const override;
  /// Nodes cannot detect collisions; backends may bulk-count them.
  [[nodiscard]] bool collisions_inert() const override { return true; }
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  /// Byzantine relay delivery: the receiver still learns "the rumor" when
  /// the sender knew it, but the copy is recorded as invalid (provenance
  /// propagates along every further relay).
  void on_delivered_corrupted(NodeId receiver, NodeId sender,
                              sim::Round r) override;
  void end_round(sim::Round r) override;
  /// Every in-goal node holds a *valid* copy of the tracked rumor
  /// (== all_informed without an adversary).
  [[nodiscard]] bool is_complete() const override;
  void set_goal_exclusions(std::span<const NodeId> nodes) override {
    state_.exclude_from_goal(nodes);
  }
  [[nodiscard]] std::optional<NodeId> stranded_count() const override {
    return state_.stranded_count();
  }
  [[nodiscard]] std::string name() const override { return "alg2-marginal"; }

  /// ceil(round_factor * d * log2 n): pass to RunOptions::max_rounds.
  [[nodiscard]] sim::Round round_budget() const noexcept { return budget_; }

  /// Nodes currently knowing the tracked rumor.
  [[nodiscard]] NodeId knowers() const noexcept {
    return state_.informed_count();
  }

 private:
  GossipRumorMarginalParams params_;
  Rng rng_;
  NodeId n_ = 0;
  double tx_prob_ = 0.0;
  sim::Round budget_ = 0;
  std::vector<NodeId> everyone_;
  BroadcastState state_;
};

}  // namespace radnet::core
