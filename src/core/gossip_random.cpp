#include "core/gossip_random.hpp"

#include <cmath>
#include <numeric>

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::core {

GossipRandomProtocol::GossipRandomProtocol(GossipRandomParams params)
    : params_(params) {
  RADNET_REQUIRE(params_.p > 0.0 && params_.p <= 1.0, "p must be in (0,1]");
  RADNET_REQUIRE(params_.round_factor > 0.0, "round_factor must be positive");
}

void GossipRandomProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "Algorithm 2 needs n >= 2");
  n_ = num_nodes;
  rng_ = rng;
  d_ = static_cast<double>(n_) * params_.p;
  RADNET_REQUIRE(d_ > 1.0, "Algorithm 2 needs expected degree d = np > 1");
  tx_prob_ = 1.0 / d_;
  budget_ = static_cast<sim::Round>(std::ceil(
      params_.round_factor * d_ * log2d(static_cast<double>(n_))));

  everyone_.resize(n_);
  std::iota(everyone_.begin(), everyone_.end(), NodeId{0});
  rumors_.assign(n_, Bitset(n_));
  for (NodeId v = 0; v < n_; ++v) rumors_[v].set(v);
  known_ = n_;
}

std::span<const NodeId> GossipRandomProtocol::candidates() const {
  return {everyone_.data(), everyone_.size()};
}

bool GossipRandomProtocol::wants_transmit(NodeId /*v*/, sim::Round r) {
  if (r >= budget_) return false;
  return rng_.bernoulli(tx_prob_);
}

bool GossipRandomProtocol::sample_transmitters(sim::Round r,
                                               std::vector<NodeId>& out) {
  if (r >= budget_) return true;  // out stays empty
  // tx_prob_ = 1/d < 1 always (reset enforces d > 1).
  const double inv_log1m = 1.0 / std::log1p(-tx_prob_);
  for (std::uint64_t i = rng_.geometric_inv(inv_log1m) - 1;
       i < everyone_.size(); i += rng_.geometric_inv(inv_log1m))
    out.push_back(everyone_[static_cast<std::size_t>(i)]);
  return true;
}

void GossipRandomProtocol::on_delivered(NodeId receiver, NodeId sender,
                                        sim::Round /*r*/) {
  // Half-duplex semantics (engine default) guarantee the sender received
  // nothing this round, so its current set equals the set it transmitted.
  const std::size_t before = rumors_[receiver].count();
  if (rumors_[receiver].unite(rumors_[sender]))
    known_ += rumors_[receiver].count() - before;
}

bool GossipRandomProtocol::is_complete() const {
  return known_ == static_cast<std::uint64_t>(n_) * n_;
}

std::size_t GossipRandomProtocol::rumors_known(NodeId v) const {
  RADNET_REQUIRE(v < n_, "node out of range");
  return rumors_[v].count();
}

GossipRumorMarginalProtocol::GossipRumorMarginalProtocol(
    GossipRumorMarginalParams params)
    : params_(params) {
  RADNET_REQUIRE(params_.p > 0.0 && params_.p <= 1.0, "p must be in (0,1]");
  RADNET_REQUIRE(params_.round_factor > 0.0, "round_factor must be positive");
}

void GossipRumorMarginalProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "Algorithm 2 needs n >= 2");
  RADNET_REQUIRE(params_.rumor_source < num_nodes, "rumor_source out of range");
  n_ = num_nodes;
  rng_ = rng;
  const double d = static_cast<double>(n_) * params_.p;
  RADNET_REQUIRE(d > 1.0, "Algorithm 2 needs expected degree d = np > 1");
  tx_prob_ = 1.0 / d;
  budget_ = static_cast<sim::Round>(std::ceil(
      params_.round_factor * d * log2d(static_cast<double>(n_))));
  everyone_.resize(n_);
  std::iota(everyone_.begin(), everyone_.end(), NodeId{0});
  state_.reset(n_, params_.rumor_source);
}

std::span<const NodeId> GossipRumorMarginalProtocol::candidates() const {
  return {everyone_.data(), everyone_.size()};
}

bool GossipRumorMarginalProtocol::wants_transmit(NodeId /*v*/, sim::Round r) {
  if (r >= budget_) return false;
  return rng_.bernoulli(tx_prob_);
}

bool GossipRumorMarginalProtocol::sample_transmitters(
    sim::Round r, std::vector<NodeId>& out) {
  if (r >= budget_) return true;  // out stays empty
  // tx_prob_ = 1/d < 1 always (reset enforces d > 1).
  const double inv_log1m = 1.0 / std::log1p(-tx_prob_);
  for (std::uint64_t i = rng_.geometric_inv(inv_log1m) - 1;
       i < everyone_.size(); i += rng_.geometric_inv(inv_log1m))
    out.push_back(everyone_[static_cast<std::size_t>(i)]);
  return true;
}

std::optional<std::span<const NodeId>>
GossipRumorMarginalProtocol::attentive_listeners() const {
  return state_.uninformed();
}

void GossipRumorMarginalProtocol::on_delivered(NodeId receiver, NodeId sender,
                                               sim::Round r) {
  // Half-duplex semantics (engine default) guarantee the sender received
  // nothing this round, so informed(sender) is its transmitted state. The
  // copy inherits the sender's provenance bit.
  if (state_.informed(sender))
    (void)state_.deliver(receiver, r, false,
                         /*copy_valid=*/state_.copy_is_valid(sender));
}

void GossipRumorMarginalProtocol::on_delivered_corrupted(NodeId receiver,
                                                         NodeId sender,
                                                         sim::Round r) {
  // A Byzantine relay corrupts what it forwards; it only has something
  // rumor-shaped to forward once it knows the rumor.
  if (state_.informed(sender))
    (void)state_.deliver(receiver, r, false, /*copy_valid=*/false);
}

void GossipRumorMarginalProtocol::end_round(sim::Round /*r*/) {
  state_.commit();
}

bool GossipRumorMarginalProtocol::is_complete() const {
  return state_.goal_reached();
}

}  // namespace radnet::core
