#include "core/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::core {

namespace {

/// Builds the alpha-shaped weight vector for a given (L, lambda) with or
/// without the 1/(2L) floor, then normalises so the total mass is <= 1,
/// assigning leftover mass to silence.
std::pair<std::vector<double>, double> build_alpha_weights(std::uint32_t L,
                                                           double lambda,
                                                           bool with_floor) {
  RADNET_CHECK(L >= 1, "alpha needs log2 n >= 1");
  RADNET_CHECK(lambda >= 1.0 && lambda <= static_cast<double>(L) + 1e-9,
               "lambda out of [1, log2 n]");
  std::vector<double> w(L, 0.0);
  const double head = 1.0 / (4.0 * lambda);
  const double floor = with_floor ? 1.0 / (2.0 * static_cast<double>(L)) : 0.0;
  for (std::uint32_t k = 1; k <= L; ++k) {
    // The 1/(2 log n) floor applies over the whole support — the paper's
    // "forall 1 <= k <= log n: alpha_k >= 1/(2 log n)". When lambda >
    // log(n)/2 the floor exceeds the paper's 1/(4 lambda) cap; the floor
    // wins because the w.h.p. delivery argument (Theorem 4.1's
    // 1/(20 log n) per-round success probability) depends on it.
    // For fractional lambda the first tail value 2^{-(k-lambda)}/(2 lambda)
    // with k in (lambda, lambda+1) would exceed the 1/(4 lambda) cap; clamp
    // it (integer-lambda values are unaffected: 2^{-j} <= 1/2 for j >= 1).
    const double shape =
        static_cast<double>(k) <= lambda
            ? head
            : std::min(head, std::exp2(-(static_cast<double>(k) - lambda)) /
                                 (2.0 * lambda));
    w[k - 1] = std::max(shape, floor);
  }
  double total = 0.0;
  for (const double v : w) total += v;
  if (total > 1.0) {
    for (double& v : w) v /= total;
    total = 1.0;
  }
  return {std::move(w), 1.0 - total};
}

}  // namespace

SequenceDistribution::SequenceDistribution(std::string name, double lambda,
                                           std::vector<double> probs,
                                           double silence)
    : name_(std::move(name)),
      lambda_(lambda),
      max_k_(static_cast<std::uint32_t>(probs.size())),
      probs_(std::move(probs)),
      silence_(silence) {
  RADNET_CHECK(!probs_.empty(), "empty distribution");
  cdf_.resize(probs_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    RADNET_CHECK(probs_[i] >= 0.0, "negative probability");
    acc += probs_[i];
    cdf_[i] = acc;
  }
  RADNET_CHECK(acc <= 1.0 + 1e-9, "distribution mass exceeds 1");
  RADNET_CHECK(std::abs(acc + silence_ - 1.0) < 1e-6,
               "probabilities and silence must sum to 1");
}

SequenceDistribution SequenceDistribution::alpha(std::uint64_t n,
                                                 std::uint64_t diameter) {
  RADNET_REQUIRE(n >= 4, "alpha needs n >= 4");
  RADNET_REQUIRE(diameter >= 1 && diameter <= n, "diameter must be in [1, n]");
  const double lambda = lambda_of(n, diameter);
  const std::uint32_t L = ilog2_ceil(n);
  auto [w, silence] = build_alpha_weights(L, lambda, /*with_floor=*/true);
  return SequenceDistribution("alpha(n=" + std::to_string(n) +
                                  ",D=" + std::to_string(diameter) + ")",
                              lambda, std::move(w), silence);
}

SequenceDistribution SequenceDistribution::alpha_with_lambda(std::uint64_t n,
                                                             double lambda) {
  RADNET_REQUIRE(n >= 4, "alpha_with_lambda needs n >= 4");
  const std::uint32_t L = ilog2_ceil(n);
  const double clamped = std::clamp(lambda, 1.0, static_cast<double>(L));
  auto [w, silence] = build_alpha_weights(L, clamped, /*with_floor=*/true);
  return SequenceDistribution("alpha(n=" + std::to_string(n) + ",lambda=" +
                                  std::to_string(clamped) + ")",
                              clamped, std::move(w), silence);
}

SequenceDistribution SequenceDistribution::alpha_prime(std::uint64_t n,
                                                       std::uint64_t diameter) {
  RADNET_REQUIRE(n >= 4, "alpha_prime needs n >= 4");
  RADNET_REQUIRE(diameter >= 1 && diameter <= n, "diameter must be in [1, n]");
  const double lambda = lambda_of(n, diameter);
  const std::uint32_t L = ilog2_ceil(n);
  auto [w, silence] = build_alpha_weights(L, lambda, /*with_floor=*/false);
  return SequenceDistribution("alpha_prime(n=" + std::to_string(n) +
                                  ",D=" + std::to_string(diameter) + ")",
                              lambda, std::move(w), silence);
}

SequenceDistribution SequenceDistribution::uniform(std::uint64_t n) {
  RADNET_REQUIRE(n >= 4, "uniform needs n >= 4");
  const std::uint32_t L = ilog2_ceil(n);
  std::vector<double> w(L, 1.0 / static_cast<double>(L));
  return SequenceDistribution("uniform(n=" + std::to_string(n) + ")",
                              static_cast<double>(L), std::move(w), 0.0);
}

SequenceDistribution SequenceDistribution::point(std::uint64_t n,
                                                 std::uint32_t k) {
  RADNET_REQUIRE(n >= 4, "point needs n >= 4");
  const std::uint32_t L = ilog2_ceil(n);
  RADNET_REQUIRE(k >= 1 && k <= L, "point k must be in [1, log2 n]");
  std::vector<double> w(L, 0.0);
  w[k - 1] = 1.0;
  return SequenceDistribution(
      "point(n=" + std::to_string(n) + ",k=" + std::to_string(k) + ")",
      static_cast<double>(k), std::move(w), 0.0);
}

double SequenceDistribution::prob(std::uint32_t k) const {
  if (k < 1 || k > max_k_) return 0.0;
  return probs_[k - 1];
}

double SequenceDistribution::expected_tx_prob() const {
  double e = 0.0;
  for (std::uint32_t k = 1; k <= max_k_; ++k) e += probs_[k - 1] * pow2_neg(k);
  return e;
}

std::optional<std::uint32_t> SequenceDistribution::sample(Rng& rng) const {
  const std::uint64_t miss = max_k_;  // sentinel index == size
  const std::uint64_t idx = rng.sample_cdf(cdf_.data(), cdf_.size(), miss);
  if (idx == miss) return std::nullopt;
  return static_cast<std::uint32_t>(idx + 1);
}

}  // namespace radnet::core
