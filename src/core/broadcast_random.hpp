// Algorithm 1 — the energy-efficient broadcast for random networks (§2).
//
// Three phases over a G(n,p) network with expected degree d = np:
//
//   Phase 1 (rounds 0 .. T-1, T = floor(log n / log d)):
//     every active node transmits (probability 1) and becomes passive;
//     a node receiving the message for the first time becomes active.
//     Active sets grow by a factor Theta(d) per round (Lemma 2.3), reaching
//     Theta(d^T) nodes (Lemma 2.4).
//
//   Phase 2 (one round, only when p <= n^{-2/5}):
//     every active node transmits with probability 1/(d^T p) and, if it
//     transmitted, becomes passive. Informs Theta(n) nodes (Lemma 2.5).
//
//   Phase 3 (Theta(log n) rounds):
//     every active node transmits with probability 1/d (or 1/(dp) when
//     p > n^{-2/5}) and becomes passive after transmitting. Mops up the
//     remaining uninformed nodes (Lemma 2.6).
//
// The headline property (Theorem 2.1): O(log n) rounds w.h.p., **at most one
// transmission per node** (nodes become passive exactly when they transmit),
// and O(log n / p) total transmissions in expectation.
//
// "Becomes passive" is implemented as passive-after-transmitting in every
// phase; in Phase 1 transmission is certain so the two readings coincide,
// and in Phases 2/3 the analysis (Observation 2.2(3), Lemma 2.6's remark
// that active nodes persist) requires nodes that did not transmit to stay
// active. Nodes first informed *during Phase 3* never become active — the
// pseudocode's Phase 3 has no activation clause — which is what caps the
// total transmissions at O(log n / p). Both facts are asserted by the
// property tests over every seed.
//
// Finite-size note: the dense branch (p > n^{-2/5}, Phase-3 probability
// 1/(dp)) is proven for n -> infinity, where each uninformed node has
// dp = np^2 >> log n active neighbours. At laptop scales np^2 >> log n only
// holds well above the threshold (e.g. p >= 0.2), so completion probability
// degrades in the crossover band p ~ n^{-2/5}; the benches report this
// honestly via their success-rate column (see EXPERIMENTS.md).
//
// Topology note: because every node transmits at most once, no ordered
// pair of nodes is ever examined twice, so running this protocol on the
// implicit G(n,p) backend (sim/topology.hpp) is *exactly* distributed as a
// run on a materialised G(n,p) graph — the backend of choice for large-n
// sweeps (asserted by tests/sim/topology_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "core/broadcast_state.hpp"
#include "sim/protocol.hpp"

namespace radnet::core {

struct BroadcastRandomParams {
  /// Edge probability of the G(n,p) the protocol is tuned for. Nodes know
  /// n and p (the paper's model: the network class is known, the topology
  /// is not).
  double p = 0.0;
  /// Broadcast originator.
  NodeId source = 0;
  /// Phase 3 runs for ceil(phase3_factor * log2 n) rounds. The paper's
  /// proof constant is enormous (128/c with c from Lemma 2.5); empirically
  /// single digits suffice, and the engine stops at completion anyway.
  double phase3_factor = 32.0;

  // --- ablation switches (defaults = the paper's algorithm) --------------
  // Used by bench_a1_ablation to price each design decision; see DESIGN.md.

  /// Ablation: disable the Phase-2 boost round even in the sparse regime.
  bool enable_phase2 = true;
  /// Ablation: activate nodes first informed during Phase 3 (the paper
  /// deliberately does NOT — this is what caps total energy at
  /// O(log n / p); turning it on shows the cost).
  bool phase3_activation = false;
  /// Ablation: Phase-1 nodes transmit in *every* Phase-1 round instead of
  /// going passive after one shot — the Elsässer–Gasieniec behaviour that
  /// Algorithm 1 improves on.
  bool phase1_repeat = false;
};

class BroadcastRandomProtocol final : public sim::Protocol {
 public:
  explicit BroadcastRandomProtocol(BroadcastRandomParams params);

  void reset(NodeId num_nodes, Rng rng) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  /// Bulk path: every phase is "transmit independently with a common
  /// probability, passive iff transmitted", so the transmitter subset is
  /// skip-sampled in O(transmitters) instead of one coin flip per active
  /// node — this is what keeps sparse Phase-3 tail rounds cheap at n ~ 10^7.
  [[nodiscard]] bool sample_transmitters(sim::Round r,
                                         std::vector<NodeId>& out) override;
  /// Only uninformed nodes react to deliveries (informed nodes ignore
  /// repeats and collisions are ignored everywhere), so sampling backends
  /// may account for every other listener in aggregate.
  [[nodiscard]] std::optional<std::span<const NodeId>> attentive_listeners()
      const override {
    return state_.uninformed();
  }
  /// The paper's nodes cannot detect collisions; backends may bulk-count
  /// them (block-mergeable sink aggregation).
  [[nodiscard]] bool collisions_inert() const override { return true; }
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  /// Byzantine relay delivery: same behaviour, but the copy is recorded as
  /// invalid and the corruption propagates along every further relay.
  void on_delivered_corrupted(NodeId receiver, NodeId sender,
                              sim::Round r) override;
  void end_round(sim::Round r) override;
  /// Every in-goal node holds a *valid* copy (== all_informed without an
  /// adversary; see core/broadcast_state.hpp).
  [[nodiscard]] bool is_complete() const override;
  void set_goal_exclusions(std::span<const NodeId> nodes) override {
    state_.exclude_from_goal(nodes);
  }
  [[nodiscard]] std::optional<NodeId> stranded_count() const override {
    return state_.stranded_count();
  }
  [[nodiscard]] std::string name() const override;

  // --- introspection for experiments (E2/E3) -------------------------------

  /// T = floor(log n / log d): the number of Phase-1 rounds.
  [[nodiscard]] sim::Round phase1_end() const noexcept { return t_; }
  /// True iff the p <= n^{-2/5} regime applies and Phase 2 runs.
  [[nodiscard]] bool has_phase2() const noexcept { return use_phase2_; }
  /// First round of Phase 3.
  [[nodiscard]] sim::Round phase3_begin() const noexcept {
    return t_ + (use_phase2_ ? 1u : 0u);
  }
  /// Rounds after which the protocol gives up transmitting entirely; use as
  /// the engine's max_rounds.
  [[nodiscard]] sim::Round round_budget() const noexcept {
    return phase3_begin() + phase3_len_;
  }
  [[nodiscard]] NodeId informed_count() const noexcept {
    return state_.informed_count();
  }
  [[nodiscard]] NodeId active_count() const noexcept {
    return state_.active_count();
  }
  [[nodiscard]] double degree() const noexcept { return d_; }

 private:
  BroadcastRandomParams params_;
  Rng rng_;
  BroadcastState state_;
  NodeId n_ = 0;
  double d_ = 0.0;          // np
  sim::Round t_ = 0;        // T = floor(log n / log d)
  bool use_phase2_ = false; // p <= n^{-2/5}
  double phase2_prob_ = 0.0;
  double phase3_prob_ = 0.0;
  sim::Round phase3_len_ = 0;
};

}  // namespace radnet::core
