#include "core/broadcast_random.hpp"

#include <algorithm>
#include <cmath>

#include "support/math.hpp"
#include "support/require.hpp"

namespace radnet::core {

BroadcastRandomProtocol::BroadcastRandomProtocol(BroadcastRandomParams params)
    : params_(params) {
  RADNET_REQUIRE(params_.p > 0.0 && params_.p <= 1.0, "p must be in (0,1]");
  RADNET_REQUIRE(params_.phase3_factor > 0.0, "phase3_factor must be positive");
}

void BroadcastRandomProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "Algorithm 1 needs n >= 2");
  n_ = num_nodes;
  rng_ = rng;
  d_ = static_cast<double>(n_) * params_.p;
  RADNET_REQUIRE(d_ > 1.0, "Algorithm 1 needs expected degree d = np > 1");
  RADNET_REQUIRE(params_.source < n_, "source out of range");

  t_ = phase1_rounds(n_, d_);
  use_phase2_ = params_.enable_phase2 &&
                params_.p <= std::pow(static_cast<double>(n_), -0.4);
  // Phase 2 probability 1/(d^T p); clamp into (0, 1].
  const double dT = std::pow(d_, static_cast<double>(t_));
  phase2_prob_ = std::min(1.0, 1.0 / (dT * params_.p));
  // Phase 3 probability 1/d in the sparse regime, 1/(dp) in the dense one.
  phase3_prob_ = use_phase2_ ? 1.0 / d_ : std::min(1.0, 1.0 / (d_ * params_.p));
  phase3_len_ = static_cast<sim::Round>(
      std::ceil(params_.phase3_factor * log2d(static_cast<double>(n_))));

  state_.reset(n_, params_.source);
}

std::span<const NodeId> BroadcastRandomProtocol::candidates() const {
  return state_.active();
}

bool BroadcastRandomProtocol::wants_transmit(NodeId v, sim::Round r) {
  if (r < t_) {
    // Phase 1: certain transmission, then passive (unless the ablation
    // keeps nodes shouting through all of Phase 1, EG-style).
    if (!params_.phase1_repeat) state_.deactivate(v);
    return true;
  }
  if (use_phase2_ && r == t_) {
    // Phase 2: one shot with probability 1/(d^T p); passive iff transmitted.
    if (rng_.bernoulli(phase2_prob_)) {
      state_.deactivate(v);
      return true;
    }
    return false;
  }
  if (r >= round_budget()) {  // budget exhausted: go passive for good
    state_.deactivate(v);
    return false;
  }
  // Phase 3: probability 1/d (or 1/(dp)); passive iff transmitted.
  if (rng_.bernoulli(phase3_prob_)) {
    state_.deactivate(v);
    return true;
  }
  return false;
}

bool BroadcastRandomProtocol::sample_transmitters(sim::Round r,
                                                  std::vector<NodeId>& out) {
  const std::span<const NodeId> active = state_.active();
  // Resolve the round's common transmit probability; mirrors wants_transmit
  // exactly (the per-node path remains the reference semantics).
  double prob;
  bool deactivate_on_tx = true;
  if (r < t_) {
    prob = 1.0;
    deactivate_on_tx = !params_.phase1_repeat;
  } else if (use_phase2_ && r == t_) {
    prob = phase2_prob_;
  } else if (r >= round_budget()) {
    // Budget exhausted: everyone goes passive for good, nobody transmits.
    for (const NodeId v : active) state_.deactivate(v);
    return true;
  } else {
    prob = phase3_prob_;
  }

  if (prob >= 1.0) {
    for (const NodeId v : active) {
      if (deactivate_on_tx) state_.deactivate(v);
      out.push_back(v);
    }
    return true;
  }
  // Independent Bernoulli(prob) per active node == geometric skip-sampling
  // of the active list: O(transmitters) instead of O(active) coin flips.
  const double inv_log1m = 1.0 / std::log1p(-prob);
  for (std::uint64_t i = rng_.geometric_inv(inv_log1m) - 1; i < active.size();
       i += rng_.geometric_inv(inv_log1m)) {
    const NodeId v = active[static_cast<std::size_t>(i)];
    state_.deactivate(v);
    out.push_back(v);
  }
  return true;
}

void BroadcastRandomProtocol::on_delivered(NodeId receiver, NodeId sender,
                                           sim::Round r) {
  // Activation clauses exist only in Phases 1 and 2 of the paper's
  // pseudocode: a node first reached during Phase 3 is informed but never
  // becomes active (it will never transmit). The copy inherits the
  // sender's provenance: an honest relay of a corrupted copy stays
  // corrupted.
  const bool in_phase3 = r >= phase3_begin();
  state_.deliver(receiver, r,
                 /*activate=*/!in_phase3 || params_.phase3_activation,
                 /*copy_valid=*/state_.copy_is_valid(sender));
}

void BroadcastRandomProtocol::on_delivered_corrupted(NodeId receiver,
                                                     NodeId /*sender*/,
                                                     sim::Round r) {
  // Byzantine sender: identical node behaviour, invalid provenance.
  const bool in_phase3 = r >= phase3_begin();
  state_.deliver(receiver, r,
                 /*activate=*/!in_phase3 || params_.phase3_activation,
                 /*copy_valid=*/false);
}

void BroadcastRandomProtocol::end_round(sim::Round /*r*/) { state_.commit(); }

bool BroadcastRandomProtocol::is_complete() const {
  return state_.goal_reached();
}

std::string BroadcastRandomProtocol::name() const {
  std::string n = "alg1";
  if (!params_.enable_phase2) n += "[-phase2]";
  if (params_.phase3_activation) n += "[+p3act]";
  if (params_.phase1_repeat) n += "[+p1rep]";
  return n;
}

}  // namespace radnet::core
