// Shared informed/active bookkeeping for broadcast-style protocols.
//
// All the paper's broadcast algorithms share the same node life-cycle:
// uninformed -> informed+active -> passive. This helper maintains the
// informed flags, the time a node was informed (the paper's t_u), and the
// candidate list handed to the engine, with *deferred* mutation so the
// candidate span stays valid for the whole round:
//   - activations requested during on_delivered take effect next round,
//   - deactivations requested during wants_transmit take effect next round
//     (the node still transmitted its current message this round).
// Call commit() from the protocol's end_round.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/protocol.hpp"

namespace radnet::core {

using graph::NodeId;
using sim::Round;

class BroadcastState {
 public:
  /// Resets for n nodes with `source` informed (at time 0) and active.
  void reset(NodeId n, NodeId source);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] bool informed(NodeId v) const { return informed_[v] != 0; }
  [[nodiscard]] NodeId informed_count() const noexcept { return informed_count_; }
  [[nodiscard]] bool all_informed() const noexcept { return informed_count_ == n_; }

  /// The paper's t_u: 0 for the source, r+1 for a node first reached in
  /// engine round r (it participates from the following round on).
  [[nodiscard]] Round informed_time(NodeId v) const { return informed_time_[v]; }

  /// Current candidate set (active nodes), stable within a round.
  [[nodiscard]] std::span<const NodeId> active() const noexcept {
    return {active_.data(), active_.size()};
  }
  [[nodiscard]] NodeId active_count() const noexcept {
    return static_cast<NodeId>(active_.size());
  }

  /// Nodes not yet informed, in a deterministic (but unspecified) order.
  /// Stable within a round: removals are deferred to commit(), matching the
  /// contract of Protocol::attentive_listeners — these are the only nodes
  /// whose delivery callbacks still change protocol state.
  [[nodiscard]] std::span<const NodeId> uninformed() const noexcept {
    return {uninformed_.data(), uninformed_.size()};
  }

  /// Marks v informed (if new) and, when `activate` is true, schedules
  /// activation for the next round. Algorithm 1's Phase 3 passes
  /// activate = false: its pseudocode has no activation clause, so nodes
  /// informed there never transmit — the source of the O(log n / p) total-
  /// transmission bound. Returns true iff v was newly informed.
  bool deliver(NodeId v, Round round, bool activate = true);

  /// Schedules v's removal from the active set at end of round.
  void deactivate(NodeId v);

  /// Applies deferred activations/deactivations. Call from end_round.
  void commit();

 private:
  NodeId n_ = 0;
  NodeId informed_count_ = 0;
  std::vector<std::uint8_t> informed_;
  std::vector<std::uint8_t> deactivated_;  // pending removal flags
  std::vector<Round> informed_time_;
  std::vector<NodeId> active_;
  std::vector<NodeId> pending_active_;
  // Uninformed set with O(1) swap-removal; removals deferred to commit()
  // so the uninformed() span stays valid across a whole round.
  std::vector<NodeId> uninformed_;
  std::vector<NodeId> uninformed_pos_;  // position of v in uninformed_
  std::vector<NodeId> newly_informed_;
  bool has_deactivations_ = false;
};

}  // namespace radnet::core
