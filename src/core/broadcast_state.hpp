// Shared informed/active bookkeeping for broadcast-style protocols.
//
// All the paper's broadcast algorithms share the same node life-cycle:
// uninformed -> informed+active -> passive. This helper maintains the
// informed flags, the time a node was informed (the paper's t_u), and the
// candidate list handed to the engine, with *deferred* mutation so the
// candidate span stays valid for the whole round:
//   - activations requested during on_delivered take effect next round,
//   - deactivations requested during wants_transmit take effect next round
//     (the node still transmitted its current message this round).
// Call commit() from the protocol's end_round.
//
// Adversary support (sim/adversary.hpp): alongside the informed flags the
// state keeps one per-copy *provenance* bit — valid iff the copy descends
// from the source through honest relays only. deliver() takes the copy's
// validity (callers pass copy_is_valid(sender), and false for deliveries
// routed through on_delivered_corrupted); a node first informed by a
// corrupted copy is informed-but-invalid, behaves identically (it cannot
// authenticate the message, so it stops listening and relays the
// corruption onward), and never upgrades. exclude_from_goal() shrinks the
// measured goal (jammers can never hold any copy); goal_reached() — "every
// non-excluded node holds a valid copy" — is what adversary-aware
// protocols return from is_complete. Without an adversary every copy is
// valid and nothing is excluded, so goal_reached() == all_informed() and
// the bookkeeping is inert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/protocol.hpp"

namespace radnet::core {

using graph::NodeId;
using sim::Round;

class BroadcastState {
 public:
  /// Resets for n nodes with `source` informed (at time 0) and active.
  void reset(NodeId n, NodeId source);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] bool informed(NodeId v) const { return informed_[v] != 0; }
  [[nodiscard]] NodeId informed_count() const noexcept { return informed_count_; }
  [[nodiscard]] bool all_informed() const noexcept { return informed_count_ == n_; }

  /// The paper's t_u: 0 for the source, r+1 for a node first reached in
  /// engine round r (it participates from the following round on).
  [[nodiscard]] Round informed_time(NodeId v) const { return informed_time_[v]; }

  /// Current candidate set (active nodes), stable within a round.
  [[nodiscard]] std::span<const NodeId> active() const noexcept {
    return {active_.data(), active_.size()};
  }
  [[nodiscard]] NodeId active_count() const noexcept {
    return static_cast<NodeId>(active_.size());
  }

  /// Nodes not yet informed, in a deterministic (but unspecified) order.
  /// Stable within a round: removals are deferred to commit(), matching the
  /// contract of Protocol::attentive_listeners — these are the only nodes
  /// whose delivery callbacks still change protocol state.
  [[nodiscard]] std::span<const NodeId> uninformed() const noexcept {
    return {uninformed_.data(), uninformed_.size()};
  }

  /// Marks v informed (if new) and, when `activate` is true, schedules
  /// activation for the next round. Algorithm 1's Phase 3 passes
  /// activate = false: its pseudocode has no activation clause, so nodes
  /// informed there never transmit — the source of the O(log n / p) total-
  /// transmission bound. `copy_valid` is the provenance bit of the copy
  /// that arrived (pass copy_is_valid(sender); false when the delivery was
  /// routed through on_delivered_corrupted). Returns true iff v was newly
  /// informed.
  bool deliver(NodeId v, Round round, bool activate = true,
               bool copy_valid = true);

  /// Provenance bit of v's copy: true iff v holds the genuine content
  /// (the source starts valid; relays preserve validity, Byzantine relays
  /// destroy it). False for uninformed nodes.
  [[nodiscard]] bool copy_is_valid(NodeId v) const { return valid_[v] != 0; }

  /// Non-excluded nodes holding valid copies.
  [[nodiscard]] NodeId valid_count() const noexcept { return valid_count_; }

  /// Removes `nodes` from the measured goal (e.g. jammers, which can never
  /// receive). Purely measurement — their informed/valid state keeps being
  /// tracked, it just stops counting toward goal_reached().
  void exclude_from_goal(std::span<const NodeId> nodes);

  /// Every non-excluded node holds a valid copy — the adversary-aware
  /// completion predicate. Equals all_informed() when no adversary acted.
  [[nodiscard]] bool goal_reached() const noexcept {
    return valid_count_ == n_ - excluded_count_;
  }

  /// Non-excluded nodes still lacking a valid copy (the robustness curves'
  /// stranded count).
  [[nodiscard]] NodeId stranded_count() const noexcept {
    return n_ - excluded_count_ - valid_count_;
  }

  /// Schedules v's removal from the active set at end of round.
  void deactivate(NodeId v);

  /// Applies deferred activations/deactivations. Call from end_round.
  void commit();

 private:
  NodeId n_ = 0;
  NodeId informed_count_ = 0;
  NodeId valid_count_ = 0;     // valid copies held by non-excluded nodes
  NodeId excluded_count_ = 0;  // nodes outside the measured goal
  std::vector<std::uint8_t> informed_;
  std::vector<std::uint8_t> valid_;     // per-copy provenance bits
  std::vector<std::uint8_t> excluded_;  // goal-exclusion flags
  std::vector<std::uint8_t> deactivated_;  // pending removal flags
  std::vector<Round> informed_time_;
  std::vector<NodeId> active_;
  std::vector<NodeId> pending_active_;
  // Uninformed set with O(1) swap-removal; removals deferred to commit()
  // so the uninformed() span stays valid across a whole round.
  std::vector<NodeId> uninformed_;
  std::vector<NodeId> uninformed_pos_;  // position of v in uninformed_
  std::vector<NodeId> newly_informed_;
  bool has_deactivations_ = false;
};

}  // namespace radnet::core
