#include "core/dynamic_gossip.hpp"

#include <numeric>

#include "support/require.hpp"

namespace radnet::core {

DynamicGossipProtocol::DynamicGossipProtocol(DynamicGossipParams params)
    : params_(params) {
  RADNET_REQUIRE(params_.p > 0.0 && params_.p <= 1.0, "p must be in (0,1]");
  RADNET_REQUIRE(params_.regen_interval >= 1, "regen_interval must be >= 1");
}

void DynamicGossipProtocol::reset(NodeId num_nodes, Rng rng) {
  RADNET_REQUIRE(num_nodes >= 2, "dynamic gossip needs n >= 2");
  n_ = num_nodes;
  rng_ = rng;
  const double d = static_cast<double>(n_) * params_.p;
  RADNET_REQUIRE(d > 1.0, "dynamic gossip needs expected degree d = np > 1");
  tx_prob_ = 1.0 / d;
  everyone_.resize(n_);
  std::iota(everyone_.begin(), everyone_.end(), NodeId{0});
  ages_.assign(static_cast<std::size_t>(n_) * n_, kNever);
  for (NodeId v = 0; v < n_; ++v)
    ages_[static_cast<std::size_t>(v) * n_ + v] = 0;  // own rumor, fresh
}

void DynamicGossipProtocol::begin_round(sim::Round r) {
  // Everything held ages by one round; over-ttl copies die; own rumor
  // refreshes on its regeneration schedule.
  for (auto& a : ages_)
    if (a != kNever) ++a;
  if (params_.ttl != 0) {
    for (auto& a : ages_)
      if (a != kNever && a > params_.ttl) a = kNever;
  }
  if (r % params_.regen_interval == 0) {
    for (NodeId v = 0; v < n_; ++v)
      ages_[static_cast<std::size_t>(v) * n_ + v] = 0;
  }
}

std::span<const NodeId> DynamicGossipProtocol::candidates() const {
  return {everyone_.data(), everyone_.size()};
}

bool DynamicGossipProtocol::wants_transmit(NodeId /*v*/, sim::Round /*r*/) {
  return rng_.bernoulli(tx_prob_);
}

void DynamicGossipProtocol::on_delivered(NodeId receiver, NodeId sender,
                                         sim::Round /*r*/) {
  // Join: keep the fresher copy of every rumor. Under half-duplex the
  // sender's row is exactly what it transmitted this round.
  const std::size_t rcv = static_cast<std::size_t>(receiver) * n_;
  const std::size_t snd = static_cast<std::size_t>(sender) * n_;
  for (NodeId u = 0; u < n_; ++u)
    ages_[rcv + u] = std::min(ages_[rcv + u], ages_[snd + u]);
}

void DynamicGossipProtocol::end_round(sim::Round /*r*/) {}

std::uint32_t DynamicGossipProtocol::age(NodeId v, NodeId u) const {
  RADNET_REQUIRE(v < n_ && u < n_, "age query out of range");
  return ages_[static_cast<std::size_t>(v) * n_ + u];
}

double DynamicGossipProtocol::coverage() const {
  std::size_t live = 0;
  for (const auto a : ages_) live += (a != kNever) ? 1 : 0;
  return static_cast<double>(live) /
         static_cast<double>(static_cast<std::size_t>(n_) * n_);
}

DynamicGossipProtocol::Staleness DynamicGossipProtocol::staleness() const {
  Staleness s;
  std::size_t live = 0;
  double sum = 0.0;
  for (const auto a : ages_) {
    if (a == kNever) continue;
    ++live;
    sum += a;
    s.max = std::max(s.max, a);
  }
  if (live > 0) s.mean = sum / static_cast<double>(live);
  return s;
}

}  // namespace radnet::core
