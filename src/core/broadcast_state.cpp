#include "core/broadcast_state.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace radnet::core {

void BroadcastState::reset(NodeId n, NodeId source) {
  RADNET_REQUIRE(n >= 1, "BroadcastState needs n >= 1");
  RADNET_REQUIRE(source < n, "source out of range");
  n_ = n;
  informed_.assign(n, 0);
  deactivated_.assign(n, 0);
  informed_time_.assign(n, 0);
  active_.clear();
  pending_active_.clear();
  has_deactivations_ = false;
  valid_.assign(n, 0);
  excluded_.assign(n, 0);
  excluded_count_ = 0;
  informed_[source] = 1;
  informed_count_ = 1;
  valid_[source] = 1;  // the source holds the genuine content by definition
  valid_count_ = 1;
  informed_time_[source] = 0;
  active_.push_back(source);

  uninformed_.clear();
  uninformed_.reserve(n - 1);
  uninformed_pos_.assign(n, 0);
  newly_informed_.clear();
  for (NodeId v = 0; v < n; ++v) {
    if (v == source) continue;
    uninformed_pos_[v] = static_cast<NodeId>(uninformed_.size());
    uninformed_.push_back(v);
  }
}

bool BroadcastState::deliver(NodeId v, Round round, bool activate,
                             bool copy_valid) {
  RADNET_REQUIRE(v < n_, "deliver out of range");
  if (informed_[v]) return false;  // repeats ignored: an informed-invalid
                                   // node never upgrades (it stopped caring)
  informed_[v] = 1;
  ++informed_count_;
  if (copy_valid) {
    valid_[v] = 1;
    if (!excluded_[v]) ++valid_count_;
  }
  informed_time_[v] = round + 1;
  newly_informed_.push_back(v);
  if (activate) pending_active_.push_back(v);
  return true;
}

void BroadcastState::exclude_from_goal(std::span<const NodeId> nodes) {
  for (const NodeId v : nodes) {
    RADNET_REQUIRE(v < n_, "goal exclusion out of range");
    if (excluded_[v]) continue;
    excluded_[v] = 1;
    ++excluded_count_;
    if (valid_[v]) --valid_count_;
  }
}

void BroadcastState::deactivate(NodeId v) {
  RADNET_REQUIRE(v < n_, "deactivate out of range");
  deactivated_[v] = 1;
  has_deactivations_ = true;
}

void BroadcastState::commit() {
  if (has_deactivations_) {
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [this](NodeId v) { return deactivated_[v] != 0; }),
                  active_.end());
    has_deactivations_ = false;
  }
  for (const NodeId v : pending_active_)
    if (!deactivated_[v]) active_.push_back(v);
  pending_active_.clear();
  for (const NodeId v : newly_informed_) {
    const NodeId pos = uninformed_pos_[v];
    const NodeId last = uninformed_.back();
    uninformed_[pos] = last;
    uninformed_pos_[last] = pos;
    uninformed_.pop_back();
  }
  newly_informed_.clear();
}

}  // namespace radnet::core
