// Dynamic gossip with timestamps — Section 3's remark, made concrete.
//
// "It is easy to see that the algorithm can be transformed into a dynamic
//  gossiping algorithm. All that has to be done is to provide every message
//  with a time stamp (generation time), and to delete old messages out of
//  the m_t(i) messages."
//
// Every node continuously regenerates its own rumor (a position fix, a
// sensor reading) every `regen_interval` rounds, transmits with probability
// 1/d exactly as Algorithm 2, joins incoming rumor sets, and discards copies
// older than `ttl` rounds. There is no completion; the quality metric is
// *staleness*: how old is the freshest copy node v holds of node u's rumor.
// On a stationary-G(n,p) churn topology, staleness stays bounded around the
// static gossip time O(d log n) — the E14 bench measures exactly that.
//
// State is an n x n age matrix (age of the freshest copy v holds of u's
// rumor; kNever if none fresh enough). Memory n^2 * 4 bytes — fine for the
// n <= 2^10 dynamic experiments.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/protocol.hpp"

namespace radnet::core {

using graph::NodeId;

struct DynamicGossipParams {
  /// Edge probability the transmit rate is tuned for (tx prob = 1/(np)).
  double p = 0.0;
  /// Every node refreshes its own rumor each `regen_interval` rounds.
  sim::Round regen_interval = 1;
  /// Copies older than ttl rounds are dropped (0 = never drop).
  sim::Round ttl = 0;
};

class DynamicGossipProtocol final : public sim::Protocol {
 public:
  static constexpr std::uint32_t kNever =
      std::numeric_limits<std::uint32_t>::max();

  explicit DynamicGossipProtocol(DynamicGossipParams params);

  void reset(NodeId num_nodes, Rng rng) override;
  void begin_round(sim::Round r) override;
  [[nodiscard]] std::span<const NodeId> candidates() const override;
  [[nodiscard]] bool wants_transmit(NodeId v, sim::Round r) override;
  void on_delivered(NodeId receiver, NodeId sender, sim::Round r) override;
  void end_round(sim::Round r) override;
  /// Never completes: dynamic gossip is a continuous service. Run it for a
  /// fixed horizon and read the staleness metrics.
  [[nodiscard]] bool is_complete() const override { return false; }
  [[nodiscard]] std::string name() const override { return "dynamic-gossip"; }

  /// Age (rounds) of the freshest copy of u's rumor held by v; kNever if v
  /// holds none (or it exceeded ttl).
  [[nodiscard]] std::uint32_t age(NodeId v, NodeId u) const;

  /// Fraction of (v, u) pairs with a live copy.
  [[nodiscard]] double coverage() const;

  /// Mean and max age over live pairs (0 if none).
  struct Staleness {
    double mean = 0.0;
    std::uint32_t max = 0;
  };
  [[nodiscard]] Staleness staleness() const;

 private:
  DynamicGossipParams params_;
  Rng rng_;
  NodeId n_ = 0;
  double tx_prob_ = 0.0;
  std::vector<NodeId> everyone_;
  // ages_[v * n + u]: age of v's copy of u's rumor.
  std::vector<std::uint32_t> ages_;
};

}  // namespace radnet::core
