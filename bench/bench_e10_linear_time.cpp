// E10 — Corollary 4.5: setting D = Theta(n) in the Theorem 4.4 network,
// any oblivious schedule finishing in cn rounds w.h.p. needs Omega(log^2 n)
// transmissions per node. We run time-invariant alpha(lambda-hat) schedules
// under a c*D deadline on a long-path instance and report the energy of the
// configurations that succeed.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "core/broadcast_general.hpp"
#include "graph/lower_bound_nets.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::graph::Digraph;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E10 (Corollary 4.5)",
      "Linear-time broadcast (D = Theta(n)) requires Omega(log^2 n) "
      "transmissions per node for any oblivious schedule.");

  const std::uint32_t trials = env.trials(16);
  const auto n_param = static_cast<radnet::graph::NodeId>(64);  // L = 6
  const std::uint64_t D = env.scaled(256, 16);                  // D >> 2L
  const auto net = radnet::graph::thm44_network(n_param, D);
  const std::uint64_t n = net.graph.num_nodes();
  const double log2n = std::log2(static_cast<double>(n_param));
  const auto deadline =
      static_cast<radnet::sim::Round>(8.0 * static_cast<double>(D));

  Table t({"lambda-hat", "success@8D", "rounds", "tx/node", "tx/log2n^2"});
  t.set_caption("E10: D=" + std::to_string(D) + " (~linear), deadline=" +
                std::to_string(deadline) + " rounds, " +
                std::to_string(trials) + " trials/row");

  for (const double lambda_hat : {1.0, 2.0, 4.0, 6.0}) {
    const auto dist =
        radnet::core::SequenceDistribution::alpha_with_lambda(n, lambda_hat);
    radnet::harness::McSpec spec;
    spec.trials = trials;
    spec.seed = env.seed + 11;
    spec.make_graph = radnet::harness::shared_graph(Digraph(net.graph));
    spec.make_protocol = [&](const Digraph&, std::uint32_t) {
      return std::make_unique<radnet::core::GeneralBroadcastProtocol>(
          radnet::core::GeneralBroadcastParams{.distribution = dist,
                                               .window = 0,
                                               .source = net.source,
                                               .label = ""});
    };
    spec.run_options.max_rounds = deadline;
    const auto result = radnet::harness::run_monte_carlo(spec);
    const auto rounds = result.rounds_sample();

    t.row()
        .add(lambda_hat, 1)
        .add(result.success_rate(), 3)
        .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                rounds.empty() ? 0.0 : rounds.stddev(), 0)
        .add_pm(result.mean_tx_sample().mean(),
                result.mean_tx_sample().stddev(), 2)
        .add(result.mean_tx_sample().mean() / (log2n * log2n), 3);
  }

  radnet::harness::emit_table(env, "e10", "corollary45", t);

  std::cout << "Shape check: successful configurations all have\n"
               "tx/log2n^2 bounded below by a constant — the Omega(log^2 n)\n"
               "per-node cost of linear-time broadcast.\n";
  return 0;
}
