// E2 — Lemmas 2.3 / 2.4: growth of the active set in Phase 1.
//
// Lemma 2.3: while |U_t| < 1/p, the active set grows by a factor Theta(d)
// per Phase-1 round (between d/16 and 2d; (1 ± 3/log n) d once
// |U_t| > log^3 n). Lemma 2.4: after Phase 1, |U_{T+1}| is concentrated in
// [c1 d^T, c2 d^T]. We trace |U_t| round by round over many trials and
// report the measured growth factors and the |U_{T+1}| / d^T concentration.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "core/broadcast_random.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Sample;
using radnet::Table;
using radnet::core::BroadcastRandomParams;
using radnet::core::BroadcastRandomProtocol;

}  // namespace

int main(int argc, char** argv) {
  // Phase 1 is entirely within Algorithm 1's at-most-one-transmission
  // regime, so the implicit backend samples the same growth process exactly.
  std::string topology;
  const bool implicit =
      radnet::harness::parse_topology_flag(argc, argv, &topology, "implicit");

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E2 (Lemmas 2.3/2.4)",
      "Phase-1 active-set growth on G(n,p): |U_{t+1}| / |U_t| ~ Theta(d) per "
      "round; |U_{T+1}| / d^T concentrated in a constant band. [topology=" +
          topology + "]");

  const std::uint32_t trials = env.trials(16);
  const auto n = static_cast<std::uint32_t>(env.scaled(32768));
  const double p = 8.0 * std::log(n) / n;  // sparse regime, T >= 2
  const double d = n * p;

  BroadcastRandomProtocol probe(BroadcastRandomParams{.p = p});
  probe.reset(n, Rng(0));
  const auto T = probe.phase1_end();

  // growth[t] collects |U_{t+1}| / |U_t| over trials, for t = 0..T-1.
  std::vector<Sample> growth(T);
  Sample concentration;  // |U_{T+1}| / d^T

  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    Rng root(env.seed);
    Rng grng = root.split(trial, 0);

    BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
    radnet::sim::Engine engine;
    radnet::sim::RunOptions options;
    options.max_rounds = probe.round_budget();
    std::vector<double> active_at;  // |U_t| at the *start* of round t
    active_at.push_back(1.0);       // U_1 = {source}
    options.round_observer = [&](radnet::sim::Round r) {
      if (r < T) active_at.push_back(static_cast<double>(proto.active_count()));
    };
    if (implicit) {
      const radnet::sim::ImplicitGnp gnp{n, p, grng};
      (void)engine.run(gnp, proto, root.split(trial, 1), options);
    } else {
      const auto g = radnet::graph::gnp_directed(n, p, grng);
      (void)engine.run(g, proto, root.split(trial, 1), options);
    }

    for (std::uint32_t t = 0; t < T && t + 1 < active_at.size(); ++t)
      if (active_at[t] > 0.0)
        growth[t].add(active_at[t + 1] / active_at[t]);
    if (active_at.size() == T + 1)
      concentration.add(active_at[T] / std::pow(d, static_cast<double>(T)));
  }

  Table t({"phase1 round", "|U_t+1|/|U_t|", "ratio/d", "paper band"});
  t.set_caption("E2a: per-round growth factors, n=" + std::to_string(n) +
                ", d=" + std::to_string(d) + ", T=" + std::to_string(T) + ", " +
                std::to_string(trials) + " trials");
  for (std::uint32_t r = 0; r < T; ++r) {
    if (growth[r].empty()) continue;
    t.row()
        .add(static_cast<std::uint64_t>(r + 1))
        .add_pm(growth[r].mean(), growth[r].stddev(), 1)
        .add(growth[r].mean() / d, 3)
        .add("[1/16, 2] (Lemma 2.3(1))");
  }
  radnet::harness::emit_table(env, "e2", "growth", t);

  Table c({"quantity", "mean", "sd", "min", "max", "paper band"});
  c.set_caption("E2b: Lemma 2.4 concentration of |U_{T+1}| / d^T");
  c.row()
      .add("|U_T+1|/d^T")
      .add(concentration.mean(), 4)
      .add(concentration.stddev(), 4)
      .add(concentration.min(), 4)
      .add(concentration.max(), 4)
      .add("[c1, c2] constant, trial-independent");
  radnet::harness::emit_table(env, "e2", "concentration", c);

  std::cout << "Shape check: every growth ratio/d lies in [1/16, 2] (in fact\n"
               "near 1 once |U_t| > log^3 n), and |U_{T+1}|/d^T varies only\n"
               "within a narrow constant band across trials.\n";
  return 0;
}
