// E14 — extension: the paper's algorithms on *changing* topologies.
//
// The paper's introduction motivates oblivious, local protocols precisely
// with mobility ("the network topology changes over time"), and Section 3
// remarks that Algorithm 2 becomes a dynamic gossip by timestamping rumors
// and deleting stale copies. This bench quantifies both claims:
//
//   (a) Broadcast robustness — Algorithm 3 under per-round link churn on a
//       stationary G(n,p): success and time vs churn rate. Obliviousness
//       means the protocol doesn't even notice the churn; only the
//       *connectivity-over-time* matters.
//   (b) Dynamic gossip — timestamped Algorithm 2 on churn and mobility
//       topologies: steady-state staleness and coverage vs churn/step,
//       compared against the static gossip time O(d log n).
//
// --topology=csr (default) drives (a) through the explicit ChurnGnp
// sequence (O(n^2) pair state per trial) and (b) through the explicit
// DynamicCsrTopology rebuilds; --topology=implicit runs (a)'s churn sweep
// graph-free on sim::ImplicitDynamicGnp, adds an implicit mobility row to
// (b) on sim::ImplicitRgg (same staleness metrics, side by side with the
// explicit oracle), and appends (c): a single n = 10^7 mobility-gossip
// trial run graph-free in a forked child under a 4 GiB RLIMIT_AS — a
// topology whose explicit per-round CSR rebuild (~5·10^8 directed edges)
// cannot even allocate there. Statistical equivalence of the two mobility
// backends is pinned by tests/sim/rgg_topology_equivalence_test.cpp.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>

#include "core/broadcast_general.hpp"
#include "core/broadcast_random.hpp"
#include "core/dynamic_gossip.hpp"
#include "graph/dynamics.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "support/math.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Sample;
using radnet::Table;

// (c): the graph-free n = 10^7 mobility trial. Mean degree 50 puts the
// explicit rebuild at ~5*10^8 directed edges (~4 GB for the edge list
// alone, before the CSR arrays) — unallocatable under the 4 GiB budget —
// while the implicit backend holds 16 B/node of positions plus O(cells)
// grid scratch. The trial is an Algorithm-1 broadcast over a fixed
// horizon: full completion would need ~1/radius ~ 800 geometric hops, so
// the tracked quantity is the informed disc after `kHugeHorizon` rounds
// of frontier growth under mobility.
constexpr std::uint32_t kHugeN = 10'000'000;
constexpr double kHugeDegree = 50.0;
constexpr radnet::sim::Round kHugeHorizon = 256;

int attempt_implicit_rgg_huge() {
  const double radius =
      std::sqrt(kHugeDegree / (3.141592653589793 * kHugeN));
  radnet::core::BroadcastRandomProtocol proto(
      radnet::core::BroadcastRandomParams{.p = kHugeDegree / kHugeN});
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = kHugeHorizon;
  const auto run = engine.run(
      radnet::sim::ImplicitRgg{kHugeN, radius, radius / 8.0, Rng(1)}, proto,
      Rng(2), options);
  // _exit() skips stream teardown, so flush explicitly.
  std::cout << "  (rounds: " << run.rounds_executed
            << ", informed: " << proto.informed_count()
            << ", deliveries: " << run.ledger.total_deliveries << ")"
            << std::endl;
  // The informed disc after kHugeHorizon rounds is a few thousand nodes
  // (frontier advance is bounded by one radio range per round); anything
  // below says the broadcast never left the source's neighbourhood.
  return run.rounds_executed == kHugeHorizon && proto.informed_count() > 1000
             ? 0
             : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology;
  const bool implicit =
      radnet::harness::parse_topology_flag(argc, argv, &topology, "csr");

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E14 (extension: dynamic networks)",
      "Broadcast under link churn and timestamped dynamic gossip — the "
      "mobility story of §1 and the §3 dynamic-gossip remark, quantified. "
      "[topology=" + topology + "]");

  const std::uint32_t trials = env.trials(8);

  // (a) Algorithm 3 under churn.
  {
    const auto n = static_cast<radnet::graph::NodeId>(env.scaled(512));
    const double p = 10.0 * std::log(n) / n;
    Table t({"churn/round", "success", "rounds", "rounds vs static"});
    t.set_caption("E14a: Algorithm 3 on churn-G(n,p), n=" + std::to_string(n) +
                  " — " + std::to_string(trials) + " trials/row");
    double static_rounds = 0.0;
    for (const double churn : {0.0, 0.01, 0.05, 0.2, 0.5}) {
      Sample rounds;
      std::uint32_t success = 0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        Rng root(env.seed + 30);
        // D for a G(n,p) this dense is ~3; the protocol only needs an upper
        // bound, so use the Lemma 3.1 prediction + 1.
        const auto D = static_cast<std::uint64_t>(
            std::ceil(std::log(static_cast<double>(n)) / std::log(n * p))) + 1;
        radnet::core::GeneralBroadcastProtocol proto(
            radnet::core::GeneralBroadcastParams{
                .distribution = radnet::core::SequenceDistribution::alpha(n, D),
                .window = radnet::core::general_window(n, 4.0),
                .source = 0,
                .label = ""});
        radnet::sim::Engine engine;
        radnet::sim::RunOptions options;
        options.max_rounds = radnet::core::general_round_budget(
            n, D, radnet::lambda_of(n, D), 96.0);
        options.stop_on_empty_candidates = true;
        radnet::sim::RunResult r;
        if (implicit && churn > 0.0) {
          radnet::sim::ImplicitDynamicGnp spec;
          spec.n = n;
          spec.p = p;
          spec.churn = churn;
          spec.rng = root.split(trial, 0);
          r = engine.run(spec, proto, root.split(trial, 1), options);
        } else {
          // churn = 0 (the static reference row) stays on the explicit
          // path: a fixed graph is outside the dynamic family.
          radnet::graph::ChurnGnp topo(n, p, churn, root.split(trial, 0));
          r = engine.run(topo, proto, root.split(trial, 1), options);
        }
        if (r.completed) {
          ++success;
          rounds.add(static_cast<double>(r.completion_round));
        }
      }
      const double mean_rounds = rounds.empty() ? 0.0 : rounds.mean();
      if (churn == 0.0) static_rounds = mean_rounds;
      t.row()
          .add(churn, 2)
          .add(static_cast<double>(success) / trials, 2)
          .add_pm(mean_rounds, rounds.empty() ? 0.0 : rounds.stddev(), 0)
          .add(static_rounds > 0.0 ? mean_rounds / static_rounds : 0.0, 2);
    }
    radnet::harness::emit_table(env, "e14", "broadcast_churn", t);
  }

  // (b) Dynamic gossip staleness.
  {
    const auto n = static_cast<radnet::graph::NodeId>(env.scaled(192));
    const double p = 10.0 * std::log(n) / n;
    const double d = n * p;
    const double gossip_unit = d * std::log2(static_cast<double>(n));
    const auto horizon = static_cast<radnet::sim::Round>(24.0 * gossip_unit);

    Table t({"topology", "coverage", "staleness mean", "staleness max",
             "staleness/(d*log2n)"});
    t.set_caption("E14b: timestamped dynamic gossip, n=" + std::to_string(n) +
                  ", horizon=" + std::to_string(horizon) +
                  " rounds; staleness = age of the freshest copy");

    std::uint64_t row = 0;
    // Each row supplies its own engine invocation; the staleness metrics
    // and the gossip protocol are shared. (The implicit mobility row runs
    // the same protocol on sim::ImplicitRgg — the engine overload is the
    // only difference.)
    const auto run_gossip =
        [&](const std::string& name,
            const std::function<radnet::sim::RunResult(
                radnet::core::DynamicGossipProtocol&,
                const radnet::sim::RunOptions&, Rng)>& run_fn) {
          radnet::core::DynamicGossipProtocol proto(
              radnet::core::DynamicGossipParams{.p = p, .regen_interval = 1});
          radnet::sim::RunOptions options;
          options.max_rounds = horizon;
          (void)run_fn(proto, options, Rng(env.seed + 31).split(row++));
          const auto s = proto.staleness();
          t.row()
              .add(name)
              .add(proto.coverage(), 4)
              .add(s.mean, 1)
              .add(static_cast<std::uint64_t>(s.max))
              .add(static_cast<double>(s.max) / gossip_unit, 2);
        };
    const auto run_sequence = [&](radnet::graph::TopologySequence& topo) {
      return [&topo](radnet::core::DynamicGossipProtocol& proto,
                     const radnet::sim::RunOptions& options, Rng proto_rng) {
        radnet::sim::Engine engine;
        return engine.run(topo, proto, proto_rng, options);
      };
    };

    const double rgg_radius = radnet::graph::rgg_threshold_radius(n, 4.0);
    {
      Rng r(env.seed + 32);
      radnet::graph::ChurnGnp topo(n, p, 0.0, r);
      run_gossip("static G(n,p)", run_sequence(topo));
    }
    for (const double churn : {0.02, 0.1, 0.3}) {
      Rng r(env.seed + 33);
      radnet::graph::ChurnGnp topo(n, p, churn, r);
      run_gossip("churn " + std::to_string(churn).substr(0, 4),
                 run_sequence(topo));
    }
    {
      Rng r(env.seed + 34);
      radnet::graph::MobilityRgg topo(n, rgg_radius, 0.02, r);
      run_gossip("mobility RGG (step 0.02)", run_sequence(topo));
    }
    if (implicit) {
      // The same mobility model on the graph-free backend, side by side
      // with the explicit row above: coverage and staleness must land on
      // the same scale (the RGG oracle tests pin the distributions).
      run_gossip("mobility iRGG (step 0.02)",
                 [&](radnet::core::DynamicGossipProtocol& proto,
                     const radnet::sim::RunOptions& options, Rng proto_rng) {
                   radnet::sim::Engine engine;
                   return engine.run(
                       radnet::sim::ImplicitRgg{n, rgg_radius, 0.02,
                                                Rng(env.seed + 34)},
                       proto, proto_rng, options);
                 });
    }
    radnet::harness::emit_table(env, "e14", "gossip_staleness", t);
  }

  // (c) Mobility at scale — implicit mode only: one n = 10^7 Algorithm-1
  // broadcast over a fixed mobility horizon, graph-free, inside a
  // production-container-sized memory budget where the explicit CSR
  // rebuild cannot even allocate.
  if (implicit) {
    std::cout << "\n--- (c) n = 10^7 mobility broadcast under a 4 GiB memory "
                 "budget ---\n"
              << "explicit rebuild would hold ~" << kHugeDegree * kHugeN
              << " directed edges (~4 GB edge list alone); the implicit "
                 "backend holds 16 B/node of positions.\n";
    const std::uint64_t limit = 4ull << 30;
    const auto t0 = std::chrono::steady_clock::now();
    const int rc =
        radnet::harness::run_memory_limited(limit, attempt_implicit_rgg_huge);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cout << "implicit mobility broadcast (n=10^7, degree=" << kHugeDegree
              << ", horizon=" << kHugeHorizon
              << " rounds): " << (rc == 0 ? "completed" : "FAILED") << " in "
              << secs << " s (exit " << rc << ")\n";
    if (rc != 0) return 1;
  }

  std::cout
      << "\nShape check: (a) broadcast success stays ~1 and time degrades\n"
         "gracefully with churn (obliviousness pays off); (b) coverage ~ 1\n"
         "and max staleness stays a small multiple of the static gossip\n"
         "time d*log2 n on every dynamic topology — the continuous-service\n"
         "property claimed in §3; (c, implicit only) the same mobility model\n"
         "runs graph-free at n = 10^7 inside a 4 GiB budget where the\n"
         "explicit per-round rebuild cannot allocate.\n";
  return 0;
}
