// E14 — extension: the paper's algorithms on *changing* topologies.
//
// The paper's introduction motivates oblivious, local protocols precisely
// with mobility ("the network topology changes over time"), and Section 3
// remarks that Algorithm 2 becomes a dynamic gossip by timestamping rumors
// and deleting stale copies. This bench quantifies both claims:
//
//   (a) Broadcast robustness — Algorithm 3 under per-round link churn on a
//       stationary G(n,p): success and time vs churn rate. Obliviousness
//       means the protocol doesn't even notice the churn; only the
//       *connectivity-over-time* matters.
//   (b) Dynamic gossip — timestamped Algorithm 2 on churn and mobility
//       topologies: steady-state staleness and coverage vs churn/step,
//       compared against the static gossip time O(d log n).
//
// --topology=csr (default) drives (a) through the explicit ChurnGnp
// sequence (O(n^2) pair state per trial); --topology=implicit runs the
// same churn sweep graph-free on sim::ImplicitDynamicGnp — the backend
// that scales this experiment to n ~ 10^7 (bench E16 measures the
// scaling; the statistical oracle tests pin the equivalence). Part (b)'s
// mobility-RGG rows have no implicit counterpart and stay explicit.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "core/broadcast_general.hpp"
#include "core/dynamic_gossip.hpp"
#include "graph/dynamics.hpp"
#include "graph/metrics.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "support/math.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Sample;
using radnet::Table;

}  // namespace

int main(int argc, char** argv) {
  std::string topology;
  const bool implicit =
      radnet::harness::parse_topology_flag(argc, argv, &topology, "csr");

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E14 (extension: dynamic networks)",
      "Broadcast under link churn and timestamped dynamic gossip — the "
      "mobility story of §1 and the §3 dynamic-gossip remark, quantified. "
      "[topology=" + topology + "]");

  const std::uint32_t trials = env.trials(8);

  // (a) Algorithm 3 under churn.
  {
    const auto n = static_cast<radnet::graph::NodeId>(env.scaled(512));
    const double p = 10.0 * std::log(n) / n;
    Table t({"churn/round", "success", "rounds", "rounds vs static"});
    t.set_caption("E14a: Algorithm 3 on churn-G(n,p), n=" + std::to_string(n) +
                  " — " + std::to_string(trials) + " trials/row");
    double static_rounds = 0.0;
    for (const double churn : {0.0, 0.01, 0.05, 0.2, 0.5}) {
      Sample rounds;
      std::uint32_t success = 0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        Rng root(env.seed + 30);
        // D for a G(n,p) this dense is ~3; the protocol only needs an upper
        // bound, so use the Lemma 3.1 prediction + 1.
        const auto D = static_cast<std::uint64_t>(
            std::ceil(std::log(static_cast<double>(n)) / std::log(n * p))) + 1;
        radnet::core::GeneralBroadcastProtocol proto(
            radnet::core::GeneralBroadcastParams{
                .distribution = radnet::core::SequenceDistribution::alpha(n, D),
                .window = radnet::core::general_window(n, 4.0),
                .source = 0,
                .label = ""});
        radnet::sim::Engine engine;
        radnet::sim::RunOptions options;
        options.max_rounds = radnet::core::general_round_budget(
            n, D, radnet::lambda_of(n, D), 96.0);
        options.stop_on_empty_candidates = true;
        radnet::sim::RunResult r;
        if (implicit && churn > 0.0) {
          radnet::sim::ImplicitDynamicGnp spec;
          spec.n = n;
          spec.p = p;
          spec.churn = churn;
          spec.rng = root.split(trial, 0);
          r = engine.run(spec, proto, root.split(trial, 1), options);
        } else {
          // churn = 0 (the static reference row) stays on the explicit
          // path: a fixed graph is outside the dynamic family.
          radnet::graph::ChurnGnp topo(n, p, churn, root.split(trial, 0));
          r = engine.run(topo, proto, root.split(trial, 1), options);
        }
        if (r.completed) {
          ++success;
          rounds.add(static_cast<double>(r.completion_round));
        }
      }
      const double mean_rounds = rounds.empty() ? 0.0 : rounds.mean();
      if (churn == 0.0) static_rounds = mean_rounds;
      t.row()
          .add(churn, 2)
          .add(static_cast<double>(success) / trials, 2)
          .add_pm(mean_rounds, rounds.empty() ? 0.0 : rounds.stddev(), 0)
          .add(static_rounds > 0.0 ? mean_rounds / static_rounds : 0.0, 2);
    }
    radnet::harness::emit_table(env, "e14", "broadcast_churn", t);
  }

  // (b) Dynamic gossip staleness.
  {
    const auto n = static_cast<radnet::graph::NodeId>(env.scaled(192));
    const double p = 10.0 * std::log(n) / n;
    const double d = n * p;
    const double gossip_unit = d * std::log2(static_cast<double>(n));
    const auto horizon = static_cast<radnet::sim::Round>(24.0 * gossip_unit);

    Table t({"topology", "coverage", "staleness mean", "staleness max",
             "staleness/(d*log2n)"});
    t.set_caption("E14b: timestamped dynamic gossip, n=" + std::to_string(n) +
                  ", horizon=" + std::to_string(horizon) +
                  " rounds; staleness = age of the freshest copy");

    std::uint64_t row = 0;
    const auto run_gossip = [&](const std::string& name,
                                radnet::graph::TopologySequence& topo) {
      radnet::core::DynamicGossipProtocol proto(
          radnet::core::DynamicGossipParams{.p = p, .regen_interval = 1});
      radnet::sim::Engine engine;
      radnet::sim::RunOptions options;
      options.max_rounds = horizon;
      (void)engine.run(topo, proto, Rng(env.seed + 31).split(row++), options);
      const auto s = proto.staleness();
      t.row()
          .add(name)
          .add(proto.coverage(), 4)
          .add(s.mean, 1)
          .add(static_cast<std::uint64_t>(s.max))
          .add(static_cast<double>(s.max) / gossip_unit, 2);
    };

    {
      Rng r(env.seed + 32);
      radnet::graph::ChurnGnp topo(n, p, 0.0, r);
      run_gossip("static G(n,p)", topo);
    }
    for (const double churn : {0.02, 0.1, 0.3}) {
      Rng r(env.seed + 33);
      radnet::graph::ChurnGnp topo(n, p, churn, r);
      run_gossip("churn " + std::to_string(churn).substr(0, 4), topo);
    }
    {
      Rng r(env.seed + 34);
      radnet::graph::MobilityRgg topo(
          n, radnet::graph::rgg_threshold_radius(n, 4.0), 0.02, r);
      run_gossip("mobility RGG (step 0.02)", topo);
    }
    radnet::harness::emit_table(env, "e14", "gossip_staleness", t);
  }

  std::cout
      << "Shape check: (a) broadcast success stays ~1 and time degrades\n"
         "gracefully with churn (obliviousness pays off); (b) coverage ~ 1\n"
         "and max staleness stays a small multiple of the static gossip\n"
         "time d*log2 n on every dynamic topology — the continuous-service\n"
         "property claimed in §3.\n";
  return 0;
}
