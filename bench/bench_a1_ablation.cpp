// A1 — ablation study for Algorithm 1's design decisions (DESIGN.md §4).
//
// The paper's algorithm makes three choices the analysis leans on:
//   1. Phase-1 nodes go passive after ONE shot (vs Elsässer–Gasieniec's
//      repeat-every-round) — the source of the <= 1 tx/node guarantee.
//   2. A single Phase-2 boost round in the sparse regime — what lifts the
//      informed set from Theta(d^T) to Theta(n) before the mop-up.
//   3. No activation in Phase 3 — what caps total energy at O(log n / p).
//
// Each variant toggles exactly one choice on identical graphs/seeds, so the
// deltas in the table price the decisions individually.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "core/broadcast_random.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::core::BroadcastRandomParams;
using radnet::core::BroadcastRandomProtocol;
using radnet::graph::Digraph;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "A1 (ablation)",
      "Pricing Algorithm 1's design choices: one-shot Phase 1, the Phase-2 "
      "boost, and no-activation Phase 3.");

  const std::uint32_t trials = env.trials(16);
  const auto n = static_cast<std::uint32_t>(env.scaled(8192));
  const double p = 8.0 * std::log(n) / n;  // sparse regime (Phase 2 active)

  Table t({"variant", "success", "rounds", "total_tx", "mean_tx/node",
           "max_tx/node"});
  t.set_caption("A1: n=" + std::to_string(n) + ", p=" + std::to_string(p) +
                ", " + std::to_string(trials) +
                " trials/variant (identical graphs per variant)");

  const auto run_variant = [&](const BroadcastRandomParams& params) {
    radnet::harness::McSpec spec;
    spec.trials = trials;
    spec.seed = env.seed + 20;
    spec.make_graph = [n, p](std::uint32_t, Rng rng) {
      return std::make_shared<const Digraph>(
          radnet::graph::gnp_directed(n, p, rng));
    };
    spec.make_protocol = [&params](const Digraph&, std::uint32_t) {
      return std::make_unique<BroadcastRandomProtocol>(params);
    };
    BroadcastRandomProtocol probe(params);
    probe.reset(n, Rng(0));
    spec.run_options.max_rounds = probe.round_budget();
    const auto result = radnet::harness::run_monte_carlo(spec);
    const auto rounds = result.rounds_sample();

    BroadcastRandomProtocol namer(params);
    t.row()
        .add(namer.name())
        .add(result.success_rate(), 3)
        .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                rounds.empty() ? 0.0 : rounds.stddev(), 1)
        .add_pm(result.total_tx_sample().mean(),
                result.total_tx_sample().stddev(), 0)
        .add(result.mean_tx_sample().mean(), 4)
        .add(result.max_tx_sample().mean(), 1);
  };

  run_variant(BroadcastRandomParams{.p = p});  // the paper's algorithm
  run_variant(BroadcastRandomParams{.p = p, .enable_phase2 = false});
  run_variant(BroadcastRandomParams{.p = p, .phase3_activation = true});
  run_variant(BroadcastRandomParams{.p = p, .phase1_repeat = true});

  radnet::harness::emit_table(env, "a1", "ablation", t);

  std::cout
      << "Shape check:\n"
         "  -phase2   : success drops and/or completion slows — Phase 3's\n"
         "              active supply starts at Theta(d^T) instead of\n"
         "              Theta(n) (Lemma 2.5's role).\n"
         "  +p3act    : success intact but total_tx inflates toward\n"
         "              Theta(n) — the O(log n / p) energy bound is lost\n"
         "              (why the paper's Phase 3 has no activation clause).\n"
         "  +p1rep    : max_tx/node rises above 1 (up to T) — the exact\n"
         "              regression to Elsässer-Gasieniec the paper fixes.\n";
  return 0;
}
