// E12 — §5 future work: random geometric graphs.
//
// The paper's conclusion names RGGs as the realistic model to try next. We
// run (a) Algorithm 3 with the measured diameter — the theorem applies to
// *arbitrary* networks, so it must work; (b) Algorithm 2 gossip with p set
// from the measured mean degree; and (c) Algorithm 1 *as-is*, which is
// tuned for G(n,p)'s log-diameter and therefore degrades on an RGG whose
// diameter is Theta(1/r) — reported honestly as the motivation for the
// future work.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "core/broadcast_general.hpp"
#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/math.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::graph::Digraph;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E12 (§5 future work)",
      "The paper's algorithms on random geometric graphs: Algorithm 3 "
      "carries over (arbitrary networks); Algorithm 1's G(n,p) tuning "
      "degrades on the Theta(1/r) diameter.");

  const std::uint32_t trials = env.trials(8);

  Table t({"n", "radius/threshold", "D (measured)", "protocol", "success",
           "rounds", "mean_tx/node", "max_tx/node"});
  t.set_caption("E12 — " + std::to_string(trials) + " trials/cell");

  for (const std::uint64_t base : {512ull, 1024ull}) {
    const auto n = static_cast<radnet::graph::NodeId>(env.scaled(base));
    for (const double mult : {2.0, 4.0}) {
      const double radius =
          radnet::graph::rgg_threshold_radius(n, mult);
      // Build one representative instance for the measured columns.
      Rng grng(env.seed + 13);
      const auto g0 = radnet::graph::random_geometric(n, radius, grng);
      if (!radnet::graph::strongly_connected(g0)) continue;
      const auto dia = radnet::graph::diameter_sampled(g0, 4, 17);
      const double dbar = radnet::graph::degree_stats(g0).mean_out;

      const auto run_one =
          [&](const std::string& name,
              const std::function<std::unique_ptr<radnet::sim::Protocol>()>& make,
              radnet::sim::Round max_rounds) {
            radnet::harness::McSpec spec;
            spec.trials = trials;
            spec.seed = env.seed + 14;
            spec.make_graph = [n, radius](std::uint32_t, Rng rng) {
              return std::make_shared<const Digraph>(
                  radnet::graph::random_geometric(n, radius, rng));
            };
            spec.make_protocol = [&make](const Digraph&, std::uint32_t) {
              return make();
            };
            spec.run_options.max_rounds = max_rounds;
            spec.run_options.stop_on_empty_candidates = true;
            const auto result = radnet::harness::run_monte_carlo(spec);
            const auto rounds = result.rounds_sample();
            t.row()
                .add(static_cast<std::uint64_t>(n))
                .add(mult, 1)
                .add(dia ? static_cast<std::uint64_t>(*dia) : 0)
                .add(name)
                .add(result.success_rate(), 2)
                .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                        rounds.empty() ? 0.0 : rounds.stddev(), 0)
                .add(result.mean_tx_sample().mean(), 3)
                .add(result.max_tx_sample().mean(), 1);
          };

      const std::uint64_t D = dia ? *dia : n;
      run_one("alg3(alpha,D)", [&] {
        return std::make_unique<radnet::core::GeneralBroadcastProtocol>(
            radnet::core::GeneralBroadcastParams{
                .distribution = radnet::core::SequenceDistribution::alpha(n, D),
                .window = radnet::core::general_window(n, 4.0),
                .source = 0,
                .label = ""});
      }, radnet::core::general_round_budget(n, D, radnet::lambda_of(n, D), 96.0));

      run_one("alg2(gossip,p=dbar/n)", [&] {
        return std::make_unique<radnet::core::GossipRandomProtocol>(
            radnet::core::GossipRandomParams{.p = dbar / n});
      }, 1u << 22);

      run_one("alg1(as-is)", [&] {
        return std::make_unique<radnet::core::BroadcastRandomProtocol>(
            radnet::core::BroadcastRandomParams{.p = dbar / n});
      }, 1u << 14);
    }
  }

  radnet::harness::emit_table(env, "e12", "geometric", t);

  std::cout
      << "Shape check: alg3 succeeds on every RGG (Theorem 4.1 is\n"
         "topology-free given D); gossip succeeds with p from the measured\n"
         "degree; alg1's success collapses because its phase structure\n"
         "assumes a logarithmic diameter — exactly why the paper lists RGGs\n"
         "as future work.\n";
  return 0;
}
