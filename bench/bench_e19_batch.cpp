// E19 — the batch sweep service under load: a 200+-spec mixed-family
// query set (harness/batch.hpp) answered three ways and compared.
//
//   * early-stop: the production path — CI-based early stopping with the
//     deterministic doubling grant schedule, cold disk cache;
//   * force-full: every spec runs its full trial budget (the baseline a
//     one-at-a-time radnet_cli loop would pay);
//   * warm-cache: the identical query set replayed against the cache the
//     early-stop run populated — every answer is an O(1) lookup.
//
// The headline numbers are the trial savings from early stopping (the
// Wilson rate interval plus the order-statistic rounds-median interval,
// support/stats.hpp) and the warm-replay cost per spec. The byte-identity
// contract — cold and warm streams identical, any thread count identical —
// is asserted here too and gated in CI by tools/bench_runner.cpp
// (schema v6, "e19_batch").
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

namespace {

using radnet::Table;
using radnet::harness::BatchFamily;
using radnet::harness::BatchOptions;
using radnet::harness::BatchOutcome;
using radnet::harness::BatchSpec;
using radnet::harness::BatchStats;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The mixed-family query set: every protocol on every backend family at
/// several sizes and seeds. 216 specs at the default scale — the kind of
/// sweep a parameter-space exploration fires at the service in one file.
std::vector<BatchSpec> build_specs(std::uint32_t trials,
                                   std::uint32_t seeds_per_point) {
  const BatchFamily families[] = {BatchFamily::kImplicitGnp,
                                  BatchFamily::kCsr,
                                  BatchFamily::kImplicitDynamic,
                                  BatchFamily::kImplicitRgg};
  const char* protocols[] = {"alg1", "alg2m", "eg2005",
                             "flooding", "fixed", "decay"};
  std::vector<BatchSpec> specs;
  for (const auto family : families)
    for (const char* protocol : protocols)
      for (const std::uint32_t n : {256u, 512u, 1024u})
        for (std::uint32_t s = 0; s < seeds_per_point; ++s) {
          BatchSpec spec;
          spec.protocol = protocol;
          spec.family = family;
          spec.n = n;
          spec.trials = trials;
          spec.seed = 0x5eed + s;
          // A fixed horizon keeps the non-completing protocols ("fixed"
          // at q = 0.5 never terminates by itself) from burning the full
          // derived budget on every censored trial; tol 0.1 lets clearly
          // resolved specs stop at a proper prefix of the budget.
          spec.max_rounds = 256;
          spec.tol = 0.1;
          if (family == BatchFamily::kImplicitDynamic) spec.churn = 0.5;
          spec.validate();
          specs.push_back(spec);
        }
  return specs;
}

struct ModeNumbers {
  std::string mode;
  double wall_ms = 0.0;
  BatchStats stats;
  std::string stream;
  std::vector<BatchOutcome> outcomes;
};

ModeNumbers run_mode(const std::string& mode,
                     const std::vector<BatchSpec>& specs,
                     const BatchOptions& options) {
  ModeNumbers m;
  m.mode = mode;
  std::ostringstream out;
  const double t0 = now_ms();
  m.outcomes = radnet::harness::run_batch(specs, options, out, &m.stats);
  m.wall_ms = now_ms() - t0;
  m.stream = out.str();
  return m;
}

void add_mode_row(Table& t, const ModeNumbers& m) {
  const double specs_per_s =
      static_cast<double>(m.stats.specs) / (m.wall_ms / 1e3);
  t.row()
      .add(m.mode)
      .add(static_cast<double>(m.stats.specs), 0)
      .add(static_cast<double>(m.stats.trials_run), 0)
      .add(static_cast<double>(m.stats.trials_saved), 0)
      .add(static_cast<double>(m.stats.cache_hits), 0)
      .add(m.wall_ms, 1)
      .add(specs_per_s, 1);
}

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E19 (batched sweep service)",
      "A 200+-spec mixed-family query set answered by the batch service: "
      "CI-based early stopping vs forced full runs vs a warm-cache replay, "
      "with the cold/warm byte-identity contract asserted.");

  const std::uint32_t trials = env.trials(48);
  const auto seeds_per_point =
      static_cast<std::uint32_t>(env.scaled(3, /*min=*/1));
  const std::vector<BatchSpec> specs = build_specs(trials, seeds_per_point);

  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "radnet_bench_e19_cache";
  std::filesystem::remove_all(cache_dir);

  BatchOptions early;
  early.cache_dir = cache_dir.string();
  BatchOptions full;
  full.force_full = true;  // no cache: the one-at-a-time baseline
  BatchOptions warm = early;

  const ModeNumbers cold = run_mode("early-stop/cold", specs, early);
  const ModeNumbers replay = run_mode("warm-cache", specs, warm);
  const ModeNumbers forced = run_mode("force-full", specs, full);
  std::filesystem::remove_all(cache_dir);

  // The contracts E19 exists to demonstrate; bench_runner gates them in CI.
  if (replay.stream != cold.stream) {
    std::cerr << "E19: warm-cache stream diverged from the cold run — "
                 "cache replay broke byte-identity\n";
    return 1;
  }
  BatchOptions serial = full;
  serial.threads = 1;
  if (run_mode("force-full/serial", specs, serial).stream != forced.stream) {
    std::cerr << "E19: serial and parallel streams diverged — the grant "
                 "schedule leaked thread count into the results\n";
    return 1;
  }

  {
    Table t({"mode", "specs", "trials_run", "trials_saved", "cache_hits",
             "wall_ms", "specs/s"});
    t.set_caption("E19a — " + std::to_string(specs.size()) +
                  " mixed-family specs, " + std::to_string(trials) +
                  " trials/spec budget, tol 0.1 @ 95% (warm-cache replay "
                  "answered the whole set from disk: 0 trials run)");
    add_mode_row(t, cold);
    add_mode_row(t, replay);
    add_mode_row(t, forced);
    radnet::harness::emit_table(env, "e19", "modes", t);
  }

  {
    Table t({"family", "specs", "granted_mean", "budget", "saved%"});
    t.set_caption(
        "E19b — early-stopping savings by backend family (granted trials "
        "vs the full budget; converged specs stop at a grant boundary)");
    for (const auto family :
         {BatchFamily::kCsr, BatchFamily::kImplicitGnp,
          BatchFamily::kImplicitDynamic, BatchFamily::kImplicitRgg}) {
      std::uint64_t count = 0, granted = 0, budget = 0;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].family != family) continue;
        ++count;
        granted += cold.outcomes[i].trials_granted;
        budget += specs[i].trials;
      }
      if (count == 0) continue;
      t.row()
          .add(radnet::harness::batch_family_name(family))
          .add(static_cast<double>(count), 0)
          .add(static_cast<double>(granted) / static_cast<double>(count), 1)
          .add(static_cast<double>(budget) / static_cast<double>(count), 0)
          .add(100.0 * (1.0 - static_cast<double>(granted) /
                                  static_cast<double>(budget)),
               1);
    }
    radnet::harness::emit_table(env, "e19", "savings", t);
  }

  const double warm_us_per_spec =
      replay.wall_ms * 1e3 / static_cast<double>(replay.stats.specs);
  std::cout << "Shape check: early stopping answers the set with a fraction "
               "of force-full's\ntrials at matching bytes for every spec "
               "that converged; the warm replay runs 0\ntrials ("
            << warm_us_per_spec
            << " us/spec, pure cache lookups) and reproduces the cold "
               "stream\nbyte-for-byte.\n";
  return 0;
}
