// E8 — Observation 4.3: the n log n / 2 transmission lower bound.
//
// On the 3n+1-node double-cover star network, destination d_i is informed
// in a round iff exactly one of its two intermediates transmits — per-round
// probability 2q(1-q) <= 1/2 for any fixed send probability q. To reach
// success probability 1 - 1/n every destination needs ~log2(n^2)
// Bernoulli(<=1/2) rounds, i.e. the 2n intermediates must spend a total of
// >= n log2(n) / 2 expected transmissions. The bench sweeps q and the round
// budget, reports measured success and total transmissions, and shows the
// cheapest successful configuration still pays the bound.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "baselines/fixed_prob.hpp"
#include "graph/lower_bound_nets.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::graph::Digraph;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E8 (Observation 4.3)",
      "Oblivious fixed-probability schedules on the double-cover star need "
      ">= n log2(n)/2 total transmissions for success probability 1 - 1/n.");

  const std::uint32_t trials = env.trials(64);

  Table t({"n", "q", "round budget", "success", "target 1-1/n", "total_tx",
           "bound n*log2n/2", "tx/bound"});
  t.set_caption("E8: fixed-q schedules on the Observation 4.3 network — " +
                std::to_string(trials) + " trials/row");

  for (const std::uint64_t base : {64ull, 128ull, 256ull}) {
    const auto n_dest = static_cast<radnet::graph::NodeId>(env.scaled(base));
    const auto net = radnet::graph::obs43_network(n_dest);
    const double bound = net.transmission_lower_bound();
    const double target = 1.0 - 1.0 / static_cast<double>(n_dest);
    const double log2n = std::log2(static_cast<double>(n_dest));

    for (const double q : {0.5, 0.25, 0.1}) {
      // Rounds for per-destination failure (1 - 2q(1-q))^w <= 1/n^2.
      const double per_round = 2.0 * q * (1.0 - q);
      const std::vector<double> budgets = {
          0.5 * 2.0 * log2n / -std::log2(1.0 - per_round),
          1.0 * 2.0 * log2n / -std::log2(1.0 - per_round),
          2.0 * 2.0 * log2n / -std::log2(1.0 - per_round)};
      for (const double b : budgets) {
        const auto budget = static_cast<radnet::sim::Round>(std::ceil(b)) + 1;
        radnet::harness::McSpec spec;
        spec.trials = trials;
        spec.seed = env.seed + 9;
        spec.make_graph =
            radnet::harness::shared_graph(Digraph(net.graph));
        spec.make_protocol = [&](const Digraph&, std::uint32_t) {
          return std::make_unique<radnet::baselines::FixedProbProtocol>(
              radnet::baselines::FixedProbParams{.q = q,
                                                 .source = net.source});
        };
        spec.run_options.max_rounds = budget;
        const auto result = radnet::harness::run_monte_carlo(spec);
        const auto total = result.total_tx_sample();

        t.row()
            .add(static_cast<std::uint64_t>(n_dest))
            .add(q, 2)
            .add(static_cast<std::uint64_t>(budget))
            .add(result.success_rate(), 3)
            .add(target, 3)
            .add_pm(total.mean(), total.stddev(), 0)
            .add(bound, 0)
            .add(total.mean() / bound, 2);
      }
    }
  }

  radnet::harness::emit_table(env, "e8", "observation43", t);

  std::cout
      << "Shape check: rows whose success rate reaches the 1-1/n target all\n"
         "have tx/bound >= ~1; configurations below the bound (short budgets\n"
         "or wasteful q) fail to reach the target. No schedule beats the\n"
         "n*log2(n)/2 wall.\n";
  return 0;
}
