// E9 + F2 — Theorem 4.4 on the Fig. 2 layered network.
//
// The network: a chain of stars S_1..S_L (S_i has 2^i leaves; crossing S_i
// needs exactly one of its 2^i leaves to transmit alone) followed by a path
// of length D - 2L. Any oblivious *time-invariant* schedule that finishes in
// cD log(n/D) rounds w.h.p. must spend >= log^2 n / (max{4c,8} log(n/D))
// transmissions per node: some star has per-round crossing probability
// <= 1/ln n (so nodes must stay busy ~ln^2 n rounds), and the path forces a
// per-round transmit probability >= ~1/(2c log(n/D)).
//
// The bench runs time-invariant alpha(lambda-hat) schedules with unlimited
// windows under the cD log(n/D) deadline and reports success vs measured
// transmissions per *star-leaf* node, against the theorem's bound.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "core/broadcast_general.hpp"
#include "graph/lower_bound_nets.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/math.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::graph::Digraph;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E9 (Theorem 4.4 / Figure 2)",
      "Time-invariant schedules on the layered star+path network: finishing "
      "inside the cD log(n/D) deadline costs >= log^2 n / (max{4c,8} "
      "log(n/D)) transmissions per node.");

  const std::uint32_t trials = env.trials(24);
  const auto n_param = static_cast<radnet::graph::NodeId>(64);  // L = 6 stars
  const std::uint64_t D = env.scaled(64, 2ull * 6 + 2);
  const auto net = radnet::graph::thm44_network(n_param, D);
  const std::uint64_t n = net.graph.num_nodes();
  const double log2n = std::log2(static_cast<double>(n_param));
  // The theorem's lambda uses the construction's node count ("a network
  // with O(n) nodes"), i.e. the actual graph size here.
  const double lambda_nd = radnet::lambda_of(n, D);
  const double c = 8.0;  // deadline constant: generous enough that dense
                         // schedules CAN pass, so the pass/fail contrast shows
  const auto deadline = static_cast<radnet::sim::Round>(
      std::ceil(c * static_cast<double>(D) * lambda_nd));
  const double bound = log2n * log2n / (std::max(4.0 * c, 8.0) * lambda_nd);

  Table t({"lambda-hat", "E[2^-I]", "success@deadline", "rounds", "tx/node",
           "bound", "tx/bound"});
  t.set_caption(
      "E9: n_param=" + std::to_string(n_param) + " (L=6 stars), D=" +
      std::to_string(D) + ", graph nodes=" + std::to_string(n) +
      ", deadline=" + std::to_string(deadline) + " rounds, " +
      std::to_string(trials) + " trials/row");

  for (const double lambda_hat : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    const auto dist =
        radnet::core::SequenceDistribution::alpha_with_lambda(n, lambda_hat);

    radnet::harness::McSpec spec;
    spec.trials = trials;
    spec.seed = env.seed + 10;
    spec.make_graph = radnet::harness::shared_graph(Digraph(net.graph));
    spec.make_protocol = [&](const Digraph&, std::uint32_t) {
      return std::make_unique<radnet::core::GeneralBroadcastProtocol>(
          radnet::core::GeneralBroadcastParams{
              .distribution = dist,
              .window = 0,  // time-invariant: active forever
              .source = net.source,
              .label = ""});
    };
    spec.run_options.max_rounds = deadline;
    const auto result = radnet::harness::run_monte_carlo(spec);
    const auto rounds = result.rounds_sample();

    t.row()
        .add(lambda_hat, 1)
        .add(dist.expected_tx_prob(), 4)
        .add(result.success_rate(), 3)
        .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                rounds.empty() ? 0.0 : rounds.stddev(), 0)
        .add_pm(result.mean_tx_sample().mean(),
                result.mean_tx_sample().stddev(), 2)
        .add(bound, 2)
        .add(result.mean_tx_sample().mean() / bound, 2);
  }

  radnet::harness::emit_table(env, "e9", "theorem44", t);

  std::cout
      << "Shape check: every configuration that meets the deadline w.h.p.\n"
         "pays tx/bound >= ~1; energy-lean configurations (large lambda-hat,\n"
         "low E[2^-I]) either miss the deadline on the path segment or stall\n"
         "on a star. The bound is not beaten.\n";
  return 0;
}
