// E17 — deterministic within-trial parallelism.
//
// PR 1/2 made a single implicit-backend trial O(n)-per-round and
// memory-light; this bench prices the remaining axis: one trial still used
// one core, because the round sweep consumed a single sequential RNG
// stream. The block-sharded sweeps (sim/topology.hpp) key every draw by
// (round, listener block) instead, so RunOptions::threads fans one round
// over the whole machine — with *bit-identical* results at every thread
// count, which this bench verifies while it times.
//
// Default mode: a single-trial Algorithm-1 broadcast at n = 2^24
// (RADNET_SCALE-scaled, p = 8 ln n / n — the d = Theta(log n) regime where
// finite-size completion is reliable), swept over thread counts
// {1, 2, 4, 8, all},
// asserting ledger/round equality against the serial run and reporting
// wall time + speedup. Thread counts beyond the machine's cores still run
// (and still match bit-for-bit); their speedup just saturates, so the
// table prints the hardware budget alongside.
//
// A second table prices the explicit-CSR family the same way: one
// broadcast trial on a materialised G(n,p), swept over the same thread
// counts with the same bit-identity column — the CSR paths involve no RNG
// at all, so identity holds by order-independence of hit counts rather
// than by counter keying (sim/backends/csr.hpp).
//
// With --full it adds the scale demonstration: one n = 10^8 broadcast
// trial on every core, run in a forked child under an 8 GiB RLIMIT_AS (a
// large-memory-container budget; the materialised graph alone would need
// ~1.5e10 edges, and the explicit pair state ~10 PB).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <thread>

#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "support/cli_args.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using radnet::Rng;
using radnet::core::BroadcastRandomParams;
using radnet::core::BroadcastRandomProtocol;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

radnet::sim::RunResult run_once(std::uint32_t n, double p, unsigned threads,
                                std::uint64_t seed) {
  radnet::sim::Engine engine;
  const radnet::sim::ImplicitGnp spec{n, p, Rng(seed)};
  BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
  proto.reset(n, Rng(0));
  radnet::sim::RunOptions options;
  options.max_rounds = proto.round_budget();
  options.threads = threads;
  return engine.run(spec, proto, Rng(seed + 1), options);
}

// A churned-dynamic trial: churn = 0.5 routes every delivery through the
// pair sketch, so the round cost is dominated by the sender-chunked gather
// and group-chunked classify phases this row prices.
radnet::sim::RunResult run_once_sketch(std::uint32_t n, unsigned threads,
                                       std::uint64_t seed) {
  radnet::sim::Engine engine;
  radnet::sim::ImplicitDynamicGnp spec;
  spec.n = n;
  spec.p = 16.0 / n;
  spec.churn = 0.5;
  spec.rng = Rng(seed);
  radnet::core::GossipRumorMarginalProtocol proto(
      radnet::core::GossipRumorMarginalParams{.p = spec.p});
  radnet::sim::RunOptions options;
  options.max_rounds = 64;
  options.threads = threads;
  return engine.run(spec, proto, Rng(seed + 1), options);
}

// A mobility-RGG broadcast trial: per round the transmitter bucketing (the
// chunk-sharded counting sort + 3x3 stamp) and the cell-grid sweep are the
// work this row prices.
radnet::sim::RunResult run_once_rgg(std::uint32_t n, unsigned threads,
                                    std::uint64_t seed) {
  radnet::sim::Engine engine;
  const double radius =
      std::sqrt(16.0 / (3.14159265358979 * static_cast<double>(n)));
  const double p = 3.14159265358979 * radius * radius;
  const radnet::sim::ImplicitRgg spec{n, radius, radius / 8.0, Rng(seed)};
  radnet::core::GossipRumorMarginalProtocol proto(
      radnet::core::GossipRumorMarginalParams{.p = p});
  radnet::sim::RunOptions options;
  options.max_rounds = 64;
  options.threads = threads;
  return engine.run(spec, proto, Rng(seed + 1), options);
}

radnet::sim::RunResult run_once_csr(const radnet::graph::Digraph& g, double p,
                                    unsigned threads, std::uint64_t seed) {
  radnet::sim::Engine engine;
  BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
  proto.reset(g.num_nodes(), Rng(0));
  radnet::sim::RunOptions options;
  options.max_rounds = proto.round_budget();
  options.threads = threads;
  return engine.run(g, proto, Rng(seed + 1), options);
}

constexpr std::uint32_t kHugeN = 100'000'000;
const double kHugeP = 8.0 * std::log(static_cast<double>(kHugeN)) / kHugeN;

int attempt_huge() {
  const auto run = run_once(kHugeN, kHugeP, /*threads=*/0, /*seed=*/1);
  if (!run.completed) return 2;
  // _exit() skips stream teardown, so flush explicitly.
  std::cout << "  (rounds: " << run.completion_round
            << ", transmissions: " << run.ledger.total_transmissions
            << ", deliveries: " << run.ledger.total_deliveries << ")"
            << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  radnet::CliArgs args = [&] {
    try {
      return radnet::CliArgs(argc, argv, {"full"});
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      std::exit(2);
    }
  }();
  const bool full = args.get_bool("full", false);

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E17 (thread scaling)",
      "Single-trial Algorithm-1 broadcast on the implicit G(n,p) backend: "
      "counter-keyed block-sharded round sweeps scale across threads with "
      "bit-identical results at every thread count.");

  const auto n = static_cast<std::uint32_t>(env.scaled(1u << 24, 1u << 12));
  const double p = 8.0 * std::log(static_cast<double>(n)) / n;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "n = " << n << ", p = 8 ln(n)/n, hardware threads = " << hw
            << " (speedup saturates there; determinism never depends on "
               "it)\n\n";

  const double t0 = now_ms();
  const auto serial = run_once(n, p, 1, env.seed);
  const double serial_ms = now_ms() - t0;

  radnet::Table t({"threads", "wall ms", "speedup", "identical to serial"});
  t.set_caption(
      "E17: one broadcast trial per row, same seed; 'identical' compares "
      "completion, rounds and the full energy ledger bit-for-bit");
  t.row()
      .add(std::uint64_t{1})
      .add(serial_ms, 1)
      .add(1.0, 2)
      .add("yes (baseline)");

  bool all_identical = true;
  double best_speedup = 1.0;
  for (const unsigned threads : {2u, 4u, 8u, 0u}) {
    const double t1 = now_ms();
    const auto run = run_once(n, p, threads, env.seed);
    const double ms = now_ms() - t1;
    const bool same = run == serial;
    all_identical = all_identical && same;
    const double speedup = serial_ms / ms;
    best_speedup = std::max(best_speedup, speedup);
    radnet::Table& row = t.row();
    if (threads == 0)
      row.add("all (" + std::to_string(radnet::global_pool().size()) + ")");
    else
      row.add(std::uint64_t{threads});
    row.add(ms, 1).add(speedup, 2).add(same ? "yes" : "NO — BUG");
  }
  radnet::harness::emit_table(env, "e17", "thread_scaling", t);

  if (!all_identical) {
    std::cout << "\nFAILED: results diverged across thread counts\n";
    return 1;
  }
  std::cout << "\nbest speedup: " << best_speedup << "x on " << hw
            << " hardware threads\n";

  // --- explicit-CSR rows: same sweep, same bit-identity column ----------
  const auto n_csr = static_cast<std::uint32_t>(env.scaled(1u << 20, 1u << 11));
  const double p_csr = 32.0 / n_csr;  // d = 32: heavy rounds, modest memory
  std::cout << "\nexplicit CSR: n = " << n_csr
            << ", p = 32/n (materialised digraph, "
            << "parallel scatter/gather delivery)\n\n";
  Rng grng(env.seed);
  const radnet::graph::Digraph g =
      radnet::graph::gnp_directed(n_csr, p_csr, grng);

  const double c0 = now_ms();
  const auto csr_serial = run_once_csr(g, p_csr, 1, env.seed);
  const double csr_serial_ms = now_ms() - c0;

  radnet::Table ct({"threads", "wall ms", "speedup", "identical to serial"});
  ct.set_caption(
      "E17-CSR: one broadcast trial per row on the same materialised "
      "G(n,p); 'identical' compares completion, rounds and the full "
      "energy ledger bit-for-bit");
  ct.row()
      .add(std::uint64_t{1})
      .add(csr_serial_ms, 1)
      .add(1.0, 2)
      .add("yes (baseline)");

  bool csr_identical = true;
  double csr_best = 1.0;
  for (const unsigned threads : {2u, 4u, 8u, 0u}) {
    const double c1 = now_ms();
    const auto run = run_once_csr(g, p_csr, threads, env.seed);
    const double ms = now_ms() - c1;
    const bool same = run == csr_serial;
    csr_identical = csr_identical && same;
    csr_best = std::max(csr_best, csr_serial_ms / ms);
    radnet::Table& row = ct.row();
    if (threads == 0)
      row.add("all (" + std::to_string(radnet::global_pool().size()) + ")");
    else
      row.add(std::uint64_t{threads});
    row.add(ms, 1).add(csr_serial_ms / ms, 2).add(same ? "yes" : "NO — BUG");
  }
  radnet::harness::emit_table(env, "e17", "thread_scaling_csr", ct);

  if (!csr_identical) {
    std::cout << "\nFAILED: CSR results diverged across thread counts\n";
    return 1;
  }
  std::cout << "\nbest CSR speedup: " << csr_best << "x on " << hw
            << " hardware threads\n";

  // --- sharded sketch phases: churned-dynamic rows --------------------
  const auto n_dyn = static_cast<std::uint32_t>(env.scaled(1u << 21, 1u << 12));
  std::cout << "\ndynamic sketch: n = " << n_dyn
            << ", p = 16/n, churn = 0.5 (sender-chunked gather + "
            << "group-chunked classify dominate the round)\n\n";
  const double s0 = now_ms();
  const auto sketch_serial = run_once_sketch(n_dyn, 1, env.seed);
  const double sketch_serial_ms = now_ms() - s0;

  radnet::Table st({"threads", "wall ms", "speedup", "identical to serial"});
  st.set_caption(
      "E17-sketch: one churned-dynamic gossip trial per row, same seed; "
      "'identical' compares completion, rounds and the full energy ledger "
      "bit-for-bit");
  st.row()
      .add(std::uint64_t{1})
      .add(sketch_serial_ms, 1)
      .add(1.0, 2)
      .add("yes (baseline)");
  bool sketch_identical = true;
  double sketch_best = 1.0;
  for (const unsigned threads : {2u, 4u, 8u, 0u}) {
    const double s1 = now_ms();
    const auto run = run_once_sketch(n_dyn, threads, env.seed);
    const double ms = now_ms() - s1;
    const bool same = run == sketch_serial;
    sketch_identical = sketch_identical && same;
    sketch_best = std::max(sketch_best, sketch_serial_ms / ms);
    radnet::Table& row = st.row();
    if (threads == 0)
      row.add("all (" + std::to_string(radnet::global_pool().size()) + ")");
    else
      row.add(std::uint64_t{threads});
    row.add(ms, 1)
        .add(sketch_serial_ms / ms, 2)
        .add(same ? "yes" : "NO — BUG");
  }
  radnet::harness::emit_table(env, "e17", "thread_scaling_sketch", st);
  if (!sketch_identical) {
    std::cout << "\nFAILED: sketch-phase results diverged across thread "
                 "counts\n";
    return 1;
  }
  std::cout << "\nbest sketch speedup: " << sketch_best << "x on " << hw
            << " hardware threads\n";

  // --- sharded RGG bucketing: mobility rows ----------------------------
  const auto n_rgg = static_cast<std::uint32_t>(env.scaled(1u << 21, 1u << 12));
  std::cout << "\nRGG bucketing: n = " << n_rgg
            << ", r = sqrt(16/(pi n)), step = r/8 (chunk-sharded counting "
            << "sort + 3x3 stamp feed the cell-grid sweep)\n\n";
  const double g0 = now_ms();
  const auto rgg_serial = run_once_rgg(n_rgg, 1, env.seed);
  const double rgg_serial_ms = now_ms() - g0;

  radnet::Table gt({"threads", "wall ms", "speedup", "identical to serial"});
  gt.set_caption(
      "E17-RGG: one mobility-RGG gossip trial per row, same seed; "
      "'identical' compares completion, rounds and the full energy ledger "
      "bit-for-bit");
  gt.row()
      .add(std::uint64_t{1})
      .add(rgg_serial_ms, 1)
      .add(1.0, 2)
      .add("yes (baseline)");
  bool rgg_identical = true;
  double rgg_best = 1.0;
  for (const unsigned threads : {2u, 4u, 8u, 0u}) {
    const double g1 = now_ms();
    const auto run = run_once_rgg(n_rgg, threads, env.seed);
    const double ms = now_ms() - g1;
    const bool same = run == rgg_serial;
    rgg_identical = rgg_identical && same;
    rgg_best = std::max(rgg_best, rgg_serial_ms / ms);
    radnet::Table& row = gt.row();
    if (threads == 0)
      row.add("all (" + std::to_string(radnet::global_pool().size()) + ")");
    else
      row.add(std::uint64_t{threads});
    row.add(ms, 1).add(rgg_serial_ms / ms, 2).add(same ? "yes" : "NO — BUG");
  }
  radnet::harness::emit_table(env, "e17", "thread_scaling_rgg", gt);
  if (!rgg_identical) {
    std::cout << "\nFAILED: RGG bucketing results diverged across thread "
                 "counts\n";
    return 1;
  }
  std::cout << "\nbest RGG speedup: " << rgg_best << "x on " << hw
            << " hardware threads\n";

  if (full) {
    std::cout << "\n--- n = 10^8 single-trial broadcast, every core, under "
                 "an 8 GiB memory budget ---\n"
              << "a materialised G(n,p) would hold ~1.5e10 edges; explicit "
                 "pair state ~10 PB.\n";
    const std::uint64_t limit = 8ull << 30;
    const double t2 = now_ms();
    const int rc = radnet::harness::run_memory_limited(limit, attempt_huge);
    const double ms = now_ms() - t2;
    std::cout << "implicit broadcast trial (n=10^8, p=8 ln(n)/n): "
              << (rc == 0 ? "completed" : "FAILED") << " in " << ms / 1000.0
              << " s (exit " << rc << ")\n";
    if (rc != 0) return 1;
  } else {
    std::cout << "\n(run with --full for the n = 10^8 8 GiB-budget "
                 "demonstration)\n";
  }

  std::cout << "\nShape check: wall time falls ~1/threads until the "
               "hardware budget (or the serial merge of event-heavy "
               "rounds) binds; every row stays bit-identical because "
               "randomness is keyed by (round, block), not by schedule.\n";
  return 0;
}
