// E11 — §1.1/§2 comparison: Algorithm 1 vs Elsässer–Gasieniec vs Decay vs
// flooding on the same G(n,p) instances.
//
// Expected ordering (the paper's motivation):
//   * flooding: fails outright in the collision model (success ~ 0);
//   * decay: succeeds, O((D + log n) log n) time, unbounded energy growth;
//   * EG 2005: O(log n) time, up to D-1 transmissions per node in Phase 1;
//   * Algorithm 1: same O(log n) time, at most ONE transmission per node
//     and the smallest total energy.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "baselines/decay.hpp"
#include "baselines/elsasser_gasieniec.hpp"
#include "baselines/flooding.hpp"
#include "core/broadcast_random.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::graph::Digraph;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E11 (baseline comparison, §1.1/§2)",
      "Algorithm 1 vs Elsässer-Gasieniec vs Decay vs flooding on identical "
      "G(n,p) instances.");

  const std::uint32_t trials = env.trials(12);

  Table t({"n", "p", "protocol", "success", "rounds", "total_tx",
           "mean_tx/node", "max_tx/node"});
  t.set_caption("E11 — " + std::to_string(trials) +
                " trials/cell (same graphs & seeds per column block)");

  struct Case {
    std::uint64_t n;
    double exponent;  // p = n^exponent (multi-hop regime: T >= 2)
  };
  for (const auto c : {Case{4096, -0.55}, Case{8192, -0.60}}) {
    const auto n = static_cast<std::uint32_t>(env.scaled(c.n));
    const double p = std::pow(static_cast<double>(n), c.exponent);

    const auto run_one =
        [&](const std::string& name,
            const std::function<std::unique_ptr<radnet::sim::Protocol>()>& make,
            radnet::sim::Round max_rounds) {
          radnet::harness::McSpec spec;
          spec.trials = trials;
          spec.seed = env.seed + 12;  // same seed => same graphs per protocol
          spec.make_graph = [n, p](std::uint32_t, Rng rng) {
            return std::make_shared<const Digraph>(
                radnet::graph::gnp_directed(n, p, rng));
          };
          spec.make_protocol = [&make](const Digraph&, std::uint32_t) {
            return make();
          };
          spec.run_options.max_rounds = max_rounds;
          const auto result = radnet::harness::run_monte_carlo(spec);
          const auto rounds = result.rounds_sample();
          t.row()
              .add(static_cast<std::uint64_t>(n))
              .add(p, 5)
              .add(name)
              .add(result.success_rate(), 2)
              .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                      rounds.empty() ? 0.0 : rounds.stddev(), 1)
              .add_pm(result.total_tx_sample().mean(),
                      result.total_tx_sample().stddev(), 0)
              .add(result.mean_tx_sample().mean(), 3)
              .add(result.max_tx_sample().mean(), 1);
        };

    radnet::core::BroadcastRandomProtocol probe(
        radnet::core::BroadcastRandomParams{.p = p});
    probe.reset(n, Rng(0));
    const auto budget = probe.round_budget();

    run_one("alg1", [&] {
      return std::make_unique<radnet::core::BroadcastRandomProtocol>(
          radnet::core::BroadcastRandomParams{.p = p});
    }, budget);
    run_one("eg2005", [&] {
      return std::make_unique<radnet::baselines::ElsasserGasieniecProtocol>(
          radnet::baselines::ElsasserGasieniecParams{.p = p});
    }, budget);
    run_one("decay", [&] {
      return std::make_unique<radnet::baselines::DecayProtocol>(
          radnet::baselines::DecayParams{});
    }, budget * 4);
    run_one("flooding", [&] {
      return std::make_unique<radnet::baselines::FloodingProtocol>(0);
    }, budget);
  }

  radnet::harness::emit_table(env, "e11", "comparison", t);

  std::cout << "Shape check: flooding success ~ 0; decay succeeds but with\n"
               "the largest per-node energy; eg2005 matches alg1's time with\n"
               "max_tx/node > 1; alg1 keeps max_tx/node == 1 and the lowest\n"
               "total energy.\n";
  return 0;
}
