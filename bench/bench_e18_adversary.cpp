// E18 — robustness under attack: completion and stranding curves as the
// adversary dials up jammers, Byzantine relays and energy exhaustion
// (sim/adversary.hpp) on two backend families.
//
// The paper's guarantees are stated for a clean channel; these sweeps
// measure how gracefully the protocols degrade away from it:
//   * jammers deafen their out-neighbourhoods (half-duplex: a jammer is
//     never informed, so it leaves the goal set) — completion probability
//     falls and the honest remainder strands;
//   * Byzantine relays forward corrupted copies: informed_count still
//     saturates but the *valid*-copy goal does not, so the headline
//     stranded fraction separates from 1 - success;
//   * energy budgets bite only on protocols that retransmit (the gossip
//     marginal; Algorithm 1's single shot is immune by Theorem 2.1), and
//     listen-only exhaustion degrades far more gracefully than silent
//     (dead radio) exhaustion;
//   * crash/recover schedules freeze the wavefront, shifting the
//     completion round by roughly the outage length.
//
// Each protocol's curves run on two backend families where its *clean*
// baseline succeeds (otherwise the curve has nothing to degrade from):
// Algorithm 1 and EG 2005 on implicit G(n,p) + explicit CSR G(n,p), the
// gossip marginal on implicit G(n,p) + implicit mobility-RGG (Algorithm 1
// on a static RGG fails already at zero attack — E12's diameter result —
// so it is excluded here, not hidden). The ignp/csr pairing also shows
// the documented semantic split: on explicit graphs a jammer deafens its
// out-neighbourhood *permanently*, while the implicit static backend
// resamples jammed pairs each round (the memoryless churn-1 reading,
// sim/adversary.hpp) — same jammer fraction, visibly harsher stranding
// on csr. Cross-checked against the explicit churn-1 oracle by
// tests/sim/adversary_topology_equivalence_test.cpp.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/elsasser_gasieniec.hpp"
#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::graph::Digraph;
using radnet::harness::McSpec;
using radnet::sim::AdversarySpec;

using ProtocolFactory =
    std::function<std::unique_ptr<radnet::sim::Protocol>()>;

struct Cell {
  std::string backend;   // "ignp" | "irgg"
  std::string protocol;  // row label
};

/// One Monte-Carlo point of a robustness curve; every sweep funnels
/// through here so the rows are comparable column-for-column.
void add_row(Table& t, const Cell& cell, const std::string& knob,
             const McSpec& spec) {
  const auto result = radnet::harness::run_monte_carlo(spec);
  const auto rounds = result.rounds_sample();
  const auto stranded = result.stranded_sample();
  const double n = static_cast<double>(result.outcomes.empty()
                                           ? 1
                                           : result.outcomes.front().nodes);
  t.row()
      .add(cell.backend)
      .add(cell.protocol)
      .add(knob)
      .add(result.success_rate(), 2)
      .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
              rounds.empty() ? 0.0 : rounds.stddev(), 1)
      .add(stranded.empty() ? 0.0 : stranded.mean() / n, 4)
      .add_pm(result.total_tx_sample().mean(),
              result.total_tx_sample().stddev(), 0)
      .add(result.max_tx_sample().max(), 0);
}

Table make_table(const std::string& caption) {
  Table t({"backend", "protocol", "adversary", "success", "rounds",
           "stranded/n", "total_tx", "max_tx"});
  t.set_caption(caption);
  return t;
}

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E18 (robustness under attack)",
      "Completion and stranded-fraction curves vs jammer/Byzantine fraction, "
      "energy budgets and crash schedules, on the implicit G(n,p), explicit "
      "CSR and implicit mobility-RGG backends.");

  const std::uint32_t trials = env.trials(8);
  const auto n = static_cast<std::uint32_t>(env.scaled(4096));
  const double p = 8.0 * std::log(static_cast<double>(n)) / n;
  const double radius = radnet::graph::rgg_threshold_radius(n, 4.0);

  // Horizons: each protocol's own budget, clamped so badly jammed runs
  // (which always exhaust the horizon) keep the sweep affordable.
  radnet::core::BroadcastRandomProtocol alg1_probe(
      radnet::core::BroadcastRandomParams{.p = p});
  alg1_probe.reset(n, Rng(0));
  const radnet::sim::Round alg1_budget = alg1_probe.round_budget();
  radnet::core::GossipRumorMarginalProtocol gossip_probe(
      radnet::core::GossipRumorMarginalParams{.p = p, .round_factor = 8.0});
  gossip_probe.reset(n, Rng(0));
  const radnet::sim::Round gossip_budget =
      std::min<radnet::sim::Round>(gossip_probe.round_budget(), 2048);

  const ProtocolFactory alg1 = [p] {
    return std::make_unique<radnet::core::BroadcastRandomProtocol>(
        radnet::core::BroadcastRandomParams{.p = p});
  };
  const ProtocolFactory gossip = [p] {
    return std::make_unique<radnet::core::GossipRumorMarginalProtocol>(
        radnet::core::GossipRumorMarginalParams{.p = p, .round_factor = 8.0});
  };
  const ProtocolFactory eg2005 = [p] {
    return std::make_unique<radnet::baselines::ElsasserGasieniecProtocol>(
        radnet::baselines::ElsasserGasieniecParams{.p = p});
  };

  const auto base_spec = [&](const ProtocolFactory& factory,
                             radnet::sim::Round max_rounds,
                             const AdversarySpec& adv) {
    McSpec spec;
    spec.trials = trials;
    spec.seed = env.seed + 18;  // same seed => paired adversaries per column
    spec.make_protocol = [&factory](const Digraph&, std::uint32_t) {
      return factory();
    };
    spec.run_options.max_rounds = max_rounds;
    spec.run_options.stop_on_empty_candidates = true;
    spec.run_options.adversary = adv;
    spec.run_options.adversary.protected_nodes = {0};  // keep the source honest
    return spec;
  };
  const auto on_gnp = [&](McSpec spec) {
    spec.implicit_gnp = radnet::harness::ImplicitGnpParams{n, p};
    return spec;
  };
  const auto on_csr = [&](McSpec spec) {
    spec.make_graph = [n_ = n, p](std::uint32_t, Rng rng) {
      return std::make_shared<const Digraph>(
          radnet::graph::gnp_directed(n_, p, rng));
    };
    return spec;
  };
  const auto on_rgg = [&](McSpec spec) {
    spec.implicit_rgg =
        radnet::sim::ImplicitRgg{n, radius, /*step=*/radius / 8.0};
    return spec;
  };

  // ---- Jammer sweep: both backend families ------------------------------
  {
    Table t = make_table(
        "E18a — jammer fraction sweep, " + std::to_string(trials) +
        " trials/point (max_tx excludes jam transmissions: Theorem 2.1's "
        "per-node bound must survive the attack; csr jams are permanent, "
        "ignp jams are the memoryless churn-1 reading)");
    for (const double f : {0.0, 0.01, 0.02, 0.05, 0.10}) {
      AdversarySpec adv;
      adv.jammer_fraction = f;
      const std::string knob = "jam=" + std::to_string(f).substr(0, 4);
      add_row(t, {"ignp", "alg1"}, knob, on_gnp(base_spec(alg1, alg1_budget, adv)));
      add_row(t, {"csr", "alg1"}, knob, on_csr(base_spec(alg1, alg1_budget, adv)));
      add_row(t, {"ignp", "gossip-marginal"}, knob,
              on_gnp(base_spec(gossip, gossip_budget, adv)));
      add_row(t, {"irgg", "gossip-marginal"}, knob,
              on_rgg(base_spec(gossip, gossip_budget, adv)));
      add_row(t, {"ignp", "eg2005"}, knob,
              on_gnp(base_spec(eg2005, alg1_budget, adv)));
    }
    radnet::harness::emit_table(env, "e18", "jammers", t);
  }

  // ---- Byzantine sweep: corrupted copies spread, valid copies stall -----
  {
    Table t = make_table(
        "E18b — Byzantine relay fraction sweep (success counts *valid* "
        "copies; a relay is informed but forwards garbage)");
    for (const double f : {0.0, 0.02, 0.05, 0.10, 0.20}) {
      AdversarySpec adv;
      adv.byzantine_fraction = f;
      const std::string knob = "byz=" + std::to_string(f).substr(0, 4);
      add_row(t, {"ignp", "alg1"}, knob, on_gnp(base_spec(alg1, alg1_budget, adv)));
      add_row(t, {"csr", "alg1"}, knob, on_csr(base_spec(alg1, alg1_budget, adv)));
      add_row(t, {"ignp", "gossip-marginal"}, knob,
              on_gnp(base_spec(gossip, gossip_budget, adv)));
      add_row(t, {"irgg", "gossip-marginal"}, knob,
              on_rgg(base_spec(gossip, gossip_budget, adv)));
    }
    radnet::harness::emit_table(env, "e18", "byzantine", t);
  }

  // ---- Energy-budget exhaustion: listen-only vs silent ------------------
  {
    Table t = make_table(
        "E18c — energy budgets on the gossip marginal (alg1 row: a single "
        "shot per node never exhausts, the curve is flat by Theorem 2.1)");
    for (const double budget : {0.0, 8.0, 4.0, 2.0, 1.0}) {
      AdversarySpec listen;
      listen.budget_mean = budget;
      listen.budget_spread = 0.25;
      AdversarySpec silent = listen;
      silent.exhaust_mode = AdversarySpec::ExhaustMode::kSilent;
      const std::string knob =
          budget == 0.0 ? "budget=inf"
                        : "budget=" + std::to_string(budget).substr(0, 3);
      add_row(t, {"ignp", "gossip-marginal/listen"}, knob,
              on_gnp(base_spec(gossip, gossip_budget, listen)));
      add_row(t, {"ignp", "gossip-marginal/silent"}, knob,
              on_gnp(base_spec(gossip, gossip_budget, silent)));
      add_row(t, {"ignp", "alg1/silent"}, knob,
              on_gnp(base_spec(alg1, alg1_budget, silent)));
    }
    radnet::harness::emit_table(env, "e18", "exhaustion", t);
  }

  // ---- Fault schedules: crash mid-broadcast, optionally recover ---------
  {
    Table t = make_table(
        "E18d — deterministic crash/recover schedules on Algorithm 1 "
        "(crashed nodes neither transmit nor hear until recovered)");
    using FE = radnet::sim::FaultEvent;
    // Algorithm 1 completes in Theta(log n) rounds on these densities, so
    // anchor the outage there — a schedule keyed to the (much larger)
    // round *budget* would fire after the broadcast already finished.
    const auto mid = static_cast<radnet::sim::Round>(
        std::max(1.0, std::log2(static_cast<double>(n))));
    const auto late = static_cast<radnet::sim::Round>(2 * mid);
    struct Scenario {
      std::string name;
      std::vector<FE> schedule;
    };
    const Scenario scenarios[] = {
        {"none", {}},
        {"crash10%", {FE{mid, FE::Kind::kCrash, 0.10}}},
        {"crash10%+recover",
         {FE{mid, FE::Kind::kCrash, 0.10}, FE{late, FE::Kind::kRecover, 1.0}}},
        {"crash30%+recover",
         {FE{mid, FE::Kind::kCrash, 0.30}, FE{late, FE::Kind::kRecover, 1.0}}},
    };
    for (const auto& s : scenarios) {
      AdversarySpec adv;
      adv.fault_schedule = s.schedule;
      add_row(t, {"ignp", "alg1"}, s.name,
              on_gnp(base_spec(alg1, alg1_budget, adv)));
      add_row(t, {"csr", "alg1"}, s.name,
              on_csr(base_spec(alg1, alg1_budget, adv)));
    }
    radnet::harness::emit_table(env, "e18", "faults", t);
  }

  // ---- Zero-completions regime: the aggregation path must stay clean ----
  // A jammer fraction this harsh strands every trial; the censored rounds
  // sample is empty, so every aggregate flows through the try_* optional
  // accessors (support/stats.hpp) and the batch layer's JSON emitter must
  // print nulls. The old throwing/NaN path turned this regime into either
  // an abort or "rounds_median": nan — non-JSON output — so the bench
  // FAILS if the emitted line is malformed rather than hiding the regime.
  {
    radnet::harness::BatchSpec allfail;
    allfail.protocol = "alg1";
    allfail.family = radnet::harness::BatchFamily::kImplicitGnp;
    allfail.n = 512;
    allfail.trials = trials;
    allfail.adversary.jammer_fraction = 0.6;
    allfail.adversary.protected_nodes = {0};
    allfail.validate();
    const auto result =
        radnet::harness::run_monte_carlo(allfail.to_mc_spec());
    const std::string json = radnet::harness::batch_result_json(
        allfail, result, trials, /*converged=*/false);
    std::cout << "E18e — all-fail spec (jam=0.6) result line:\n"
              << json << "\n";
    if (json.find("nan") != std::string::npos ||
        json.find("inf") != std::string::npos ||
        json.find("\"rounds_median\":null") == std::string::npos) {
      std::cerr << "E18e: zero-completions result line is malformed — the "
                   "empty-sample aggregation path regressed\n";
      return 1;
    }
  }

  std::cout << "Shape check: success falls and stranded/n rises monotonically "
               "in the jammer and\nByzantine fractions; alg1's max_tx stays "
               "<= 1 throughout (jam energy is the\nadversary's, not the "
               "protocol's); silent exhaustion strands where listen-only\n"
               "merely slows; recovery restores completion at a round cost "
               "close to the outage.\n";
  return 0;
}
