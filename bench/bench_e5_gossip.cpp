// E5 — Theorem 3.2: Algorithm 2 (gossip) on G(n,p).
//
// Claims validated: gossip completes w.h.p. in O(d log n) rounds and no node
// performs more than O(log n) transmissions. A deterministic TDMA sweep
// baseline shows what the randomised schedule buys in time (Theta(nD) vs
// O(d log n)) at comparable energy.
//
// --topology=csr (default) materialises each trial's G(n,p) — the
// fixed-graph reading of Theorem 3.2. --topology=implicit runs the same
// trials graph-free on the implicit dynamic backend at churn = 1: gossip
// transmits repeatedly, so the implicit family sees per-round-resampled
// links — the paper's motivating mobile setting (exact at churn = 1; see
// sim/topology.hpp).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "baselines/gossip_baselines.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::core::GossipRandomParams;
using radnet::core::GossipRandomProtocol;

}  // namespace

int main(int argc, char** argv) {
  std::string topology;
  const bool implicit =
      radnet::harness::parse_topology_flag(argc, argv, &topology, "csr");

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E5 (Theorem 3.2)",
      "Algorithm 2 gossip on G(n,p): O(d log n) rounds, O(log n) "
      "transmissions per node; TDMA sweep baseline for contrast. "
      "[topology=" + topology + "]");

  const std::uint32_t trials = env.trials(10);

  Table t({"n", "d=np", "success", "rounds", "rounds/(d*log2n)",
           "max_tx/node", "max_tx/log2n", "mean_tx/node"});
  t.set_caption("E5a: Algorithm 2 — " + std::to_string(trials) + " trials/row");

  struct Case {
    std::uint64_t n;
    double delta;
  };
  for (const auto c : {Case{256, 8.0}, Case{512, 8.0}, Case{1024, 8.0},
                       Case{512, 16.0}, Case{512, 32.0}}) {
    const auto n = static_cast<std::uint32_t>(env.scaled(c.n));
    const double p = c.delta * std::log(n) / n;
    const double d = n * p;
    const double log2n = std::log2(static_cast<double>(n));

    radnet::harness::McSpec spec;
    spec.trials = trials;
    spec.seed = env.seed + 3;
    if (implicit) {
      radnet::sim::ImplicitDynamicGnp params;
      params.n = n;
      params.p = p;
      params.churn = 1.0;
      spec.implicit_dynamic = std::move(params);
    } else {
      spec.make_graph = [n, p](std::uint32_t, Rng rng) {
        return std::make_shared<const radnet::graph::Digraph>(
            radnet::graph::gnp_directed(n, p, rng));
      };
    }
    spec.make_protocol = [p](const radnet::graph::Digraph&, std::uint32_t) {
      return std::make_unique<GossipRandomProtocol>(GossipRandomParams{.p = p});
    };
    GossipRandomProtocol probe(GossipRandomParams{.p = p});
    probe.reset(n, Rng(0));
    spec.run_options.max_rounds = probe.round_budget();

    const auto result = radnet::harness::run_monte_carlo(spec);
    const auto rounds = result.rounds_sample();
    const auto maxtx = result.max_tx_sample();

    t.row()
        .add(static_cast<std::uint64_t>(n))
        .add(d, 1)
        .add(result.success_rate(), 3)
        .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                rounds.empty() ? 0.0 : rounds.stddev(), 0)
        .add(rounds.empty() ? 0.0 : rounds.mean() / (d * log2n), 3)
        .add_pm(maxtx.mean(), maxtx.stddev(), 1)
        .add(maxtx.mean() / log2n, 3)
        .add(result.mean_tx_sample().mean(), 2);
  }
  radnet::harness::emit_table(env, "e5", "theorem32", t);

  // Baselines at one size: TDMA sweep and Decay-scheduled gossip (the
  // general-network framework style of [8,11], no knowledge of d needed).
  {
    // n large enough that the Theta(n*D) vs O(d log n) separation shows.
    const auto n = static_cast<std::uint32_t>(env.scaled(1024));
    const double p = 8.0 * std::log(n) / n;
    const double unit = n * p * std::log2(static_cast<double>(n));

    Table b({"protocol", "n", "success", "rounds", "rounds/(d*log2n)",
             "max_tx/node"});
    b.set_caption(
        "E5b: gossip baselines on the same G(n,p) — TDMA (deterministic, "
        "collision-free, slow) and decay-gossip (topology-agnostic, "
        "energy-hungry)");

    const auto run_baseline =
        [&](const std::string& name,
            const std::function<std::unique_ptr<radnet::sim::Protocol>()>& make,
            radnet::sim::Round max_rounds) {
          radnet::harness::McSpec spec;
          spec.trials = trials;
          spec.seed = env.seed + 4;
          spec.make_graph = [n, p](std::uint32_t, Rng rng) {
            return std::make_shared<const radnet::graph::Digraph>(
                radnet::graph::gnp_directed(n, p, rng));
          };
          spec.make_protocol = [&make](const radnet::graph::Digraph&,
                                       std::uint32_t) { return make(); };
          spec.run_options.max_rounds = max_rounds;
          const auto result = radnet::harness::run_monte_carlo(spec);
          const auto rounds = result.rounds_sample();
          b.row()
              .add(name)
              .add(static_cast<std::uint64_t>(n))
              .add(result.success_rate(), 3)
              .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                      rounds.empty() ? 0.0 : rounds.stddev(), 0)
              .add(rounds.empty() ? 0.0 : rounds.mean() / unit, 2)
              .add(result.max_tx_sample().mean(), 1);
        };

    run_baseline("tdma-gossip", [] {
      return std::make_unique<radnet::baselines::TdmaGossipProtocol>();
    }, 200u * n);
    run_baseline("decay-gossip", [] {
      return std::make_unique<radnet::baselines::DecayGossipProtocol>();
    }, 200u * n);
    radnet::harness::emit_table(env, "e5", "baselines", b);
  }

  // Decay-gossip's selling point is topology independence: it also
  // completes on a grid, where Algorithm 2's G(n,p) tuning does not apply.
  {
    const auto side = static_cast<radnet::graph::NodeId>(env.scaled(12, 4));
    auto g = radnet::graph::grid(side, side);
    const std::uint32_t n = g.num_nodes();
    radnet::harness::McSpec spec;
    spec.trials = trials;
    spec.seed = env.seed + 5;
    spec.make_graph = radnet::harness::shared_graph(std::move(g));
    spec.make_protocol = [](const radnet::graph::Digraph&, std::uint32_t) {
      return std::make_unique<radnet::baselines::DecayGossipProtocol>();
    };
    spec.run_options.max_rounds = 4000u * side;
    const auto result = radnet::harness::run_monte_carlo(spec);
    const auto rounds = result.rounds_sample();
    Table c({"protocol", "topology", "success", "rounds", "max_tx/node"});
    c.set_caption("E5c: general-network gossip (no d to tune against)");
    c.row()
        .add("decay-gossip")
        .add("grid " + std::to_string(side) + "x" + std::to_string(side))
        .add(result.success_rate(), 3)
        .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                rounds.empty() ? 0.0 : rounds.stddev(), 0)
        .add(result.max_tx_sample().mean(), 1);
    radnet::harness::emit_table(env, "e5", "grid", c);
    (void)n;
  }

  std::cout
      << "Shape check: rounds/(d*log2 n) and max_tx/log2 n stay in constant\n"
         "bands across n and d (Theorem 3.2). Baselines: TDMA is collision-\n"
         "free and cheap per node but needs Theta(n*D) rounds (linear in n,\n"
         "vs Algorithm 2's O(d log n)); decay-gossip matches the time shape\n"
         "without knowing d but pays ~2 transmissions per node per phase —\n"
         "an order of magnitude above Algorithm 2's O(log n) budget.\n";
  return 0;
}
