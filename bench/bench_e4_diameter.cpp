// E4 — Lemma 3.1: the diameter of directed G(n,p) is ceil(log n / log d)
// w.h.p. for p > delta log n / n. We measure the (double-sweep sampled)
// diameter over independent graphs and compare with the prediction.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "harness/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Sample;
using radnet::Table;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E4 (Lemma 3.1)",
      "Diameter of directed G(n,p) vs the prediction ceil(log n / log d).");

  const std::uint32_t trials = env.trials(10);

  Table t({"n", "delta", "d=np", "predicted", "measured", "exact match",
           "within +-1", "connected"});
  t.set_caption("E4: diameter of G(n,p) — " + std::to_string(trials) +
                " graphs/row; measured = double-sweep sampled BFS");

  struct Case {
    std::uint64_t n;
    double delta;
  };
  for (const auto c :
       {Case{2048, 8.0}, Case{4096, 8.0}, Case{8192, 8.0}, Case{16384, 8.0},
        Case{4096, 16.0}, Case{4096, 32.0}, Case{4096, 64.0}}) {
    const auto n = static_cast<std::uint32_t>(env.scaled(c.n));
    const double p = c.delta * std::log(n) / n;
    const double d = n * p;
    const auto predicted = static_cast<std::uint32_t>(
        std::ceil(std::log(static_cast<double>(n)) / std::log(d)));

    Sample measured;
    std::uint32_t connected = 0, exact_match = 0, near_match = 0;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      Rng root(env.seed + 2);
      Rng grng = root.split(trial, c.n, static_cast<std::uint64_t>(c.delta));
      const auto g = radnet::graph::gnp_directed(n, p, grng);
      const auto dia = radnet::graph::diameter_sampled(g, 4, trial + 1);
      if (!dia) continue;
      ++connected;
      measured.add(static_cast<double>(*dia));
      if (*dia == predicted) ++exact_match;
      // Lemma 3.1 is (1 + o(1)) log n / log d: at finite n, +-1 is the
      // honest reading of the claim.
      if (*dia + 1 >= predicted && *dia <= predicted + 1) ++near_match;
    }

    t.row()
        .add(static_cast<std::uint64_t>(n))
        .add(c.delta, 0)
        .add(d, 1)
        .add(static_cast<std::uint64_t>(predicted))
        .add_pm(measured.empty() ? 0.0 : measured.mean(),
                measured.empty() ? 0.0 : measured.stddev(), 2)
        .add(connected > 0 ? static_cast<double>(exact_match) / connected : 0.0,
             3)
        .add(connected > 0 ? static_cast<double>(near_match) / connected : 0.0,
             3)
        .add(static_cast<double>(connected) / trials, 3);
  }

  radnet::harness::emit_table(env, "e4", "lemma31", t);

  std::cout << "Shape check: every graph is strongly connected (connected ~ 1)\n"
               "and the measured diameter equals ceil(log n / log d), with at\n"
               "most +-1 at regime boundaries.\n";
  return 0;
}
