// E1 — Theorem 2.1: Algorithm 1 on directed G(n,p).
//
// Claims validated (shape, not constants):
//   * broadcast completes w.h.p.                    -> success column ~ 1
//   * time O(log n)                                  -> rounds / log2 n flat
//   * at most one transmission per node              -> max tx/node == 1
//   * expected total transmissions O(log n / p)      -> tx * p / log2 n flat
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "core/broadcast_random.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "harness/scaling.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::core::BroadcastRandomParams;
using radnet::core::BroadcastRandomProtocol;

struct Row {
  std::uint32_t n;
  double delta;     // p = delta ln(n) / n  (0 means use fixed_p)
  double fixed_p;   // used when delta == 0 (dense regime points)
};

}  // namespace

int main(int argc, char** argv) {
  // Algorithm 1 transmits at most once per node, so the implicit backend is
  // exactly G(n,p) (see sim/topology.hpp) and is the default; --topology=csr
  // materialises the graphs as the reference oracle.
  std::string topology;
  const bool implicit =
      radnet::harness::parse_topology_flag(argc, argv, &topology, "implicit");

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E1 (Theorem 2.1)",
      "Algorithm 1 on G(n,p): O(log n) time, <=1 transmission per node, "
      "O(log n / p) total transmissions. [topology=" + topology + "]");

  const std::uint32_t trials = env.trials(24);

  // Sparse-regime sweep (p <= n^{-2/5}) plus two dense-regime points where
  // np^2 >> log n holds at finite size (see broadcast_random.hpp).
  const Row rows[] = {
      {static_cast<std::uint32_t>(env.scaled(1024)), 8.0, 0.0},
      {static_cast<std::uint32_t>(env.scaled(2048)), 8.0, 0.0},
      {static_cast<std::uint32_t>(env.scaled(4096)), 8.0, 0.0},
      {static_cast<std::uint32_t>(env.scaled(8192)), 8.0, 0.0},
      {static_cast<std::uint32_t>(env.scaled(16384)), 8.0, 0.0},
      {static_cast<std::uint32_t>(env.scaled(4096)), 16.0, 0.0},
      {static_cast<std::uint32_t>(env.scaled(1024)), 0.0, 0.3},
      {static_cast<std::uint32_t>(env.scaled(512)), 0.0, 0.5},
  };

  Table t({"n", "p", "d=np", "T", "success", "rounds", "rounds/log2n",
           "total_tx", "tx*p/log2n", "max_tx/node"});
  t.set_caption("E1: Algorithm 1 on directed G(n,p) — " +
                std::to_string(trials) + " trials/row");

  radnet::harness::ScalingCheck time_scaling("rounds = O(log n), sparse sweep");
  radnet::harness::ScalingCheck energy_scaling(
      "total transmissions = O(log n / p), sparse sweep");

  for (const auto& row : rows) {
    const std::uint32_t n = row.n;
    const double p =
        row.delta > 0.0 ? row.delta * std::log(n) / n : row.fixed_p;
    const double log2n = std::log2(static_cast<double>(n));

    radnet::harness::McSpec spec;
    spec.trials = trials;
    spec.seed = env.seed;
    if (implicit) {
      spec.implicit_gnp = radnet::harness::ImplicitGnpParams{n, p};
    } else {
      spec.make_graph = [n, p](std::uint32_t, Rng rng) {
        return std::make_shared<const radnet::graph::Digraph>(
            radnet::graph::gnp_directed(n, p, rng));
      };
    }
    spec.make_protocol = [p](const radnet::graph::Digraph&, std::uint32_t) {
      return std::make_unique<BroadcastRandomProtocol>(
          BroadcastRandomParams{.p = p});
    };
    BroadcastRandomProtocol probe(BroadcastRandomParams{.p = p});
    probe.reset(n, Rng(0));
    spec.run_options.max_rounds = probe.round_budget();

    const auto result = radnet::harness::run_monte_carlo(spec);
    const auto rounds = result.rounds_sample();
    const auto total = result.total_tx_sample();

    if (row.delta == 8.0 && !rounds.empty()) {  // the homogeneous sweep
      time_scaling.add(log2n, rounds.mean());
      energy_scaling.add(log2n / p, total.mean());
    }

    t.row()
        .add(static_cast<std::uint64_t>(n))
        .add(p, 5)
        .add(n * p, 1)
        .add(static_cast<std::uint64_t>(probe.phase1_end()))
        .add(result.success_rate(), 3)
        .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                rounds.empty() ? 0.0 : rounds.stddev(), 1)
        .add(rounds.empty() ? 0.0 : rounds.mean() / log2n, 3)
        .add_pm(total.mean(), total.stddev(), 0)
        .add(total.mean() * p / log2n, 3)
        .add(result.max_tx_sample().max(), 0);
  }

  radnet::harness::emit_table(env, "e1", "theorem21", t);
  // The sweep's log n range spans barely 1.4x, far too narrow for a slope
  // fit — the right criterion for the O(log n) time claim is flatness of
  // rounds/log2 n; the energy model log(n)/p spans ~19x, so a slope fit is
  // meaningful there.
  std::cout << time_scaling.report_band(2.5) << '\n'
            << energy_scaling.report() << "\n\n";

  std::cout
      << "Shape check: success ~ 1; rounds/log2n and tx*p/log2n stay within\n"
         "a constant band across n (the paper's O(log n) and O(log n / p));\n"
         "max_tx/node is identically 1 (every node transmits at most once).\n";
  return 0;
}
