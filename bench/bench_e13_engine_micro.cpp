// E13 — simulator microbenchmarks (google-benchmark).
//
// Measures the substrate itself: rounds/second of the optimised engine vs
// the first-principles reference engine across graph sizes and densities,
// plus generator and rumor-merge throughput. These are the numbers that
// justify trusting the experiment sweeps to run at laptop scale.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/reference_engine.hpp"
#include "support/bitset.hpp"
#include "support/simd.hpp"

namespace {

using radnet::Rng;
using radnet::graph::Digraph;

/// Everybody transmits with fixed probability; never completes (pure
/// engine-throughput load).
class LoadProtocol final : public radnet::sim::Protocol {
 public:
  explicit LoadProtocol(double q) : q_(q) {}

  void reset(radnet::graph::NodeId n, Rng rng) override {
    rng_ = rng;
    all_.resize(n);
    for (radnet::graph::NodeId v = 0; v < n; ++v) all_[v] = v;
  }
  [[nodiscard]] std::span<const radnet::graph::NodeId> candidates()
      const override {
    return {all_.data(), all_.size()};
  }
  [[nodiscard]] bool wants_transmit(radnet::graph::NodeId,
                                    radnet::sim::Round) override {
    return rng_.bernoulli(q_);
  }
  void on_delivered(radnet::graph::NodeId, radnet::graph::NodeId,
                    radnet::sim::Round) override {}
  [[nodiscard]] bool is_complete() const override { return false; }
  [[nodiscard]] std::string name() const override { return "load"; }

 private:
  double q_;
  Rng rng_;
  std::vector<radnet::graph::NodeId> all_;
};

Digraph make_graph(std::uint32_t n) {
  Rng rng(n);
  return radnet::graph::gnp_directed(n, 8.0 * std::log(n) / n, rng);
}

void BM_EngineRounds(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Digraph g = make_graph(n);
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = 64;
  for (auto _ : state) {
    LoadProtocol proto(0.1);
    benchmark::DoNotOptimize(engine.run(g, proto, Rng(1), options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["nodes"] = n;
}
BENCHMARK(BM_EngineRounds)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_ReferenceEngineRounds(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Digraph g = make_graph(n);
  radnet::sim::ReferenceEngine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = 64;
  for (auto _ : state) {
    LoadProtocol proto(0.1);
    benchmark::DoNotOptimize(engine.run(g, proto, Rng(1), options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ReferenceEngineRounds)->Arg(1 << 10)->Arg(1 << 12);

void BM_ImplicitEngineRounds(benchmark::State& state) {
  // Same load as BM_EngineRounds, but over the implicit G(n,p) backend —
  // no graph is ever built; each round is sampled from the transmitter
  // count alone.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double p = 8.0 * std::log(n) / n;
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = 64;
  for (auto _ : state) {
    const radnet::sim::ImplicitGnp gnp{n, p, Rng(n)};
    LoadProtocol proto(0.1);
    benchmark::DoNotOptimize(engine.run(gnp, proto, Rng(1), options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["nodes"] = n;
}
BENCHMARK(BM_ImplicitEngineRounds)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_BroadcastEndToEndCsr(benchmark::State& state) {
  // Graph build + full Algorithm 1 run: the quantity the implicit backend
  // attacks (compare BM_BroadcastEndToEndImplicit at equal n).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double p = 16.0 / n;
  radnet::sim::Engine engine;
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng rng(trial++);
    const Digraph g = radnet::graph::gnp_directed(n, p, rng);
    radnet::core::BroadcastRandomProtocol proto(
        radnet::core::BroadcastRandomParams{.p = p});
    proto.reset(n, Rng(0));
    radnet::sim::RunOptions options;
    options.max_rounds = proto.round_budget();
    benchmark::DoNotOptimize(engine.run(g, proto, Rng(trial), options));
  }
  state.counters["nodes"] = n;
}
BENCHMARK(BM_BroadcastEndToEndCsr)->Arg(1 << 14)->Arg(1 << 16);

void BM_BroadcastEndToEndImplicit(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double p = 16.0 / n;
  radnet::sim::Engine engine;
  std::uint64_t trial = 0;
  for (auto _ : state) {
    const radnet::sim::ImplicitGnp gnp{n, p, Rng(trial++)};
    radnet::core::BroadcastRandomProtocol proto(
        radnet::core::BroadcastRandomParams{.p = p});
    proto.reset(n, Rng(0));
    radnet::sim::RunOptions options;
    options.max_rounds = proto.round_budget();
    benchmark::DoNotOptimize(engine.run(gnp, proto, Rng(trial), options));
  }
  state.counters["nodes"] = n;
}
BENCHMARK(BM_BroadcastEndToEndImplicit)->Arg(1 << 14)->Arg(1 << 16)->Arg(1 << 20);

/// Shared shape of the two per-sweep SIMD benchmarks: Arg(0) = n, Arg(1) =
/// dispatch mode (0 scalar, 1 SIMD — degrades to scalar without AVX2, the
/// avx2_active counter records which kernels really ran). One iteration =
/// one full round sweep; ns/sweep scalar vs SIMD is the tracked pair.
radnet::simd::Mode arg_mode(benchmark::State& state) {
  return state.range(1) == 0 ? radnet::simd::Mode::kScalar
                             : radnet::simd::Mode::kAvx2;
}

struct NullSink {
  std::uint64_t events = 0;
  void deliver(radnet::graph::NodeId, radnet::graph::NodeId) { ++events; }
  void collide(radnet::graph::NodeId) { ++events; }
  void deliver_bulk(std::uint64_t count) { events += count; }
  void collide_bulk(std::uint64_t count) { events += count; }
};

void BM_DenseClassifySweep(benchmark::State& state) {
  // The dense G(n,p) lane-classification sweep in its plain regime
  // (k*p ~ 0.8 ln n, q > 0.5): every listener draws one classification
  // uniform, batched over RNG lanes.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double p = 8.0 * std::log(n) / n;
  radnet::simd::set_mode(arg_mode(state));
  radnet::sim::ImplicitGnpTopology topo(radnet::sim::ImplicitGnp{n, p, Rng(91)});
  std::vector<radnet::graph::NodeId> tx;
  std::vector<char> is_tx(n, 0);
  for (radnet::graph::NodeId v = 0; v < n / 10; ++v) {
    tx.push_back(v * 7 % n);
    is_tx[tx.back()] = 1;
  }
  NullSink sink;
  std::uint32_t round = 0;
  for (auto _ : state) {
    topo.begin_round(round++);
    topo.deliver({tx.data(), tx.size()}, is_tx, /*half_duplex=*/false,
                 radnet::sim::DeliveryPath::kAuto, std::nullopt,
                 /*collisions_inert=*/false, sink);
    benchmark::DoNotOptimize(sink.events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
  state.counters["nodes"] = n;
  state.counters["avx2_active"] =
      radnet::simd::active_mode() == radnet::simd::Mode::kAvx2 ? 1 : 0;
}
BENCHMARK(BM_DenseClassifySweep)
    ->Args({1 << 14, 0})->Args({1 << 14, 1})
    ->Args({1 << 16, 0})->Args({1 << 16, 1});

void BM_RggDistanceSweep(benchmark::State& state) {
  // The RGG distance-mask listener scan at mean degree 64 with half the
  // nodes transmitting — dense cells, so the vector distance masks (not
  // the bucketing or motion) dominate.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double radius = std::sqrt(64.0 / (3.141592653589793 * n));
  radnet::simd::set_mode(arg_mode(state));
  radnet::sim::ImplicitRggTopology topo(
      radnet::sim::ImplicitRgg{n, radius, radius / 8.0, Rng(92)});
  std::vector<radnet::graph::NodeId> tx;
  std::vector<char> is_tx(n, 0);
  for (radnet::graph::NodeId v = 0; v < n; v += 2) {
    tx.push_back(v);
    is_tx[v] = 1;
  }
  NullSink sink;
  std::uint32_t round = 0;
  for (auto _ : state) {
    topo.begin_round(round++);
    topo.deliver({tx.data(), tx.size()}, is_tx, /*half_duplex=*/false,
                 radnet::sim::DeliveryPath::kAuto, std::nullopt,
                 /*collisions_inert=*/false, sink);
    benchmark::DoNotOptimize(sink.events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
  state.counters["nodes"] = n;
  state.counters["avx2_active"] =
      radnet::simd::active_mode() == radnet::simd::Mode::kAvx2 ? 1 : 0;
}
BENCHMARK(BM_RggDistanceSweep)
    ->Args({1 << 14, 0})->Args({1 << 14, 1})
    ->Args({1 << 16, 0})->Args({1 << 16, 1});

void BM_GnpGeneration(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double p = 8.0 * std::log(n) / n;
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(radnet::graph::gnp_directed(n, p, rng));
  state.counters["nodes"] = n;
}
BENCHMARK(BM_GnpGeneration)->Arg(1 << 12)->Arg(1 << 16);

void BM_GeometricGeneration(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double r = radnet::graph::rgg_threshold_radius(n, 2.0);
  Rng rng(8);
  for (auto _ : state)
    benchmark::DoNotOptimize(radnet::graph::random_geometric(n, r, rng));
}
BENCHMARK(BM_GeometricGeneration)->Arg(1 << 12)->Arg(1 << 16);

void BM_RumorMerge(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  radnet::Bitset a(bits), b(bits);
  for (std::size_t i = 0; i < bits; i += 3) b.set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.unite(b));
    benchmark::DoNotOptimize(a.count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_RumorMerge)->Arg(1 << 10)->Arg(1 << 14);

void BM_GossipRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double p = 8.0 * std::log(n) / n;
  const Digraph g = make_graph(n);
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = 32;
  for (auto _ : state) {
    radnet::core::GossipRandomProtocol proto(
        radnet::core::GossipRandomParams{.p = p});
    benchmark::DoNotOptimize(engine.run(g, proto, Rng(2), options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_GossipRound)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
