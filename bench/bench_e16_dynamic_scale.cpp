// E16 — graph-free dynamic topologies at scale.
//
// PR 1 broke the O(m) graph-memory wall for *static* G(n,p) broadcast
// (bench E15). This bench breaks it for the paper's motivating *dynamic*
// setting: gossip under per-round link churn. The explicit oracle
// (graph::ChurnGnp) keeps one byte of state per ordered pair — O(n^2)
// memory and an O(n^2) rebuild every round — so it tops out around
// n ~ 10^4. The implicit dynamic backend (sim::ImplicitDynamicGnpTopology)
// keeps no graph at all: a bounded pair-state sketch plus per-round
// sampling, O(n) per round.
//
// The protocol is the single-rumor marginal of Algorithm 2
// (core::GossipRumorMarginalProtocol): exactly the law of one rumor's
// spread inside a full gossip execution, in O(n) state instead of the n^2
// rumor matrix — the protocol-side half of making gossip graph-free.
//
// Default mode prices both backends at explicit-feasible sizes and the
// implicit backend alone beyond them. With --full it also demonstrates the
// acceptance target: an n = 10^7, churn = 0.5 gossip trial, run in a
// forked child under a 2 GiB RLIMIT_AS (a production-container-sized
// budget) — a topology whose explicit pair state alone would need ~100 TB.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>

#include "core/gossip_random.hpp"
#include "graph/dynamics.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "support/cli_args.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Sample;
using radnet::core::GossipRumorMarginalParams;
using radnet::core::GossipRumorMarginalProtocol;

constexpr double kChurn = 0.5;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

radnet::sim::RunOptions options_for(std::uint32_t n, double p) {
  GossipRumorMarginalProtocol probe(GossipRumorMarginalParams{.p = p});
  probe.reset(n, Rng(0));
  radnet::sim::RunOptions options;
  options.max_rounds = probe.round_budget();
  return options;
}

struct Timing {
  Sample ms;
  Sample rounds;
  bool ran = false;
};

Timing time_explicit(std::uint32_t n, double p, std::uint32_t trials,
                     std::uint64_t seed) {
  Timing t;
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1);
  if (pairs >= (1ull << 32)) return t;  // dense pair state unrepresentable
  t.ran = true;
  const auto options = options_for(n, p);
  radnet::sim::Engine engine;
  const Rng root(seed);
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    const double t0 = now_ms();
    radnet::graph::ChurnGnp topo(n, p, kChurn, root.split(trial, 0));
    GossipRumorMarginalProtocol proto(GossipRumorMarginalParams{.p = p});
    const auto r = engine.run(topo, proto, root.split(trial, 1), options);
    t.ms.add(now_ms() - t0);
    if (r.completed) t.rounds.add(static_cast<double>(r.completion_round));
  }
  return t;
}

Timing time_implicit(std::uint32_t n, double p, std::uint32_t trials,
                     std::uint64_t seed) {
  Timing t;
  t.ran = true;
  const auto options = options_for(n, p);
  radnet::sim::Engine engine;
  const Rng root(seed);
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    const double t0 = now_ms();
    radnet::sim::ImplicitDynamicGnp spec;
    spec.n = n;
    spec.p = p;
    spec.churn = kChurn;
    spec.rng = root.split(trial, 0);
    GossipRumorMarginalProtocol proto(GossipRumorMarginalParams{.p = p});
    const auto r = engine.run(spec, proto, root.split(trial, 1), options);
    t.ms.add(now_ms() - t0);
    if (r.completed) t.rounds.add(static_cast<double>(r.completion_round));
  }
  return t;
}

constexpr std::uint32_t kHugeN = 10'000'000;
constexpr double kHugeP = 16.0 / kHugeN;

int attempt_implicit_huge() {
  radnet::sim::Engine engine;
  radnet::sim::ImplicitDynamicGnp spec;
  spec.n = kHugeN;
  spec.p = kHugeP;
  spec.churn = kChurn;
  spec.rng = Rng(1);
  GossipRumorMarginalProtocol proto(GossipRumorMarginalParams{.p = kHugeP});
  const auto run =
      engine.run(spec, proto, Rng(2), options_for(kHugeN, kHugeP));
  if (!run.completed) return 2;
  // _exit() skips stream teardown, so flush explicitly.
  std::cout << "  (rounds: " << run.completion_round
            << ", transmissions: " << run.ledger.total_transmissions << ")"
            << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  radnet::CliArgs args = [&] {
    try {
      return radnet::CliArgs(argc, argv, {"full"});
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      std::exit(2);
    }
  }();
  const bool full = args.get_bool("full", false);

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E16 (dynamic scale)",
      "Churned gossip (single-rumor marginal of Algorithm 2, churn = 0.5): "
      "explicit ChurnGnp pair state vs the graph-free implicit dynamic "
      "backend.");

  const std::uint32_t trials = env.trials(3);
  // Floor of 64 keeps p = 16/n a probability at any RADNET_SCALE.
  const std::uint32_t sizes[] = {
      static_cast<std::uint32_t>(env.scaled(1u << 10, 64)),
      static_cast<std::uint32_t>(env.scaled(1u << 12, 64)),
      static_cast<std::uint32_t>(env.scaled(1u << 16, 64)),
      static_cast<std::uint32_t>(env.scaled(1u << 18, 64)),
  };

  radnet::Table t({"n", "d=np", "explicit ms", "explicit MB(pairs)",
                   "implicit ms", "rounds", "speedup"});
  t.set_caption("E16: per-trial medians over " + std::to_string(trials) +
                " trials, p = 16/n, churn = 0.5 — explicit rows stop where "
                "O(n^2) pair state stops fitting");
  for (const std::uint32_t n : sizes) {
    const double p = 16.0 / n;
    // The explicit oracle pays O(n^2) per round; keep its rows to sizes
    // where a trial finishes in seconds.
    const bool run_explicit = n <= (1u << 12);
    const Timing exp =
        run_explicit ? time_explicit(n, p, trials, env.seed) : Timing{};
    const Timing imp = time_implicit(n, p, trials, env.seed);
    const double pair_mb =
        static_cast<double>(n) * (static_cast<double>(n) - 1.0) /
        (1024.0 * 1024.0);
    radnet::Table& row = t.row();
    row.add(static_cast<std::uint64_t>(n)).add(n * p, 0);
    if (exp.ran)
      row.add(exp.ms.median(), 1);
    else
      row.add("n/a");
    row.add(pair_mb, 1);
    row.add(imp.ms.median(), 1)
        .add(imp.rounds.empty() ? 0.0 : imp.rounds.median(), 0);
    if (exp.ran)
      row.add(exp.ms.median() / imp.ms.median(), 1);
    else
      row.add("n/a");
  }
  radnet::harness::emit_table(env, "e16", "dynamic_scale", t);

  if (full) {
    std::cout << "\n--- n = 10^7, churn = 0.5 gossip under a 2 GiB memory "
                 "budget ---\n"
              << "explicit pair state would need n*(n-1) bytes ~ 100 TB; "
                 "ChurnGnp cannot even represent it.\n";
    const std::uint64_t limit = 2ull << 30;
    const double t0 = now_ms();
    const int imp_rc = radnet::harness::run_memory_limited(limit, attempt_implicit_huge);
    const double imp_ms = now_ms() - t0;
    std::cout << "implicit dynamic trial (n=10^7, p=16/n, churn=0.5): "
              << (imp_rc == 0 ? "completed" : "FAILED") << " in "
              << imp_ms / 1000.0 << " s (exit " << imp_rc << ")\n";
    if (imp_rc != 0) return 1;
  } else {
    std::cout << "\n(run with --full for the n = 10^7 2 GiB-budget "
                 "demonstration)\n";
  }

  std::cout
      << "\nShape check: the implicit column grows ~linearly in n (O(n) per\n"
         "round, rounds ~ log n) while the explicit column grows ~n^2 and\n"
         "stops existing; both agree on the completion-round scale (the\n"
         "statistical oracle tests pin the distributions).\n";
  return 0;
}
