// F1 — Figure 1: the distribution alpha vs Czumaj–Rytter's alpha'.
//
// Regenerates the figure as tables: for representative (n, D) pairs, the
// per-k probabilities of both distributions, their ratio, the silence mass,
// and the derived per-round expected transmit probability E[2^{-I}] — the
// quantity whose Theta(1/lambda) scaling drives Theorem 4.1's energy bound.
#include <cstdint>
#include <iostream>

#include "core/distributions.hpp"
#include "harness/experiment.hpp"
#include "support/math.hpp"
#include "support/table.hpp"

namespace {

using radnet::Table;
using radnet::core::SequenceDistribution;

void emit_pair(const radnet::harness::BenchEnv& env, std::uint64_t n,
               std::uint64_t D) {
  const auto a = SequenceDistribution::alpha(n, D);
  const auto ap = SequenceDistribution::alpha_prime(n, D);

  Table t({"k", "alpha_k", "alpha'_k", "alpha/alpha'", "2^-k"});
  t.set_caption("Figure 1 profile: n=" + std::to_string(n) +
                ", D=" + std::to_string(D) +
                ", lambda=" + std::to_string(a.lambda()));
  for (std::uint32_t k = 1; k <= a.max_k(); ++k) {
    t.row()
        .add(static_cast<std::uint64_t>(k))
        .add(a.prob(k), 5)
        .add(ap.prob(k), 5)
        .add(ap.prob(k) > 0 ? a.prob(k) / ap.prob(k) : 0.0, 2)
        .add(radnet::pow2_neg(k), 6);
  }
  radnet::harness::emit_table(env, "f1", "profile_n" + std::to_string(n) +
                                             "_D" + std::to_string(D),
                              t);

  Table s({"dist", "silence", "E[2^-I]", "E[2^-I]*lambda", "min_k alpha_k"});
  s.set_caption("Derived quantities (paper: E[2^-I] = Theta(1/lambda) for alpha)");
  const auto derived = [&](const SequenceDistribution& d, const char* name) {
    double min_k = 1.0;
    for (std::uint32_t k = 1; k <= d.max_k(); ++k)
      min_k = std::min(min_k, d.prob(k));
    s.row()
        .add(name)
        .add(d.silence_prob(), 4)
        .add(d.expected_tx_prob(), 5)
        .add(d.expected_tx_prob() * d.lambda(), 4)
        .add(min_k, 6);
  };
  derived(a, "alpha");
  derived(ap, "alpha'");
  radnet::harness::emit_table(env, "f1", "derived_n" + std::to_string(n) +
                                             "_D" + std::to_string(D),
                              s);
}

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "F1 (Figure 1)",
      "alpha vs alpha': per-round send-probability distributions for known-D "
      "broadcast. alpha keeps the 1/(2 log n) floor; alpha' does not, which "
      "is why the CR baseline needs Theta(log(n/D)) x longer active windows.");

  emit_pair(env, 1 << 12, 1 << 3);    // lambda = 9: floor active in deep tail
  emit_pair(env, 1 << 12, 1 << 9);    // lambda = 3: long floored tail
  emit_pair(env, 1 << 16, 1 << 10);   // lambda = 6 at larger n

  std::cout << "Shape check: alpha_k >= alpha'_k everywhere, with the gap\n"
               "concentrated at large k (the floor region). alpha' decays\n"
               "geometrically to its minimum; alpha flattens at 1/(2 log n).\n";
  return 0;
}
