// E6 — Theorem 4.1: Algorithm 3 on general networks with known diameter,
// against the Czumaj–Rytter (alpha', longer window) transformation and the
// BGI Decay baseline.
//
// Claims validated: all three finish in comparable time envelopes, but the
// expected transmissions per node separate as
//   alg3 ~ log^2 n / lambda   <   CR ~ log^2 n   <~  Decay (unbounded)
// with lambda = log2(n/D). Columns normalise energy by log^2 n / lambda so
// alg3's column is flat ~constant while CR's grows like lambda.
//
// --topology=csr (default) materialises every network. --topology=implicit
// swaps the gnp row onto the graph-free implicit dynamic backend at
// churn = 1 (these protocols retransmit, so the implicit family models the
// per-round-resampled G(n,p) — exact at churn = 1; the structured
// topologies have no implicit counterpart and stay explicit).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "baselines/czumaj_rytter.hpp"
#include "baselines/decay.hpp"
#include "core/broadcast_general.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/math.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::graph::Digraph;

struct Topology {
  std::string name;
  Digraph graph;
  std::uint64_t diameter;
  /// Run this row graph-free on the implicit dynamic backend (gnp only).
  bool implicit = false;
  radnet::graph::NodeId n = 0;
  double p = 0.0;

  /// Node count regardless of backend (the implicit rows carry an empty
  /// placeholder Digraph whose num_nodes() is 0).
  [[nodiscard]] radnet::graph::NodeId nodes() const {
    return implicit ? n : graph.num_nodes();
  }
};

void run_protocol_row(Table& t, const radnet::harness::BenchEnv& env,
                      const Topology& topo, const std::string& proto_name,
                      std::uint32_t trials,
                      const std::function<std::unique_ptr<radnet::sim::Protocol>()>& factory,
                      radnet::sim::Round max_rounds) {
  radnet::harness::McSpec spec;
  spec.trials = trials;
  spec.seed = env.seed + 6;
  if (topo.implicit) {
    radnet::sim::ImplicitDynamicGnp params;
    params.n = topo.n;
    params.p = topo.p;
    params.churn = 1.0;
    spec.implicit_dynamic = std::move(params);
  } else {
    spec.make_graph = radnet::harness::shared_graph(Digraph(topo.graph));
  }
  spec.make_protocol = [&factory](const Digraph&, std::uint32_t) {
    return factory();
  };
  spec.run_options.max_rounds = max_rounds;
  spec.run_options.stop_on_empty_candidates = true;
  // Honest energy accounting: nodes cannot detect global completion, so the
  // simulation runs until every node's own activity window has expired.
  spec.run_options.run_to_quiescence = true;

  const auto result = radnet::harness::run_monte_carlo(spec);
  const auto rounds = result.rounds_sample();
  const double n = topo.nodes();
  const double lambda = radnet::lambda_of(topo.nodes(), topo.diameter);
  const double log2n = std::log2(n);
  const double energy_unit = log2n * log2n / lambda;
  const double time_unit =
      static_cast<double>(topo.diameter) * lambda + log2n * log2n;

  t.row()
      .add(topo.name)
      .add(topo.diameter)
      .add(proto_name)
      .add(result.success_rate(), 2)
      .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
              rounds.empty() ? 0.0 : rounds.stddev(), 0)
      .add(rounds.empty() ? 0.0 : rounds.mean() / time_unit, 2)
      .add_pm(result.mean_tx_sample().mean(), result.mean_tx_sample().stddev(),
              2)
      .add(result.mean_tx_sample().mean() / energy_unit, 3);
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology;
  const bool implicit =
      radnet::harness::parse_topology_flag(argc, argv, &topology, "csr");

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E6 (Theorem 4.1)",
      "Algorithm 3 vs Czumaj-Rytter(alpha') vs Decay on general networks "
      "with known diameter D: same time envelope, alg3 saves a "
      "Theta(log(n/D)) factor of energy. [topology=" + topology + "]");

  const std::uint32_t trials = env.trials(10);

  std::vector<Topology> topologies;
  topologies.push_back({"path", radnet::graph::path(
                                    static_cast<radnet::graph::NodeId>(
                                        env.scaled(256))),
                        env.scaled(256) - 1});
  {
    const auto side =
        static_cast<radnet::graph::NodeId>(env.scaled(16, 4));
    topologies.push_back(
        {"grid", radnet::graph::grid(side, side), 2ull * (side - 1)});
  }
  {
    auto g = radnet::graph::cluster_chain(
        16, static_cast<radnet::graph::NodeId>(env.scaled(16, 4)));
    const auto dia = radnet::graph::diameter_exact(g);
    topologies.push_back({"cluster-chain", std::move(g), *dia});
  }
  {
    const auto n = static_cast<radnet::graph::NodeId>(env.scaled(1024));
    const double p = 10.0 * std::log(n) / n;
    if (implicit) {
      // Graph-free row: D from the Lemma 3.1 prediction (the protocol only
      // needs an upper bound on the diameter).
      const auto D = static_cast<std::uint64_t>(std::ceil(
                         std::log(static_cast<double>(n)) / std::log(n * p))) +
                     1;
      Topology topo{"gnp(implicit)", Digraph(), D};
      topo.implicit = true;
      topo.n = n;
      topo.p = p;
      topologies.push_back(std::move(topo));
    } else {
      Rng grng(env.seed + 5);
      auto g = radnet::graph::gnp_directed(n, p, grng);
      const auto dia = radnet::graph::diameter_sampled(g, 4, 11);
      topologies.push_back({"gnp", std::move(g), dia ? *dia : 3});
    }
  }
  {
    const auto n = static_cast<radnet::graph::NodeId>(env.scaled(512));
    Rng grng(env.seed + 7);
    auto g = radnet::graph::random_geometric(
        n, radnet::graph::rgg_threshold_radius(n, 3.0), grng);
    const auto dia = radnet::graph::diameter_sampled(g, 4, 13);
    if (dia) topologies.push_back({"rgg", std::move(g), *dia});
  }

  Table t({"topology", "D", "protocol", "success", "rounds", "rounds/bound",
           "tx/node", "tx/node/(log2n^2/lambda)"});
  t.set_caption("E6: known-diameter broadcast comparison — " +
                std::to_string(trials) + " trials/cell");

  for (const auto& topo : topologies) {
    const std::uint64_t n = topo.nodes();
    const double lambda = radnet::lambda_of(n, topo.diameter);
    const auto budget =
        radnet::core::general_round_budget(n, topo.diameter, lambda, 96.0);

    run_protocol_row(t, env, topo, "alg3(alpha)", trials, [&] {
      return std::make_unique<radnet::core::GeneralBroadcastProtocol>(
          radnet::core::GeneralBroadcastParams{
              .distribution = radnet::core::SequenceDistribution::alpha(
                  n, topo.diameter),
              .window = radnet::core::general_window(n, 4.0),
              .source = 0,
              .label = "alg3"});
    }, budget);

    run_protocol_row(t, env, topo, "czumaj-rytter(alpha')", trials, [&] {
      return radnet::baselines::czumaj_rytter(n, topo.diameter, 4.0);
    }, budget);

    // Decay gets the window its w.h.p. guarantee needs: O(log n) phases per
    // node (each phase delivers to a fixed neighbour with constant
    // probability), comparable in rounds to alg3's beta * log^2 n.
    const auto decay_phases = static_cast<std::uint32_t>(
        std::ceil(4.0 * std::log2(static_cast<double>(n))));
    run_protocol_row(t, env, topo, "decay", trials, [&] {
      return std::make_unique<radnet::baselines::DecayProtocol>(
          radnet::baselines::DecayParams{.active_phases = decay_phases});
    }, budget);
  }

  radnet::harness::emit_table(env, "e6", "theorem41", t);

  std::cout
      << "Shape check: all protocols succeed; alg3's normalised energy\n"
         "column is ~constant across topologies while czumaj-rytter's grows\n"
         "with lambda = log2(n/D) and decay's is larger still on\n"
         "low-diameter networks.\n";
  return 0;
}
