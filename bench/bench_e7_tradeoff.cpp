// E7 — Theorem 4.2: the time/energy trade-off.
//
// For log(n/D) <= lambda <= log n, Algorithm 3 with alpha(lambda) finishes
// in O(D lambda + log^2 n) rounds using O(log^2 n / lambda) transmissions
// per node. Sweeping lambda on a fixed network traces the trade-off curve:
// time grows ~linearly in lambda (on a D-dominated topology) while energy
// falls ~1/lambda until the 1/(2 log n) floor flattens it — the paper's
// Omega(log n) messages-per-node wall.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>

#include "core/broadcast_general.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Table;
using radnet::graph::Digraph;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E7 (Theorem 4.2)",
      "Trade-off sweep: time O(D*lambda + log^2 n) vs energy "
      "O(log^2 n / lambda) on a fixed path network.");

  const std::uint32_t trials = env.trials(12);
  const auto n = static_cast<radnet::graph::NodeId>(env.scaled(256));
  const std::uint64_t D = n - 1;
  const Digraph g = radnet::graph::path(n);
  const double log2n = std::log2(static_cast<double>(n));

  Table t({"lambda", "success", "rounds", "rounds/(D*lambda+log2n^2)",
           "tx/node", "tx/node*lambda/log2n^2", "E[2^-I]"});
  t.set_caption("E7: Algorithm 3 with alpha(lambda) on path(n=" +
                std::to_string(n) + ") — " + std::to_string(trials) +
                " trials/row");

  const auto max_lambda = static_cast<std::uint32_t>(log2n);
  for (std::uint32_t l = 1; l <= max_lambda; ++l) {
    const double lambda = static_cast<double>(l);
    const auto dist =
        radnet::core::SequenceDistribution::alpha_with_lambda(n, lambda);
    const double expected_tx = dist.expected_tx_prob();

    radnet::harness::McSpec spec;
    spec.trials = trials;
    spec.seed = env.seed + 8;
    spec.make_graph = radnet::harness::shared_graph(Digraph(g));
    spec.make_protocol = [&](const Digraph&, std::uint32_t) {
      return std::make_unique<radnet::core::GeneralBroadcastProtocol>(
          radnet::core::GeneralBroadcastParams{
              .distribution = dist,
              .window = radnet::core::general_window(n, 6.0),
              .source = 0,
              .label = ""});
    };
    spec.run_options.max_rounds =
        radnet::core::general_round_budget(n, D, lambda, 128.0);
    spec.run_options.stop_on_empty_candidates = true;

    const auto result = radnet::harness::run_monte_carlo(spec);
    const auto rounds = result.rounds_sample();
    const double time_unit = static_cast<double>(D) * lambda + log2n * log2n;

    t.row()
        .add(static_cast<std::uint64_t>(l))
        .add(result.success_rate(), 2)
        .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                rounds.empty() ? 0.0 : rounds.stddev(), 0)
        .add(rounds.empty() ? 0.0 : rounds.mean() / time_unit, 3)
        .add_pm(result.mean_tx_sample().mean(),
                result.mean_tx_sample().stddev(), 2)
        .add(result.mean_tx_sample().mean() * lambda / (log2n * log2n), 3)
        .add(expected_tx, 4);
  }

  radnet::harness::emit_table(env, "e7", "theorem42", t);

  std::cout
      << "Shape check: rounds grow with lambda while tx/node falls ~1/lambda\n"
         "(normalised columns flat) until lambda > log2(n)/2, where the\n"
         "1/(2 log n) floor stops further energy savings — the Omega(log n)\n"
         "per-node lower bound of Section 4.2.\n";
  return 0;
}
