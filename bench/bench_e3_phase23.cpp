// E3 — Lemmas 2.5 / 2.6: Phases 2 and 3 of Algorithm 1.
//
// Lemma 2.5 (sparse regime p <= n^{-2/5}): after the single Phase-2 round,
// a constant fraction of all nodes is informed — we report the fraction and
// its concentration. Lemma 2.6: Phase 3 finishes the job within O(log n)
// rounds — we report (completion round - phase3 start) / log2 n.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "core/broadcast_random.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Sample;
using radnet::Table;
using radnet::core::BroadcastRandomParams;
using radnet::core::BroadcastRandomProtocol;

}  // namespace

int main() {
  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E3 (Lemmas 2.5/2.6)",
      "Phase 2 informs Theta(n) nodes in one round; Phase 3 mops up the rest "
      "in O(log n) rounds.");

  const std::uint32_t trials = env.trials(24);

  Table t({"n", "p", "frac informed after P2", "P3 rounds", "P3/log2n",
           "success"});
  t.set_caption("E3: Phase 2/3 behaviour in the sparse regime — " +
                std::to_string(trials) + " trials/row");

  for (const std::uint64_t base : {2048ull, 4096ull, 8192ull, 16384ull}) {
    const auto n = static_cast<std::uint32_t>(env.scaled(base));
    const double p = 8.0 * std::log(n) / n;
    BroadcastRandomProtocol probe(BroadcastRandomParams{.p = p});
    probe.reset(n, Rng(0));
    if (!probe.has_phase2()) {
      std::cout << "skipping n=" << n << " (dense regime, no Phase 2)\n";
      continue;
    }
    const auto p3_begin = probe.phase3_begin();

    Sample frac_after_p2, p3_rounds;
    std::uint32_t successes = 0;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      Rng root(env.seed + 1);
      Rng grng = root.split(trial, 0);
      const auto g = radnet::graph::gnp_directed(n, p, grng);
      BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
      radnet::sim::Engine engine;
      radnet::sim::RunOptions options;
      options.max_rounds = probe.round_budget();
      options.round_observer = [&](radnet::sim::Round r) {
        if (r + 1 == p3_begin)  // end of the Phase-2 round
          frac_after_p2.add(static_cast<double>(proto.informed_count()) / n);
      };
      const auto res = engine.run(g, proto, root.split(trial, 1), options);
      if (res.completed) {
        ++successes;
        p3_rounds.add(static_cast<double>(res.completion_round - p3_begin));
      }
    }

    t.row()
        .add(static_cast<std::uint64_t>(n))
        .add(p, 5)
        .add_pm(frac_after_p2.mean(), frac_after_p2.stddev(), 3)
        .add_pm(p3_rounds.empty() ? 0.0 : p3_rounds.mean(),
                p3_rounds.empty() ? 0.0 : p3_rounds.stddev(), 1)
        .add(p3_rounds.empty()
                 ? 0.0
                 : p3_rounds.mean() / std::log2(static_cast<double>(n)),
             3)
        .add(static_cast<double>(successes) / trials, 3);
  }

  radnet::harness::emit_table(env, "e3", "phase23", t);

  std::cout << "Shape check: the informed fraction after Phase 2 is a\n"
               "constant (Theta(n) nodes) independent of n, and Phase-3\n"
               "duration normalised by log2 n stays in a constant band.\n";
  return 0;
}
