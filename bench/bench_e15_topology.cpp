// E15 — implicit-vs-CSR topology backend comparison.
//
// The headline experiments all run Algorithm 1 on G(n,p); this bench prices
// the two ways the engine can realise that topology:
//
//   csr      — sample the graph, build the CSR Digraph, run (the seed path):
//              O(n^2 p) build time and O(m) memory per trial;
//   implicit — never build the graph: each round's deliveries are sampled
//              from the transmitter count (sim/topology.hpp): O(n) per
//              round, zero graph memory, exact for Algorithm 1.
//
// Reports per-trial wall time (build + run, medians), the CSR graph's
// resident bytes, and the end-to-end speedup. With --full it also runs an
// n = 10^7 implicit trial and demonstrates — in a forked child under a
// 2 GiB RLIMIT_AS, a production-container-sized budget — that the CSR path
// cannot even allocate that graph while the implicit path completes inside
// the same limit.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>

#include "core/broadcast_random.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "support/cli_args.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using radnet::Rng;
using radnet::Sample;
using radnet::core::BroadcastRandomParams;
using radnet::core::BroadcastRandomProtocol;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

radnet::sim::RunOptions options_for(std::uint32_t n, double p) {
  BroadcastRandomProtocol probe(BroadcastRandomParams{.p = p});
  probe.reset(n, Rng(0));
  radnet::sim::RunOptions options;
  options.max_rounds = probe.round_budget();
  return options;
}

struct CsrTimings {
  Sample build_ms, run_ms, total_ms;
  std::uint64_t edges = 0;
  std::uint64_t bytes = 0;
};

CsrTimings time_csr(std::uint32_t n, double p, std::uint32_t trials,
                    std::uint64_t seed) {
  CsrTimings t;
  const auto options = options_for(n, p);
  radnet::sim::Engine engine;
  const Rng root(seed);
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    Rng grng = root.split(trial, 0);
    const double t0 = now_ms();
    const radnet::graph::Digraph g = radnet::graph::gnp_directed(n, p, grng);
    const double t1 = now_ms();
    BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
    (void)engine.run(g, proto, root.split(trial, 1), options);
    const double t2 = now_ms();
    t.build_ms.add(t1 - t0);
    t.run_ms.add(t2 - t1);
    t.total_ms.add(t2 - t0);
    t.edges = g.num_edges();
    // Steady-state CSR footprint: out- and in-adjacency (4 B per edge each)
    // plus two offset arrays; the transient edge list peaks higher.
    t.bytes = t.edges * 8 + static_cast<std::uint64_t>(n + 1) * 16;
  }
  return t;
}

Sample time_implicit(std::uint32_t n, double p, std::uint32_t trials,
                     std::uint64_t seed) {
  Sample total_ms;
  const auto options = options_for(n, p);
  radnet::sim::Engine engine;
  const Rng root(seed);
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    const double t0 = now_ms();
    const radnet::sim::ImplicitGnp gnp{n, p, root.split(trial, 0)};
    BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
    (void)engine.run(gnp, proto, root.split(trial, 1), options);
    total_ms.add(now_ms() - t0);
  }
  return total_ms;
}

constexpr std::uint32_t kHugeN = 10'000'000;
constexpr double kHugeP = 16.0 / kHugeN;

int attempt_csr_huge() {
  Rng rng(1);
  const radnet::graph::Digraph g =
      radnet::graph::gnp_directed(kHugeN, kHugeP, rng);
  return g.num_edges() > 0 ? 0 : 2;
}

int attempt_implicit_huge() {
  radnet::sim::Engine engine;
  const radnet::sim::ImplicitGnp gnp{kHugeN, kHugeP, Rng(1)};
  BroadcastRandomProtocol proto(BroadcastRandomParams{.p = kHugeP});
  const auto run =
      engine.run(gnp, proto, Rng(2), options_for(kHugeN, kHugeP));
  return run.ledger.total_transmissions > 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  radnet::CliArgs args = [&] {
    try {
      return radnet::CliArgs(argc, argv, {"full"});
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      std::exit(2);
    }
  }();
  const bool full = args.get_bool("full", false);

  const auto env = radnet::harness::bench_env();
  radnet::harness::banner(
      "E15 (topology backends)",
      "Implicit G(n,p) vs materialised CSR: end-to-end trial cost "
      "(graph build + Algorithm 1 run) and memory.");

  const std::uint32_t trials = env.trials(5);
  const std::uint32_t sizes[] = {
      static_cast<std::uint32_t>(env.scaled(1u << 18)),
      static_cast<std::uint32_t>(env.scaled(1u << 20)),
  };

  radnet::Table t({"n", "p", "edges", "csr graph MB", "csr build ms",
                   "csr run ms", "csr total ms", "implicit ms", "speedup"});
  t.set_caption("E15: per-trial medians over " + std::to_string(trials) +
                " trials, p = 16/n");
  for (const std::uint32_t n : sizes) {
    const double p = 16.0 / n;
    const CsrTimings csr = time_csr(n, p, trials, env.seed);
    const Sample imp = time_implicit(n, p, trials, env.seed);
    t.row()
        .add(static_cast<std::uint64_t>(n))
        .add(p, 8)
        .add(csr.edges)
        .add(static_cast<double>(csr.bytes) / (1024.0 * 1024.0), 1)
        .add(csr.build_ms.median(), 1)
        .add(csr.run_ms.median(), 1)
        .add(csr.total_ms.median(), 1)
        .add(imp.median(), 1)
        .add(csr.total_ms.median() / imp.median(), 1);
  }
  radnet::harness::emit_table(env, "e15", "speedup", t);

  if (full) {
    std::cout << "\n--- n = 10^7 under a 2 GiB memory budget ---\n";
    const std::uint64_t limit = 2ull << 30;
    const double t0 = now_ms();
    const int imp_rc = radnet::harness::run_memory_limited(limit, attempt_implicit_huge);
    const double imp_ms = now_ms() - t0;
    const double t1 = now_ms();
    const int csr_rc = radnet::harness::run_memory_limited(limit, attempt_csr_huge);
    const double csr_ms = now_ms() - t1;
    std::cout << "implicit trial (n=10^7, p=16/n): "
              << (imp_rc == 0 ? "completed" : "FAILED") << " in " << imp_ms
              << " ms\n"
              << "csr graph build (same size):     "
              << (csr_rc == 0 ? "unexpectedly fit" : "failed to allocate")
              << " after " << csr_ms << " ms (exit " << csr_rc << ")\n";
    if (imp_rc != 0 || csr_rc == 0) return 1;
  } else {
    std::cout << "\n(run with --full for the n = 10^7 memory-budget "
                 "demonstration)\n";
  }

  std::cout << "\nShape check: the implicit column is flat-in-d cheap and the\n"
               "speedup grows with n; the CSR column pays O(n^2 p) build and\n"
               "O(m) memory every trial for a graph the protocol never reads\n"
               "twice.\n";
  return 0;
}
