// radnet_batch — batched many-query Monte-Carlo sweeps over spec files.
//
//   radnet_batch --specs sweep.specs
//   radnet_batch --specs sweep.specs --cache /tmp/radnet-cache --threads 8
//   radnet_batch --specs - < sweep.specs          (read specs from stdin)
//   radnet_batch --specs sweep.specs --force-full (diagnostic: no early stop)
//   radnet_batch --specs sweep.specs --journal run.journal --out results.jsonl
//   radnet_batch --specs sweep.specs --journal run.journal --out results.jsonl
//   radnet_batch --specs sweep.specs --journal run.journal --out results.jsonl
//                --resume                         (continue a killed run)
//
// The spec file holds one query per line as whitespace-separated key=value
// tokens (`#` starts a comment, blank lines are skipped), e.g.:
//
//   protocol=alg1  family=ignp  n=4096 delta=8 trials=256 seed=7
//   protocol=alg2m family=idgnp n=2048 churn=0.5 fail-prob=0.0001 tol=0.02
//   protocol=eg2005 family=irgg n=1024 radius-mult=2 step=0.125 jammers=0.05
//
// Keys: protocol family n p delta q churn fail-prob radius-mult step trials
//       seed max-rounds tol confidence jammers byzantine energy-budget
//       fault-schedule          (defaults and semantics: harness/batch.hpp)
//
// Each converged spec prints one JSON line (to --out, default stdout) in
// deterministic family-major order, streamed as results settle; progress
// counters go to stderr. The output bytes are identical at any --threads
// value and cold vs warm cache (see README "Batched sweeps").
//
// Crash safety: with --journal, every grant and result is append-logged
// with per-record checksums; SIGINT/SIGTERM stop the run cleanly at the
// next grant boundary (exit 75, journal committed), and --resume replays
// the committed prefix and continues, re-emitting the COMPLETE stream —
// byte-identical to an uninterrupted run — which is why a resumed run
// truncates --out rather than appending to a possibly-torn partial file.
// --isolate forks each spec into a watchdogged child (crashing or wedged
// specs degrade into structured "error" JSON lines; see README "Fault
// tolerance & resume").
//
// A malformed spec line fails the whole run before any trial, naming the
// line and key. Exit: 0 on success, 1 on any error, 75 interrupted by a
// signal or cancel (resumable).
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/batch.hpp"
#include "support/cli_args.hpp"
#include "support/require.hpp"

namespace {

// Written by the signal handlers, polled by run_batch at grant boundaries:
// the first Ctrl-C finishes the in-flight grant, commits the journal and
// exits 75 instead of tearing the run mid-write.
std::atomic<bool> g_cancel{false};

extern "C" void handle_signal(int) { g_cancel.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace radnet;
  try {
    const CliArgs args(argc, argv,
                       {"specs", "cache", "no-cache", "threads", "force-full",
                        "min-grant", "journal", "resume", "out", "isolate",
                        "isolate-attempts", "isolate-timeout-ms",
                        "isolate-mem-mb", "help"});
    if (args.get_bool("help", false) || argc == 1) {
      std::cout
          << "usage: radnet_batch --specs FILE|-   spec file ('-' = stdin)\n"
             "                    [--cache DIR]    result cache directory\n"
             "                    (default .radnet_batch_cache)\n"
             "                    [--no-cache]     disable the disk cache\n"
             "                    [--threads K]    1 serial, 0 harness pick,\n"
             "                    k k-thread round sweeps; output bytes are\n"
             "                    identical for every value\n"
             "                    [--force-full]   run every trial (no early\n"
             "                    stopping, cache bypassed)\n"
             "                    [--min-grant G]  first grant quantum\n"
             "                    [--journal FILE] checksummed run journal\n"
             "                    (enables clean SIGINT/SIGTERM stop + resume)\n"
             "                    [--resume]       replay the journal's\n"
             "                    committed prefix and continue the sweep;\n"
             "                    re-emits the complete stream (truncates\n"
             "                    --out), byte-identical to an uninterrupted\n"
             "                    run; requires --journal\n"
             "                    [--out FILE]     result stream destination\n"
             "                    (default stdout; truncated on open)\n"
             "                    [--isolate]      fork each spec into a\n"
             "                    watchdogged child; crashed/hung specs emit\n"
             "                    structured \"error\" lines after retries\n"
             "                    [--isolate-attempts N]   default 3\n"
             "                    [--isolate-timeout-ms T] default 300000\n"
             "                    [--isolate-mem-mb M]     RLIMIT_AS cap,\n"
             "                    default unlimited\n"
             "exit codes: 0 ok, 1 error, 75 interrupted (resumable)\n"
             "spec lines: key=value tokens; see tools/radnet_batch.cpp "
             "header\n";
      return 0;
    }

    const std::string specs_path = args.get_string("specs", "");
    RADNET_REQUIRE(!specs_path.empty(), "--specs FILE is required");
    std::vector<harness::BatchSpec> specs;
    if (specs_path == "-") {
      specs = harness::parse_batch_file(std::cin);
    } else {
      std::ifstream in(specs_path);
      RADNET_REQUIRE(static_cast<bool>(in),
                     "cannot open spec file '" + specs_path + "'");
      specs = harness::parse_batch_file(in);
    }
    RADNET_REQUIRE(!specs.empty(), "spec file holds no specs");

    harness::BatchOptions options;
    options.cache_dir = args.get_bool("no-cache", false)
                            ? std::string()
                            : args.get_string("cache", ".radnet_batch_cache");
    options.force_full = args.get_bool("force-full", false);
    const std::uint64_t threads = args.get_u64("threads", 0);
    RADNET_REQUIRE(threads <= 4096, "--threads must be <= 4096");
    options.threads = static_cast<unsigned>(threads);
    const std::uint64_t min_grant = args.get_u64("min-grant", 16);
    RADNET_REQUIRE(min_grant >= 1 && min_grant <= harness::McSpec::kMaxTrials,
                   "--min-grant is out of range");
    options.min_grant = static_cast<std::uint32_t>(min_grant);

    options.journal_path = args.get_string("journal", "");
    options.resume = args.get_bool("resume", false);
    RADNET_REQUIRE(!options.resume || !options.journal_path.empty(),
                   "--resume requires --journal FILE");
    options.isolate = args.get_bool("isolate", false);
    const std::uint64_t attempts = args.get_u64("isolate-attempts", 3);
    RADNET_REQUIRE(attempts >= 1 && attempts <= 100,
                   "--isolate-attempts must be in [1, 100]");
    options.isolate_attempts = static_cast<std::uint32_t>(attempts);
    const std::uint64_t timeout_ms = args.get_u64("isolate-timeout-ms", 300'000);
    RADNET_REQUIRE(timeout_ms <= 86'400'000,
                   "--isolate-timeout-ms must be <= 86400000");
    options.isolate_timeout_ms = static_cast<std::uint32_t>(timeout_ms);
    options.isolate_mem_bytes = args.get_u64("isolate-mem-mb", 0) << 20;
    options.cancel = &g_cancel;

    // Journaled runs stop cleanly on the usual terminal signals; without a
    // journal there is nothing to commit, so default signal disposition
    // (immediate death) is the honest behaviour.
    if (!options.journal_path.empty()) {
      std::signal(SIGINT, handle_signal);
      std::signal(SIGTERM, handle_signal);
    }

    // Result lines stream as specs converge; line-buffered so a consumer
    // sees whole JSON records. A resumed run re-emits the complete stream,
    // so --out opens truncating — never appending to a torn partial file.
    const std::string out_path = args.get_string("out", "");
    std::ofstream out_file;
    if (!out_path.empty()) {
      out_file.open(out_path, std::ios::binary | std::ios::trunc);
      RADNET_REQUIRE(static_cast<bool>(out_file),
                     "cannot open output file '" + out_path + "'");
    }
    std::ostream& out = out_path.empty() ? std::cout : out_file;

    harness::BatchStats stats;
    const auto outcomes = harness::run_batch(specs, options, out, &stats);
    out.flush();
    RADNET_REQUIRE(static_cast<bool>(out), "writing the result stream failed");
    std::uint32_t converged = 0;
    for (const auto& o : outcomes) converged += o.converged ? 1 : 0;
    std::cerr << "radnet_batch: " << stats.specs << " specs, " << converged
              << " converged, " << stats.cache_hits << " cache hits, "
              << stats.trials_run << " trials run, " << stats.trials_saved
              << " trials saved by early stopping/cache";
    if (stats.journal_trials > 0 || stats.journal_results > 0)
      std::cerr << ", " << stats.journal_trials << " trials + "
                << stats.journal_results << " results replayed from journal";
    if (stats.cache_quarantined > 0)
      std::cerr << ", " << stats.cache_quarantined
                << " corrupt cache entries quarantined";
    if (stats.spec_errors > 0)
      std::cerr << ", " << stats.spec_errors << " spec errors";
    std::cerr << "\n";
    if (stats.interrupted) {
      std::cerr << "radnet_batch: interrupted — journal committed, rerun "
                   "with --resume to finish\n";
      return 75;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "radnet_batch: " << e.what() << "\n";
    return 1;
  }
}
