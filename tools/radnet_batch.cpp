// radnet_batch — batched many-query Monte-Carlo sweeps over spec files.
//
//   radnet_batch --specs sweep.specs
//   radnet_batch --specs sweep.specs --cache /tmp/radnet-cache --threads 8
//   radnet_batch --specs - < sweep.specs          (read specs from stdin)
//   radnet_batch --specs sweep.specs --force-full (diagnostic: no early stop)
//
// The spec file holds one query per line as whitespace-separated key=value
// tokens (`#` starts a comment, blank lines are skipped), e.g.:
//
//   protocol=alg1  family=ignp  n=4096 delta=8 trials=256 seed=7
//   protocol=alg2m family=idgnp n=2048 churn=0.5 fail-prob=0.0001 tol=0.02
//   protocol=eg2005 family=irgg n=1024 radius-mult=2 step=0.125 jammers=0.05
//
// Keys: protocol family n p delta q churn fail-prob radius-mult step trials
//       seed max-rounds tol confidence jammers byzantine energy-budget
//       fault-schedule          (defaults and semantics: harness/batch.hpp)
//
// Each converged spec prints one JSON line to stdout, in deterministic
// family-major order, streamed as results settle; progress counters go to
// stderr. The output bytes are identical at any --threads value and cold vs
// warm cache (see README "Batched sweeps"). A malformed spec line fails the
// whole run before any trial, naming the line and key. Exit: 0 on success,
// 1 on any error.
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/batch.hpp"
#include "support/cli_args.hpp"
#include "support/require.hpp"

int main(int argc, char** argv) {
  using namespace radnet;
  try {
    const CliArgs args(argc, argv,
                       {"specs", "cache", "no-cache", "threads", "force-full",
                        "min-grant", "help"});
    if (args.get_bool("help", false) || argc == 1) {
      std::cout
          << "usage: radnet_batch --specs FILE|-   spec file ('-' = stdin)\n"
             "                    [--cache DIR]    result cache directory\n"
             "                    (default .radnet_batch_cache)\n"
             "                    [--no-cache]     disable the disk cache\n"
             "                    [--threads K]    1 serial, 0 harness pick,\n"
             "                    k k-thread round sweeps; output bytes are\n"
             "                    identical for every value\n"
             "                    [--force-full]   run every trial (no early\n"
             "                    stopping, cache bypassed)\n"
             "                    [--min-grant G]  first grant quantum\n"
             "spec lines: key=value tokens; see tools/radnet_batch.cpp "
             "header\n";
      return 0;
    }

    const std::string specs_path = args.get_string("specs", "");
    RADNET_REQUIRE(!specs_path.empty(), "--specs FILE is required");
    std::vector<harness::BatchSpec> specs;
    if (specs_path == "-") {
      specs = harness::parse_batch_file(std::cin);
    } else {
      std::ifstream in(specs_path);
      RADNET_REQUIRE(static_cast<bool>(in),
                     "cannot open spec file '" + specs_path + "'");
      specs = harness::parse_batch_file(in);
    }
    RADNET_REQUIRE(!specs.empty(), "spec file holds no specs");

    harness::BatchOptions options;
    options.cache_dir = args.get_bool("no-cache", false)
                            ? std::string()
                            : args.get_string("cache", ".radnet_batch_cache");
    options.force_full = args.get_bool("force-full", false);
    const std::uint64_t threads = args.get_u64("threads", 0);
    RADNET_REQUIRE(threads <= 4096, "--threads must be <= 4096");
    options.threads = static_cast<unsigned>(threads);
    const std::uint64_t min_grant = args.get_u64("min-grant", 16);
    RADNET_REQUIRE(min_grant >= 1 && min_grant <= harness::McSpec::kMaxTrials,
                   "--min-grant is out of range");
    options.min_grant = static_cast<std::uint32_t>(min_grant);

    // Result lines stream to stdout as specs converge; buffer per line so a
    // consumer piping the output sees whole JSON records.
    harness::BatchStats stats;
    const auto outcomes = harness::run_batch(specs, options, std::cout, &stats);
    std::uint32_t converged = 0;
    for (const auto& o : outcomes) converged += o.converged ? 1 : 0;
    std::cerr << "radnet_batch: " << stats.specs << " specs, " << converged
              << " converged, " << stats.cache_hits << " cache hits, "
              << stats.trials_run << " trials run, " << stats.trials_saved
              << " trials saved by early stopping/cache\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "radnet_batch: " << e.what() << "\n";
    return 1;
  }
}
