// Perf-trajectory runner: times the engine's hot paths and writes
// BENCH_engine.json so CI can track regressions from one PR to the next.
//
// Covers the same ground as bench_e13_engine_micro (rounds/second of the
// CSR engine under a fixed-probability load) plus the implicit-vs-CSR
// end-to-end comparison of bench_e15_topology, in-process and without the
// google-benchmark dependency so it can run as a ctest (`ctest -L
// bench_smoke`). Medians of ns/round at several n are emitted as JSON:
//
//   { "schema": "radnet-bench-engine-v6",
//     "host": {"hardware_concurrency": ..., "pool_threads": ...},
//     "benchmarks": [ {"name": ..., "n": ..., "ns_per_round": ...,
//                      "wall_ms": ..., "threads": ..., "peak_rss_kb": ...},
//                    ... ],
//     "comparison": {"n": ..., "p": ..., "csr_ms": ..., "implicit_ms": ...,
//                    "speedup": ...},
//     "dynamic": {"n": ..., "churn": ..., "trial_ms": ..., "rounds": ...},
//     "thread_scaling": {"n": ..., "serial_ms": ..., "parallel_ms": ...,
//                        "speedup": ..., "pool_threads": ...,
//                        "identical": ...},
//     "csr_thread_scaling": { same shape as thread_scaling },
//     "e14b_mobility": {"n": ..., "degree": ..., "horizon": ...,
//                       "serial_ms": ..., "parallel_ms": ..., "speedup": ...,
//                       "pool_threads": ..., "identical": ...,
//                       "peak_rss_kb": ...},
//     "e18_adversary": {"n": ..., "jammer_fraction": ...,
//                       "byzantine_fraction": ..., "budget_mean": ...,
//                       "horizon": ..., "serial_ms": ..., "parallel_ms": ...,
//                       "speedup": ..., "pool_threads": ...,
//                       "identical": ..., "stranded_fraction": ...},
//     "e19_batch": {"specs": ..., "trials_run": ..., "trials_saved": ...,
//                   "serial_ms": ..., "parallel_ms": ..., "warm_ms": ...,
//                   "threads_identical": ..., "cached_identical": ...},
//     "e20_faulttol": {"specs": ..., "kill_confirmed": ...,
//                      "partial_prefix": ..., "resumed_identical": ...,
//                      "journal_trials": ..., "journal_results": ...,
//                      "baseline_ms": ..., "resume_ms": ...} }
//
// Every entry carries its wall-clock cost, the thread count it ran with
// and the process peak RSS when it finished (ru_maxrss — monotone, so an
// entry's value is the high-water mark up to that point), seeding the
// perf trajectory across PRs. The "dynamic" object tracks E16
// (bench_e16_dynamic_scale): one churned gossip trial (single-rumor
// marginal of Algorithm 2) on the graph-free implicit dynamic backend.
// "thread_scaling" tracks E17 (bench_e17_thread_scaling): the same
// single-trial broadcast with serial vs all-core block-sharded round
// sweeps, plus the bit-identity check between them. Schema v3 adds
// "csr_thread_scaling": the explicit-CSR counterpart (serial vs all-core
// scatter/gather delivery on a materialised G(n,p)). Schema v4 adds
// "e14b_mobility": one fixed-horizon Algorithm-1 broadcast on the
// graph-free implicit mobility-RGG backend (bench_e14_dynamic part (c);
// n = 10^7 in the full run — a topology whose explicit per-round rebuild
// could not allocate), serial vs all-core with the same bit-identity
// column. Schema v5 adds "e18_adversary": one fixed-horizon Algorithm-1
// broadcast under a full adversary (jammers + Byzantine relays + energy
// budgets + a crash/recover schedule, sim/adversary.hpp) on the implicit
// G(n,p) backend, serial vs all-core; "identical" compares the complete
// RunResult including AdversaryStats, and "stranded_fraction" seeds the
// robustness trajectory. Schema v6 adds "e19_batch": a small mixed-family
// spec set answered by the batch sweep service (harness/batch.hpp) four
// ways — serial vs all-core with early stopping, then cold-cache vs
// warm-cache replay — with byte-identity of the streamed result lines
// asserted across all of them. The smoke gate FAILS (non-zero exit) if any
// family's serial and parallel results ever diverge, or if a cached batch
// answer differs by one byte from the cold run that produced it —
// bit-identity is a correctness contract, not a statistic. Schema v7 adds
// "e20_faulttol": the crash-safety gate. A journaled sweep is forked into
// a child that is SIGKILLed mid-flight by the RADNET_FAULT grant-boundary
// hook, then resumed in-process from the journal's committed prefix; the
// gate fails unless the child really died by SIGKILL, the torn partial
// output is a byte-prefix of the uninterrupted stream, and the resumed
// stream is byte-identical to it (resume(interrupt(run)) == run).
// Schema v8 adds "e13_simd" plus four benchmarks rows
// (dense_classify_sweep_* / rgg_distance_sweep_*): per-sweep ns/round of
// the two vectorised hot loops — the dense G(n,p) lane classification and
// the RGG distance-mask scan — timed under scalar and SIMD dispatch
// (support/simd.hpp), and a "simd"/"cpu_avx2" pair in the host block
// recording which kernels the run actually used. The smoke gate FAILS if
// the scalar and SIMD kernels ever diverge: the lane generator's bulk
// stream is byte-compared against its scalar reference, and both sweep
// benchmarks fingerprint every emitted event (order included) per mode —
// SIMD is a dispatch choice, never an observable one. Schema v9 adds
// "sketch_thread_scaling" and "rgg_bucketing_thread_scaling": the last two
// per-round phases to shard — the dynamic backend's pair-sketch gather /
// classify (per sender- and pinned-group-chunk, streams keyed per
// (round, chunk)) and the RGG transmitter bucketing (per transmitter
// chunk, RNG-free, cell-ordered merge) — each timed serial vs all-core on
// a workload that phase dominates, with the same bit-identity gate:
// divergence fails the run with a non-zero exit.
//
// Flags: --quick shrinks sizes/repetitions for smoke runs; --out overrides
// the output path (default BENCH_engine.json in the working directory).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "harness/batch.hpp"
#include "sim/engine.hpp"
#include "support/cli_args.hpp"
#include "support/io.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace {

using radnet::Rng;
using radnet::Sample;
using radnet::core::BroadcastRandomParams;
using radnet::core::BroadcastRandomProtocol;
using radnet::graph::Digraph;
using radnet::graph::NodeId;

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everybody transmits with fixed probability; never completes. The same
/// pure-throughput load bench_e13_engine_micro uses.
class LoadProtocol final : public radnet::sim::Protocol {
 public:
  explicit LoadProtocol(double q) : q_(q) {}

  void reset(NodeId n, Rng rng) override {
    rng_ = rng;
    all_.resize(n);
    for (NodeId v = 0; v < n; ++v) all_[v] = v;
  }
  [[nodiscard]] std::span<const NodeId> candidates() const override {
    return {all_.data(), all_.size()};
  }
  [[nodiscard]] bool wants_transmit(NodeId, radnet::sim::Round) override {
    return rng_.bernoulli(q_);
  }
  void on_delivered(NodeId, NodeId, radnet::sim::Round) override {}
  [[nodiscard]] bool is_complete() const override { return false; }
  [[nodiscard]] std::string name() const override { return "load"; }

 private:
  double q_;
  Rng rng_;
  std::vector<NodeId> all_;
};

struct Entry {
  std::string name;
  std::uint32_t n = 0;
  double ns_per_round = 0.0;
  double wall_ms = 0.0;       ///< total wall time spent producing the entry
  unsigned threads = 1;       ///< RunOptions::threads the entry ran with
  std::uint64_t peak_rss_kb = 0;  ///< process high-water RSS at entry end
};

constexpr radnet::sim::Round kRounds = 64;

/// Process peak RSS in KiB (ru_maxrss is KiB on Linux); monotone over the
/// process lifetime, so each entry records the high-water mark so far.
std::uint64_t peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss);
}

double median_ns_per_round(std::uint32_t reps,
                           const std::function<void()>& run_rounds) {
  Sample ns;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    const double t0 = now_ns();
    run_rounds();
    ns.add((now_ns() - t0) / kRounds);
  }
  return ns.median();
}

Entry finish_entry(Entry entry, double t0_ns) {
  entry.wall_ms = (now_ns() - t0_ns) / 1e6;
  entry.peak_rss_kb = peak_rss_kb();
  return entry;
}

Entry time_csr_engine(std::uint32_t n, std::uint32_t reps) {
  const double t0 = now_ns();
  Rng grng(n);
  const Digraph g =
      radnet::graph::gnp_directed(n, 8.0 * std::log(n) / n, grng);
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = kRounds;
  const double ns = median_ns_per_round(reps, [&] {
    LoadProtocol proto(0.1);
    (void)engine.run(g, proto, Rng(1), options);
  });
  return finish_entry({"csr_engine_rounds", n, ns, 0.0, options.threads, 0},
                      t0);
}

Entry time_implicit_engine(std::uint32_t n, std::uint32_t reps) {
  const double t0 = now_ns();
  const double p = 8.0 * std::log(n) / n;
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = kRounds;
  const double ns = median_ns_per_round(reps, [&] {
    const radnet::sim::ImplicitGnp gnp{n, p, Rng(n)};
    LoadProtocol proto(0.1);
    (void)engine.run(gnp, proto, Rng(1), options);
  });
  return finish_entry(
      {"implicit_engine_rounds", n, ns, 0.0, options.threads, 0}, t0);
}

struct ThreadScaling {
  std::uint32_t n = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup = 0.0;
  unsigned pool_threads = 0;
  bool identical = false;
};

/// E17's core claim in one tracked number: the same single-trial broadcast
/// with serial vs all-core round sweeps, bit-identity asserted.
ThreadScaling time_thread_scaling(std::uint32_t n) {
  ThreadScaling s;
  s.n = n;
  s.pool_threads = radnet::global_pool().size();
  // The d = 8 ln n regime of E17: completes reliably at finite n, so the
  // tracked number is a full broadcast rather than a censored budget run.
  const double p = 8.0 * std::log(n) / n;
  BroadcastRandomProtocol probe(BroadcastRandomParams{.p = p});
  probe.reset(n, Rng(0));
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = probe.round_budget();
  const auto run_with = [&](unsigned threads, double* ms) {
    options.threads = threads;
    const radnet::sim::ImplicitGnp gnp{n, p, Rng(17)};
    BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
    const double t0 = now_ns();
    const auto run = engine.run(gnp, proto, Rng(18), options);
    *ms = (now_ns() - t0) / 1e6;
    return run;
  };
  const auto serial = run_with(1, &s.serial_ms);
  const auto parallel = run_with(0, &s.parallel_ms);
  s.speedup = s.serial_ms / s.parallel_ms;
  s.identical = serial == parallel;
  return s;
}

/// The explicit-CSR counterpart of time_thread_scaling: the same broadcast
/// trial on a materialised G(n,p), serial vs all-core scatter/gather
/// delivery, bit-identity asserted. No RNG is involved in CSR delivery, so
/// a divergence here means a sharding bug, never a reordering.
ThreadScaling time_csr_thread_scaling(std::uint32_t n) {
  ThreadScaling s;
  s.n = n;
  s.pool_threads = radnet::global_pool().size();
  const double p = 32.0 / n;  // d = 32: heavy rounds, modest graph memory
  Rng grng(23);
  const Digraph g = radnet::graph::gnp_directed(n, p, grng);
  BroadcastRandomProtocol probe(BroadcastRandomParams{.p = p});
  probe.reset(n, Rng(0));
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = probe.round_budget();
  const auto run_with = [&](unsigned threads, double* ms) {
    options.threads = threads;
    BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
    const double t0 = now_ns();
    const auto run = engine.run(g, proto, Rng(24), options);
    *ms = (now_ns() - t0) / 1e6;
    return run;
  };
  const auto serial = run_with(1, &s.serial_ms);
  const auto parallel = run_with(0, &s.parallel_ms);
  s.speedup = s.serial_ms / s.parallel_ms;
  s.identical = serial == parallel;
  return s;
}

/// The sharded sketch phases' tracked number: one churned-dynamic gossip
/// trial (churn = 0.5 routes every delivery through the pair sketch, so
/// the sender-chunked gather and group-chunked classify phases dominate),
/// serial vs all-core, bit-identity asserted. Chunk streams are keyed per
/// (round, chunk), so a divergence means a keying or merge-order bug.
ThreadScaling time_sketch_thread_scaling(std::uint32_t n) {
  ThreadScaling s;
  s.n = n;
  s.pool_threads = radnet::global_pool().size();
  const double p = 16.0 / n;
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = 64;
  const auto run_with = [&](unsigned threads, double* ms) {
    options.threads = threads;
    radnet::sim::ImplicitDynamicGnp spec;
    spec.n = n;
    spec.p = p;
    spec.churn = 0.5;
    spec.rng = Rng(51);
    radnet::core::GossipRumorMarginalProtocol proto(
        radnet::core::GossipRumorMarginalParams{.p = p});
    const double t0 = now_ns();
    const auto run = engine.run(spec, proto, Rng(52), options);
    *ms = (now_ns() - t0) / 1e6;
    return run;
  };
  const auto serial = run_with(1, &s.serial_ms);
  const auto parallel = run_with(0, &s.parallel_ms);
  s.speedup = s.serial_ms / s.parallel_ms;
  s.identical = serial == parallel;
  return s;
}

/// The sharded RGG transmitter bucketing's tracked number: one mobility
/// gossip trial (the repeated-transmitter regime keeps k large, so the
/// chunk-sharded counting sort + 3x3 stamp are a steady share of the
/// round), serial vs all-core, bit-identity asserted. Bucketing draws no
/// randomness, so a divergence means a cell-merge layout bug.
ThreadScaling time_rgg_bucketing_thread_scaling(std::uint32_t n) {
  ThreadScaling s;
  s.n = n;
  s.pool_threads = radnet::global_pool().size();
  const double radius =
      std::sqrt(16.0 / (3.14159265358979 * static_cast<double>(n)));
  const double p = 3.14159265358979 * radius * radius;
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = 64;
  const auto run_with = [&](unsigned threads, double* ms) {
    options.threads = threads;
    radnet::core::GossipRumorMarginalProtocol proto(
        radnet::core::GossipRumorMarginalParams{.p = p});
    const double t0 = now_ns();
    const auto run = engine.run(
        radnet::sim::ImplicitRgg{n, radius, radius / 8.0, Rng(53)}, proto,
        Rng(54), options);
    *ms = (now_ns() - t0) / 1e6;
    return run;
  };
  const auto serial = run_with(1, &s.serial_ms);
  const auto parallel = run_with(0, &s.parallel_ms);
  s.speedup = s.serial_ms / s.parallel_ms;
  s.identical = serial == parallel;
  return s;
}

struct MobilityNumbers {
  std::uint32_t n = 0;
  double degree = 0.0;
  radnet::sim::Round horizon = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup = 0.0;
  unsigned pool_threads = 0;
  bool identical = false;
};

/// E14b's mobility trial in one tracked number: a fixed-horizon
/// Algorithm-1 broadcast on the graph-free implicit mobility-RGG backend
/// (mean degree `degree`, step = radius/8), serial vs all-core, with the
/// bit-identity check between them. Motion draws are counter-keyed per
/// (round, block) and the cell-grid delivery sweep draws no RNG, so a
/// divergence here is a sharding bug, never a reordering.
MobilityNumbers time_rgg_mobility(std::uint32_t n, radnet::sim::Round horizon) {
  MobilityNumbers m;
  m.n = n;
  m.degree = 50.0;
  m.horizon = horizon;
  m.pool_threads = radnet::global_pool().size();
  const double radius = std::sqrt(m.degree / (3.141592653589793 * n));
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = horizon;
  const auto run_with = [&](unsigned threads, double* ms) {
    options.threads = threads;
    BroadcastRandomProtocol proto(BroadcastRandomParams{.p = m.degree / n});
    const double t0 = now_ns();
    const auto run = engine.run(
        radnet::sim::ImplicitRgg{n, radius, radius / 8.0, Rng(41)}, proto,
        Rng(42), options);
    *ms = (now_ns() - t0) / 1e6;
    return run;
  };
  const auto serial = run_with(1, &m.serial_ms);
  const auto parallel = run_with(0, &m.parallel_ms);
  m.speedup = m.serial_ms / m.parallel_ms;
  m.identical = serial == parallel;
  return m;
}

struct AdversaryNumbers {
  std::uint32_t n = 0;
  double jammer_fraction = 0.01;
  double byzantine_fraction = 0.02;
  double budget_mean = 4.0;
  radnet::sim::Round horizon = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup = 0.0;
  unsigned pool_threads = 0;
  bool identical = false;
  double stranded_fraction = 0.0;
};

/// E18's tracked number: one fixed-horizon Algorithm-1 broadcast under the
/// full adversary stack (jammers, Byzantine relays, listen-only energy
/// budgets, a crash/recover schedule) on the implicit G(n,p) backend,
/// serial vs all-core. The identity check covers the whole RunResult —
/// completion, ledger, trace AND AdversaryStats — so a divergence means
/// the adversary broke the engine's determinism contract. The stranded
/// fraction (honest nodes left without a valid copy at the horizon) is the
/// robustness trajectory's headline.
AdversaryNumbers time_adversary(std::uint32_t n, radnet::sim::Round horizon) {
  AdversaryNumbers a;
  a.n = n;
  a.horizon = horizon;
  a.pool_threads = radnet::global_pool().size();
  const double p = 8.0 * std::log(n) / n;
  radnet::sim::AdversarySpec adv;
  adv.jammer_fraction = a.jammer_fraction;
  adv.byzantine_fraction = a.byzantine_fraction;
  adv.budget_mean = a.budget_mean;
  adv.budget_spread = 0.25;
  adv.fault_schedule = {
      {8, radnet::sim::FaultEvent::Kind::kCrash, 0.10},
      {16, radnet::sim::FaultEvent::Kind::kRecover, 1.0}};
  adv.protected_nodes = {0};
  radnet::sim::Engine engine;
  radnet::sim::RunOptions options;
  options.max_rounds = horizon;
  options.adversary = adv;
  const auto run_with = [&](unsigned threads, double* ms) {
    options.threads = threads;
    const radnet::sim::ImplicitGnp gnp{n, p, Rng(51)};
    BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
    const double t0 = now_ns();
    auto run = engine.run(gnp, proto, Rng(52), options);
    *ms = (now_ns() - t0) / 1e6;
    a.stranded_fraction =
        static_cast<double>(proto.stranded_count().value_or(0)) / n;
    return run;
  };
  const auto serial = run_with(1, &a.serial_ms);
  const auto parallel = run_with(0, &a.parallel_ms);
  a.speedup = a.serial_ms / a.parallel_ms;
  a.identical = serial == parallel;
  return a;
}

struct BatchNumbers {
  std::uint64_t specs = 0;
  std::uint64_t trials_run = 0;    ///< trials the serial early-stop run paid
  std::uint64_t trials_saved = 0;  ///< budget minus granted, summed
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double warm_ms = 0.0;            ///< cache replay of the whole set
  bool threads_identical = false;  ///< serial vs all-core byte streams
  bool cached_identical = false;   ///< cold vs warm-cache byte streams
};

/// E19's tracked numbers: a small mixed-family spec set answered by the
/// batch sweep service with CI-based early stopping, serial vs all-core,
/// then cold-cache vs warm-cache replay. Both identity columns compare the
/// complete streamed byte output — the batch layer's determinism contract
/// is that grant scheduling, thread count and cache replay are invisible
/// in the result bytes (see tests/harness/batch_test.cpp for the
/// per-property pins; this is the in-CI end-to-end gate).
BatchNumbers time_batch(bool quick) {
  namespace rh = radnet::harness;
  std::vector<rh::BatchSpec> specs;
  const rh::BatchFamily families[] = {
      rh::BatchFamily::kCsr, rh::BatchFamily::kImplicitGnp,
      rh::BatchFamily::kImplicitDynamic, rh::BatchFamily::kImplicitRgg};
  for (const auto family : families)
    for (const char* protocol : {"alg1", "flooding"})
      for (const std::uint32_t n : {256u, 512u}) {
        rh::BatchSpec spec;
        spec.protocol = protocol;
        spec.family = family;
        spec.n = n;
        spec.trials = quick ? 48 : 96;
        // A fixed horizon keeps censored trials cheap, and tol 0.1
        // converges at a proper prefix of the budget, so the tracked
        // numbers exercise early stopping rather than just exhaustion.
        spec.max_rounds = 256;
        spec.tol = 0.1;
        if (family == rh::BatchFamily::kImplicitDynamic) spec.churn = 0.5;
        spec.validate();
        specs.push_back(spec);
      }

  BatchNumbers b;
  b.specs = specs.size();
  const auto run_with = [&](const rh::BatchOptions& options, double* ms,
                            rh::BatchStats* stats_out) {
    std::ostringstream out;
    rh::BatchStats stats;
    const double t0 = now_ns();
    (void)rh::run_batch(specs, options, out, &stats);
    *ms = (now_ns() - t0) / 1e6;
    if (stats_out != nullptr) *stats_out = stats;
    return out.str();
  };

  rh::BatchOptions serial;
  serial.threads = 1;
  rh::BatchStats serial_stats;
  const std::string serial_stream =
      run_with(serial, &b.serial_ms, &serial_stats);
  b.trials_run = serial_stats.trials_run;
  b.trials_saved = serial_stats.trials_saved;

  rh::BatchOptions parallel;  // threads = 0: harness default schedule
  const std::string parallel_stream =
      run_with(parallel, &b.parallel_ms, nullptr);
  b.threads_identical = parallel_stream == serial_stream;

  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "radnet_bench_runner_e19";
  std::filesystem::remove_all(cache_dir);
  rh::BatchOptions cached = parallel;
  cached.cache_dir = cache_dir.string();
  double cold_ms = 0.0;
  const std::string cold_stream = run_with(cached, &cold_ms, nullptr);
  const std::string warm_stream = run_with(cached, &b.warm_ms, nullptr);
  std::filesystem::remove_all(cache_dir);
  b.cached_identical =
      cold_stream == serial_stream && warm_stream == cold_stream;
  return b;
}

struct FaultTolNumbers {
  std::uint64_t specs = 0;
  bool kill_confirmed = false;    ///< the child really died by SIGKILL
  bool partial_prefix = false;    ///< torn output is a prefix of the stream
  bool resumed_identical = false; ///< resume(interrupt(run)) == run, bytes
  std::uint64_t journal_trials = 0;   ///< trial records replayed on resume
  std::uint64_t journal_results = 0;  ///< result records replayed on resume
  double baseline_ms = 0.0;
  double resume_ms = 0.0;
};

/// E20's tracked numbers and the crash-safety gate: run a small journaled
/// sweep to completion for the reference bytes, fork a child that runs the
/// same sweep under `grant@2:kill` (SIGKILL at the second grant boundary,
/// mid-sweep by construction: tol = 0 forces every spec through multiple
/// grants), then resume in-process from the journal the dead child left
/// behind. The contract under test is the tentpole invariant of the
/// fault-tolerance layer — resume(interrupt(run)) == run, byte-for-byte —
/// plus the weaker torn-output guarantee that whatever the child flushed
/// before dying is a prefix of the uninterrupted stream, never a
/// divergence. Everything runs serially: result bytes are thread-invariant
/// anyway, and the forked child must not depend on pool threads that do
/// not survive fork.
FaultTolNumbers time_faulttol() {
  namespace rh = radnet::harness;
  namespace fs = std::filesystem;
  FaultTolNumbers f;
  std::vector<rh::BatchSpec> specs;
  for (const std::uint32_t n : {96u, 128u}) {
    rh::BatchSpec spec;
    spec.protocol = "alg1";
    spec.family = rh::BatchFamily::kImplicitGnp;
    spec.n = n;
    spec.trials = 16;
    spec.max_rounds = 256;
    spec.tol = 0.0;  // exhaust the budget: several grants per spec
    spec.seed = 7;
    spec.validate();
    specs.push_back(spec);
  }
  f.specs = specs.size();

  rh::BatchOptions base;
  base.threads = 1;
  base.min_grant = 4;
  double t0 = now_ns();
  std::ostringstream expect;
  (void)rh::run_batch(specs, base, expect, nullptr);
  f.baseline_ms = (now_ns() - t0) / 1e6;

  const fs::path dir = fs::temp_directory_path() / "radnet_bench_runner_e20";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string journal = (dir / "run.journal").string();
  const std::string partial = (dir / "partial.jsonl").string();

  const pid_t pid = fork();
  if (pid == 0) {
    radnet::io::set_fault("grant@2:kill");
    std::ofstream out(partial, std::ios::binary | std::ios::trunc);
    rh::BatchOptions opts = base;
    opts.journal_path = journal;
    try {
      (void)rh::run_batch(specs, opts, out, nullptr);
    } catch (...) {
      _exit(3);
    }
    _exit(0);  // fault never fired — the parent reports the gate failure
  }
  int status = 0;
  waitpid(pid, &status, 0);
  f.kill_confirmed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;

  const std::string torn = radnet::io::read_file(partial).value_or("");
  f.partial_prefix = expect.str().compare(0, torn.size(), torn) == 0;

  rh::BatchOptions resume = base;
  resume.journal_path = journal;
  resume.resume = true;
  rh::BatchStats stats;
  std::ostringstream resumed;
  t0 = now_ns();
  (void)rh::run_batch(specs, resume, resumed, &stats);
  f.resume_ms = (now_ns() - t0) / 1e6;
  f.journal_trials = stats.journal_trials;
  f.journal_results = stats.journal_results;
  f.resumed_identical = resumed.str() == expect.str();
  fs::remove_all(dir);
  return f;
}

/// Order-sensitive FNV-style fingerprint of a delivery stream: two runs
/// produce the same fingerprint iff they emit the same events in the same
/// order — the observable the SIMD dispatch must never change.
struct FingerprintSink {
  std::uint64_t hash = 0x9e3779b97f4a7c15ull;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;

  void mix(std::uint64_t x) { hash = (hash ^ x) * 0x100000001b3ull; }
  void deliver(NodeId listener, NodeId sender) {
    ++deliveries;
    mix(listener | (static_cast<std::uint64_t>(sender) << 32));
  }
  void collide(NodeId listener) {
    ++collisions;
    mix(~static_cast<std::uint64_t>(listener));
  }
  void deliver_bulk(std::uint64_t count) { mix(count * 3 + 1); }
  void collide_bulk(std::uint64_t count) { mix(count * 3 + 2); }
};

struct SimdSweep {
  double scalar_ns = 0.0;  ///< median ns per sweep, scalar kernels
  double simd_ns = 0.0;    ///< median ns per sweep, SIMD kernels
  std::uint64_t scalar_fp = 0;
  std::uint64_t simd_fp = 0;
  [[nodiscard]] double speedup() const { return scalar_ns / simd_ns; }
  [[nodiscard]] bool identical() const { return scalar_fp == simd_fp; }
};

struct SimdNumbers {
  std::uint32_t dense_n = 0;
  std::uint32_t rgg_n = 0;
  SimdSweep dense;
  SimdSweep rgg;
  bool lanes_identical = false;  ///< bulk lane stream == scalar reference
};

/// Per-sweep cost of the dense G(n,p) lane classification: k*p ~ 0.8 ln n
/// puts every block on the vectorised plain path (q well above 0.5).
SimdSweep time_dense_classify(std::uint32_t n, std::uint32_t reps) {
  SimdSweep s;
  const double p = 8.0 * std::log(n) / n;
  std::vector<NodeId> tx;
  std::vector<char> is_tx(n, 0);
  for (NodeId v = 0; v < n / 10; ++v) {
    tx.push_back(v * 7 % n);
    is_tx[tx.back()] = 1;
  }
  const auto run = [&](radnet::simd::Mode mode, double* ns_out,
                       std::uint64_t* fp_out) {
    radnet::simd::set_mode(mode);
    radnet::sim::ImplicitGnpTopology topo(
        radnet::sim::ImplicitGnp{n, p, Rng(91)});
    FingerprintSink sink;
    Sample ns;
    radnet::sim::Round round = 0;  // backends require non-decreasing rounds
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const double t0 = now_ns();
      for (radnet::sim::Round r = 0; r < kRounds; ++r) {
        topo.begin_round(round++);
        topo.deliver({tx.data(), tx.size()}, is_tx, /*half_duplex=*/false,
                     radnet::sim::DeliveryPath::kAuto, std::nullopt,
                     /*collisions_inert=*/false, sink);
      }
      ns.add((now_ns() - t0) / kRounds);
    }
    *ns_out = ns.median();
    *fp_out = sink.hash ^ sink.deliveries ^ (sink.collisions << 1);
  };
  run(radnet::simd::Mode::kScalar, &s.scalar_ns, &s.scalar_fp);
  run(radnet::simd::Mode::kAvx2, &s.simd_ns, &s.simd_fp);
  return s;
}

/// Per-sweep cost of the RGG distance-mask scan: mean degree 64 with half
/// the nodes transmitting keeps every cell populated, so the scan (not the
/// bucketing) dominates. begin_round's counter-keyed motion sweep is
/// included — it is mode-independent, so the delta between the rows is
/// the scan alone.
SimdSweep time_rgg_distance(std::uint32_t n, std::uint32_t reps) {
  SimdSweep s;
  const double radius = std::sqrt(64.0 / (3.141592653589793 * n));
  std::vector<NodeId> tx;
  std::vector<char> is_tx(n, 0);
  for (NodeId v = 0; v < n; v += 2) {
    tx.push_back(v);
    is_tx[v] = 1;
  }
  const auto run = [&](radnet::simd::Mode mode, double* ns_out,
                       std::uint64_t* fp_out) {
    radnet::simd::set_mode(mode);
    radnet::sim::ImplicitRggTopology topo(
        radnet::sim::ImplicitRgg{n, radius, radius / 8.0, Rng(92)});
    FingerprintSink sink;
    Sample ns;
    radnet::sim::Round round = 0;  // backends require non-decreasing rounds
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const double t0 = now_ns();
      for (radnet::sim::Round r = 0; r < kRounds; ++r) {
        topo.begin_round(round++);
        topo.deliver({tx.data(), tx.size()}, is_tx, /*half_duplex=*/false,
                     radnet::sim::DeliveryPath::kAuto, std::nullopt,
                     /*collisions_inert=*/false, sink);
      }
      ns.add((now_ns() - t0) / kRounds);
    }
    *ns_out = ns.median();
    *fp_out = sink.hash ^ sink.deliveries ^ (sink.collisions << 1);
  };
  run(radnet::simd::Mode::kScalar, &s.scalar_ns, &s.scalar_fp);
  run(radnet::simd::Mode::kAvx2, &s.simd_ns, &s.simd_fp);
  return s;
}

/// Byte-compares the lane generator's dispatched bulk stream against its
/// portable scalar reference — the root of the whole SIMD identity
/// argument, checked directly.
bool lane_streams_identical() {
  const auto key = radnet::StreamKey::from_rng(Rng(0x51));
  radnet::LaneRng dispatched(key);
  radnet::LaneRng reference(key);
  radnet::simd::set_mode(radnet::simd::Mode::kAvx2);
  for (std::uint32_t step = 0; step < 4096; ++step) {
    std::uint64_t got[radnet::LaneRng::kLanes];
    std::uint64_t want[radnet::LaneRng::kLanes];
    dispatched.next_u64_lanes(got);
    reference.next_u64_lanes_scalar(want);
    for (unsigned l = 0; l < radnet::LaneRng::kLanes; ++l)
      if (got[l] != want[l]) return false;
  }
  return true;
}

/// E13's SIMD rows and the scalar-vs-SIMD identity gate. On hosts without
/// AVX2 set_mode degrades to scalar, so the rows coincide and the gate
/// passes trivially; cpu_avx2 in the host block records which case ran.
SimdNumbers time_simd_sweeps(bool quick) {
  SimdNumbers s;
  s.dense_n = quick ? (1u << 14) : (1u << 16);
  s.rgg_n = quick ? (1u << 14) : (1u << 16);
  const std::uint32_t reps = quick ? 3 : 5;
  s.dense = time_dense_classify(s.dense_n, reps);
  s.rgg = time_rgg_distance(s.rgg_n, reps);
  s.lanes_identical = lane_streams_identical();
  return s;
}

struct Comparison {
  std::uint32_t n = 0;
  double p = 0.0;
  double csr_ms = 0.0;
  double implicit_ms = 0.0;
  double speedup = 0.0;
};

Comparison compare_broadcast(std::uint32_t n, std::uint32_t reps) {
  Comparison c;
  c.n = n;
  c.p = 16.0 / n;
  BroadcastRandomProtocol probe(BroadcastRandomParams{.p = c.p});
  probe.reset(n, Rng(0));
  radnet::sim::RunOptions options;
  options.max_rounds = probe.round_budget();
  radnet::sim::Engine engine;

  Sample csr_ms, implicit_ms;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    {
      const double t0 = now_ns();
      Rng grng(rep);
      const Digraph g = radnet::graph::gnp_directed(n, c.p, grng);
      BroadcastRandomProtocol proto(BroadcastRandomParams{.p = c.p});
      (void)engine.run(g, proto, Rng(rep + 1), options);
      csr_ms.add((now_ns() - t0) / 1e6);
    }
    {
      const double t0 = now_ns();
      const radnet::sim::ImplicitGnp gnp{n, c.p, Rng(rep)};
      BroadcastRandomProtocol proto(BroadcastRandomParams{.p = c.p});
      (void)engine.run(gnp, proto, Rng(rep + 1), options);
      implicit_ms.add((now_ns() - t0) / 1e6);
    }
  }
  c.csr_ms = csr_ms.median();
  c.implicit_ms = implicit_ms.median();
  c.speedup = c.csr_ms / c.implicit_ms;
  return c;
}

struct DynamicNumbers {
  std::uint32_t n = 0;
  double churn = 0.5;
  double trial_ms = 0.0;
  double rounds = 0.0;
};

/// One E16-style churned-gossip trial per rep on the implicit dynamic
/// backend; medians across reps.
DynamicNumbers time_dynamic_gossip(std::uint32_t n, std::uint32_t reps) {
  DynamicNumbers d;
  d.n = n;
  const double p = 16.0 / n;
  radnet::core::GossipRumorMarginalProtocol probe(
      radnet::core::GossipRumorMarginalParams{.p = p});
  probe.reset(n, Rng(0));
  radnet::sim::RunOptions options;
  options.max_rounds = probe.round_budget();
  radnet::sim::Engine engine;
  Sample ms, rounds;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    const double t0 = now_ns();
    radnet::sim::ImplicitDynamicGnp spec;
    spec.n = n;
    spec.p = p;
    spec.churn = d.churn;
    spec.rng = Rng(rep + 1);
    radnet::core::GossipRumorMarginalProtocol proto(
        radnet::core::GossipRumorMarginalParams{.p = p});
    const auto run = engine.run(spec, proto, Rng(rep + 100), options);
    ms.add((now_ns() - t0) / 1e6);
    // completion_round is only meaningful for completed runs; a failed rep
    // must not push a 0 into the tracked median.
    if (run.completed) rounds.add(static_cast<double>(run.completion_round));
  }
  d.trial_ms = ms.median();
  d.rounds = rounds.empty() ? 0.0 : rounds.median();
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  radnet::CliArgs args = [&] {
    try {
      return radnet::CliArgs(argc, argv, {"quick", "out"});
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      std::exit(2);
    }
  }();
  const bool quick = args.get_bool("quick", false);
  const std::string out_path = args.get_string("out", "BENCH_engine.json");
  // The dispatch mode the process resolved at startup (RADNET_SIMD env or
  // CPUID) — recorded in the host block; every entry below except the
  // explicit scalar-vs-SIMD rows runs under it.
  const radnet::simd::Mode host_mode = radnet::simd::active_mode();

  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{1u << 10, 1u << 12}
            : std::vector<std::uint32_t>{1u << 12, 1u << 14, 1u << 16};
  const std::uint32_t reps = quick ? 5 : 15;
  const std::uint32_t compare_n = quick ? (1u << 14) : (1u << 20);
  const std::uint32_t compare_reps = quick ? 3 : 5;

  std::vector<Entry> entries;
  for (const std::uint32_t n : sizes) {
    entries.push_back(time_csr_engine(n, reps));
    entries.push_back(time_implicit_engine(n, reps));
    std::cout << entries[entries.size() - 2].name << " n=" << n << ": "
              << entries[entries.size() - 2].ns_per_round << " ns/round\n"
              << entries.back().name << " n=" << n << ": "
              << entries.back().ns_per_round << " ns/round\n";
  }

  const Comparison cmp = compare_broadcast(compare_n, compare_reps);
  std::cout << "broadcast end-to-end n=" << cmp.n << ": csr " << cmp.csr_ms
            << " ms, implicit " << cmp.implicit_ms << " ms, speedup "
            << cmp.speedup << "x\n";

  const DynamicNumbers dyn =
      time_dynamic_gossip(quick ? (1u << 14) : (1u << 17), compare_reps);
  std::cout << "churned gossip (E16) n=" << dyn.n << " churn=" << dyn.churn
            << ": " << dyn.trial_ms << " ms/trial, " << dyn.rounds
            << " rounds\n";

  const ThreadScaling ts =
      time_thread_scaling(quick ? (1u << 18) : (1u << 22));
  std::cout << "thread scaling (E17) n=" << ts.n << ": serial "
            << ts.serial_ms << " ms, " << ts.pool_threads << "-thread "
            << ts.parallel_ms << " ms, speedup " << ts.speedup << "x, "
            << (ts.identical ? "bit-identical" : "DIVERGED") << "\n";
  if (!ts.identical) {
    std::cerr << "thread-scaling runs diverged — determinism bug\n";
    return 1;
  }

  const ThreadScaling cts =
      time_csr_thread_scaling(quick ? (1u << 15) : (1u << 19));
  std::cout << "CSR thread scaling n=" << cts.n << ": serial "
            << cts.serial_ms << " ms, " << cts.pool_threads << "-thread "
            << cts.parallel_ms << " ms, speedup " << cts.speedup << "x, "
            << (cts.identical ? "bit-identical" : "DIVERGED") << "\n";
  if (!cts.identical) {
    std::cerr << "CSR serial-vs-parallel runs diverged — sharding bug\n";
    return 1;
  }

  const ThreadScaling sts =
      time_sketch_thread_scaling(quick ? (1u << 14) : (1u << 20));
  std::cout << "sketch-phase thread scaling n=" << sts.n << ": serial "
            << sts.serial_ms << " ms, " << sts.pool_threads << "-thread "
            << sts.parallel_ms << " ms, speedup " << sts.speedup << "x, "
            << (sts.identical ? "bit-identical" : "DIVERGED") << "\n";
  if (!sts.identical) {
    std::cerr << "sketch-phase serial-vs-parallel runs diverged — chunk "
                 "keying or merge-order bug\n";
    return 1;
  }

  const ThreadScaling bts =
      time_rgg_bucketing_thread_scaling(quick ? (1u << 14) : (1u << 20));
  std::cout << "RGG bucketing thread scaling n=" << bts.n << ": serial "
            << bts.serial_ms << " ms, " << bts.pool_threads << "-thread "
            << bts.parallel_ms << " ms, speedup " << bts.speedup << "x, "
            << (bts.identical ? "bit-identical" : "DIVERGED") << "\n";
  if (!bts.identical) {
    std::cerr << "RGG bucketing serial-vs-parallel runs diverged — "
                 "cell-merge layout bug\n";
    return 1;
  }

  const MobilityNumbers mob =
      time_rgg_mobility(quick ? (1u << 18) : 10'000'000u, quick ? 32u : 64u);
  std::cout << "mobility RGG (E14b) n=" << mob.n << " horizon=" << mob.horizon
            << ": serial " << mob.serial_ms << " ms, " << mob.pool_threads
            << "-thread " << mob.parallel_ms << " ms, speedup " << mob.speedup
            << "x, " << (mob.identical ? "bit-identical" : "DIVERGED") << "\n";
  if (!mob.identical) {
    std::cerr << "mobility-RGG serial-vs-parallel runs diverged — "
                 "sharding bug\n";
    return 1;
  }

  const AdversaryNumbers e18 =
      time_adversary(quick ? (1u << 15) : (1u << 20), quick ? 32u : 64u);
  std::cout << "adversarial broadcast (E18) n=" << e18.n << " jam="
            << e18.jammer_fraction << " byz=" << e18.byzantine_fraction
            << ": serial " << e18.serial_ms << " ms, " << e18.pool_threads
            << "-thread " << e18.parallel_ms << " ms, speedup " << e18.speedup
            << "x, stranded " << e18.stranded_fraction << ", "
            << (e18.identical ? "bit-identical" : "DIVERGED") << "\n";
  if (!e18.identical) {
    std::cerr << "adversarial serial-vs-parallel runs diverged — the "
                 "adversary broke engine determinism\n";
    return 1;
  }

  const BatchNumbers e19 = time_batch(quick);
  std::cout << "batch sweep service (E19) " << e19.specs << " specs: "
            << e19.trials_run << " trials run, " << e19.trials_saved
            << " saved by early stopping; serial " << e19.serial_ms
            << " ms, parallel " << e19.parallel_ms << " ms, warm replay "
            << e19.warm_ms << " ms, "
            << (e19.threads_identical && e19.cached_identical
                    ? "bit-identical"
                    : "DIVERGED")
            << "\n";
  if (!e19.threads_identical) {
    std::cerr << "batch serial-vs-parallel streams diverged — the grant "
                 "schedule leaked thread count into the results\n";
    return 1;
  }
  if (!e19.cached_identical) {
    std::cerr << "batch cached result diverged from the cold run for the "
                 "same spec hash — cache replay broke byte-identity\n";
    return 1;
  }

  const FaultTolNumbers e20 = time_faulttol();
  std::cout << "crash-safe sweep (E20) " << e20.specs << " specs: child "
            << (e20.kill_confirmed ? "SIGKILLed mid-flight" : "NOT KILLED")
            << ", " << e20.journal_trials << " trials + "
            << e20.journal_results
            << " results replayed from the journal; baseline "
            << e20.baseline_ms << " ms, resume " << e20.resume_ms << " ms, "
            << (e20.partial_prefix && e20.resumed_identical ? "byte-identical"
                                                            : "DIVERGED")
            << "\n";
  if (!e20.kill_confirmed) {
    std::cerr << "fault-tolerance gate: the injected SIGKILL never fired — "
                 "the grant-boundary fault hook is dead\n";
    return 1;
  }
  if (!e20.partial_prefix) {
    std::cerr << "fault-tolerance gate: the torn partial output is not a "
                 "byte-prefix of the uninterrupted stream\n";
    return 1;
  }
  if (!e20.resumed_identical) {
    std::cerr << "fault-tolerance gate: the resumed stream differs from the "
                 "uninterrupted run — resume(interrupt(run)) != run\n";
    return 1;
  }

  const SimdNumbers e13 = time_simd_sweeps(quick);
  radnet::simd::set_mode(host_mode);
  std::cout << "SIMD sweeps (E13) dense n=" << e13.dense_n << ": scalar "
            << e13.dense.scalar_ns << " ns/sweep, simd " << e13.dense.simd_ns
            << " ns/sweep, speedup " << e13.dense.speedup()
            << "x; rgg n=" << e13.rgg_n << ": scalar " << e13.rgg.scalar_ns
            << " ns/sweep, simd " << e13.rgg.simd_ns << " ns/sweep, speedup "
            << e13.rgg.speedup() << "x, "
            << (e13.dense.identical() && e13.rgg.identical() &&
                        e13.lanes_identical
                    ? "bit-identical"
                    : "DIVERGED")
            << "\n";
  if (!e13.lanes_identical) {
    std::cerr << "SIMD gate: the dispatched lane-RNG stream diverged from "
                 "its scalar reference\n";
    return 1;
  }
  if (!e13.dense.identical()) {
    std::cerr << "SIMD gate: dense classification events diverged between "
                 "scalar and SIMD dispatch\n";
    return 1;
  }
  if (!e13.rgg.identical()) {
    std::cerr << "SIMD gate: RGG distance-scan events diverged between "
                 "scalar and SIMD dispatch\n";
    return 1;
  }
  entries.push_back(
      {"dense_classify_sweep_scalar", e13.dense_n, e13.dense.scalar_ns, 0.0,
       1, peak_rss_kb()});
  entries.push_back({"dense_classify_sweep_simd", e13.dense_n,
                     e13.dense.simd_ns, 0.0, 1, peak_rss_kb()});
  entries.push_back({"rgg_distance_sweep_scalar", e13.rgg_n,
                     e13.rgg.scalar_ns, 0.0, 1, peak_rss_kb()});
  entries.push_back({"rgg_distance_sweep_simd", e13.rgg_n, e13.rgg.simd_ns,
                     0.0, 1, peak_rss_kb()});

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  out << "{\n  \"schema\": \"radnet-bench-engine-v9\",\n  \"host\": {"
      << "\"hardware_concurrency\": "
      << std::max(1u, std::thread::hardware_concurrency())
      << ", \"pool_threads\": " << radnet::global_pool().size()
      << ", \"simd\": \"" << radnet::simd::mode_name(host_mode)
      << "\", \"cpu_avx2\": "
      << (radnet::simd::cpu_has_avx2() ? "true" : "false") << "},\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "    {\"name\": \"" << entries[i].name << "\", \"n\": "
        << entries[i].n << ", \"ns_per_round\": " << entries[i].ns_per_round
        << ", \"wall_ms\": " << entries[i].wall_ms
        << ", \"threads\": " << entries[i].threads
        << ", \"peak_rss_kb\": " << entries[i].peak_rss_kb
        << (i + 1 < entries.size() ? "},\n" : "}\n");
  }
  out << "  ],\n  \"comparison\": {\"n\": " << cmp.n << ", \"p\": " << cmp.p
      << ", \"csr_ms\": " << cmp.csr_ms
      << ", \"implicit_ms\": " << cmp.implicit_ms
      << ", \"speedup\": " << cmp.speedup
      << ", \"peak_rss_kb\": " << peak_rss_kb() << "},\n"
      << "  \"dynamic\": {\"n\": " << dyn.n << ", \"churn\": " << dyn.churn
      << ", \"trial_ms\": " << dyn.trial_ms
      << ", \"rounds\": " << dyn.rounds << "},\n"
      << "  \"thread_scaling\": {\"n\": " << ts.n
      << ", \"serial_ms\": " << ts.serial_ms
      << ", \"parallel_ms\": " << ts.parallel_ms
      << ", \"speedup\": " << ts.speedup
      << ", \"pool_threads\": " << ts.pool_threads << ", \"identical\": "
      << (ts.identical ? "true" : "false") << "},\n"
      << "  \"csr_thread_scaling\": {\"n\": " << cts.n
      << ", \"serial_ms\": " << cts.serial_ms
      << ", \"parallel_ms\": " << cts.parallel_ms
      << ", \"speedup\": " << cts.speedup
      << ", \"pool_threads\": " << cts.pool_threads << ", \"identical\": "
      << (cts.identical ? "true" : "false") << "},\n"
      << "  \"sketch_thread_scaling\": {\"n\": " << sts.n
      << ", \"serial_ms\": " << sts.serial_ms
      << ", \"parallel_ms\": " << sts.parallel_ms
      << ", \"speedup\": " << sts.speedup
      << ", \"pool_threads\": " << sts.pool_threads << ", \"identical\": "
      << (sts.identical ? "true" : "false") << "},\n"
      << "  \"rgg_bucketing_thread_scaling\": {\"n\": " << bts.n
      << ", \"serial_ms\": " << bts.serial_ms
      << ", \"parallel_ms\": " << bts.parallel_ms
      << ", \"speedup\": " << bts.speedup
      << ", \"pool_threads\": " << bts.pool_threads << ", \"identical\": "
      << (bts.identical ? "true" : "false") << "},\n"
      << "  \"e14b_mobility\": {\"n\": " << mob.n
      << ", \"degree\": " << mob.degree << ", \"horizon\": " << mob.horizon
      << ", \"serial_ms\": " << mob.serial_ms
      << ", \"parallel_ms\": " << mob.parallel_ms
      << ", \"speedup\": " << mob.speedup
      << ", \"pool_threads\": " << mob.pool_threads << ", \"identical\": "
      << (mob.identical ? "true" : "false")
      << ", \"peak_rss_kb\": " << peak_rss_kb() << "},\n"
      << "  \"e18_adversary\": {\"n\": " << e18.n
      << ", \"jammer_fraction\": " << e18.jammer_fraction
      << ", \"byzantine_fraction\": " << e18.byzantine_fraction
      << ", \"budget_mean\": " << e18.budget_mean
      << ", \"horizon\": " << e18.horizon
      << ", \"serial_ms\": " << e18.serial_ms
      << ", \"parallel_ms\": " << e18.parallel_ms
      << ", \"speedup\": " << e18.speedup
      << ", \"pool_threads\": " << e18.pool_threads << ", \"identical\": "
      << (e18.identical ? "true" : "false")
      << ", \"stranded_fraction\": " << e18.stranded_fraction << "},\n"
      << "  \"e19_batch\": {\"specs\": " << e19.specs
      << ", \"trials_run\": " << e19.trials_run
      << ", \"trials_saved\": " << e19.trials_saved
      << ", \"serial_ms\": " << e19.serial_ms
      << ", \"parallel_ms\": " << e19.parallel_ms
      << ", \"warm_ms\": " << e19.warm_ms << ", \"threads_identical\": "
      << (e19.threads_identical ? "true" : "false")
      << ", \"cached_identical\": "
      << (e19.cached_identical ? "true" : "false") << "},\n"
      << "  \"e20_faulttol\": {\"specs\": " << e20.specs
      << ", \"kill_confirmed\": " << (e20.kill_confirmed ? "true" : "false")
      << ", \"partial_prefix\": " << (e20.partial_prefix ? "true" : "false")
      << ", \"resumed_identical\": "
      << (e20.resumed_identical ? "true" : "false")
      << ", \"journal_trials\": " << e20.journal_trials
      << ", \"journal_results\": " << e20.journal_results
      << ", \"baseline_ms\": " << e20.baseline_ms
      << ", \"resume_ms\": " << e20.resume_ms << "},\n"
      << "  \"e13_simd\": {\"dense_n\": " << e13.dense_n
      << ", \"dense_scalar_ns\": " << e13.dense.scalar_ns
      << ", \"dense_simd_ns\": " << e13.dense.simd_ns
      << ", \"dense_speedup\": " << e13.dense.speedup()
      << ", \"rgg_n\": " << e13.rgg_n
      << ", \"rgg_scalar_ns\": " << e13.rgg.scalar_ns
      << ", \"rgg_simd_ns\": " << e13.rgg.simd_ns
      << ", \"rgg_speedup\": " << e13.rgg.speedup()
      << ", \"identical\": "
      << (e13.dense.identical() && e13.rgg.identical() && e13.lanes_identical
              ? "true"
              : "false")
      << "}\n}\n";
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
