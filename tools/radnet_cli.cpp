// radnet_cli — run any protocol on any topology from the command line.
//
//   radnet_cli --protocol alg1 --topology gnp --n 4096 --delta 8 --trials 16
//   radnet_cli --protocol alg1 --topology ignp --n 10000000 --p 0.0000016
//   radnet_cli --protocol alg2m --topology idgnp --n 1000000 --delta 16
//              --churn 0.5 --fail-prob 0.00001  (one command line)
//   radnet_cli --protocol alg3 --topology grid --n 256 --trials 8
//   radnet_cli --protocol decay --topology obs43 --n 64
//   radnet_cli --protocol alg2 --topology rgg --n 512 --radius-mult 3
//   radnet_cli --protocol fixed --q 0.5 --topology thm44 --n 64 --diameter 40
//
// Protocols: alg1 alg2 alg2m alg3 cr decay eg2005 flooding fixed tdma
//            (alg2m = single-rumor marginal of Algorithm 2: O(n) state,
//            the gossip that scales to n ~ 10^7)
// Topologies: gnp ugnp rgg path cycle grid star complete cluster obs43 thm44
//             churn (explicit ChurnGnp link-churn sequence; --churn)
//             ignp (implicit G(n,p): never materialised, O(n) memory)
//             idgnp (implicit *dynamic* G(n,p): --churn link churn,
//             --fail-prob permanent radio failures, --p-amp/--p-period
//             sinusoidal density schedule — the graph-free dynamic family;
//             see sim/topology.hpp for exact-vs-modelled regimes)
//             irgg (implicit mobility RGG: random-walk mobility over a
//             geometric graph, graph-free and exact for every protocol;
//             --radius-mult sizes the radio range, --step the per-round
//             movement as a fraction of the radius)
//
// Common flags: --n --trials --seed --max-rounds --source --quiescence
// Topology flags: --p | --delta (p = delta ln n / n), --radius-mult,
//                 --cluster-size, --diameter (thm44; also overrides the
//                 measured D used by alg3/cr), --q (fixed), --lambda (alg3),
//                 --churn, --fail-prob, --p-amp, --p-period (idgnp/churn),
//                 --step (irgg: per-round movement / radius, default 0.125)
// Adversary flags (sim/adversary.hpp; the source is auto-protected):
//   --jammers F          fraction of nodes jamming every round
//   --byzantine F        fraction of nodes relaying corrupted copies
//   --energy-budget MEAN[:SPREAD[:silent|listen]]
//                        per-node transmission budgets (uniform MEAN +-
//                        SPREAD*MEAN); exhausted radios go silent or
//                        listen-only (default listen)
//   --fault-schedule "crash@R[:F],recover@R[:F],..."
//                        crash/recover each eligible node w.p. F (default 1)
//                        at round R; rounds must be non-decreasing
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>

#include "baselines/czumaj_rytter.hpp"
#include "baselines/decay.hpp"
#include "baselines/elsasser_gasieniec.hpp"
#include "baselines/fixed_prob.hpp"
#include "baselines/flooding.hpp"
#include "baselines/gossip_baselines.hpp"
#include "core/broadcast_general.hpp"
#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/dynamics.hpp"
#include "graph/generators.hpp"
#include "graph/lower_bound_nets.hpp"
#include "graph/metrics.hpp"
#include "harness/monte_carlo.hpp"
#include "support/cli_args.hpp"
#include "support/math.hpp"
#include "support/parse.hpp"
#include "support/table.hpp"

namespace {

using namespace radnet;

graph::Digraph build_topology(const CliArgs& args, graph::NodeId n, double p,
                              Rng& rng, graph::NodeId* source_out) {
  const std::string topo = args.get_string("topology", "gnp");
  *source_out = static_cast<graph::NodeId>(args.get_u64("source", 0));
  if (topo == "gnp") return graph::gnp_directed(n, p, rng);
  if (topo == "ugnp") return graph::gnp_undirected(n, p, rng);
  if (topo == "rgg") {
    const double mult = args.get_double("radius-mult", 2.0);
    return graph::random_geometric(n, graph::rgg_threshold_radius(n, mult), rng);
  }
  if (topo == "path") return graph::path(n);
  if (topo == "cycle") return graph::cycle(n);
  if (topo == "grid") {
    const auto side = static_cast<graph::NodeId>(std::lround(std::sqrt(n)));
    return graph::grid(side, side);
  }
  if (topo == "star") return graph::star(n);
  if (topo == "complete") return graph::complete(n);
  if (topo == "cluster") {
    const auto cs = static_cast<graph::NodeId>(args.get_u64("cluster-size", 16));
    return graph::cluster_chain(cs, std::max<graph::NodeId>(1, n / cs));
  }
  if (topo == "obs43") {
    auto net = graph::obs43_network(n);
    *source_out = net.source;
    return std::move(net.graph);
  }
  if (topo == "thm44") {
    const std::uint64_t D = args.get_u64(
        "diameter", 2ull * ilog2_floor(n) + 8);
    auto net = graph::thm44_network(n, D);
    *source_out = net.source;
    return std::move(net.graph);
  }
  throw std::invalid_argument("unknown topology: " + topo);
}

/// --jammers / --byzantine / --energy-budget / --fault-schedule into an
/// AdversarySpec; the (rumor) source is always protected so the attacked
/// quantity is the spread of the message, not its existence. The textual
/// forms go through the strict shared parsers (sim/adversary.hpp): a
/// malformed value — "--jammers=abc", a truncated "recover@", trailing
/// garbage after a round number — fails the run with a message naming the
/// flag instead of silently configuring a different experiment.
sim::AdversarySpec parse_adversary(const CliArgs& args, graph::NodeId source) {
  sim::AdversarySpec adv;
  if (args.has("jammers"))
    adv.jammer_fraction = parse_double_in(
        args.get_string("jammers", ""), "--jammers", 0.0, 1.0);
  if (args.has("byzantine"))
    adv.byzantine_fraction = parse_double_in(
        args.get_string("byzantine", ""), "--byzantine", 0.0, 1.0);

  const std::string budget = args.get_string("energy-budget", "");
  if (!budget.empty())
    sim::parse_energy_budget(budget, "--energy-budget", adv);

  const std::string schedule = args.get_string("fault-schedule", "");
  if (!schedule.empty())
    adv.fault_schedule = sim::parse_fault_schedule(schedule, "--fault-schedule");

  if (adv.active()) adv.protected_nodes = {source};
  adv.validate();
  return adv;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"protocol", "topology", "n", "p", "delta", "trials",
                        "seed", "max-rounds", "threads", "source", "radius-mult",
                        "cluster-size", "diameter", "q", "lambda", "churn",
                        "fail-prob", "p-amp", "p-period", "step", "quiescence",
                        "jammers", "byzantine", "energy-budget",
                        "fault-schedule", "help"});
    if (args.get_bool("help", false) || argc == 1) {
      std::cout << "usage: radnet_cli --protocol <alg1|alg2|alg2m|alg3|cr|"
                   "decay|eg2005|flooding|fixed|tdma>\n"
                   "                  --topology <gnp|ugnp|rgg|path|cycle|grid|"
                   "star|complete|cluster|obs43|thm44|churn|ignp|idgnp|irgg>\n"
                   "                  [--n N] [--p P | --delta D] [--trials T]"
                   " [--seed S]\n"
                   "                  [--diameter D] [--q Q] [--lambda L]"
                   " [--max-rounds R] [--quiescence]\n"
                   "                  [--churn C] [--fail-prob F] [--p-amp A"
                   " --p-period R]\n"
                   "                  [--radius-mult M --step S]   irgg radio"
                   " range and mobility\n"
                   "                  [--threads K]   within-trial round-sweep"
                   " threads: 1 serial\n"
                   "                  (default), 0 every core; results are"
                   " identical either way\n"
                   "                  [--jammers F] [--byzantine F]   adversary"
                   " node fractions\n"
                   "                  [--energy-budget MEAN[:SPREAD[:silent|"
                   "listen]]]\n"
                   "                  [--fault-schedule crash@R[:F],"
                   "recover@R[:F],...]\n";
      return 0;
    }

    const auto n = static_cast<graph::NodeId>(args.get_u64("n", 1024));
    const double p = args.has("p")
                         ? args.get_double("p", 0.0)
                         : args.get_double("delta", 8.0) *
                               std::log(static_cast<double>(n)) / n;
    const std::uint32_t trials =
        static_cast<std::uint32_t>(args.get_u64("trials", 8));
    const std::uint64_t seed = args.get_u64("seed", 0x5eed);
    const std::string proto_name = args.get_string("protocol", "alg1");
    const std::string topo_name = args.get_string("topology", "gnp");
    const bool implicit = topo_name == "ignp";
    const bool implicit_dynamic = topo_name == "idgnp";
    const bool implicit_rgg = topo_name == "irgg";
    const bool churn_topo = topo_name == "churn";
    const double churn = args.get_double("churn", implicit_dynamic ? 1.0 : 0.1);
    RADNET_REQUIRE(churn > 0.0 && churn <= 1.0,
                   "--churn must be in (0, 1]");
    const double fail_prob = args.get_double("fail-prob", 0.0);
    RADNET_REQUIRE(fail_prob >= 0.0 && fail_prob < 1.0,
                   "--fail-prob must be in [0, 1)");
    const double p_amp = args.get_double("p-amp", 0.0);
    const auto p_period = args.get_u64("p-period", 64);
    RADNET_REQUIRE(p_amp == 0.0 || p_period >= 1,
                   "--p-period must be >= 1 when --p-amp is set");

    graph::NodeId source = 0;
    std::uint64_t nn = n;
    double eff_p = p;
    std::uint64_t diameter = 0;
    graph::Digraph sample;
    // irgg geometry: radio range from the connectivity-threshold multiple,
    // per-round movement as a fraction of that range.
    const double rgg_radius =
        graph::rgg_threshold_radius(n, args.get_double("radius-mult", 2.0));
    const double rgg_step = rgg_radius * args.get_double("step", 0.125);
    if (implicit_rgg) {
      // No graph to probe: the topology exists only as (n, radius, step).
      source = static_cast<graph::NodeId>(args.get_u64("source", 0));
      const double mean_degree =
          3.141592653589793 * rgg_radius * rgg_radius * n;
      eff_p = mean_degree / n;  // tunes the protocols' transmit rates
      // Hop diameter of the unit square at this range, for round budgets.
      diameter = args.get_u64(
          "diameter",
          std::max<std::uint64_t>(
              2, static_cast<std::uint64_t>(std::ceil(1.4143 / rgg_radius))));
      std::cout << "topology irgg: " << n
                << " nodes, implicit mobility RGG with radius=" << rgg_radius
                << ", step/round=" << rgg_step << " (never materialised)\n"
                << "mean degree ~ " << mean_degree
                << "; exact for every protocol (delivery is deterministic "
                   "geometry)\n";
    } else if (implicit || implicit_dynamic) {
      // No graph to probe: the topology exists only as (n, p, dynamics).
      source = static_cast<graph::NodeId>(args.get_u64("source", 0));
      diameter = args.get_u64("diameter", 2ull * ilog2_floor(n) + 8);
      std::cout << "topology " << topo_name << ": " << n
                << " nodes, implicit G(n,p) with p=" << p
                << " (never materialised)\n";
      if (implicit_dynamic)
        std::cout << "dynamics: churn=" << churn << " fail-prob=" << fail_prob
                  << (p_amp > 0.0 ? " sinusoidal p(t) schedule" : "") << "\n";
      else
        std::cout << "note: exact for single-shot protocols (alg1); "
                     "protocols that transmit repeatedly\nsee "
                     "per-round-resampled links (the churn=1 mobility "
                     "model), not one fixed graph\n";
    } else if (churn_topo) {
      source = static_cast<graph::NodeId>(args.get_u64("source", 0));
      diameter = args.get_u64("diameter", 2ull * ilog2_floor(n) + 8);
      std::cout << "topology churn: " << n
                << " nodes, explicit ChurnGnp with p=" << p
                << ", churn=" << churn << " per round\n";
    } else {
      // One representative instance for the measured columns (degree, D).
      Rng probe_rng(seed);
      sample = build_topology(args, n, p, probe_rng, &source);
      const auto deg = graph::degree_stats(sample);
      const auto measured_d = graph::diameter_sampled(sample, 4, seed + 1);
      diameter = args.get_u64("diameter",
                              measured_d ? *measured_d : sample.num_nodes());
      eff_p = deg.mean_out / sample.num_nodes();
      nn = sample.num_nodes();

      std::cout << "topology " << topo_name << ": " << sample.num_nodes()
                << " nodes, " << sample.num_edges() << " edges, mean degree "
                << deg.mean_out << ", diameter "
                << (measured_d ? std::to_string(*measured_d) : "unreachable")
                << "\n";
    }
    const auto make_protocol =
        [&]() -> std::unique_ptr<sim::Protocol> {
      if (proto_name == "alg1")
        return std::make_unique<core::BroadcastRandomProtocol>(
            core::BroadcastRandomParams{.p = eff_p, .source = source});
      if (proto_name == "alg2")
        return std::make_unique<core::GossipRandomProtocol>(
            core::GossipRandomParams{.p = eff_p});
      if (proto_name == "alg2m")
        return std::make_unique<core::GossipRumorMarginalProtocol>(
            core::GossipRumorMarginalParams{.p = eff_p,
                                            .rumor_source = source});
      if (proto_name == "alg3") {
        const double lambda =
            args.get_double("lambda", lambda_of(nn, diameter));
        return std::make_unique<core::GeneralBroadcastProtocol>(
            core::GeneralBroadcastParams{
                .distribution =
                    core::SequenceDistribution::alpha_with_lambda(nn, lambda),
                .window = core::general_window(nn, 4.0),
                .source = source,
                .label = "alg3"});
      }
      if (proto_name == "cr")
        return baselines::czumaj_rytter(nn, diameter, 4.0, source);
      if (proto_name == "decay")
        return std::make_unique<baselines::DecayProtocol>(
            baselines::DecayParams{.source = source});
      if (proto_name == "eg2005")
        return std::make_unique<baselines::ElsasserGasieniecProtocol>(
            baselines::ElsasserGasieniecParams{.p = eff_p, .source = source});
      if (proto_name == "flooding")
        return std::make_unique<baselines::FloodingProtocol>(source);
      if (proto_name == "fixed")
        return std::make_unique<baselines::FixedProbProtocol>(
            baselines::FixedProbParams{.q = args.get_double("q", 0.5),
                                       .source = source});
      if (proto_name == "tdma")
        return std::make_unique<baselines::TdmaGossipProtocol>();
      throw std::invalid_argument("unknown protocol: " + proto_name);
    };

    harness::McSpec spec;
    spec.trials = trials;
    spec.seed = seed;
    const bool random_topo =
        topo_name == "gnp" || topo_name == "ugnp" || topo_name == "rgg";
    if (implicit_rgg) {
      spec.implicit_rgg = sim::ImplicitRgg{n, rgg_radius, rgg_step, Rng{}};
    } else if (implicit_dynamic) {
      sim::ImplicitDynamicGnp params;
      params.n = n;
      params.p = p;
      params.churn = churn;
      params.fail_prob = fail_prob;
      if (p_amp > 0.0) {
        // Mobility as density: p(t) = p * (1 + amp * sin(2 pi t / period)),
        // clamped into [0, 1] by the backend.
        params.p_of_round = [p, p_amp, p_period](sim::Round r) {
          return p * (1.0 + p_amp * std::sin(2.0 * 3.141592653589793 *
                                             static_cast<double>(r) /
                                             static_cast<double>(p_period)));
        };
      }
      spec.implicit_dynamic = std::move(params);
    } else if (implicit) {
      spec.implicit_gnp = harness::ImplicitGnpParams{n, p};
    } else if (churn_topo) {
      spec.make_sequence = [n, p, churn](std::uint32_t, Rng rng) {
        return std::make_unique<graph::ChurnGnp>(n, p, churn, rng);
      };
    } else if (random_topo) {
      spec.make_graph = [&args, n, p](std::uint32_t, Rng rng) {
        graph::NodeId src = 0;
        return std::make_shared<const graph::Digraph>(
            build_topology(args, n, p, rng, &src));
      };
    } else {
      spec.make_graph = harness::shared_graph(graph::Digraph(sample));
    }
    spec.make_protocol = [&make_protocol](const graph::Digraph&, std::uint32_t) {
      return make_protocol();
    };
    const double log2nn = std::log2(static_cast<double>(nn));
    const auto default_budget = static_cast<sim::Round>(
        64.0 * (static_cast<double>(diameter) * std::max(1.0, log2nn) +
                log2nn * log2nn));
    spec.run_options.max_rounds = static_cast<sim::Round>(
        args.get_u64("max-rounds", default_budget));
    // Purely a schedule knob: the sharded sweeps are bit-identical at any
    // thread count. Unset (= 1) lets the harness pick trial- vs
    // round-parallelism from the trial count; RADNET_THREADS sizes the
    // shared pool either way.
    const std::uint64_t threads = args.get_u64("threads", 1);
    RADNET_REQUIRE(threads <= 4096, "--threads must be <= 4096");
    spec.run_options.threads = static_cast<unsigned>(threads);
    spec.run_options.stop_on_empty_candidates = true;
    spec.run_options.run_to_quiescence = args.get_bool("quiescence", false);
    spec.run_options.adversary = parse_adversary(args, source);
    const bool adversarial = spec.run_options.adversary.active();
    if (adversarial) {
      const auto& adv = spec.run_options.adversary;
      std::cout << "adversary: jammers=" << adv.jammer_fraction
                << " byzantine=" << adv.byzantine_fraction
                << " budget=" << adv.budget_mean << "+-"
                << adv.budget_spread * adv.budget_mean
                << (adv.exhaust_mode == sim::AdversarySpec::ExhaustMode::kSilent
                        ? " (silent)"
                        : " (listen-only)")
                << " fault-events=" << adv.fault_schedule.size()
                << "; source " << source << " protected\n";
    }

    const auto result = harness::run_monte_carlo(spec);
    const auto rounds = result.rounds_sample();

    Table t({"protocol", "trials", "success", "rounds", "total_tx",
             "mean_tx/node", "max_tx/node", "collisions"});
    t.row()
        .add(proto_name)
        .add(static_cast<std::uint64_t>(trials))
        .add(result.success_rate(), 3)
        .add_pm(rounds.empty() ? 0.0 : rounds.mean(),
                rounds.empty() ? 0.0 : rounds.stddev(), 1)
        .add_pm(result.total_tx_sample().mean(),
                result.total_tx_sample().stddev(), 0)
        .add(result.mean_tx_sample().mean(), 3)
        .add(result.max_tx_sample().max(), 0);
    {
      double coll = 0;
      for (const auto& o : result.outcomes) coll += static_cast<double>(o.collisions);
      t.add(coll / trials, 0);
    }
    t.print(std::cout);
    if (adversarial) {
      // Completion under attack means "every honest node holds a *valid*
      // copy"; the stranded fraction is the complementary headline number.
      double frac_sum = 0.0;
      std::uint32_t reported = 0;
      for (const auto& o : result.outcomes)
        if (o.stranded.has_value() && o.nodes > 0) {
          frac_sum += static_cast<double>(*o.stranded) / o.nodes;
          ++reported;
        }
      if (reported > 0)
        std::cout << "stranded (honest nodes without a valid copy): mean "
                  << frac_sum / reported << " of n over " << reported
                  << " trials\n";
      else
        std::cout << "stranded: protocol does not track provenance\n";
    }
    return result.success_rate() > 0.0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "radnet_cli: " << e.what() << "\n";
    return 1;
  }
}
