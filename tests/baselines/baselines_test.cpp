#include <gtest/gtest.h>

#include <cmath>

#include "baselines/czumaj_rytter.hpp"
#include "baselines/decay.hpp"
#include "baselines/elsasser_gasieniec.hpp"
#include "baselines/fixed_prob.hpp"
#include "baselines/flooding.hpp"
#include "baselines/gossip_baselines.hpp"
#include "graph/generators.hpp"
#include "graph/lower_bound_nets.hpp"
#include "graph/metrics.hpp"
#include "sim/engine.hpp"

namespace radnet::baselines {
namespace {

using graph::Digraph;

// ---------------------------------------------------------------- flooding

TEST(FloodingTest, WorksOnDirectedOutTree) {
  // On an out-tree each node has exactly one in-neighbour: flooding never
  // collides and completes in depth rounds.
  // Binary out-tree of depth 3: node v has children 2v+1, 2v+2.
  std::vector<graph::Edge> edges;
  for (graph::NodeId v = 0; v < 7; ++v) {
    edges.push_back({v, static_cast<graph::NodeId>(2 * v + 1)});
    edges.push_back({v, static_cast<graph::NodeId>(2 * v + 2)});
  }
  const Digraph g(15, edges);
  FloodingProtocol proto(0);
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 100;
  const auto r = engine.run(g, proto, Rng(1), options);
  ASSERT_TRUE(r.completed);
  // Levels are informed one per round: round 1 -> {1,2}, 2 -> {3..6},
  // 3 -> {7..14}.
  EXPECT_EQ(r.completion_round, 3u);
}

TEST(FloodingTest, StallsForeverOnCollisionTopology) {
  // Obs. 4.3 network: after round 1 all 2n intermediates are informed and
  // *all* transmit every round — every destination hears noise forever.
  const auto net = graph::obs43_network(8);
  FloodingProtocol proto(net.source);
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 500;
  const auto r = engine.run(net.graph, proto, Rng(2), options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(proto.informed_count(), 1u + 16u);  // source + intermediates only
  EXPECT_GT(r.ledger.total_collisions, 0u);
}

// ------------------------------------------------------------------- decay

TEST(DecayTest, PhaseLengthIsCeilLog2Plus1) {
  DecayProtocol proto(DecayParams{});
  proto.reset(1000, Rng(1));
  EXPECT_EQ(proto.phase_length(), 11u);  // ceil(log2 1000) = 10, +1
}

TEST(DecayTest, CompletesOnObs43Network) {
  // Decay handles exactly the situation flooding cannot.
  const auto net = graph::obs43_network(16);
  DecayProtocol proto(DecayParams{.source = net.source});
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 20000;
  const auto r = engine.run(net.graph, proto, Rng(3), options);
  EXPECT_TRUE(r.completed);
}

TEST(DecayTest, CompletesOnGridAndRandom) {
  {
    const Digraph g = graph::grid(10, 10);
    DecayProtocol proto(DecayParams{});
    sim::Engine engine;
    sim::RunOptions options;
    options.max_rounds = 50000;
    EXPECT_TRUE(engine.run(g, proto, Rng(4), options).completed);
  }
  {
    Rng grng(5);
    const std::uint32_t n = 512;
    const Digraph g = graph::gnp_directed(n, 16.0 * std::log(n) / n, grng);
    DecayProtocol proto(DecayParams{});
    sim::Engine engine;
    sim::RunOptions options;
    options.max_rounds = 50000;
    EXPECT_TRUE(engine.run(g, proto, Rng(6), options).completed);
  }
}

TEST(DecayTest, ActivePhaseWindowSilencesNodes) {
  const Digraph g = graph::path(64);
  DecayProtocol proto(DecayParams{.source = 0, .active_phases = 1});
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 100000;
  options.stop_on_empty_candidates = true;
  const auto r = engine.run(g, proto, Rng(7), options);
  // One phase (~7 rounds) per node is plenty on a path; whether or not it
  // completes, no node may exceed one phase worth of transmissions.
  const double per_phase =
      static_cast<double>(proto.phase_length());  // <= ~2 expected
  EXPECT_LE(r.ledger.max_tx_per_node(), per_phase);
}

// --------------------------------------------------- Elsässer–Gasieniec

TEST(ElsasserGasieniecTest, CompletesOnRandomGraph) {
  Rng grng(8);
  const std::uint32_t n = 1024;
  const double p = 16.0 * std::log(n) / n;
  const Digraph g = graph::gnp_directed(n, p, grng);
  ElsasserGasieniecProtocol proto(ElsasserGasieniecParams{.p = p});
  sim::Engine engine;
  sim::RunOptions options;
  ElsasserGasieniecProtocol probe(ElsasserGasieniecParams{.p = p});
  probe.reset(n, Rng(0));
  options.max_rounds = probe.round_budget();
  const auto r = engine.run(g, proto, Rng(9), options);
  EXPECT_TRUE(r.completed);
}

TEST(ElsasserGasieniecTest, UsesMoreTransmissionsPerNodeThanOurAlg) {
  // The point of the comparison: EG nodes transmit every Phase-1 round, so
  // max tx per node exceeds Algorithm 1's hard bound of 1 whenever T >= 2.
  Rng grng(10);
  const std::uint32_t n = 4096;
  const double p = std::pow(static_cast<double>(n), -0.55);  // T >= 2
  const Digraph g = graph::gnp_directed(n, p, grng);
  ElsasserGasieniecProtocol proto(ElsasserGasieniecParams{.p = p});
  sim::Engine engine;
  sim::RunOptions options;
  ElsasserGasieniecProtocol probe(ElsasserGasieniecParams{.p = p});
  probe.reset(n, Rng(0));
  options.max_rounds = probe.round_budget();
  const auto r = engine.run(g, proto, Rng(11), options);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.ledger.max_tx_per_node(), 1u);
}

// ------------------------------------------------------------- fixed prob

TEST(FixedProbTest, CompletesOnObs43GivenEnoughRounds) {
  const auto net = graph::obs43_network(8);
  FixedProbProtocol proto(FixedProbParams{.q = 0.5, .source = net.source});
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 5000;
  const auto r = engine.run(net.graph, proto, Rng(12), options);
  EXPECT_TRUE(r.completed);
}

TEST(FixedProbTest, WindowLimitsEnergy) {
  const auto net = graph::obs43_network(8);
  FixedProbProtocol proto(
      FixedProbParams{.q = 0.5, .source = net.source, .window = 4});
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 5000;
  options.stop_on_empty_candidates = true;
  const auto r = engine.run(net.graph, proto, Rng(13), options);
  EXPECT_LE(r.ledger.max_tx_per_node(), 4u);
}

TEST(FixedProbTest, NameEncodesQ) {
  FixedProbProtocol proto(FixedProbParams{.q = 0.25});
  EXPECT_EQ(proto.name(), "fixed(q=0.25)");
}

TEST(FixedProbTest, RejectsBadQ) {
  EXPECT_THROW(FixedProbProtocol(FixedProbParams{.q = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(FixedProbProtocol(FixedProbParams{.q = 1.5}),
               std::invalid_argument);
}

// --------------------------------------------------------- Czumaj–Rytter

TEST(CzumajRytterTest, WindowIsLambdaTimesLogSquared) {
  const std::uint64_t n = 1 << 10;
  const std::uint64_t D = 1 << 4;  // lambda = 6
  EXPECT_EQ(czumaj_rytter_window(n, D, 1.0), 600u);  // 6 * 100
}

TEST(CzumajRytterTest, CompletesOnPathWithKnownD) {
  const std::uint32_t n = 128;
  const Digraph g = graph::path(n);
  auto proto = czumaj_rytter(n, n - 1, 4.0);
  sim::RunOptions options;
  options.max_rounds = core::general_round_budget(n, n - 1, 1.0, 64.0);
  options.stop_on_empty_candidates = true;
  sim::Engine engine;
  const auto r = engine.run(g, *proto, Rng(14), options);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(proto->name(), "czumaj-rytter");
}

// ------------------------------------------------------------ TDMA gossip

TEST(TdmaGossipTest, CompletesCollisionFreeOnPath) {
  const std::uint32_t n = 16;
  const Digraph g = graph::path(n);
  TdmaGossipProtocol proto;
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 10 * n * n;
  const auto r = engine.run(g, proto, Rng(15), options);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.ledger.total_collisions, 0u);
  EXPECT_EQ(proto.pairs_known(), static_cast<std::uint64_t>(n) * n);
}

TEST(DecayGossipTest, CompletesOnGridWithoutDensityKnowledge) {
  // The point of the framework-style baseline: no d to tune, works on any
  // strongly-connected topology.
  const Digraph g = graph::grid(8, 8);
  DecayGossipProtocol proto;
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 60000;
  const auto r = engine.run(g, proto, Rng(21), options);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(proto.pairs_known(), 64ull * 64ull);
}

TEST(DecayGossipTest, CompletesOnRandomGraph) {
  Rng grng(22);
  const std::uint32_t n = 128;
  const Digraph g = graph::gnp_directed(n, 12.0 * std::log(n) / n, grng);
  DecayGossipProtocol proto;
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 60000;
  const auto r = engine.run(g, proto, Rng(23), options);
  ASSERT_TRUE(r.completed);
}

TEST(DecayGossipTest, EnergyScalesWithRoundsOverPhase) {
  // ~2 expected transmissions per node per decay phase.
  const Digraph g = graph::grid(6, 6);
  DecayGossipProtocol proto;
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 60000;
  const auto r = engine.run(g, proto, Rng(24), options);
  ASSERT_TRUE(r.completed);
  const double phases = static_cast<double>(r.completion_round) /
                        static_cast<double>(proto.phase_length());
  EXPECT_LT(r.ledger.mean_tx_per_node(), 4.0 * phases + 4.0);
  EXPECT_GT(r.ledger.mean_tx_per_node(), 0.5 * phases - 4.0);
}

TEST(TdmaGossipTest, SlowerThanRandomisedGossipOnRandomGraph) {
  Rng grng(16);
  const std::uint32_t n = 128;
  const double p = 16.0 * std::log(n) / n;
  const Digraph g = graph::gnp_directed(n, p, grng);
  TdmaGossipProtocol proto;
  sim::Engine engine;
  sim::RunOptions options;
  options.max_rounds = 50 * n * 10;
  const auto r = engine.run(g, proto, Rng(17), options);
  ASSERT_TRUE(r.completed);
  // One transmission per slot: rounds == total transmissions.
  EXPECT_EQ(r.ledger.total_transmissions, r.completion_round);
  // Takes at least a couple of full sweeps.
  EXPECT_GT(r.completion_round, n);
}

}  // namespace
}  // namespace radnet::baselines
