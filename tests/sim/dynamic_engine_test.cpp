#include <gtest/gtest.h>

#include "graph/dynamics.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "test_protocols.hpp"

namespace radnet::sim {
namespace {

using graph::Digraph;
using graph::NodeId;
using testing::ScriptedProtocol;
using Script = std::vector<std::vector<NodeId>>;

/// A hand-rolled sequence cycling through an explicit list of graphs.
class GraphList final : public graph::TopologySequence {
 public:
  explicit GraphList(std::vector<Digraph> graphs)
      : graphs_(std::move(graphs)) {}
  [[nodiscard]] NodeId num_nodes() const override {
    return graphs_.front().num_nodes();
  }
  [[nodiscard]] const Digraph& at(std::uint32_t round) override {
    return graphs_[round % graphs_.size()];
  }

 private:
  std::vector<Digraph> graphs_;
};

TEST(DynamicEngineTest, RoundUsesThatRoundsTopology) {
  // Round 0: edge 0->1 only. Round 1: edge 0->2 only. Node 0 transmits both
  // rounds; deliveries must follow the per-round topology.
  GraphList topo({Digraph(3, {{0, 1}}), Digraph(3, {{0, 2}})});
  ScriptedProtocol p(Script{{0}, {0}});
  Engine engine;
  (void)engine.run(topo, p, Rng(1));
  ASSERT_EQ(p.deliveries.size(), 2u);
  EXPECT_EQ(p.deliveries[0], (ScriptedProtocol::DeliveryEvent{0, 1, 0}));
  EXPECT_EQ(p.deliveries[1], (ScriptedProtocol::DeliveryEvent{1, 2, 0}));
}

TEST(DynamicEngineTest, CollisionSemanticsPerRoundTopology) {
  // Same transmitters {1,2}; in graph A both reach 0 (collision), in graph
  // B only 1 reaches 0 (delivery).
  GraphList topo({Digraph(3, {{1, 0}, {2, 0}}), Digraph(3, {{1, 0}})});
  ScriptedProtocol p(Script{{1, 2}, {1, 2}});
  Engine engine;
  const auto r = engine.run(topo, p, Rng(2));
  ASSERT_EQ(p.collisions.size(), 1u);
  EXPECT_EQ(p.collisions[0].round, 0u);
  ASSERT_EQ(p.deliveries.size(), 1u);
  EXPECT_EQ(p.deliveries[0], (ScriptedProtocol::DeliveryEvent{1, 0, 1}));
  EXPECT_EQ(r.ledger.total_transmissions, 4u);
}

TEST(DynamicEngineTest, StaticSequenceMatchesStaticRun) {
  Rng grng(3);
  const Digraph g = graph::gnp_directed(120, 0.05, grng);
  RunOptions options;

  testing::NoisyProtocol p1(0.1, 25);
  Engine e1;
  const auto r1 = e1.run(g, p1, Rng(4), options);

  graph::StaticTopology topo{Digraph(g)};
  testing::NoisyProtocol p2(0.1, 25);
  Engine e2;
  const auto r2 = e2.run(topo, p2, Rng(4), options);

  EXPECT_EQ(p1.digest(), p2.digest());
  EXPECT_EQ(r1.ledger.total_transmissions, r2.ledger.total_transmissions);
  EXPECT_EQ(r1.ledger.total_deliveries, r2.ledger.total_deliveries);
}

TEST(DynamicEngineTest, ChurnTopologyRunsEndToEnd) {
  graph::ChurnGnp topo(100, 0.08, 0.1, Rng(5));
  testing::NoisyProtocol p(0.05, 40);
  Engine engine;
  const auto r = engine.run(topo, p, Rng(6));
  EXPECT_EQ(r.rounds_executed, 40u);
  EXPECT_GT(r.ledger.total_transmissions, 0u);
  EXPECT_GT(r.ledger.total_deliveries, 0u);
}

TEST(QuiescenceTest, RunToQuiescenceKeepsGoingAfterCompletion) {
  // One transmitter per scripted round on a path; the script is longer than
  // completion. Without quiescence the run stops at completion; with it the
  // engine keeps going (the protocol still has candidates) until the script
  // runs dry and is_complete was already latched.
  const Digraph g = graph::path(3);
  {
    ScriptedProtocol p(Script{{0}, {1}, {1}, {1}});
    Engine engine;
    RunOptions options;
    const auto r = engine.run(g, p, Rng(7), options);
    // ScriptedProtocol completes when the script is exhausted (4 rounds).
    EXPECT_EQ(r.completion_round, 4u);
  }
  {
    ScriptedProtocol p(Script{{0}, {1}, {1}, {1}});
    Engine engine;
    RunOptions options;
    options.run_to_quiescence = true;
    options.max_rounds = 10;
    const auto r = engine.run(g, p, Rng(7), options);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.completion_round, 4u);  // first completion is still recorded
    EXPECT_EQ(r.rounds_executed, 10u);  // but the run continued to max_rounds
  }
}

}  // namespace
}  // namespace radnet::sim
