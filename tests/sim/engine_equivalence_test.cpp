// Property test: the optimised Engine and the first-principles
// ReferenceEngine must agree event-for-event on identical inputs. Agreement
// over random graphs, random protocols and many seeds is the main evidence
// that Engine implements the paper's reception rule (exactly one
// transmitting in-neighbour) correctly.
#include <cmath>

#include <gtest/gtest.h>

#include "core/broadcast_general.hpp"
#include "core/gossip_random.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/reference_engine.hpp"
#include "test_protocols.hpp"

namespace radnet::sim {
namespace {

using graph::Digraph;
using testing::NoisyProtocol;

struct EquivCase {
  std::uint64_t seed;
  double p_edge;
  double q_tx;
  bool half_duplex;
};

class EngineEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EngineEquivalence, EnginesAgreeOnGnp) {
  const auto c = GetParam();
  Rng graph_rng(c.seed);
  const Digraph g = graph::gnp_directed(200, c.p_edge, graph_rng);

  RunOptions options;
  options.half_duplex = c.half_duplex;

  NoisyProtocol p1(c.q_tx, 40);
  Engine fast;
  const RunResult r1 = fast.run(g, p1, Rng(c.seed + 1), options);

  NoisyProtocol p2(c.q_tx, 40);
  ReferenceEngine slow;
  const RunResult r2 = slow.run(g, p2, Rng(c.seed + 1), options);

  EXPECT_EQ(p1.digest(), p2.digest());
  EXPECT_EQ(r1.ledger.total_transmissions, r2.ledger.total_transmissions);
  EXPECT_EQ(r1.ledger.total_deliveries, r2.ledger.total_deliveries);
  EXPECT_EQ(r1.ledger.total_collisions, r2.ledger.total_collisions);
  EXPECT_EQ(r1.ledger.tx_per_node, r2.ledger.tx_per_node);
  EXPECT_EQ(r1.rounds_executed, r2.rounds_executed);
  EXPECT_EQ(r1.completed, r2.completed);
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, EngineEquivalence,
    ::testing::Values(
        EquivCase{11, 0.005, 0.02, true}, EquivCase{12, 0.005, 0.02, false},
        EquivCase{13, 0.02, 0.1, true}, EquivCase{14, 0.02, 0.1, false},
        EquivCase{15, 0.05, 0.5, true}, EquivCase{16, 0.05, 0.5, false},
        EquivCase{17, 0.1, 0.9, true}, EquivCase{18, 0.001, 0.01, true},
        EquivCase{19, 0.2, 0.3, false}, EquivCase{20, 0.5, 0.05, true}));

void expect_same_run(const RunResult& r1, const RunResult& r2) {
  EXPECT_EQ(r1.ledger.total_transmissions, r2.ledger.total_transmissions);
  EXPECT_EQ(r1.ledger.total_deliveries, r2.ledger.total_deliveries);
  EXPECT_EQ(r1.ledger.total_collisions, r2.ledger.total_collisions);
  EXPECT_EQ(r1.ledger.tx_per_node, r2.ledger.tx_per_node);
  EXPECT_EQ(r1.rounds_executed, r2.rounds_executed);
  EXPECT_EQ(r1.completed, r2.completed);
  EXPECT_EQ(r1.completion_round, r2.completion_round);
}

// Gossip (Algorithm 2) exercises paths broadcast never does: every node a
// candidate forever, the bulk sample_transmitters hook, rumor-set joins on
// delivery. Both engines must agree bit-for-bit, protocol state included.
TEST(EngineEquivalenceProtocols, GossipAgreesWithReferenceEngine) {
  for (const std::uint64_t seed : {31ull, 32ull, 33ull}) {
    Rng graph_rng(seed);
    const std::uint32_t n = 96;
    const double p = 8.0 * std::log(n) / n;
    const Digraph g = graph::gnp_directed(n, p, graph_rng);

    core::GossipRandomProtocol p1(core::GossipRandomParams{.p = p});
    core::GossipRandomProtocol p2(core::GossipRandomParams{.p = p});
    RunOptions options;
    options.max_rounds = 4096;

    Engine fast;
    const RunResult r1 = fast.run(g, p1, Rng(seed + 1), options);
    ReferenceEngine slow;
    const RunResult r2 = slow.run(g, p2, Rng(seed + 1), options);

    expect_same_run(r1, r2);
    EXPECT_EQ(p1.pairs_known(), p2.pairs_known());
    for (graph::NodeId v = 0; v < n; ++v)
      ASSERT_EQ(p1.rumors_known(v), p2.rumors_known(v)) << "node " << v;
  }
}

// General broadcast (Algorithm 3) draws a *shared* per-round coin in
// begin_round and walks nodes through informed/active windows — a third
// randomness-consumption pattern. Cross-check on a cluster chain (the
// known-diameter topology family it is designed for) and a sparse G(n,p).
TEST(EngineEquivalenceProtocols, GeneralBroadcastAgreesWithReferenceEngine) {
  std::vector<std::pair<Digraph, std::uint64_t>> cases;
  cases.emplace_back(graph::cluster_chain(8, 8), 9);
  {
    Rng grng(41);
    cases.emplace_back(graph::gnp_directed(128, 0.06, grng), 4);
  }
  for (std::uint64_t seed = 51; const auto& [g, diameter] : cases) {
    const std::uint64_t n = g.num_nodes();
    const auto make = [&] {
      return core::GeneralBroadcastProtocol(core::GeneralBroadcastParams{
          .distribution = core::SequenceDistribution::alpha(n, diameter),
          .window = core::general_window(n, 4.0),
          .source = 0,
          .label = ""});
    };
    RunOptions options;
    options.max_rounds = 4096;
    options.stop_on_empty_candidates = true;
    options.run_to_quiescence = true;  // the honest-energy configuration

    auto p1 = make();
    Engine fast;
    const RunResult r1 = fast.run(g, p1, Rng(seed), options);
    auto p2 = make();
    ReferenceEngine slow;
    const RunResult r2 = slow.run(g, p2, Rng(seed), options);

    expect_same_run(r1, r2);
    EXPECT_EQ(p1.informed_count(), p2.informed_count());
    EXPECT_TRUE(r1.completed);
    ++seed;
  }
}

TEST(EngineEquivalenceTraces, TracesIdenticalOnStar) {
  const Digraph g = graph::star(30);
  RunOptions options;
  options.record_trace = true;

  NoisyProtocol p1(0.2, 25);
  Engine fast;
  const RunResult r1 = fast.run(g, p1, Rng(77), options);

  NoisyProtocol p2(0.2, 25);
  ReferenceEngine slow;
  const RunResult r2 = slow.run(g, p2, Rng(77), options);

  ASSERT_EQ(r1.trace.rounds.size(), r2.trace.rounds.size());
  for (std::size_t i = 0; i < r1.trace.rounds.size(); ++i) {
    const auto& a = r1.trace.rounds[i];
    const auto& b = r2.trace.rounds[i];
    EXPECT_EQ(a.transmitters, b.transmitters) << "round " << i;
    EXPECT_EQ(a.deliveries, b.deliveries) << "round " << i;
    EXPECT_EQ(a.collisions, b.collisions) << "round " << i;
  }
}

TEST(EngineEquivalenceTraces, EveryDeliveryHasUniqueTransmittingInNeighbor) {
  // Causality invariant checked straight from the trace against the graph.
  Rng graph_rng(5);
  const Digraph g = graph::gnp_directed(150, 0.03, graph_rng);
  RunOptions options;
  options.record_trace = true;
  NoisyProtocol p(0.1, 30);
  Engine engine;
  const RunResult r = engine.run(g, p, Rng(6), options);
  for (const auto& round : r.trace.rounds) {
    std::vector<char> tx(g.num_nodes(), 0);
    for (const auto v : round.transmitters) tx[v] = 1;
    for (const auto& d : round.deliveries) {
      ASSERT_TRUE(tx[d.sender]);
      ASSERT_TRUE(g.has_edge(d.sender, d.receiver));
      int heard = 0;
      for (const auto u : g.in_neighbors(d.receiver)) heard += tx[u];
      ASSERT_EQ(heard, 1) << "receiver " << d.receiver;
    }
    for (const auto v : round.collisions) {
      int heard = 0;
      for (const auto u : g.in_neighbors(v)) heard += tx[u];
      ASSERT_GE(heard, 2) << "collision at " << v;
    }
  }
}

}  // namespace
}  // namespace radnet::sim
