// Implicit mobility-RGG vs explicit MobilityRgg equivalence.
//
// The ImplicitRggTopology backend (sim/backends/implicit_rgg.hpp) claims
// to be the explicit graph::MobilityRgg process *exactly, in distribution,
// for every protocol*: delivery is deterministic geometry given the
// round's positions, and the motion process (uniform placement, reflected
// uniform steps) follows the same law — only the stream layout of the
// motion draws differs (counter-keyed vs sequential), so runs pair
// distributionally, never bit-for-bit. Pinned here at two strengths:
//
//   * exactly: a brute-force O(n·k) geometry oracle recomputes single
//     rounds from the backend's own positions and must match the cell-grid
//     sweep event-for-event (both duplex modes, with and without the
//     attentive hint);
//   * statistically: paired Monte-Carlo runs against the explicit
//     MobilityRgg oracle — repeated-transmitter gossip (the regime where
//     the G(n,p) sampling backends are merely *modelled*) and Algorithm-1
//     broadcast — with two-sample KS / chi-square checks on completion
//     rounds, transmissions and the energy ledger at 3 seeds each.
//
// Seeds are fixed; RADNET_STAT_TRIALS scales the resolution (ctest label
// tier1_stat). Thread-count bit-identity of the backend lives in
// tests/sim/thread_invariance_test.cpp.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/dynamics.hpp"
#include "graph/generators.hpp"
#include "harness/monte_carlo.hpp"
#include "sim/engine.hpp"
#include "statistical_oracle.hpp"
#include "support/simd.hpp"
#include "support/thread_pool.hpp"

namespace radnet::sim {
namespace {

using core::BroadcastRandomParams;
using core::BroadcastRandomProtocol;
using core::GossipRumorMarginalParams;
using core::GossipRumorMarginalProtocol;
using harness::McResult;
using harness::McSpec;
using testing::chi_square_two_sample;
using testing::ks_two_sample;
using testing::stat_trials;

constexpr double kAlpha = 0.01;

using ProtocolFactory = std::function<std::unique_ptr<Protocol>()>;

/// Paired Monte-Carlo runs: the same root seed drives the implicit RGG
/// backend and the explicit MobilityRgg oracle.
struct PairedRuns {
  McResult implicit_rgg;
  McResult explicit_rgg;
};

PairedRuns run_paired(graph::NodeId n, double radius, double step,
                      std::uint64_t seed, std::uint32_t trials,
                      const ProtocolFactory& factory, Round max_rounds) {
  McSpec base;
  base.trials = trials;
  base.seed = seed;
  base.make_protocol = [factory](const graph::Digraph&, std::uint32_t) {
    return factory();
  };
  base.run_options.max_rounds = max_rounds;

  McSpec imp = base;
  imp.implicit_rgg = ImplicitRgg{n, radius, step, Rng{}};

  McSpec exp = base;
  exp.make_sequence = [n, radius, step](std::uint32_t, Rng rng) {
    return std::make_unique<graph::MobilityRgg>(n, radius, step, rng);
  };

  return {harness::run_monte_carlo(imp), harness::run_monte_carlo(exp)};
}

std::vector<double> deliveries_of(const McResult& r) {
  std::vector<double> v;
  v.reserve(r.outcomes.size());
  for (const auto& o : r.outcomes)
    v.push_back(static_cast<double>(o.deliveries));
  return v;
}

std::vector<double> collisions_of(const McResult& r) {
  std::vector<double> v;
  v.reserve(r.outcomes.size());
  for (const auto& o : r.outcomes)
    v.push_back(static_cast<double>(o.collisions));
  return v;
}

// ---------------------------------------------------------------------------
// Exact single-round oracle: recompute the cell-grid sweep by brute force.

struct CollectSink {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> deliveries;
  std::vector<graph::NodeId> collisions;
  std::uint64_t bulk_deliveries = 0;
  std::uint64_t bulk_collisions = 0;

  void deliver(graph::NodeId receiver, graph::NodeId sender) {
    deliveries.emplace_back(receiver, sender);
  }
  void collide(graph::NodeId receiver) { collisions.push_back(receiver); }
  void deliver_bulk(std::uint64_t count) { bulk_deliveries += count; }
  void collide_bulk(std::uint64_t count) { bulk_collisions += count; }
};

/// The backend's claim, computed the slow way: listener v hears exactly
/// the transmitters at distance <= radius (excluding itself; excluded
/// entirely when transmitting under half-duplex).
CollectSink brute_force_round(const ImplicitRggTopology& topo, double radius,
                              std::span<const graph::NodeId> transmitters,
                              const std::vector<char>& is_tx,
                              bool half_duplex) {
  CollectSink expected;
  const auto& pts = topo.positions();
  const double r2 = radius * radius;
  for (graph::NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (half_duplex && is_tx[v]) continue;
    std::uint32_t hits = 0;
    graph::NodeId sender = 0;
    for (const graph::NodeId t : transmitters) {
      if (t == v) continue;
      const double dx = pts[v].x - pts[t].x;
      const double dy = pts[v].y - pts[t].y;
      if (dx * dx + dy * dy > r2) continue;
      sender = t;
      ++hits;
    }
    if (hits == 1)
      expected.deliveries.emplace_back(v, sender);
    else if (hits >= 2)
      expected.collisions.push_back(v);
  }
  return expected;
}

TEST(ImplicitRggGeometry, CellGridSweepMatchesBruteForce) {
  // Runs under every SIMD dispatch mode: the vectorised distance-mask scan
  // keeps comparisons in the exact double-precision form of the scalar
  // sweep, so both modes must match the brute-force oracle event-for-event.
  const simd::Mode mode_before = simd::active_mode();
  const graph::NodeId n = 700;
  const double radius = graph::rgg_threshold_radius(n, 4.0);
  const double step = radius / 6.0;
  for (const simd::Mode mode : {simd::Mode::kScalar, simd::Mode::kAvx2}) {
    if (mode == simd::Mode::kAvx2 && !simd::cpu_has_avx2()) continue;
    simd::set_mode(mode);
    for (const bool half_duplex : {true, false}) {
      ImplicitRggTopology topo(ImplicitRgg{n, radius, step, Rng(0x9e0)});
      std::vector<char> is_tx(n, 0);
      for (std::uint32_t round = 0; round < 24; ++round) {
        topo.begin_round(round);
        // A deterministic transmitter set that varies per round and
        // includes clustered ids (adjacent ids are geometrically
        // unrelated, but cell collisions among transmitters are what the
        // early-exit must handle).
        std::vector<graph::NodeId> tx;
        for (graph::NodeId v = round % 5; v < n; v += 3 + (round % 11))
          tx.push_back(v);
        for (const graph::NodeId t : tx) is_tx[t] = 1;

        CollectSink got;
        topo.deliver({tx.data(), tx.size()}, is_tx, half_duplex,
                     DeliveryPath::kAuto, std::nullopt,
                     /*collisions_inert=*/false, got);
        const CollectSink expected =
            brute_force_round(topo, radius, {tx.data(), tx.size()}, is_tx,
                              half_duplex);
        ASSERT_EQ(got.deliveries, expected.deliveries)
            << "round " << round << " half_duplex " << half_duplex
            << " mode " << simd::mode_name(mode);
        ASSERT_EQ(got.collisions, expected.collisions)
            << "round " << round << " half_duplex " << half_duplex
            << " mode " << simd::mode_name(mode);
        EXPECT_EQ(got.bulk_deliveries, 0u);
        EXPECT_EQ(got.bulk_collisions, 0u);

        for (const graph::NodeId t : tx) is_tx[t] = 0;
      }
    }
  }
  simd::set_mode(mode_before);
}

TEST(ImplicitRggGeometry, AttentiveHintFoldsExactly) {
  // With an attentive hint, deliveries outside the hint fold into bulk
  // counts (and collisions into bulk when inert) — the per-event stream
  // restricted to the hint plus the bulk totals must reproduce the
  // unhinted round exactly.
  const graph::NodeId n = 600;
  const double radius = graph::rgg_threshold_radius(n, 4.0);
  ImplicitRggTopology topo(ImplicitRgg{n, radius, radius / 8.0, Rng(0x7a1)});
  std::vector<char> is_tx(n, 0);
  std::vector<graph::NodeId> tx;
  for (graph::NodeId v = 0; v < n; v += 7) tx.push_back(v);
  for (const graph::NodeId t : tx) is_tx[t] = 1;
  std::vector<graph::NodeId> attentive;  // every third node is attentive
  for (graph::NodeId v = 0; v < n; v += 3) attentive.push_back(v);
  std::vector<char> is_attentive(n, 0);
  for (const graph::NodeId v : attentive) is_attentive[v] = 1;

  topo.begin_round(0);
  CollectSink full;
  topo.deliver({tx.data(), tx.size()}, is_tx, /*half_duplex=*/true,
               DeliveryPath::kAuto, std::nullopt, false, full);

  CollectSink hinted;
  topo.deliver({tx.data(), tx.size()}, is_tx, /*half_duplex=*/true,
               DeliveryPath::kAuto,
               std::optional<std::span<const graph::NodeId>>(
                   {attentive.data(), attentive.size()}),
               /*collisions_inert=*/true, hinted);

  std::vector<std::pair<graph::NodeId, graph::NodeId>> expected_events;
  std::uint64_t expected_bulk = 0;
  for (const auto& [recv, sender] : full.deliveries) {
    if (is_attentive[recv])
      expected_events.emplace_back(recv, sender);
    else
      ++expected_bulk;
  }
  EXPECT_EQ(hinted.deliveries, expected_events);
  EXPECT_EQ(hinted.bulk_deliveries, expected_bulk);
  EXPECT_TRUE(hinted.collisions.empty());
  EXPECT_EQ(hinted.bulk_collisions, full.collisions.size());
}

TEST(ImplicitRggGeometry, MotionStaysInUnitSquareAndParksAtStepZero) {
  const graph::NodeId n = 256;
  ImplicitRggTopology moving(ImplicitRgg{n, 0.2, 0.15, Rng(3)});
  moving.begin_round(50);
  for (const auto& pt : moving.positions()) {
    EXPECT_GE(pt.x, 0.0);
    EXPECT_LE(pt.x, 1.0);
    EXPECT_GE(pt.y, 0.0);
    EXPECT_LE(pt.y, 1.0);
  }

  ImplicitRggTopology parked(ImplicitRgg{n, 0.2, 0.0, Rng(3)});
  const std::vector<graph::Point> initial = parked.positions();
  parked.begin_round(50);
  for (graph::NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(parked.positions()[v].x, initial[v].x);
    EXPECT_EQ(parked.positions()[v].y, initial[v].y);
  }
}

TEST(ImplicitRggGeometry, SameSpecReplaysIdentically) {
  const graph::NodeId n = 4096;
  const double radius = graph::rgg_threshold_radius(n, 4.0);
  const double p = 3.14159265358979 * radius * radius;
  const auto run_once = [&] {
    Engine engine;
    RunOptions options;
    options.max_rounds = 512;
    options.record_trace = true;
    GossipRumorMarginalProtocol proto(GossipRumorMarginalParams{.p = p});
    return engine.run(ImplicitRgg{n, radius, radius / 8.0, Rng(0xabc)}, proto,
                      Rng(5), options);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_TRUE(a == b);
}

// ---------------------------------------------------------------------------
// Sharded-bucketing oracle: the parallel counting sort vs first principles.

TEST(ImplicitRggGeometry, ShardedBucketingMatchesSerialCountingSort) {
  // The transmitter bucketing shards into per-chunk local counting sorts
  // whose runs merge into the shared grid in cell order. The contract it
  // must keep for the sweep to stay byte-identical: every cell's entry
  // list equals the serial counting sort's — the transmitters of that
  // cell *in global transmitter-list order* — and a cell is stamped iff
  // some transmitter occupies its 3x3 neighbourhood. The phase draws no
  // randomness, so the bucket layout must also be independent of the
  // chunk *granularity*, not just the schedule; this sweeps both, with
  // chunk widths straddling every boundary case (one chunk for all, many
  // tiny chunks, a prime width, a width that leaves a short tail chunk).
  const graph::NodeId n = 3000;
  const double radius = graph::rgg_threshold_radius(n, 4.0);
  ImplicitRggTopology topo(ImplicitRgg{n, radius, radius / 5.0, Rng(0xB0CC)});
  const std::uint32_t dim = topo.grid_cells();
  const std::size_t grid = static_cast<std::size_t>(dim) * dim;

  for (std::uint32_t round = 0; round < 4; ++round) {
    topo.begin_round(round);
    // Transmitter sets from sparse (k = 3) through dense (k = n) — dense
    // rounds force many transmitters per cell and cells split across
    // chunk boundaries (the merge's concatenation case).
    std::vector<graph::NodeId> tx;
    const graph::NodeId stride = round == 0 ? n / 3 : (round == 1 ? 17 : 1);
    for (graph::NodeId v = round % 3; v < n; v += stride) tx.push_back(v);
    const auto k = static_cast<graph::NodeId>(tx.size());

    // The serial counting sort, from first principles.
    std::vector<std::vector<graph::NodeId>> expected(grid);
    for (const graph::NodeId t : tx) expected[topo.cell_of(t)].push_back(t);
    std::vector<char> stamped(grid, 0);
    for (std::size_t cell = 0; cell < grid; ++cell) {
      if (expected[cell].empty()) continue;
      const auto cx = static_cast<std::int64_t>(cell % dim);
      const auto cy = static_cast<std::int64_t>(cell / dim);
      for (std::int64_t dy = -1; dy <= 1; ++dy)
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
          const std::int64_t nx = cx + dx, ny = cy + dy;
          if (nx < 0 || ny < 0 || nx >= dim || ny >= dim) continue;
          stamped[static_cast<std::size_t>(ny) * dim + nx] = 1;
        }
    }

    const graph::NodeId widths[] = {0, 64, 257, 1024, k + 7};
    for (const graph::NodeId width : widths) {
      topo.set_bucket_chunk(width);
      for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr),
                               resolve_pool(0)}) {
        topo.set_parallelism(pool);
        topo.bucket_for_test({tx.data(), tx.size()});
        for (std::size_t cell = 0; cell < grid; ++cell) {
          const std::span<const graph::NodeId> got =
              topo.cell_entries(static_cast<std::uint32_t>(cell));
          ASSERT_TRUE(std::equal(got.begin(), got.end(),
                                 expected[cell].begin(),
                                 expected[cell].end()))
              << "round " << round << " k " << k << " width " << width
              << " pool " << (pool != nullptr) << " cell " << cell;
          ASSERT_EQ(topo.cell_stamped(static_cast<std::uint32_t>(cell)),
                    stamped[cell] != 0)
              << "round " << round << " k " << k << " width " << width
              << " pool " << (pool != nullptr) << " cell " << cell;
        }
        topo.unbucket_for_test();
      }
    }
    topo.set_bucket_chunk(0);
    topo.set_parallelism(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Statistical oracle: paired runs against the explicit MobilityRgg.

class RggOracle : public ::testing::TestWithParam<std::uint64_t> {};

// Repeated-transmitter gossip — the regime where the G(n,p) sampling
// backends are merely *modelled* — must be indistinguishable from the
// explicit oracle here: the RGG backend's delivery is deterministic
// geometry, so there is no repeated-examination caveat at all.
TEST_P(RggOracle, GossipMarginalExactForRepeatedTransmitters) {
  const std::uint64_t seed = GetParam();
  const graph::NodeId n = 256;
  const double radius = graph::rgg_threshold_radius(n, 4.0);
  const double step = radius / 8.0;
  const double p = 3.14159265358979 * radius * radius;  // d = pi r^2 n
  const std::uint32_t trials = stat_trials(24);
  GossipRumorMarginalProtocol probe(GossipRumorMarginalParams{.p = p});
  probe.reset(n, Rng(0));

  const auto runs = run_paired(
      n, radius, step, seed, trials,
      [p] {
        return std::make_unique<GossipRumorMarginalProtocol>(
            GossipRumorMarginalParams{.p = p});
      },
      probe.round_budget());
  const auto& imp = runs.implicit_rgg;
  const auto& exp = runs.explicit_rgg;
  ASSERT_EQ(imp.success_rate(), 1.0) << "seed " << seed;
  ASSERT_EQ(exp.success_rate(), 1.0) << "seed " << seed;

  const auto ks_rounds = ks_two_sample(imp.rounds_sample().values(),
                                       exp.rounds_sample().values(), kAlpha);
  EXPECT_TRUE(ks_rounds.pass())
      << ks_rounds.describe("gossip rounds, seed " + std::to_string(seed));
  const auto ks_del =
      ks_two_sample(deliveries_of(imp), deliveries_of(exp), kAlpha);
  EXPECT_TRUE(ks_del.pass())
      << ks_del.describe("gossip deliveries, seed " + std::to_string(seed));
  const auto chi_tx = chi_square_two_sample(imp.total_tx_sample().values(),
                                            exp.total_tx_sample().values(), 8,
                                            kAlpha);
  EXPECT_TRUE(chi_tx.pass())
      << chi_tx.describe("gossip transmissions, seed " + std::to_string(seed));
  const auto chi_col =
      chi_square_two_sample(collisions_of(imp), collisions_of(exp), 8, kAlpha);
  EXPECT_TRUE(chi_col.pass())
      << chi_col.describe("gossip collisions, seed " + std::to_string(seed));
}

// Algorithm 1 on a mobile RGG: the protocol is tuned for G(n,p), so
// success sits mid-distribution — both backends must agree on the success
// probability and on the ledger distributions (success itself carries the
// distributional information here; no floor is asserted).
TEST_P(RggOracle, Alg1LedgerMatchesExplicitOracle) {
  const std::uint64_t seed = GetParam();
  const graph::NodeId n = 256;
  const double radius = graph::rgg_threshold_radius(n, 4.0);
  const double step = radius / 8.0;
  const double p = 3.14159265358979 * radius * radius;
  const std::uint32_t trials = stat_trials(24);

  const auto runs = run_paired(
      n, radius, step, seed, trials,
      [p] {
        return std::make_unique<BroadcastRandomProtocol>(
            BroadcastRandomParams{.p = p});
      },
      // Both backends censor at the same horizon (alg1 completes within
      // ~60 rounds when it completes; failed trials pay the full budget on
      // the explicit oracle's O(n + m) rebuilds, so keep it tight).
      /*max_rounds=*/160);
  const auto& imp = runs.implicit_rgg;
  const auto& exp = runs.explicit_rgg;
  EXPECT_NEAR(imp.success_rate(), exp.success_rate(), 0.3);

  const auto ks_del =
      ks_two_sample(deliveries_of(imp), deliveries_of(exp), kAlpha);
  EXPECT_TRUE(ks_del.pass())
      << ks_del.describe("alg1 deliveries, seed " + std::to_string(seed));
  const auto ks_tx = ks_two_sample(imp.total_tx_sample().values(),
                                   exp.total_tx_sample().values(), kAlpha);
  EXPECT_TRUE(ks_tx.pass())
      << ks_tx.describe("alg1 transmissions, seed " + std::to_string(seed));
  // Theorem 2.1's at-most-one-transmission property is topology-free and
  // must hold on both backends.
  EXPECT_LE(imp.max_tx_sample().max(), 1.0);
  EXPECT_LE(exp.max_tx_sample().max(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(BySeed, RggOracle,
                         ::testing::Values(0xAull, 0xBull, 0xCull));

}  // namespace
}  // namespace radnet::sim
