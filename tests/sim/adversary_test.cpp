// Unit semantics of the adversary & fault-injection layer
// (sim/adversary.hpp) on hand-built explicit topologies where every
// consequence is exactly predictable:
//
//   * directed path 0 -> 1 -> ... -> n-1 under flooding: one informed
//     transmitter per round, no collisions — so the first jammer (or first
//     Byzantine relay) on the path determines the stranded suffix exactly;
//   * directed cycle under flooding with budget 1: exactly one delivery
//     per round, pinning the silent-exhaustion reception suppression to a
//     single event;
//   * a crash-all / recover-all schedule freezes and resumes the path
//     wavefront deterministically.
//
// The final test drives AdversaryState::apply directly for many rounds and
// asserts the transmitter buffer never reallocates (the reserve-once
// contract of AdversaryState::reserve_for).
#include <vector>

#include <gtest/gtest.h>

#include "baselines/flooding.hpp"
#include "graph/digraph.hpp"
#include "sim/engine.hpp"

namespace radnet::sim {
namespace {

using baselines::FloodingProtocol;
using graph::Digraph;
using graph::Edge;
using graph::NodeId;

Digraph path_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Digraph(n, std::move(edges));
}

Digraph cycle_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  return Digraph(n, std::move(edges));
}

TEST(AdversarySpecTest, ValidatesFractionsAndSchedule) {
  AdversarySpec ok;
  ok.jammer_fraction = 0.1;
  ok.byzantine_fraction = 0.2;
  EXPECT_NO_THROW(ok.validate());

  AdversarySpec jam_all;
  jam_all.jammer_fraction = 1.0;  // everyone jams: nothing left to measure
  EXPECT_THROW(jam_all.validate(), std::invalid_argument);

  AdversarySpec over;
  over.jammer_fraction = 0.6;
  over.byzantine_fraction = 0.6;  // roles are exclusive; fractions cannot sum past 1
  EXPECT_THROW(over.validate(), std::invalid_argument);

  AdversarySpec spread;
  spread.budget_mean = 5.0;
  spread.budget_spread = 1.5;
  EXPECT_THROW(spread.validate(), std::invalid_argument);

  AdversarySpec unsorted;
  unsorted.fault_schedule = {{10, FaultEvent::Kind::kCrash, 0.5},
                             {5, FaultEvent::Kind::kRecover, 0.5}};
  EXPECT_THROW(unsorted.validate(), std::invalid_argument);

  AdversarySpec bad_fraction;
  bad_fraction.fault_schedule = {{3, FaultEvent::Kind::kCrash, 1.5}};
  EXPECT_THROW(bad_fraction.validate(), std::invalid_argument);
}

TEST(AdversaryStateTest, RolesRespectProtectionAndDeterminism) {
  const NodeId n = 2000;
  AdversarySpec adv;
  adv.jammer_fraction = 0.2;
  adv.byzantine_fraction = 0.2;
  adv.protected_nodes = {0, 1, 2};
  adv.seed = 0x90135;

  AdversaryState a;
  AdversaryStats sa;
  a.reset(n, adv, sa);
  EXPECT_GT(sa.jammer_count, 0u);
  EXPECT_GT(sa.byzantine_count, 0u);
  for (const NodeId v : adv.protected_nodes) {
    EXPECT_FALSE(a.is_jammer(v));
    EXPECT_FALSE(a.is_byzantine(v));
  }
  // jammers() is ascending and consistent with is_jammer.
  NodeId count = 0, prev = 0;
  for (const NodeId j : a.jammers()) {
    if (count > 0) {
      EXPECT_LT(prev, j);
    }
    EXPECT_TRUE(a.is_jammer(j));
    prev = j;
    ++count;
  }
  EXPECT_EQ(count, sa.jammer_count);

  // Same spec, fresh state: identical draw (pure function of the seed).
  AdversaryState b;
  AdversaryStats sb;
  b.reset(n, adv, sb);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(a.is_jammer(v), b.is_jammer(v));
    EXPECT_EQ(a.is_byzantine(v), b.is_byzantine(v));
  }
}

TEST(AdversaryEngineTest, JammerStrandsExactPathSuffix) {
  const NodeId n = 60;
  AdversarySpec adv;
  adv.jammer_fraction = 0.15;
  adv.protected_nodes = {0};
  adv.seed = 0x1a2b;

  // Recover the drawn roles (reset is a pure function of the spec).
  AdversaryState roles;
  AdversaryStats rstats;
  roles.reset(n, adv, rstats);
  ASSERT_GT(rstats.jammer_count, 0u);
  NodeId first_jammer = n;
  for (NodeId v = 0; v < n && first_jammer == n; ++v)
    if (roles.is_jammer(v)) first_jammer = v;
  ASSERT_LT(first_jammer, n - 1);  // holds for this seed

  const Digraph g = path_graph(n);
  FloodingProtocol proto(0);
  RunOptions options;
  options.max_rounds = 300;
  options.adversary = adv;
  Engine engine;
  const RunResult r = engine.run(g, proto, Rng(3), options);

  // The first jammer's successor hears noise every round; nothing behind
  // it can ever be validly informed, so the honest informed prefix is
  // exactly {0, ..., first_jammer - 1}.
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.adversary.jammer_count, rstats.jammer_count);
  EXPECT_GT(r.adversary.jammer_tx, 0u);
  EXPECT_GT(r.adversary.jammed_deliveries, 0u);
  ASSERT_TRUE(proto.stranded_count().has_value());
  EXPECT_EQ(*proto.stranded_count(), n - rstats.jammer_count - first_jammer);
}

TEST(AdversaryEngineTest, ByzantineRelayCorruptsExactPathSuffix) {
  const NodeId n = 60;
  AdversarySpec adv;
  adv.byzantine_fraction = 0.1;
  adv.protected_nodes = {0};
  adv.seed = 0x3c4d;

  AdversaryState roles;
  AdversaryStats rstats;
  roles.reset(n, adv, rstats);
  ASSERT_GT(rstats.byzantine_count, 0u);
  NodeId first_byz = n;
  for (NodeId v = 0; v < n && first_byz == n; ++v)
    if (roles.is_byzantine(v)) first_byz = v;
  ASSERT_LT(first_byz, n - 1);  // holds for this seed

  const Digraph g = path_graph(n);
  FloodingProtocol proto(0);
  RunOptions options;
  options.max_rounds = 200;
  options.adversary = adv;
  Engine engine;
  const RunResult r = engine.run(g, proto, Rng(5), options);

  // Every node still *believes* it is informed (the corruption is
  // undetectable and keeps being relayed), but valid copies stop at the
  // first Byzantine node: nodes {first_byz + 1, ..., n-1} are stranded.
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(proto.informed_count(), n);
  EXPECT_GT(r.adversary.corrupted_deliveries, 0u);
  ASSERT_TRUE(proto.stranded_count().has_value());
  EXPECT_EQ(*proto.stranded_count(), n - 1 - first_byz);
}

TEST(AdversaryEngineTest, BudgetListenOnlyStillCompletesWithinCap) {
  const NodeId n = 40;
  AdversarySpec adv;
  adv.budget_mean = 3.0;  // spread 0: every node gets exactly 3 transmissions

  const Digraph g = path_graph(n);
  FloodingProtocol proto(0);
  RunOptions options;
  options.max_rounds = 300;
  options.adversary = adv;
  Engine engine;
  const RunResult r = engine.run(g, proto, Rng(7), options);

  // The wavefront only needs each node's first transmission, so the
  // broadcast completes on schedule — but no node ever exceeds its budget,
  // and exhausted nodes keep *attempting* (flooding never stops wanting
  // to transmit), which is what blocked_tx counts.
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.completion_round, n - 1);
  EXPECT_LE(r.ledger.max_tx_per_node(), 3u);
  EXPECT_GT(r.adversary.exhausted_count, 0u);
  EXPECT_GT(r.adversary.blocked_tx, 0u);
  EXPECT_EQ(r.adversary.suppressed_receptions, 0u);  // listen-only mode
}

TEST(AdversaryEngineTest, SilentExhaustionSuppressesExactlyOneReception) {
  // Cycle with budget 1: node k transmits exactly once, in round k, so
  // every round has exactly one delivery. The only delivery aimed at an
  // exhausted radio is n-1 -> 0 in round n-1; silent mode drops it,
  // listen-only mode lets it through (a harmless repeat).
  const NodeId n = 30;
  const Digraph g = cycle_graph(n);
  const auto run_with = [&](AdversarySpec::ExhaustMode mode) {
    AdversarySpec adv;
    adv.budget_mean = 1.0;
    adv.exhaust_mode = mode;
    FloodingProtocol proto(0);
    RunOptions options;
    options.max_rounds = n + 5;
    options.run_to_quiescence = true;
    options.adversary = adv;
    Engine engine;
    return engine.run(g, proto, Rng(11), options);
  };

  const RunResult silent = run_with(AdversarySpec::ExhaustMode::kSilent);
  const RunResult listen = run_with(AdversarySpec::ExhaustMode::kListenOnly);
  EXPECT_TRUE(silent.completed);
  EXPECT_TRUE(listen.completed);
  EXPECT_EQ(silent.completion_round, listen.completion_round);
  EXPECT_EQ(silent.adversary.suppressed_receptions, 1u);
  EXPECT_EQ(listen.adversary.suppressed_receptions, 0u);
  EXPECT_LE(silent.ledger.max_tx_per_node(), 1u);
}

TEST(AdversaryEngineTest, CrashFreezesAndRecoverResumesTheWavefront) {
  const NodeId n = 30;
  AdversarySpec adv;
  adv.protected_nodes = {0};
  adv.fault_schedule = {{5, FaultEvent::Kind::kCrash, 1.0},
                        {12, FaultEvent::Kind::kRecover, 1.0}};

  const Digraph g = path_graph(n);
  FloodingProtocol proto(0);
  RunOptions options;
  options.max_rounds = 200;
  options.adversary = adv;
  Engine engine;
  const RunResult r = engine.run(g, proto, Rng(13), options);

  // Rounds 5..11 are frozen: every informed node but the protected source
  // is down, its transmissions blocked (and unpaid — crash is power loss)
  // and the source's deliveries to node 1 suppressed. After the blanket
  // recovery the wavefront resumes and completion lands late by exactly
  // the crash window.
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.completion_round, (n - 1) + 7);
  EXPECT_EQ(r.adversary.crashed_count, 0u);  // everyone recovered
  EXPECT_GT(r.adversary.blocked_tx, 0u);
  EXPECT_GT(r.adversary.suppressed_receptions, 0u);
}

TEST(AdversaryStateTest, ApplyNeverReallocatesTheTransmitterBuffer) {
  const NodeId n = 10'000;
  AdversarySpec adv;
  adv.jammer_fraction = 0.02;
  adv.budget_mean = 50.0;
  adv.budget_spread = 0.5;
  adv.fault_schedule = {{40, FaultEvent::Kind::kCrash, 0.1},
                        {120, FaultEvent::Kind::kRecover, 0.8}};
  adv.seed = 0xa110c;

  AdversaryState state;
  AdversaryStats stats;
  state.reset(n, adv, stats);

  EnergyLedger ledger;
  ledger.reset(n);
  std::vector<NodeId> transmitters;
  state.reserve_for(transmitters);
  std::vector<char> is_tx(n, 0);
  const NodeId* data = transmitters.data();
  const std::size_t capacity = transmitters.capacity();
  ASSERT_GE(capacity, static_cast<std::size_t>(n));

  for (Round r = 0; r < 200; ++r) {
    transmitters.clear();
    for (NodeId v = r % 7; v < n; v += 7) transmitters.push_back(v);
    state.begin_round(r, stats);
    state.apply(transmitters, is_tx, ledger, stats);
    for (const NodeId u : transmitters) is_tx[u] = 0;
    // The reserve-once contract (dynamics.cpp pattern): jammer injection
    // and compaction stay within the buffer reserved before round 0.
    ASSERT_EQ(transmitters.capacity(), capacity);
    ASSERT_EQ(transmitters.data(), data);
  }
  EXPECT_GT(stats.jammer_tx, 0u);
  EXPECT_GT(stats.blocked_tx, 0u);
  EXPECT_GT(stats.exhausted_count, 0u);
}

}  // namespace
}  // namespace radnet::sim
