// Reusable shard-invariance property harness.
//
// Every backend family decomposes its per-round work — listener-block
// sweeps, the dynamic backend's sender-/group-chunked sketch phases, the
// RGG transmitter-chunked bucketing — under the keying and merge contracts
// of sim/sharding.hpp, which promise one observable: a run's trace, ledger
// and RunResult are *byte-identical* no matter how the work is scheduled.
// This header is that promise as a property check, shared by every test
// that pins it (tests/sim/thread_invariance_test.cpp sections, the phase
// matrices, and any future backend's invariance suite):
//
//   expect_shard_invariant(make_run, what)
//     runs the scenario at {1, 2, 8, 0} threads (serial, two fixed pool
//     widths with genuinely different chunk interleavings, and the shared
//     all-core global pool) and asserts every result byte-equals the
//     serial one. With sweep_simd_modes, the matrix gains the SIMD
//     dispatch dimension: every mode × thread-count combination must
//     byte-equal the *scalar serial* run (support/simd.hpp kernels consume
//     the same counter-keyed streams as the scalar path).
//
//   expect_csr_shard_invariant(make_run, what)
//     the explicit-CSR variant: every DeliveryPath × thread count, plus
//     the serial cross-path parity against the kSortedTouch baseline.
//
// record_trace is always on, so equality covers every per-listener event
// in order, not just the aggregate ledger; expect_identical compares the
// load-bearing fields first for readable failures, then the exhaustive
// RunResult::operator== so future fields cannot silently escape the gate.
#pragma once

#include <span>
#include <string>

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "support/simd.hpp"

namespace radnet::sim::shard_test {

/// Thread schedules every scenario runs at. 0 = the shared global pool
/// (all cores / RADNET_THREADS), so the matrix also covers whatever width
/// the host machine actually has.
inline constexpr unsigned kShardThreadCounts[] = {1, 2, 8, 0};

inline void expect_identical(const RunResult& a, const RunResult& b,
                             const char* what) {
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.rounds_executed, b.rounds_executed) << what;
  EXPECT_EQ(a.completion_round, b.completion_round) << what;
  EXPECT_EQ(a.ledger, b.ledger) << what;
  EXPECT_EQ(a.trace, b.trace) << what;
  EXPECT_TRUE(a == b) << what;
}

/// Core property: `make_run(options)` must be byte-identical (trace +
/// ledger + exhaustive RunResult) at every thread count — and, with
/// sweep_simd_modes, under every available SIMD dispatch mode — vs the
/// (scalar) serial baseline. Without the mode sweep the ambient dispatch
/// mode is left untouched, so a forced RADNET_SIMD environment (the CI
/// scalar leg) is exercised as-is.
template <class MakeRun>
void expect_shard_invariant(MakeRun&& make_run, const char* what,
                            bool sweep_simd_modes = false) {
  const simd::Mode before = simd::active_mode();
  if (sweep_simd_modes) simd::set_mode(simd::Mode::kScalar);
  RunOptions options;
  options.record_trace = true;
  options.threads = 1;
  const RunResult baseline = make_run(options);
  static constexpr simd::Mode kAllModes[] = {simd::Mode::kScalar,
                                             simd::Mode::kAvx2};
  const std::span<const simd::Mode> modes =
      sweep_simd_modes ? std::span<const simd::Mode>(kAllModes)
                       : std::span<const simd::Mode>(&before, 1);
  bool baseline_combo = true;  // (first mode, 1 thread) IS the baseline
  for (const simd::Mode mode : modes) {
    if (mode == simd::Mode::kAvx2 && !simd::cpu_has_avx2()) continue;
    if (sweep_simd_modes) simd::set_mode(mode);
    for (const unsigned threads : kShardThreadCounts) {
      if (threads == 1 && baseline_combo) {
        baseline_combo = false;
        continue;
      }
      options.threads = threads;
      const std::string label = std::string(what) + " [" +
                                simd::mode_name(mode) + " x" +
                                std::to_string(threads) + "]";
      expect_identical(baseline, make_run(options), label.c_str());
    }
  }
  if (sweep_simd_modes) simd::set_mode(before);
}

inline constexpr DeliveryPath kAllDeliveryPaths[] = {
    DeliveryPath::kSortedTouch, DeliveryPath::kLinearScan,
    DeliveryPath::kInNeighborScan, DeliveryPath::kAuto};

inline const char* path_name(DeliveryPath path) {
  switch (path) {
    case DeliveryPath::kSortedTouch: return "sorted-touch";
    case DeliveryPath::kLinearScan: return "linear-scan";
    case DeliveryPath::kInNeighborScan: return "in-neighbor-scan";
    default: return "auto";
  }
}

/// Explicit-CSR variant: every delivery path at every thread count against
/// `make_run`, asserting (a) each path is bit-identical to its own serial
/// run and (b) every path's serial run equals the serial kSortedTouch
/// baseline — the path-parity and shard-invariance contracts in one sweep.
template <class MakeRun>
void expect_csr_shard_invariant(MakeRun&& make_run, const char* what) {
  RunOptions options;
  options.record_trace = true;
  options.threads = 1;
  options.delivery_path = DeliveryPath::kSortedTouch;
  const RunResult baseline = make_run(options);
  for (const DeliveryPath path : kAllDeliveryPaths) {
    options.delivery_path = path;
    options.threads = 1;
    // (kSortedTouch, 1 thread) IS the baseline run — skip the repeat.
    const RunResult serial =
        path == DeliveryPath::kSortedTouch ? baseline : make_run(options);
    expect_identical(
        baseline, serial,
        (std::string(what) + " serial " + path_name(path)).c_str());
    for (const unsigned threads : kShardThreadCounts) {
      if (threads == 1) continue;  // `serial` IS the 1-thread run
      options.threads = threads;
      expect_identical(serial, make_run(options),
                       (std::string(what) + " " + path_name(path) + " x" +
                        std::to_string(threads))
                           .c_str());
    }
  }
}

}  // namespace radnet::sim::shard_test
