// Small protocols used only by the simulator tests.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/protocol.hpp"

namespace radnet::sim::testing {

/// Transmits exactly the scripted node sets, round by round, and records
/// every delivery and collision it observes. Completion is "script
/// exhausted" so the engine runs precisely the scripted rounds.
class ScriptedProtocol final : public Protocol {
 public:
  explicit ScriptedProtocol(std::vector<std::vector<graph::NodeId>> script)
      : script_(std::move(script)) {}

  void reset(graph::NodeId num_nodes, Rng /*rng*/) override {
    n_ = num_nodes;
    all_.resize(n_);
    for (graph::NodeId v = 0; v < n_; ++v) all_[v] = v;
    deliveries.clear();
    collisions.clear();
    rounds_seen_ = 0;
  }

  [[nodiscard]] std::span<const graph::NodeId> candidates() const override {
    return {all_.data(), all_.size()};
  }

  [[nodiscard]] bool wants_transmit(graph::NodeId v, Round r) override {
    if (r >= script_.size()) return false;
    const auto& round_set = script_[r];
    return std::find(round_set.begin(), round_set.end(), v) != round_set.end();
  }

  void on_delivered(graph::NodeId receiver, graph::NodeId sender,
                    Round r) override {
    deliveries.push_back({r, receiver, sender});
  }

  void on_collision(graph::NodeId receiver, Round r) override {
    collisions.push_back({r, receiver});
  }

  void end_round(Round /*r*/) override { ++rounds_seen_; }

  [[nodiscard]] bool is_complete() const override {
    return rounds_seen_ >= script_.size();
  }

  [[nodiscard]] std::string name() const override { return "scripted"; }

  struct DeliveryEvent {
    Round round;
    graph::NodeId receiver;
    graph::NodeId sender;
    friend bool operator==(const DeliveryEvent&, const DeliveryEvent&) = default;
  };
  struct CollisionEvent {
    Round round;
    graph::NodeId receiver;
    friend bool operator==(const CollisionEvent&, const CollisionEvent&) = default;
  };
  std::vector<DeliveryEvent> deliveries;
  std::vector<CollisionEvent> collisions;

 private:
  std::vector<std::vector<graph::NodeId>> script_;
  std::vector<graph::NodeId> all_;
  graph::NodeId n_ = 0;
  std::size_t rounds_seen_ = 0;
};

/// Every node transmits independently with probability q each round, for a
/// fixed number of rounds; records a digest of everything it sees. Used by
/// the engine-equivalence property tests: both engines must produce the
/// exact same digest for the same seed.
class NoisyProtocol final : public Protocol {
 public:
  NoisyProtocol(double q, Round rounds) : q_(q), rounds_(rounds) {}

  void reset(graph::NodeId num_nodes, Rng rng) override {
    n_ = num_nodes;
    rng_ = rng;
    all_.resize(n_);
    for (graph::NodeId v = 0; v < n_; ++v) all_[v] = v;
    digest_ = 1469598103934665603ull;
    rounds_seen_ = 0;
  }

  [[nodiscard]] std::span<const graph::NodeId> candidates() const override {
    return {all_.data(), all_.size()};
  }

  [[nodiscard]] bool wants_transmit(graph::NodeId /*v*/, Round /*r*/) override {
    return rng_.bernoulli(q_);
  }

  void on_delivered(graph::NodeId receiver, graph::NodeId sender,
                    Round r) override {
    mix(0x11);
    mix(r);
    mix(receiver);
    mix(sender);
  }

  void on_collision(graph::NodeId receiver, Round r) override {
    mix(0x22);
    mix(r);
    mix(receiver);
  }

  void end_round(Round /*r*/) override { ++rounds_seen_; }

  [[nodiscard]] bool is_complete() const override {
    return rounds_seen_ >= rounds_;
  }

  [[nodiscard]] std::string name() const override { return "noisy"; }

  [[nodiscard]] std::uint64_t digest() const { return digest_; }

 private:
  void mix(std::uint64_t x) {
    digest_ ^= x + 0x9e3779b97f4a7c15ull;
    digest_ *= 1099511628211ull;
  }

  double q_;
  Round rounds_;
  graph::NodeId n_ = 0;
  Rng rng_;
  std::vector<graph::NodeId> all_;
  std::uint64_t digest_ = 0;
  std::size_t rounds_seen_ = 0;
};

}  // namespace radnet::sim::testing
