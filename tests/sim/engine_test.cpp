#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_protocols.hpp"

namespace radnet::sim {
namespace {

using graph::Digraph;
using graph::NodeId;
using testing::ScriptedProtocol;
using Script = std::vector<std::vector<NodeId>>;

RunOptions trace_options() {
  RunOptions o;
  o.record_trace = true;
  return o;
}

TEST(EngineTest, SingleTransmitterDelivers) {
  // 0 -> 1, 0 -> 2: one transmitter, both hear it.
  const Digraph g(3, {{0, 1}, {0, 2}});
  ScriptedProtocol p(Script{{0}});
  Engine engine;
  const RunResult r = engine.run(g, p, Rng(1), trace_options());
  ASSERT_EQ(p.deliveries.size(), 2u);
  EXPECT_EQ(p.deliveries[0],
            (ScriptedProtocol::DeliveryEvent{0, 1, 0}));
  EXPECT_EQ(p.deliveries[1],
            (ScriptedProtocol::DeliveryEvent{0, 2, 0}));
  EXPECT_TRUE(p.collisions.empty());
  EXPECT_EQ(r.ledger.total_transmissions, 1u);
  EXPECT_EQ(r.ledger.total_deliveries, 2u);
}

TEST(EngineTest, TwoTransmittersCollideAtCommonNeighbor) {
  // 0 -> 2 and 1 -> 2 transmit together: 2 hears noise, nothing delivered.
  const Digraph g(3, {{0, 2}, {1, 2}});
  ScriptedProtocol p(Script{{0, 1}});
  Engine engine;
  const RunResult r = engine.run(g, p, Rng(1));
  EXPECT_TRUE(p.deliveries.empty());
  ASSERT_EQ(p.collisions.size(), 1u);
  EXPECT_EQ(p.collisions[0], (ScriptedProtocol::CollisionEvent{0, 2}));
  EXPECT_EQ(r.ledger.total_collisions, 1u);
}

TEST(EngineTest, CollisionIsPerReceiverNotGlobal) {
  // 0 -> 2, 1 -> 2 (collision at 2), but 1 -> 3 alone (delivery at 3).
  const Digraph g(4, {{0, 2}, {1, 2}, {1, 3}});
  ScriptedProtocol p(Script{{0, 1}});
  Engine engine;
  (void)engine.run(g, p, Rng(1));
  ASSERT_EQ(p.deliveries.size(), 1u);
  EXPECT_EQ(p.deliveries[0], (ScriptedProtocol::DeliveryEvent{0, 3, 1}));
  ASSERT_EQ(p.collisions.size(), 1u);
}

TEST(EngineTest, DirectedEdgesAreOneWay) {
  // Edge 0 -> 1 only; 1's transmission reaches nobody.
  const Digraph g(2, {{0, 1}});
  ScriptedProtocol p(Script{{1}, {0}});
  Engine engine;
  (void)engine.run(g, p, Rng(1));
  ASSERT_EQ(p.deliveries.size(), 1u);
  EXPECT_EQ(p.deliveries[0], (ScriptedProtocol::DeliveryEvent{1, 1, 0}));
}

TEST(EngineTest, HalfDuplexTransmitterCannotReceive) {
  // 0 and 1 point at each other; both transmit. Full duplex would deliver
  // both ways; half duplex (default) delivers neither.
  const Digraph g(2, {{0, 1}, {1, 0}});
  {
    ScriptedProtocol p(Script{{0, 1}});
    Engine engine;
    const RunResult r = engine.run(g, p, Rng(1));
    EXPECT_TRUE(p.deliveries.empty());
    EXPECT_TRUE(p.collisions.empty());
    EXPECT_EQ(r.ledger.total_deliveries, 0u);
  }
  {
    ScriptedProtocol p(Script{{0, 1}});
    RunOptions o;
    o.half_duplex = false;
    Engine engine;
    (void)engine.run(g, p, Rng(1), o);
    EXPECT_EQ(p.deliveries.size(), 2u);
  }
}

TEST(EngineTest, ThreeTransmittersStillCollide) {
  const Digraph g(4, {{0, 3}, {1, 3}, {2, 3}});
  ScriptedProtocol p(Script{{0, 1, 2}});
  Engine engine;
  const RunResult r = engine.run(g, p, Rng(1));
  EXPECT_TRUE(p.deliveries.empty());
  EXPECT_EQ(r.ledger.total_collisions, 1u);
}

TEST(EngineTest, MultiRoundScriptAndLedger) {
  const Digraph g = graph::path(4);  // 0-1-2-3 bidirectional
  // Round 0: 0 transmits (1 hears). Round 1: 1 transmits (0 and 2 hear).
  // Round 2: 2 transmits (1 and 3 hear).
  ScriptedProtocol p(Script{{0}, {1}, {2}});
  Engine engine;
  const RunResult r = engine.run(g, p, Rng(1));
  EXPECT_EQ(r.ledger.total_transmissions, 3u);
  EXPECT_EQ(r.ledger.total_deliveries, 5u);
  EXPECT_EQ(r.ledger.tx_per_node[0], 1u);
  EXPECT_EQ(r.ledger.tx_per_node[3], 0u);
  EXPECT_EQ(r.ledger.max_tx_per_node(), 1u);
  EXPECT_DOUBLE_EQ(r.ledger.mean_tx_per_node(), 0.75);
  EXPECT_EQ(r.rounds_executed, 3u);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.completion_round, 3u);
}

TEST(EngineTest, TraceRecordsRounds) {
  const Digraph g(3, {{0, 1}, {0, 2}, {1, 2}});
  ScriptedProtocol p(Script{{0}, {0, 1}});
  Engine engine;
  const RunResult r = engine.run(g, p, Rng(1), trace_options());
  ASSERT_EQ(r.trace.rounds.size(), 2u);
  EXPECT_EQ(r.trace.rounds[0].transmitters, (std::vector<NodeId>{0}));
  EXPECT_EQ(r.trace.rounds[0].deliveries.size(), 2u);
  EXPECT_EQ(r.trace.rounds[1].transmitters, (std::vector<NodeId>{0, 1}));
  // Round 1: node 2 hears both 0 and 1 -> collision; node 1 is transmitting
  // (half duplex) so hears nothing.
  EXPECT_EQ(r.trace.rounds[1].collisions, (std::vector<NodeId>{2}));
  EXPECT_TRUE(r.trace.rounds[1].deliveries.empty());
  EXPECT_FALSE(r.trace.summary().empty());
}

TEST(EngineTest, MaxRoundsStopsIncompleteProtocol) {
  const Digraph g(2, {{0, 1}});
  ScriptedProtocol p(Script{{}, {}, {}, {}, {}});  // five silent rounds
  RunOptions o;
  o.max_rounds = 2;
  Engine engine;
  const RunResult r = engine.run(g, p, Rng(1), o);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds_executed, 2u);
}

TEST(EngineTest, RoundObserverSeesEveryRound) {
  const Digraph g(2, {{0, 1}});
  ScriptedProtocol p(Script{{0}, {0}, {0}});
  RunOptions o;
  std::vector<Round> seen;
  o.round_observer = [&](Round r) { seen.push_back(r); };
  Engine engine;
  (void)engine.run(g, p, Rng(1), o);
  EXPECT_EQ(seen, (std::vector<Round>{0, 1, 2}));
}

TEST(EngineTest, NodeRoundsAccounting) {
  const Digraph g(4, {{0, 1}});
  ScriptedProtocol p(Script{{0}, {0}});
  Engine engine;
  const RunResult r = engine.run(g, p, Rng(1));
  EXPECT_EQ(r.ledger.node_rounds, 8u);  // 4 nodes * 2 rounds
}

TEST(EngineTest, EmptyGraphRejected) {
  const Digraph g;
  ScriptedProtocol p(Script{});
  Engine engine;
  EXPECT_THROW((void)engine.run(g, p, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace radnet::sim
