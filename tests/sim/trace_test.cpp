#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace radnet::sim {
namespace {

Trace make_trace(std::size_t rounds, std::size_t transmitters_per_round) {
  Trace t;
  for (std::size_t r = 0; r < rounds; ++r) {
    RoundTrace rt;
    rt.round = static_cast<std::uint32_t>(r);
    for (std::size_t i = 0; i < transmitters_per_round; ++i)
      rt.transmitters.push_back(static_cast<graph::NodeId>(i));
    rt.deliveries.push_back({1, 0});
    t.rounds.push_back(std::move(rt));
  }
  return t;
}

TEST(TraceTest, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.summary().empty());
  t.rounds.push_back({});
  EXPECT_FALSE(t.empty());
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(TraceTest, SummaryListsRounds) {
  const Trace t = make_trace(3, 2);
  const std::string s = t.summary();
  EXPECT_NE(s.find("round 0"), std::string::npos);
  EXPECT_NE(s.find("round 2"), std::string::npos);
  EXPECT_NE(s.find("delivered=1"), std::string::npos);
}

TEST(TraceTest, SummaryTruncatesLongTraces) {
  const Trace t = make_trace(100, 1);
  const std::string s = t.summary(5);
  EXPECT_NE(s.find("round 4"), std::string::npos);
  EXPECT_EQ(s.find("round 50"), std::string::npos);
  EXPECT_NE(s.find("95 more rounds"), std::string::npos);
}

TEST(TraceTest, SummaryElidesWideTransmitterLists) {
  const Trace t = make_trace(1, 40);
  const std::string s = t.summary();
  EXPECT_NE(s.find("...(40)"), std::string::npos);
}

}  // namespace
}  // namespace radnet::sim
