// Jammed implicit-G(n,p) vs the explicit churn-1 oracle.
//
// A jammer transmits every round, so on the implicit static backend its
// ordered pairs are re-examined — and freshly resampled — round after
// round: the backend's reading of a jammed network is the *memoryless*
// (churn = 1) one. That reading has an exact explicit oracle: a
// DynamicCsrTopology over graph::ChurnGnp(churn = 1) with the same
// AdversarySpec, where the jam travels materialised edges. For honest
// traffic the two backends are equivalent exactly as in
// topology_equivalence_test.cpp (Algorithm 1 honest nodes transmit at most
// once; the gossip marginal is already the churn-1 model on the implicit
// backend, see core/gossip_random.hpp).
//
// Both specs share one root seed, and the Monte-Carlo harness re-keys the
// adversary per trial from (seed, trial, 2) — so paired trials face
// *identical* jammer sets, and the completion/stranded/energy laws must
// coincide. Jammers deafen every out-neighbour permanently (any clean
// honest transmission collides with the jam), so at these densities runs
// end stranded, not complete: the compared quantities are the stranded
// count, total transmissions and delivery counts over a fixed horizon,
// KS/chi-squared at alpha = 0.001. Trial counts honour RADNET_STAT_TRIALS
// (ctest label: tier1_stat).
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "graph/dynamics.hpp"
#include "harness/monte_carlo.hpp"
#include "statistical_oracle.hpp"
#include "support/stats.hpp"

namespace radnet::sim {
namespace {

using core::BroadcastRandomParams;
using core::BroadcastRandomProtocol;
using core::GossipRumorMarginalParams;
using core::GossipRumorMarginalProtocol;
using harness::McResult;
using harness::McSpec;
using testing::ks_two_sample;
using testing::stat_trials;

constexpr double kAlpha = 0.001;

using ProtocolFactory = std::function<std::unique_ptr<Protocol>()>;

AdversarySpec jammer_spec() {
  AdversarySpec adv;
  adv.jammer_fraction = 0.02;
  adv.protected_nodes = {0};  // node 0 is the (rumor) source in both protocols
  return adv;
}

McSpec base_spec(std::uint64_t seed, std::uint32_t trials,
                 const ProtocolFactory& factory, Round max_rounds) {
  McSpec spec;
  spec.trials = trials;
  spec.seed = seed;
  spec.make_protocol = [factory](const graph::Digraph&, std::uint32_t) {
    return factory();
  };
  spec.run_options.max_rounds = max_rounds;
  spec.run_options.stop_on_empty_candidates = true;
  spec.run_options.adversary = jammer_spec();
  return spec;
}

struct PairedRuns {
  McResult implicit_gnp;
  McResult explicit_churn;
};

PairedRuns run_paired(graph::NodeId n, double p, std::uint64_t seed,
                      std::uint32_t trials, const ProtocolFactory& factory,
                      Round max_rounds) {
  McSpec imp = base_spec(seed, trials, factory, max_rounds);
  imp.implicit_gnp = harness::ImplicitGnpParams{n, p};

  McSpec exp = base_spec(seed, trials, factory, max_rounds);
  exp.make_sequence = [n, p](std::uint32_t, Rng rng) {
    return std::make_unique<graph::ChurnGnp>(n, p, /*churn=*/1.0, rng);
  };

  return {harness::run_monte_carlo(imp), harness::run_monte_carlo(exp)};
}

std::vector<double> stranded_of(const McResult& r) {
  std::vector<double> v;
  v.reserve(r.outcomes.size());
  for (const auto& o : r.outcomes) {
    EXPECT_TRUE(o.stranded.has_value());
    v.push_back(static_cast<double>(o.stranded.value_or(0)));
  }
  return v;
}

std::vector<double> deliveries_of(const McResult& r) {
  std::vector<double> v;
  v.reserve(r.outcomes.size());
  for (const auto& o : r.outcomes)
    v.push_back(static_cast<double>(o.deliveries));
  return v;
}

void expect_equivalent(const PairedRuns& runs, const std::string& what) {
  const auto& imp = runs.implicit_gnp;
  const auto& exp = runs.explicit_churn;
  EXPECT_NEAR(imp.success_rate(), exp.success_rate(), 0.25) << what;

  // Jammers must actually bite — an accidentally inert adversary would
  // make this whole test vacuous.
  EXPECT_GT(imp.stranded_sample().mean(), 0.0) << what;
  EXPECT_GT(exp.stranded_sample().mean(), 0.0) << what;

  const auto ks_stranded =
      ks_two_sample(stranded_of(imp), stranded_of(exp), kAlpha);
  EXPECT_TRUE(ks_stranded.pass())
      << ks_stranded.describe(what + ": stranded-count distributions");

  const auto ks_tx = ks_two_sample(imp.total_tx_sample().values(),
                                   exp.total_tx_sample().values(), kAlpha);
  EXPECT_TRUE(ks_tx.pass())
      << ks_tx.describe(what + ": total-transmission distributions");

  const auto ks_del = ks_two_sample(deliveries_of(imp), deliveries_of(exp),
                                    kAlpha);
  EXPECT_TRUE(ks_del.pass())
      << ks_del.describe(what + ": delivery-count distributions");
}

TEST(AdversaryTopologyEquivalence, JammedAlg1MatchesChurnOracle) {
  const graph::NodeId n = 192;
  const double p = 8.0 * std::log(n) / n;
  const std::uint32_t trials = stat_trials(32);
  const ProtocolFactory factory = [p] {
    return std::make_unique<BroadcastRandomProtocol>(
        BroadcastRandomParams{.p = p});
  };

  for (const std::uint64_t seed : {0xAD1ull, 0xAD2ull, 0xAD3ull}) {
    const auto runs = run_paired(n, p, seed, trials, factory,
                                 /*max_rounds=*/96);
    expect_equivalent(runs, "alg1 seed " + std::to_string(seed));
    // Jam transmissions are adversary bookkeeping, not protocol energy:
    // Theorem 2.1's per-node bound must survive on both backends.
    EXPECT_LE(runs.implicit_gnp.max_tx_sample().max(), 1.0);
    EXPECT_LE(runs.explicit_churn.max_tx_sample().max(), 1.0);
  }
}

TEST(AdversaryTopologyEquivalence, JammedGossipMarginalMatchesChurnOracle) {
  const graph::NodeId n = 192;
  const double p = 8.0 * std::log(n) / n;
  const std::uint32_t trials = stat_trials(24);
  const ProtocolFactory factory = [p] {
    return std::make_unique<GossipRumorMarginalProtocol>(
        GossipRumorMarginalParams{.p = p});
  };

  for (const std::uint64_t seed : {0xAD1ull, 0xAD2ull, 0xAD3ull}) {
    const auto runs = run_paired(n, p, seed, trials, factory,
                                 /*max_rounds=*/64);
    expect_equivalent(runs, "gossip marginal seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace radnet::sim
