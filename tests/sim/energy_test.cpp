#include "sim/energy.hpp"

#include <gtest/gtest.h>

namespace radnet::sim {
namespace {

TEST(EnergyTest, LedgerCountsPerNode) {
  EnergyLedger ledger;
  ledger.reset(4);
  ledger.record_transmission(1);
  ledger.record_transmission(1);
  ledger.record_transmission(3);
  EXPECT_EQ(ledger.total_transmissions, 3u);
  EXPECT_EQ(ledger.tx_per_node[1], 2u);
  EXPECT_EQ(ledger.tx_per_node[0], 0u);
  EXPECT_EQ(ledger.max_tx_per_node(), 2u);
  EXPECT_DOUBLE_EQ(ledger.mean_tx_per_node(), 0.75);
}

TEST(EnergyTest, ResetClears) {
  EnergyLedger ledger;
  ledger.reset(2);
  ledger.record_transmission(0);
  ledger.total_deliveries = 5;
  ledger.reset(3);
  EXPECT_EQ(ledger.total_transmissions, 0u);
  EXPECT_EQ(ledger.total_deliveries, 0u);
  EXPECT_EQ(ledger.tx_per_node.size(), 3u);
  EXPECT_EQ(ledger.max_tx_per_node(), 0u);
}

TEST(EnergyTest, PaperMetricCountsOnlyTransmissions) {
  EnergyLedger ledger;
  ledger.reset(10);
  for (int i = 0; i < 7; ++i) ledger.record_transmission(0);
  ledger.total_deliveries = 100;
  ledger.node_rounds = 1000;
  const EnergyModel paper;  // tx only
  EXPECT_DOUBLE_EQ(ledger.energy(paper), 7.0);
}

TEST(EnergyTest, ExtendedModelWeighsRxAndIdle) {
  EnergyLedger ledger;
  ledger.reset(5);
  ledger.record_transmission(0);
  ledger.record_transmission(1);
  ledger.total_deliveries = 3;
  ledger.node_rounds = 10;  // 8 idle node-rounds
  const EnergyModel model{.tx_cost = 2.0, .rx_cost = 0.5, .idle_cost = 0.1};
  EXPECT_DOUBLE_EQ(ledger.energy(model), 2.0 * 2 + 0.5 * 3 + 0.1 * 8);
}

TEST(EnergyTest, EmptyLedgerSafe) {
  EnergyLedger ledger;
  EXPECT_EQ(ledger.max_tx_per_node(), 0u);
  EXPECT_DOUBLE_EQ(ledger.mean_tx_per_node(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.energy(EnergyModel{}), 0.0);
}

}  // namespace
}  // namespace radnet::sim
