// Path-parity tests: the engine's three explicit-CSR delivery strategies
// (sorted-touch, linear-scan, in-neighbour bitset scan) are different
// traversals of the same mathematical round function, so for a fixed
// (graph, protocol, seed) they must produce *byte-identical* run results —
// same ledger, same trace, same protocol-observed event stream — at every
// thread count (the block-parallel forms of each path involve no RNG, so
// the serial run is the contract). Randomised over graph families,
// densities and duplex modes.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_protocols.hpp"

namespace radnet::sim {
namespace {

using graph::Digraph;
using graph::NodeId;
using testing::NoisyProtocol;

struct PathRun {
  RunResult result;
  std::uint64_t digest = 0;  ///< protocol-observed event stream
};

PathRun run_with_path(const Digraph& g, DeliveryPath path, double q,
                      Round rounds, bool half_duplex, std::uint64_t seed,
                      unsigned threads) {
  NoisyProtocol protocol(q, rounds);
  RunOptions options;
  options.record_trace = true;
  options.half_duplex = half_duplex;
  options.delivery_path = path;
  options.threads = threads;
  Engine engine;
  PathRun run;
  run.result = engine.run(g, protocol, Rng(seed), options);
  run.digest = protocol.digest();
  return run;
}

void expect_paths_identical(const Digraph& g, double q, Round rounds,
                            std::uint64_t seed) {
  for (const bool half_duplex : {true, false}) {
    const PathRun sorted = run_with_path(g, DeliveryPath::kSortedTouch, q,
                                         rounds, half_duplex, seed, 1);
    for (const DeliveryPath path :
         {DeliveryPath::kSortedTouch, DeliveryPath::kLinearScan,
          DeliveryPath::kInNeighborScan, DeliveryPath::kAuto}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        // (kSortedTouch, 1 thread) IS the baseline run — skip the repeat.
        if (path == DeliveryPath::kSortedTouch && threads == 1) continue;
        const PathRun other =
            run_with_path(g, path, q, rounds, half_duplex, seed, threads);
        EXPECT_EQ(sorted.result.ledger, other.result.ledger);
        EXPECT_EQ(sorted.result.trace, other.result.trace);
        EXPECT_EQ(sorted.result.rounds_executed, other.result.rounds_executed);
        // The digest also pins per-event callback *order*, which the
        // ledger totals alone would not.
        EXPECT_EQ(sorted.digest, other.digest);
      }
    }
  }
}

TEST(DeliveryPathTest, SparseGnpAllPathsAgree) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Digraph g = graph::gnp_directed(257, 0.02, rng);
    expect_paths_identical(g, 0.2, 12, seed);
  }
}

TEST(DeliveryPathTest, DenseGnpAllPathsAgree) {
  // Dense enough that kAuto's in-neighbour scan threshold actually engages
  // (load > 4n) in high-activity rounds.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 31);
    const Digraph g = graph::gnp_directed(200, 0.2, rng);
    expect_paths_identical(g, 0.5, 10, seed);
  }
}

TEST(DeliveryPathTest, UndirectedGnpAllPathsAgree) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 77);
    const Digraph g = graph::gnp_undirected(163, 0.05, rng);
    expect_paths_identical(g, 0.3, 10, seed);
  }
}

TEST(DeliveryPathTest, StructuredGraphsAllPathsAgree) {
  expect_paths_identical(graph::star(65), 0.4, 8, 9);
  expect_paths_identical(graph::complete(48), 0.3, 8, 10);
  expect_paths_identical(graph::grid(12, 11), 0.35, 8, 11);
  expect_paths_identical(graph::cycle(97), 0.5, 8, 12);
}

TEST(DeliveryPathTest, ParallelShardedPathsAgree) {
  // The small graphs above sit below CsrDelivery::kMinParallelRoundWork,
  // so their multi-thread runs exercise the serial branch only. This graph
  // clears the gate on every path — k ~ n/4 transmitters give counter
  // load ~ 60k edges and the in-neighbour scan's work is n = 20'000 — so
  // the 2- and 8-thread cells genuinely run the scatter/gather and
  // block-scan code against the serial baseline.
  Rng rng(99);
  const Digraph g = graph::gnp_directed(20'000, 12.0 / 20'000, rng);
  expect_paths_identical(g, 0.25, 6, 15);
}

TEST(DeliveryPathTest, EdgelessAndSilentRoundsAgree) {
  const Digraph g(31, {});
  expect_paths_identical(g, 0.5, 4, 13);
  Rng rng(14);
  const Digraph g2 = graph::gnp_directed(64, 0.1, rng);
  expect_paths_identical(g2, 0.0, 4, 14);  // nobody ever transmits
}

}  // namespace
}  // namespace radnet::sim
