// Regression tests for the dense sweep's round-global plan hoist.
//
// GnpSampler::sweep computes its DensePlan — the OutcomeProbs thresholds
// that drive both the vectorised plain classification and the skip-walk —
// exactly once per sweep on the coordinating thread, never per block.
// outcome_probs_evals() pins that: a dense full-duplex sweep costs exactly
// two evaluations (non-tx and tx listener laws) no matter how many
// kShardBlockSize blocks the listener range splits into, serial or pooled.
// The tests also cross-check that the pooled sweep emits the same events
// as the serial one under every SIMD dispatch mode, at the sampler level
// (below the engine, so a plan regression cannot hide behind trace
// equality elsewhere).
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/backends/implicit.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/thread_pool.hpp"

namespace radnet::sim {
namespace {

using detail::GnpSampler;
using graph::NodeId;

struct CollectSink {
  std::vector<std::pair<NodeId, NodeId>> deliveries;
  std::vector<NodeId> collisions;
  std::uint64_t bulk_deliveries = 0;
  std::uint64_t bulk_collisions = 0;

  void deliver(NodeId listener, NodeId sender) {
    deliveries.emplace_back(listener, sender);
  }
  void collide(NodeId listener) { collisions.push_back(listener); }
  void deliver_bulk(std::uint64_t count) { bulk_deliveries += count; }
  void collide_bulk(std::uint64_t count) { bulk_collisions += count; }

  friend bool operator==(const CollectSink& a, const CollectSink& b) {
    return a.deliveries == b.deliveries && a.collisions == b.collisions &&
           a.bulk_deliveries == b.bulk_deliveries &&
           a.bulk_collisions == b.bulk_collisions;
  }
};

// A dense plain regime spanning multiple shard blocks: q = 1-(1-p)^k well
// above 0.5, so every block takes the vectorised classification path.
struct DenseFixture {
  NodeId n;
  double p;
  std::vector<NodeId> transmitters;
  std::vector<char> is_tx;

  explicit DenseFixture(NodeId nodes, NodeId k) : n(nodes), is_tx(nodes, 0) {
    p = 8.0 * std::log(static_cast<double>(n)) / static_cast<double>(n);
    transmitters.reserve(k);
    for (NodeId v = 0; v < k; ++v) {
      transmitters.push_back(v * 7 % n);
      is_tx[transmitters.back()] = 1;
    }
  }

  CollectSink sweep(GnpSampler& sampler, std::uint32_t round,
                    bool half_duplex) const {
    sampler.begin_round(round);
    CollectSink sink;
    sampler.sweep({transmitters.data(), transmitters.size()}, is_tx,
                  half_duplex, std::nullopt, /*collisions_inert=*/false, sink,
                  detail::SkipNone{}, detail::RecordNone{});
    return sink;
  }
};

TEST(DenseSweepPlan, OutcomeProbsComputedOncePerSweep) {
  const DenseFixture fx(4 * GnpSampler::kShardBlockSize + 123, 8192);
  GnpSampler sampler;
  sampler.init(fx.n, fx.p, Rng(0x90a7));
  // Sanity: this regime really is the dense plain path (5 blocks).
  const auto plan = sampler.dense_plan(fx.transmitters.size(), false);
  ASSERT_TRUE(plan.plain) << "fixture regressed out of the plain regime";

  for (const bool half_duplex : {false, true}) {
    const std::uint64_t before = sampler.outcome_probs_evals();
    fx.sweep(sampler, half_duplex ? 2 : 1, half_duplex);
    const std::uint64_t evals = sampler.outcome_probs_evals() - before;
    // Full duplex evaluates the non-tx and tx laws; half duplex only the
    // non-tx law (transmitters hear nothing by construction). Five blocks
    // swept — per-block recomputation would show up as >= 5 here.
    EXPECT_EQ(evals, half_duplex ? 1u : 2u)
        << "plan recomputed per block, half_duplex=" << half_duplex;
  }
}

TEST(DenseSweepPlan, PooledSweepSharesPlanAndMatchesSerial) {
  const DenseFixture fx(4 * GnpSampler::kShardBlockSize + 123, 8192);
  const simd::Mode before_mode = simd::active_mode();
  for (const simd::Mode mode : {simd::Mode::kScalar, simd::Mode::kAvx2}) {
    if (mode == simd::Mode::kAvx2 && !simd::cpu_has_avx2()) continue;
    simd::set_mode(mode);

    GnpSampler serial;
    serial.init(fx.n, fx.p, Rng(0x90a7));
    const CollectSink expected = fx.sweep(serial, 3, false);

    GnpSampler pooled;
    pooled.init(fx.n, fx.p, Rng(0x90a7));
    ThreadPool pool(4);
    pooled.set_parallelism(&pool);
    const std::uint64_t before = pooled.outcome_probs_evals();
    const CollectSink got = fx.sweep(pooled, 3, false);
    EXPECT_EQ(pooled.outcome_probs_evals() - before, 2u)
        << "pooled sweep recomputed the plan per block";
    EXPECT_TRUE(got == expected)
        << "pooled sweep diverged from serial, mode "
        << simd::mode_name(mode);
    EXPECT_FALSE(expected.deliveries.empty());
  }
  simd::set_mode(before_mode);
}

}  // namespace
}  // namespace radnet::sim
