// Allocation-bound regression for the chunk-sharded per-round phases.
//
// The sharded sketch phases (implicit_dynamic.hpp: sender-chunked gather,
// group-chunked classify) and the sharded RGG transmitter bucketing
// (implicit_rgg.hpp) keep all per-(round, chunk) scratch in reusable
// member buffers, and their pool fan-out lambdas capture only `this` so
// the std::function handed to ThreadPool::parallel_for_index stays in its
// inline storage. The consequence pinned here: once warmed up, steady-state
// rounds of both phases perform *zero* heap allocations, with a live
// multi-chunk decomposition on the real global pool. The global
// operator new below counts every allocation in the process (worker
// threads included), so a regression anywhere in the phase machinery — a
// by-value capture that spills std::function to the heap, per-round
// scratch reconstruction, a merge buffer rebuilt per call — fails loudly.
//
// Scenario notes. The dynamic run saturates the sketch during a sampling
// warm-up, then drops the density schedule to p = 0: delivery then skips
// the sampling sweep entirely but still runs gather + classify over the
// live sketch (tracking stays on, draws still consumed), so the counted
// rounds exercise exactly the two sharded sketch phases. The RGG run
// parks the motion process (step = 0) and drives just the bucketing phase
// through its test hook — the counted work is the parallel counting sort
// plus the cell-ordered merge and scatter, nothing else.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "support/thread_pool.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

// Out-of-line on purpose: with the free() visible at the delete site, GCC
// pairs it against the replaced operator new and emits
// -Wmismatched-new-delete (the pairing is fine — every new below is
// malloc-family — but the warning is not suppressible per-pair).
[[gnu::noinline]] void counted_free(void* ptr) { std::free(ptr); }
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto al = static_cast<std::size_t>(align);
  const std::size_t padded = (size + al - 1) / al * al;
  if (void* ptr = std::aligned_alloc(al, padded == 0 ? al : padded))
    return ptr;
  throw std::bad_alloc();
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}

namespace radnet::sim {
namespace {

struct CountSink {
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t bulk = 0;

  void deliver(graph::NodeId, graph::NodeId) { ++deliveries; }
  void collide(graph::NodeId) { ++collisions; }
  void deliver_bulk(std::uint64_t count) { bulk += count; }
  void collide_bulk(std::uint64_t count) { bulk += count; }
};

TEST(ShardScratch, DynamicSketchPhasesSteadyStateAllocFree) {
  const graph::NodeId n = 8192;
  const graph::NodeId k = 2560;  // 3 gather chunks at kSketchChunkSize=1024
  const double p0 = 1.5 / static_cast<double>(k);
  constexpr std::uint32_t kSamplingRounds = 16;

  ImplicitDynamicGnp spec;
  spec.n = n;
  spec.p = p0;
  spec.churn = 0.05;  // slow decay: the sketch stays live for the window
  spec.sketch_capacity = 16384;
  spec.rng = Rng(0x5C4A7C4);
  // Sampling warm-up fills the sketch to capacity; afterwards p = 0 skips
  // the sampling sweep, leaving exactly the sharded gather + classify
  // phases as the round's work.
  spec.p_of_round = [p0](std::uint32_t round) {
    return round < kSamplingRounds ? p0 : 0.0;
  };
  ImplicitDynamicGnpTopology topo(spec);
  topo.set_parallelism(resolve_pool(0));

  std::vector<graph::NodeId> tx(k);
  for (graph::NodeId v = 0; v < k; ++v) tx[v] = v;
  std::vector<char> is_tx(n, 0);
  for (const graph::NodeId t : tx) is_tx[t] = 1;

  CountSink sink;
  const auto run_round = [&](std::uint32_t round) {
    topo.begin_round(round);
    topo.deliver({tx.data(), tx.size()}, is_tx, /*half_duplex=*/false,
                 DeliveryPath::kAuto, std::nullopt,
                 /*collisions_inert=*/false, sink);
  };

  // Warm up: fill the sketch, then let four p = 0 rounds high-water the
  // per-chunk scratch under the counted regime's workload shape.
  for (std::uint32_t round = 0; round < kSamplingRounds + 4; ++round)
    run_round(round);
  ASSERT_GT(topo.sketch_size(), 4096u)
      << "warm-up failed to populate the sketch; the counted rounds would "
         "not exercise the sharded phases";

  const std::uint64_t before = g_allocations.load();
  for (std::uint32_t round = kSamplingRounds + 4; round < kSamplingRounds + 12;
       ++round)
    run_round(round);
  const std::uint64_t during = g_allocations.load() - before;

  EXPECT_EQ(during, 0u)
      << "steady-state gather/classify rounds allocated " << during
      << " times; per-(round, chunk) scratch is being rebuilt";
  EXPECT_GT(topo.sketch_size(), 1024u);  // the phases still had real work
  EXPECT_GT(sink.deliveries, 0u);
}

TEST(ShardScratch, RggBucketingSteadyStateAllocFree) {
  const graph::NodeId n = 8192;
  const double radius = graph::rgg_threshold_radius(n, 4.0);
  // step = 0 parks the motion process: identical occupancy every round, so
  // every scratch buffer's high-water mark is hit on the first pass.
  ImplicitRggTopology topo(ImplicitRgg{n, radius, 0.0, Rng(0xB0C5C)});
  topo.begin_round(0);
  topo.set_parallelism(resolve_pool(0));
  topo.set_bucket_chunk(512);  // 8 chunks over k = 4096 transmitters

  std::vector<graph::NodeId> tx;
  for (graph::NodeId v = 0; v < n; v += 2) tx.push_back(v);

  for (int warm = 0; warm < 2; ++warm) {
    topo.bucket_for_test({tx.data(), tx.size()});
    topo.unbucket_for_test();
  }

  const std::uint64_t before = g_allocations.load();
  for (int round = 0; round < 8; ++round) {
    topo.bucket_for_test({tx.data(), tx.size()});
    topo.unbucket_for_test();
  }
  const std::uint64_t during = g_allocations.load() - before;

  EXPECT_EQ(during, 0u)
      << "steady-state bucketing rounds allocated " << during
      << " times; per-chunk scratch is being rebuilt";

  // The counted work was real: bucket once more and check the grid.
  topo.bucket_for_test({tx.data(), tx.size()});
  std::uint64_t bucketed = 0;
  const std::uint32_t dim = topo.grid_cells();
  for (std::uint32_t cell = 0; cell < dim * dim; ++cell)
    bucketed += topo.cell_entries(cell).size();
  EXPECT_EQ(bucketed, tx.size());
  topo.unbucket_for_test();
  topo.set_bucket_chunk(0);
}

}  // namespace
}  // namespace radnet::sim
