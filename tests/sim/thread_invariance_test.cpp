// Thread-count invariance of the block-sharded implicit backends.
//
// The sharded round sweeps key every RNG draw by (round, listener block)
// (StreamKey counter keying), so a single-trial RunResult — completion,
// round counts, the full energy ledger and the per-event trace — must be
// *bit-identical* whether the sweep runs serially or over a pool of any
// size. These tests pin that guarantee at 1, 2 and 8 threads across the
// implicit static backend, the implicit dynamic backend at churn 1.0 and
// 0.5 (exercising the pair sketch's record/merge path), and a
// failure-injection run (exercising the sharded failure sweep). A final
// test drives the Monte-Carlo harness's round-parallel mode against its
// serial mode.
#include <cmath>

#include <gtest/gtest.h>

#include "core/broadcast_random.hpp"
#include "core/gossip_random.hpp"
#include "harness/monte_carlo.hpp"
#include "sim/engine.hpp"

namespace radnet::sim {
namespace {

using core::BroadcastRandomParams;
using core::BroadcastRandomProtocol;
using core::GossipRumorMarginalParams;
using core::GossipRumorMarginalProtocol;

constexpr unsigned kThreadCounts[] = {1, 2, 8};

void expect_identical(const RunResult& a, const RunResult& b,
                      const char* what) {
  // Field-wise first for readable failures, then the exhaustive
  // RunResult::operator== so future fields cannot silently escape the
  // bit-identity gate.
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.rounds_executed, b.rounds_executed) << what;
  EXPECT_EQ(a.completion_round, b.completion_round) << what;
  EXPECT_EQ(a.ledger, b.ledger) << what;
  EXPECT_EQ(a.trace, b.trace) << what;
  EXPECT_TRUE(a == b) << what;
}

/// Runs `make_run(options)` at every thread count and asserts all results
/// equal the serial one. record_trace is on, so equality covers every
/// per-listener event in order, not just the aggregate ledger.
template <class MakeRun>
void expect_thread_invariant(MakeRun&& make_run, const char* what) {
  RunOptions options;
  options.record_trace = true;
  options.threads = 1;
  const RunResult serial = make_run(options);
  for (const unsigned threads : kThreadCounts) {
    options.threads = threads;
    expect_identical(serial, make_run(options), what);
  }
}

TEST(ThreadInvariance, ImplicitStaticBroadcast) {
  const graph::NodeId n = 50'000;  // several shard blocks
  const double p = 8.0 * std::log(n) / n;
  expect_thread_invariant(
      [&](RunOptions options) {
        options.max_rounds = 256;
        const ImplicitGnp spec{n, p, Rng(0xA11CE)};
        BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
        Engine engine;
        return engine.run(spec, proto, Rng(7), options);
      },
      "implicit static broadcast");
}

TEST(ThreadInvariance, AttentivePathAndBulkCollisions) {
  // Without a trace the attentive hint stays live, so the heavy rounds run
  // the chunk-sharded attentive path with inert-collision bulk merging —
  // the ledger must still be bit-identical at every thread count.
  const graph::NodeId n = 200'000;
  const double p = 8.0 * std::log(n) / n;
  const auto run_with = [&](unsigned threads) {
    RunOptions options;
    options.max_rounds = 256;
    options.threads = threads;
    const ImplicitGnp spec{n, p, Rng(0xBEEF)};
    BroadcastRandomProtocol proto(BroadcastRandomParams{.p = p});
    Engine engine;
    return engine.run(spec, proto, Rng(11), options);
  };
  const RunResult serial = run_with(1);
  EXPECT_TRUE(serial.completed);
  for (const unsigned threads : kThreadCounts)
    expect_identical(serial, run_with(threads), "attentive path");
}

void expect_dynamic_invariant(double churn, double fail_prob,
                              const char* what) {
  const graph::NodeId n = 50'000;
  const double p = 16.0 / n;
  expect_thread_invariant(
      [&](RunOptions options) {
        options.max_rounds = 64;
        ImplicitDynamicGnp spec;
        spec.n = n;
        spec.p = p;
        spec.churn = churn;
        spec.fail_prob = fail_prob;
        spec.rng = Rng(0xD15C0);
        GossipRumorMarginalProtocol proto(GossipRumorMarginalParams{.p = p});
        Engine engine;
        return engine.run(spec, proto, Rng(9), options);
      },
      what);
}

TEST(ThreadInvariance, ImplicitDynamicChurnOne) {
  expect_dynamic_invariant(1.0, 0.0, "dynamic churn=1.0");
}

TEST(ThreadInvariance, ImplicitDynamicChurnHalf) {
  // churn < 1 routes deliveries through the pair sketch: the sweep's
  // buffered record merge must reproduce the serial sketch insertion order
  // exactly, or later rounds diverge.
  expect_dynamic_invariant(0.5, 0.0, "dynamic churn=0.5");
}

TEST(ThreadInvariance, FailureInjection) {
  // fail_prob > 0 also exercises the block-sharded failure sweep.
  expect_dynamic_invariant(1.0, 0.002, "dynamic with failures");
}

TEST(ThreadInvariance, MonteCarloRoundParallelMatchesSerial) {
  // One trial, so the harness flips to round-parallelism (threads = 0)
  // when the pool has > 1 thread; the outcomes must match a fully serial
  // run regardless.
  const graph::NodeId n = 30'000;
  const double p = 8.0 * std::log(n) / n;
  harness::McSpec spec;
  spec.trials = 1;
  spec.seed = 0xC0FFEE;
  spec.implicit_gnp = harness::ImplicitGnpParams{n, p};
  spec.make_protocol = [p](const graph::Digraph&, std::uint32_t) {
    return std::make_unique<BroadcastRandomProtocol>(
        BroadcastRandomParams{.p = p});
  };
  spec.run_options.max_rounds = 256;

  spec.serial = true;
  const harness::McResult serial = harness::run_monte_carlo(spec);
  spec.serial = false;
  const harness::McResult parallel = harness::run_monte_carlo(spec);

  ASSERT_EQ(serial.trials(), parallel.trials());
  for (std::uint32_t t = 0; t < serial.trials(); ++t) {
    const auto& a = serial.outcomes[t];
    const auto& b = parallel.outcomes[t];
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.total_tx, b.total_tx);
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(a.collisions, b.collisions);
  }
}

}  // namespace
}  // namespace radnet::sim
